// nuchase — command-line front end to the library.
//
//   nuchase classify  FILE      class, schema quantities, paper bounds
//   nuchase decide    FILE      ChTrm(D, Σ): terminates / does not
//   nuchase chase     FILE      run the chase, print stats (and atoms)
//   nuchase rewrite   FILE      print simple(Σ) / lin(Σ) / gsimple(Σ)
//   nuchase explain   FILE      weak-acyclicity analysis with witnesses
//
// FILE holds a program in the rule language of tgd::ParseProgram
// ("R(a, b).  R(x, y) -> S(y, z)."); "-" reads stdin. Options are
// documented under --help.
//
// The CLI is a thin client of the api facade: one api::Program is
// parsed/analyzed per invocation and every command runs through an
// api::Session. Only the rewrite/explain commands reach below the
// facade, against a session-private copy of the program's symbol table.
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/weak_acyclicity.h"
#include "nuchase/nuchase.h"
#include "rewrite/linearize.h"
#include "rewrite/simplify.h"
#include "tgd/printer.h"
#include "util/parse.h"

namespace nuchase {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options] <file|->\n"
               "\n"
               "commands:\n"
               "  classify   class (SL/L/G/TGD), |sch|, ar, ||Sigma||, "
               "d_C, f_C\n"
               "  decide     non-uniform chase termination for (D, Sigma)\n"
               "  chase      materialize the chase and print statistics\n"
               "  rewrite    print a rewriting of the program\n"
               "  explain    weak-acyclicity analysis with witnesses\n"
               "\n"
               "options:\n"
               "  --variant=semi-oblivious|oblivious|restricted  (chase)\n"
               "  --max-atoms=N     chase atom budget (default %llu)\n"
               "  --max-depth=N     stop once a null exceeds depth N "
               "(default off)\n"
               "  --max-rounds=N    stop after N breadth-first rounds "
               "(default off)\n"
               "  --deadline-ms=N   stop (outcome cancelled) after N ms "
               "of wall clock\n"
               "  --threads=N       chase worker threads (1 = "
               "sequential,\n"
               "                    0 = one per hardware thread); "
               "results are\n"
               "                    byte-identical for every N\n"
               "  --extent-log2=N   log2 of the instance extent size "
               "in terms,\n"
               "                    N in [2, 24] (tuning only; results "
               "are\n"
               "                    byte-identical for every N)\n"
               "  --print           also print the materialized atoms\n"
               "  --no-reliances    schedule every rule alone (ablation; "
               "results\n"
               "                    are byte-identical either way)\n"
               "  --restraint-order fire restrained rules first within a "
               "rule\n"
               "                    group (restricted variant only; picks "
               "a\n"
               "                    different, often smaller, valid "
               "result)\n"
               "  --no-delta        full-scan trigger search (ablation)\n"
               "  --no-position-index  join without the per-position "
               "index\n"
               "  --ucq             decide via the data-complexity UCQ\n"
               "  --naive           decide via the bounded chase\n"
               "  --mode=simplify|linearize|gsimple   (rewrite)\n",
               argv0,
               static_cast<unsigned long long>(
                   chase::ChaseOptions{}.max_atoms));
  return 2;
}

struct CliOptions {
  std::string command;
  std::string file;
  // Run options forwarded to the session; defaults (including the atom
  // budget) come from the library via SessionOptions.
  api::SessionOptions session;
  bool print_atoms = false;
  bool use_ucq = false;
  bool use_naive = false;
  std::string mode = "simplify";
};

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  if (argc < 3) return false;
  out->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--print") {
      out->print_atoms = true;
    } else if (arg == "--ucq") {
      out->use_ucq = true;
    } else if (arg == "--naive") {
      out->use_naive = true;
    } else if (arg == "--no-reliances") {
      out->session.use_reliances = false;
    } else if (arg == "--restraint-order") {
      out->session.restraint_order = true;
    } else if (arg == "--no-delta") {
      out->session.use_delta = false;
    } else if (arg == "--no-position-index") {
      out->session.use_position_index = false;
    } else if (arg.rfind("--variant=", 0) == 0) {
      std::string v = arg.substr(10);
      if (v == "semi-oblivious") {
        out->session.variant = chase::ChaseVariant::kSemiOblivious;
      } else if (v == "oblivious") {
        out->session.variant = chase::ChaseVariant::kOblivious;
      } else if (v == "restricted") {
        out->session.variant = chase::ChaseVariant::kRestricted;
      } else {
        std::fprintf(stderr, "unknown variant '%s'\n", v.c_str());
        return false;
      }
    } else if (arg.rfind("--max-atoms=", 0) == 0) {
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--max-atoms", arg.c_str() + 12, 0,
                                0xffffffffffffffffull, &n)) {
        return false;
      }
      out->session.max_atoms = n;
    } else if (arg.rfind("--max-depth=", 0) == 0) {
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--max-depth", arg.c_str() + 12, 0,
                                0xffffffffull, &n)) {
        return false;
      }
      out->session.max_depth = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--max-rounds=", 0) == 0) {
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--max-rounds", arg.c_str() + 13, 0,
                                0xffffffffffffffffull, &n)) {
        return false;
      }
      out->session.max_rounds = n;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--deadline-ms", arg.c_str() + 14, 0,
                                0xffffffffffffffffull, &n)) {
        return false;
      }
      out->session.deadline_ms = n;
    } else if (arg.rfind("--threads=", 0) == 0) {
      // 0 is the meaningful "all hardware threads" setting here, so
      // garbage must error rather than fall through to the most
      // aggressive value.
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--threads", arg.c_str() + 10, 0, 256,
                                &n)) {
        return false;
      }
      out->session.num_threads = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--extent-log2=", 0) == 0) {
      // Range-capped: below 2 an extent cannot hold one wide tuple's
      // worth of growth granularity, above 24 a single extent is 64M
      // terms — both are certainly typos, not tuning.
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--extent-log2", arg.c_str() + 14, 2, 24,
                                &n)) {
        return false;
      }
      out->session.extent_log2 = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--mode=", 0) == 0) {
      out->mode = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      out->file = arg;
    }
  }
  return !out->file.empty();
}

bool ReadProgramText(const std::string& file, std::string* text) {
  if (file == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *text = ss.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *text = ss.str();
  return true;
}

int Classify(const api::Session& session) {
  auto c = session.Classify();
  if (!c.ok()) {
    std::fprintf(stderr, "classify: %s\n", c.status().ToString().c_str());
    return 1;
  }
  std::printf("class:        %s\n", tgd::TgdClassName(c->tgd_class));
  std::printf("|Sigma|:      %zu TGDs\n", c->num_tgds);
  std::printf("|sch(Sigma)|: %zu predicates\n", c->num_schema_predicates);
  std::printf("ar(Sigma):    %u\n", c->max_arity);
  std::printf("||Sigma||:    %llu\n",
              static_cast<unsigned long long>(c->norm));
  std::printf("|D|:          %zu facts\n", c->num_facts);
  if (c->has_bounds) {
    std::printf("d_C(Sigma):   %.6g   (depth bound, Section 5)\n",
                c->depth_bound);
    std::printf("f_C(Sigma):   %.6g   (|chase| <= |D| * f_C)\n",
                c->size_factor);
  } else {
    std::printf("d_C/f_C:      n/a (not guarded; ChTrm undecidable, "
                "Prop 4.2)\n");
  }
  return 0;
}

int Decide(const api::Session& session, const CliOptions& options) {
  if (options.use_ucq) {
    auto d = session.Decide(api::DecideMethod::kUcq);
    if (!d.ok()) {
      std::fprintf(stderr, "ucq decider: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (via UCQ Q_Sigma, Theorems 6.6 / 7.7)\n",
                termination::DecisionName(d->decision));
    return d->decision == termination::Decision::kTerminates ? 0 : 1;
  }
  if (options.use_naive) {
    auto d = session.Decide(api::DecideMethod::kBoundedChase);
    if (!d.ok()) {
      std::fprintf(stderr, "decider: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (via bounded chase: %llu atoms, maxdepth %u)\n",
                termination::DecisionName(d->decision),
                static_cast<unsigned long long>(d->atoms), d->max_depth);
    return d->decision == termination::Decision::kTerminates ? 0 : 1;
  }
  auto d = session.Decide();
  if (!d.ok()) {
    std::fprintf(stderr, "decider: %s\n", d.status().ToString().c_str());
    return 1;
  }
  std::printf("%s (class %s, via %s)\n",
              termination::DecisionName(d->decision),
              tgd::TgdClassName(d->tgd_class), d->method.c_str());
  return d->decision == termination::Decision::kTerminates ? 0 : 1;
}

int Chase(const api::Session& session, const CliOptions& options) {
  auto run = session.Chase();
  if (!run.ok()) {
    std::fprintf(stderr, "chase: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const chase::ChaseStats& stats = run->stats();
  std::printf("variant:    %s\n",
              chase::ChaseVariantName(session.options().variant));
  std::printf("engine:     %s, %s\n",
              session.options().use_delta ? "delta (semi-naive)"
                                          : "full-scan",
              session.options().use_position_index ? "position-indexed"
                                                   : "predicate-scan");
  // The schedule line is a pure function of Σ and the flags — never of
  // the thread count or the delta/index ablations — so goldens stay
  // stable across every identity-preserving knob.
  if (session.options().use_reliances) {
    std::printf("schedule:   reliances on, %llu rule groups%s\n",
                static_cast<unsigned long long>(stats.reliance_groups),
                session.options().restraint_order ? ", restraint order"
                                                  : "");
  } else {
    std::printf("schedule:   reliances off\n");
  }
  std::printf("outcome:    %s\n", chase::ChaseOutcomeName(run->outcome()));
  std::printf("atoms:      %zu (|D| = %zu)\n", run->instance().size(),
              session.program().fact_count());
  std::printf("maxdepth:   %u\n", stats.max_depth);
  std::printf("triggers:   %llu fired, %llu satisfied-skipped\n",
              static_cast<unsigned long long>(stats.triggers_fired),
              static_cast<unsigned long long>(stats.triggers_satisfied));
  std::printf("rounds:     %llu\n",
              static_cast<unsigned long long>(stats.rounds));
  std::printf("joins:      %llu probes, %llu delta seeds\n",
              static_cast<unsigned long long>(stats.join_probes),
              static_cast<unsigned long long>(stats.delta_atoms_scanned));
  std::printf("memory:     %llu arena bytes, %llu peak atoms\n",
              static_cast<unsigned long long>(stats.arena_bytes),
              static_cast<unsigned long long>(stats.peak_atoms));
  if (options.print_atoms) {
    std::printf("%s", run->ToSortedString().c_str());
  }
  return run->Terminated() ? 0 : 1;
}

int Rewrite(const api::Program& program, const CliOptions& options) {
  // The rewritings intern fresh predicates/variables: run them against a
  // session-private copy of the program's frozen table.
  core::SymbolTable symbols = program.symbols();
  if (options.mode == "simplify") {
    rewrite::Simplifier simplifier(&symbols);
    auto simple = simplifier.SimplifyTgds(program.tgds());
    if (!simple.ok()) {
      std::fprintf(stderr, "simplify: %s\n",
                   simple.status().ToString().c_str());
      return 1;
    }
    core::Database simple_db =
        simplifier.SimplifyDatabase(program.database());
    std::printf("%s", tgd::ProgramToString(*simple, simple_db,
                                           symbols).c_str());
    return 0;
  }
  rewrite::LinearizeOptions lopt;
  if (options.mode == "linearize") {
    auto lin = rewrite::Linearize(program.database(), program.tgds(),
                                  &symbols, lopt);
    if (!lin.ok()) {
      std::fprintf(stderr, "linearize: %s\n",
                   lin.status().ToString().c_str());
      return 1;
    }
    std::printf("%% %zu Sigma-types reachable from lin(D)\n",
                lin->num_types);
    std::printf("%s", tgd::ProgramToString(lin->tgds, lin->database,
                                           symbols).c_str());
    return 0;
  }
  if (options.mode == "gsimple") {
    auto gs = rewrite::GSimplify(program.database(), program.tgds(),
                                 &symbols, lopt);
    if (!gs.ok()) {
      std::fprintf(stderr, "gsimple: %s\n",
                   gs.status().ToString().c_str());
      return 1;
    }
    std::printf("%% %zu Sigma-types, %zu linear TGDs before "
                "simplification\n",
                gs->num_types, gs->num_linear_tgds);
    std::printf("%s", tgd::ProgramToString(gs->tgds, gs->database,
                                           symbols).c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown rewrite mode '%s'\n",
               options.mode.c_str());
  return 2;
}

int Explain(const api::Program& program) {
  const core::SymbolTable& symbols = program.symbols();
  graph::WeakAcyclicityResult wa = graph::CheckWeakAcyclicity(
      program.tgds(), program.database(), symbols);
  bool uniform =
      graph::IsUniformlyWeaklyAcyclic(program.tgds(), symbols);
  std::printf("uniformly weakly-acyclic:     %s\n",
              uniform ? "yes" : "no");
  std::printf("weakly-acyclic w.r.t. D:      %s\n",
              wa.weakly_acyclic ? "yes" : "no");
  if (!wa.special_cycle_positions.empty()) {
    std::printf("positions on special cycles:  ");
    for (const core::Position& pos : wa.special_cycle_positions) {
      std::printf("(%s,%u) ", symbols.predicate_name(pos.predicate).c_str(),
                  pos.index + 1);
    }
    std::printf("\n");
  }
  if (!wa.supported_witnesses.empty()) {
    std::printf("D-supported witnesses:        ");
    for (const core::Position& pos : wa.supported_witnesses) {
      std::printf("(%s,%u) ", symbols.predicate_name(pos.predicate).c_str(),
                  pos.index + 1);
    }
    std::printf("\n");
  }
  tgd::TgdClass clazz = program.tgd_class();
  if (clazz == tgd::TgdClass::kSimpleLinear) {
    std::printf("=> Sigma in SL: WA w.r.t. D is exact (Theorem 6.4): "
                "chase is %s\n",
                wa.weakly_acyclic ? "FINITE" : "INFINITE");
  } else if (wa.weakly_acyclic) {
    std::printf("=> WA w.r.t. D is sufficient for any TGDs (Lemma 6.2): "
                "chase is FINITE\n");
  } else {
    std::printf("=> not conclusive for class %s; run 'decide' for the "
                "class-exact procedure\n",
                tgd::TgdClassName(clazz));
  }
  return 0;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      Usage(argv[0]);
      return 0;
    }
  }
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  std::string text;
  if (!ReadProgramText(options.file, &text)) return 1;

  // Parse + validate + classify + join-plan exactly once; every command
  // below is a cheap session over the frozen artifact.
  auto program = api::Program::Parse(text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  api::Session session(*program, options.session);

  if (options.command == "classify") return Classify(session);
  if (options.command == "decide") return Decide(session, options);
  if (options.command == "chase") return Chase(session, options);
  if (options.command == "rewrite") return Rewrite(*program, options);
  if (options.command == "explain") return Explain(*program);
  return Usage(argv[0]);
}

}  // namespace
}  // namespace nuchase

int main(int argc, char** argv) { return nuchase::Main(argc, argv); }
