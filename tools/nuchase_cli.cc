// nuchase — command-line front end to the library.
//
//   nuchase classify  FILE      class, schema quantities, paper bounds
//   nuchase decide    FILE      ChTrm(D, Σ): terminates / does not
//   nuchase chase     FILE      run the chase, print stats (and atoms)
//   nuchase rewrite   FILE      print simple(Σ) / lin(Σ) / gsimple(Σ)
//   nuchase explain   FILE      weak-acyclicity analysis with witnesses
//
// FILE holds a program in the rule language of tgd::ParseProgram
// ("R(a, b).  R(x, y) -> S(y, z)."); "-" reads stdin. Options are
// documented under --help.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "graph/weak_acyclicity.h"
#include "rewrite/linearize.h"
#include "rewrite/simplify.h"
#include "termination/advisor.h"
#include "termination/bounds.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/classify.h"
#include "tgd/parser.h"
#include "tgd/printer.h"

namespace nuchase {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options] <file|->\n"
               "\n"
               "commands:\n"
               "  classify   class (SL/L/G/TGD), |sch|, ar, ||Sigma||, "
               "d_C, f_C\n"
               "  decide     non-uniform chase termination for (D, Sigma)\n"
               "  chase      materialize the chase and print statistics\n"
               "  rewrite    print a rewriting of the program\n"
               "  explain    weak-acyclicity analysis with witnesses\n"
               "\n"
               "options:\n"
               "  --variant=semi-oblivious|oblivious|restricted  (chase)\n"
               "  --max-atoms=N     chase atom budget (default 1000000)\n"
               "  --print           also print the materialized atoms\n"
               "  --no-delta        full-scan trigger search (ablation)\n"
               "  --no-position-index  join without the per-position "
               "index\n"
               "  --ucq             decide via the data-complexity UCQ\n"
               "  --naive           decide via the bounded chase\n"
               "  --mode=simplify|linearize|gsimple   (rewrite)\n",
               argv0);
  return 2;
}

struct Options {
  std::string command;
  std::string file;
  chase::ChaseVariant variant = chase::ChaseVariant::kSemiOblivious;
  std::uint64_t max_atoms = 1'000'000;
  bool print_atoms = false;
  bool use_ucq = false;
  bool use_naive = false;
  bool use_delta = true;
  bool use_position_index = true;
  std::string mode = "simplify";
};

bool ParseArgs(int argc, char** argv, Options* out) {
  if (argc < 3) return false;
  out->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--print") {
      out->print_atoms = true;
    } else if (arg == "--ucq") {
      out->use_ucq = true;
    } else if (arg == "--naive") {
      out->use_naive = true;
    } else if (arg == "--no-delta") {
      out->use_delta = false;
    } else if (arg == "--no-position-index") {
      out->use_position_index = false;
    } else if (arg.rfind("--variant=", 0) == 0) {
      std::string v = arg.substr(10);
      if (v == "semi-oblivious") {
        out->variant = chase::ChaseVariant::kSemiOblivious;
      } else if (v == "oblivious") {
        out->variant = chase::ChaseVariant::kOblivious;
      } else if (v == "restricted") {
        out->variant = chase::ChaseVariant::kRestricted;
      } else {
        std::fprintf(stderr, "unknown variant '%s'\n", v.c_str());
        return false;
      }
    } else if (arg.rfind("--max-atoms=", 0) == 0) {
      out->max_atoms = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--mode=", 0) == 0) {
      out->mode = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      out->file = arg;
    }
  }
  return !out->file.empty();
}

bool ReadProgramText(const std::string& file, std::string* text) {
  if (file == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *text = ss.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *text = ss.str();
  return true;
}

int Classify(core::SymbolTable* symbols, const tgd::Program& p) {
  tgd::TgdClass clazz = tgd::Classify(p.tgds);
  std::printf("class:        %s\n", tgd::TgdClassName(clazz));
  std::printf("|Sigma|:      %zu TGDs\n", p.tgds.size());
  std::printf("|sch(Sigma)|: %zu predicates\n",
              p.tgds.SchemaPredicates().size());
  std::printf("ar(Sigma):    %u\n", p.tgds.MaxArity(*symbols));
  std::printf("||Sigma||:    %llu\n",
              static_cast<unsigned long long>(p.tgds.Norm(*symbols)));
  std::printf("|D|:          %zu facts\n", p.database.size());
  if (clazz != tgd::TgdClass::kGeneral) {
    std::printf("d_C(Sigma):   %.6g   (depth bound, Section 5)\n",
                termination::DepthBound(clazz, p.tgds, *symbols));
    std::printf("f_C(Sigma):   %.6g   (|chase| <= |D| * f_C)\n",
                termination::SizeFactor(clazz, p.tgds, *symbols));
  } else {
    std::printf("d_C/f_C:      n/a (not guarded; ChTrm undecidable, "
                "Prop 4.2)\n");
  }
  return 0;
}

int Decide(core::SymbolTable* symbols, const tgd::Program& p,
           const Options& options) {
  if (options.use_ucq) {
    auto d = termination::DecideByUcq(symbols, p.tgds, p.database);
    if (!d.ok()) {
      std::fprintf(stderr, "ucq decider: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    std::printf("%s (via UCQ Q_Sigma, Theorems 6.6 / 7.7)\n",
                termination::DecisionName(*d));
    return *d == termination::Decision::kTerminates ? 0 : 1;
  }
  if (options.use_naive) {
    chase::ChaseOptions engine;
    engine.use_delta = options.use_delta;
    engine.use_position_index = options.use_position_index;
    termination::NaiveDecision d = termination::DecideByChase(
        symbols, p.tgds, p.database, options.max_atoms, engine);
    std::printf("%s (via bounded chase: %llu atoms, maxdepth %u)\n",
                termination::DecisionName(d.decision),
                static_cast<unsigned long long>(d.atoms), d.max_depth);
    return d.decision == termination::Decision::kTerminates ? 0 : 1;
  }
  termination::AdvisorOptions aopt;
  aopt.materialize = false;
  aopt.use_delta = options.use_delta;
  aopt.use_position_index = options.use_position_index;
  auto report = termination::Advise(symbols, p.tgds, p.database, aopt);
  if (!report.ok()) {
    std::fprintf(stderr, "decider: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s (class %s, via %s)\n",
              termination::DecisionName(report->decision),
              tgd::TgdClassName(report->tgd_class),
              report->method.c_str());
  return report->decision == termination::Decision::kTerminates ? 0 : 1;
}

int Chase(core::SymbolTable* symbols, const tgd::Program& p,
          const Options& options) {
  chase::ChaseOptions copt;
  copt.variant = options.variant;
  copt.max_atoms = options.max_atoms;
  copt.use_delta = options.use_delta;
  copt.use_position_index = options.use_position_index;
  chase::ChaseResult r = chase::RunChase(symbols, p.tgds, p.database, copt);
  std::printf("variant:    %s\n", chase::ChaseVariantName(options.variant));
  std::printf("engine:     %s, %s\n",
              copt.use_delta ? "delta (semi-naive)" : "full-scan",
              copt.use_position_index ? "position-indexed"
                                      : "predicate-scan");
  std::printf("outcome:    %s\n", chase::ChaseOutcomeName(r.outcome));
  std::printf("atoms:      %zu (|D| = %zu)\n", r.instance.size(),
              p.database.size());
  std::printf("maxdepth:   %u\n", r.stats.max_depth);
  std::printf("triggers:   %llu fired, %llu satisfied-skipped\n",
              static_cast<unsigned long long>(r.stats.triggers_fired),
              static_cast<unsigned long long>(r.stats.triggers_satisfied));
  std::printf("rounds:     %llu\n",
              static_cast<unsigned long long>(r.stats.rounds));
  std::printf("joins:      %llu probes, %llu delta seeds\n",
              static_cast<unsigned long long>(r.stats.join_probes),
              static_cast<unsigned long long>(r.stats.delta_atoms_scanned));
  if (options.print_atoms) {
    std::printf("%s", r.instance.ToSortedString(*symbols).c_str());
  }
  return r.Terminated() ? 0 : 1;
}

int Rewrite(core::SymbolTable* symbols, const tgd::Program& p,
            const Options& options) {
  if (options.mode == "simplify") {
    rewrite::Simplifier simplifier(symbols);
    auto simple = simplifier.SimplifyTgds(p.tgds);
    if (!simple.ok()) {
      std::fprintf(stderr, "simplify: %s\n",
                   simple.status().ToString().c_str());
      return 1;
    }
    core::Database simple_db = simplifier.SimplifyDatabase(p.database);
    std::printf("%s", tgd::ProgramToString(*simple, simple_db,
                                           *symbols).c_str());
    return 0;
  }
  rewrite::LinearizeOptions lopt;
  if (options.mode == "linearize") {
    auto lin = rewrite::Linearize(p.database, p.tgds, symbols, lopt);
    if (!lin.ok()) {
      std::fprintf(stderr, "linearize: %s\n",
                   lin.status().ToString().c_str());
      return 1;
    }
    std::printf("%% %zu Sigma-types reachable from lin(D)\n",
                lin->num_types);
    std::printf("%s", tgd::ProgramToString(lin->tgds, lin->database,
                                           *symbols).c_str());
    return 0;
  }
  if (options.mode == "gsimple") {
    auto gs = rewrite::GSimplify(p.database, p.tgds, symbols, lopt);
    if (!gs.ok()) {
      std::fprintf(stderr, "gsimple: %s\n",
                   gs.status().ToString().c_str());
      return 1;
    }
    std::printf("%% %zu Sigma-types, %zu linear TGDs before "
                "simplification\n",
                gs->num_types, gs->num_linear_tgds);
    std::printf("%s", tgd::ProgramToString(gs->tgds, gs->database,
                                           *symbols).c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown rewrite mode '%s'\n",
               options.mode.c_str());
  return 2;
}

int Explain(core::SymbolTable* symbols, const tgd::Program& p) {
  graph::WeakAcyclicityResult wa =
      graph::CheckWeakAcyclicity(p.tgds, p.database, *symbols);
  bool uniform = graph::IsUniformlyWeaklyAcyclic(p.tgds, *symbols);
  std::printf("uniformly weakly-acyclic:     %s\n",
              uniform ? "yes" : "no");
  std::printf("weakly-acyclic w.r.t. D:      %s\n",
              wa.weakly_acyclic ? "yes" : "no");
  if (!wa.special_cycle_positions.empty()) {
    std::printf("positions on special cycles:  ");
    for (const core::Position& pos : wa.special_cycle_positions) {
      std::printf("(%s,%u) ", symbols->predicate_name(pos.predicate).c_str(),
                  pos.index + 1);
    }
    std::printf("\n");
  }
  if (!wa.supported_witnesses.empty()) {
    std::printf("D-supported witnesses:        ");
    for (const core::Position& pos : wa.supported_witnesses) {
      std::printf("(%s,%u) ", symbols->predicate_name(pos.predicate).c_str(),
                  pos.index + 1);
    }
    std::printf("\n");
  }
  tgd::TgdClass clazz = tgd::Classify(p.tgds);
  if (clazz == tgd::TgdClass::kSimpleLinear) {
    std::printf("=> Sigma in SL: WA w.r.t. D is exact (Theorem 6.4): "
                "chase is %s\n",
                wa.weakly_acyclic ? "FINITE" : "INFINITE");
  } else if (wa.weakly_acyclic) {
    std::printf("=> WA w.r.t. D is sufficient for any TGDs (Lemma 6.2): "
                "chase is FINITE\n");
  } else {
    std::printf("=> not conclusive for class %s; run 'decide' for the "
                "class-exact procedure\n",
                tgd::TgdClassName(clazz));
  }
  return 0;
}

int Main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  std::string text;
  if (!ReadProgramText(options.file, &text)) return 1;

  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols, text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  if (options.command == "classify") return Classify(&symbols, *program);
  if (options.command == "decide") {
    return Decide(&symbols, *program, options);
  }
  if (options.command == "chase") {
    return Chase(&symbols, *program, options);
  }
  if (options.command == "rewrite") {
    return Rewrite(&symbols, *program, options);
  }
  if (options.command == "explain") return Explain(&symbols, *program);
  return Usage(argv[0]);
}

}  // namespace
}  // namespace nuchase

int main(int argc, char** argv) { return nuchase::Main(argc, argv); }
