// nuchase_loadgen — closed-loop load generator for nuchase_server.
//
//   nuchase_loadgen --port=N                  drive an already-running server
//   nuchase_loadgen --spawn-server=PATH       spawn PATH --port=0, parse the
//                                             ephemeral port, drive it, then
//                                             SIGTERM + reap it (the hermetic
//                                             smoke-test mode: no fixed port,
//                                             no prior daemon, one command)
//
// Sweeps client counts (1, 2, 4, ... up to --clients), each client a
// thread running --requests closed-loop chases of the same program with
// payloads on, and prints req/s and p50/p99 latency per client count.
// Three gates make it a test harness rather than a demo:
//
//   * zero protocol errors — every frame must parse, belong to the
//     request that is in flight, and terminate with a result;
//   * byte-identity — every result payload across every client, client
//     count and thread count must be byte-identical (the server-side
//     determinism contract, observed from the wire);
//   * --require-overlap=N — server-reported max_overlap (the peak
//     number of concurrently-executing chases) must reach N. The proof
//     is engineered, not hoped for: before the sweep the harness parks
//     one non-terminating chase on the scheduler and cancels it after,
//     so any completed sweep request overlapped with it by
//     construction — a clock-free engagement proof in the spirit of
//     ChaseStats::parallel_rounds.
//
// --min-rate=R additionally demands the best sweep row achieve R req/s.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "util/parse.h"
#include "util/table.h"

namespace nuchase {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port=N | --spawn-server=PATH) [options]\n"
               "\n"
               "options:\n"
               "  --clients=N         max client count of the sweep "
               "(default 4)\n"
               "  --requests=N        closed-loop requests per client "
               "(default 25)\n"
               "  --program=FILE      rule text to submit (default: a "
               "built-in\n"
               "                      transitive-closure program)\n"
               "  --min-rate=R        fail unless the best row reaches R "
               "req/s\n"
               "  --require-overlap=N fail unless server max_overlap "
               "reaches N\n"
               "                      (parks a cancellable chase to force "
               "it)\n"
               "  --max-inflight=N    forwarded to a spawned server "
               "(default 4)\n"
               "  --max-queue=N       forwarded to a spawned server "
               "(default 64)\n"
               "  --threads=N         forwarded to a spawned server "
               "(default 1)\n",
               argv0);
  return 2;
}

/// The default workload: transitive closure over a 24-edge chain —
/// deterministic, a couple dozen rounds deep (so cancellation and
/// events have rounds to bite on) and a few hundred atoms of payload.
std::string DefaultProgram() {
  std::string text;
  for (int i = 0; i < 24; ++i) {
    text += "E(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
            ").\n";
  }
  text += "E(x, y) -> T(x, y).\n";
  text += "T(x, y), E(y, z) -> T(x, z).\n";
  return text;
}

/// The parked program: an infinite null chain, one cheap atom per
/// round, run only to be cancelled — it exists to hold one scheduler
/// slot so max_overlap is forced over 1 by construction.
const char kParkedProgram[] = "E(a, b).\nE(x, y) -> E(y, z).\n";

struct LoadgenOptions {
  int port = -1;
  std::string spawn_server;
  unsigned clients = 4;
  unsigned requests = 25;
  std::string program_file;
  unsigned min_rate = 0;
  unsigned require_overlap = 0;
  unsigned max_inflight = 4;
  unsigned max_queue = 64;
  unsigned threads = 1;
};

/// A server child spawned with --port=0; the port is parsed from its
/// "listening on 127.0.0.1:PORT" startup line.
struct SpawnedServer {
  pid_t pid = -1;
  int port = -1;
};

bool SpawnServer(const LoadgenOptions& options, SpawnedServer* out) {
  int fds[2];
  if (::pipe(fds) < 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], 1);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string inflight =
        "--max-inflight=" + std::to_string(options.max_inflight);
    const std::string queue =
        "--max-queue=" + std::to_string(options.max_queue);
    const std::string threads =
        "--threads=" + std::to_string(options.threads);
    ::execl(options.spawn_server.c_str(), options.spawn_server.c_str(),
            "--port=0", inflight.c_str(), queue.c_str(), threads.c_str(),
            static_cast<char*>(nullptr));
    std::perror("exec nuchase_server");
    ::_exit(127);
  }
  ::close(fds[1]);
  // Read the startup line; anything else (exec failure, early exit)
  // shows up as EOF before a port was announced.
  std::string line;
  char c;
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fds[0], &c, 1);
    if (n <= 0) break;
    line.push_back(c);
  }
  ::close(fds[0]);
  const std::string prefix = "listening on 127.0.0.1:";
  const std::size_t at = line.find(prefix);
  if (at == std::string::npos) {
    std::fprintf(stderr, "spawned server printed no port: '%s'\n",
                 line.c_str());
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  out->pid = pid;
  out->port = std::atoi(line.c_str() + at + prefix.size());
  return true;
}

void ReapServer(const SpawnedServer& spawned) {
  if (spawned.pid < 0) return;
  ::kill(spawned.pid, SIGTERM);
  ::waitpid(spawned.pid, nullptr, 0);
}

struct ClientRun {
  std::vector<double> latencies_ms;
  std::uint64_t errors = 0;
  std::string payload;  ///< First result payload seen (identity probe).
  std::string detail;   ///< First error detail, for the failure report.
};

void RunClient(int port, unsigned client, unsigned requests,
               const std::string& rules, ClientRun* out) {
  auto connected = server::Client::Connect(port);
  if (!connected.ok()) {
    out->errors += requests;
    out->detail = connected.status().ToString();
    return;
  }
  server::Client& client_conn = *connected;
  for (unsigned r = 0; r < requests; ++r) {
    server::ChaseRequest request;
    request.id = "c" + std::to_string(client) + "-r" + std::to_string(r);
    request.rules = rules;
    request.payload = true;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = client_conn.RunChase(request);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!outcome.ok() || !outcome->ok || !outcome->acked) {
      ++out->errors;
      if (out->detail.empty()) {
        out->detail = !outcome.ok()
                          ? outcome.status().ToString()
                          : "error frame: " + outcome->error.message;
      }
      continue;
    }
    out->latencies_ms.push_back(ms);
    if (out->payload.empty()) out->payload = outcome->result.payload;
  }
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    unsigned long long n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!util::ParseCountFlag("--port", arg.c_str() + 7, 1, 65535, &n)) {
        return 2;
      }
      options.port = static_cast<int>(n);
    } else if (arg.rfind("--spawn-server=", 0) == 0) {
      options.spawn_server = arg.substr(15);
    } else if (arg.rfind("--clients=", 0) == 0) {
      if (!util::ParseCountFlag("--clients", arg.c_str() + 10, 1, 64,
                                &n)) {
        return 2;
      }
      options.clients = static_cast<unsigned>(n);
    } else if (arg.rfind("--requests=", 0) == 0) {
      if (!util::ParseCountFlag("--requests", arg.c_str() + 11, 1, 100000,
                                &n)) {
        return 2;
      }
      options.requests = static_cast<unsigned>(n);
    } else if (arg.rfind("--program=", 0) == 0) {
      options.program_file = arg.substr(10);
    } else if (arg.rfind("--min-rate=", 0) == 0) {
      if (!util::ParseCountFlag("--min-rate", arg.c_str() + 11, 0,
                                100000000, &n)) {
        return 2;
      }
      options.min_rate = static_cast<unsigned>(n);
    } else if (arg.rfind("--require-overlap=", 0) == 0) {
      if (!util::ParseCountFlag("--require-overlap", arg.c_str() + 18, 0,
                                256, &n)) {
        return 2;
      }
      options.require_overlap = static_cast<unsigned>(n);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      if (!util::ParseCountFlag("--max-inflight", arg.c_str() + 15, 1, 256,
                                &n)) {
        return 2;
      }
      options.max_inflight = static_cast<unsigned>(n);
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      if (!util::ParseCountFlag("--max-queue", arg.c_str() + 12, 0,
                                1000000, &n)) {
        return 2;
      }
      options.max_queue = static_cast<unsigned>(n);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!util::ParseCountFlag("--threads", arg.c_str() + 10, 0, 256,
                                &n)) {
        return 2;
      }
      options.threads = static_cast<unsigned>(n);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if ((options.port > 0) == !options.spawn_server.empty()) {
    std::fprintf(stderr, "pick one target: --port=N or "
                         "--spawn-server=PATH\n");
    return Usage(argv[0]);
  }

  std::string rules;
  if (options.program_file.empty()) {
    rules = DefaultProgram();
  } else {
    std::ifstream in(options.program_file);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   options.program_file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    rules = ss.str();
  }

  SpawnedServer spawned;
  int port = options.port;
  if (!options.spawn_server.empty()) {
    if (!SpawnServer(options, &spawned)) return 1;
    port = spawned.port;
    std::printf("spawned %s (pid %d) on 127.0.0.1:%d\n",
                options.spawn_server.c_str(),
                static_cast<int>(spawned.pid), port);
  }

  int exit_code = 0;
  std::string reference_payload;
  double best_rate = 0;
  std::uint64_t total_errors = 0;

  {
    // Overlap proof: park one non-terminating chase for the whole
    // sweep. Holding the Client open keeps its connection (and so the
    // request) alive; cancelled and drained after the sweep.
    server::Client* parked = nullptr;
    server::ChaseRequest parked_request;
    auto parked_conn = options.require_overlap >= 2
                           ? server::Client::Connect(port)
                           : util::StatusOr<server::Client>(
                                 util::Status::NotFound("unused"));
    if (options.require_overlap >= 2) {
      if (!parked_conn.ok()) {
        std::fprintf(stderr, "parked connection: %s\n",
                     parked_conn.status().ToString().c_str());
        ReapServer(spawned);
        return 1;
      }
      parked = &parked_conn.value();
      parked_request.id = "parked";
      parked_request.rules = kParkedProgram;
      if (!parked->Send(server::SerializeRequest(parked_request)).ok()) {
        std::fprintf(stderr, "parked request failed to send\n");
        ReapServer(spawned);
        return 1;
      }
      // Absorb the ack now so the later terminal read sees one frame.
      auto ack = parked->ReadFrame();
      if (!ack.ok() || ack->type != server::ResponseFrame::Type::kAck) {
        std::fprintf(stderr, "parked request was not admitted\n");
        ReapServer(spawned);
        return 1;
      }
    }

    util::Table table("server load",
                      {"clients", "requests", "errors", "req/s",
                       "p50(ms)", "p99(ms)", "same result"});
    std::vector<unsigned> sweep;
    for (unsigned c = 1; c < options.clients; c *= 2) sweep.push_back(c);
    sweep.push_back(options.clients);

    for (unsigned clients : sweep) {
      std::vector<ClientRun> runs(clients);
      std::vector<std::thread> threads;
      const auto start = std::chrono::steady_clock::now();
      for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back(RunClient, port, c, options.requests,
                             std::cref(rules), &runs[c]);
      }
      for (std::thread& t : threads) t.join();
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();

      std::vector<double> latencies;
      std::uint64_t errors = 0;
      bool identical = true;
      for (const ClientRun& run : runs) {
        errors += run.errors;
        latencies.insert(latencies.end(), run.latencies_ms.begin(),
                         run.latencies_ms.end());
        if (!run.payload.empty()) {
          if (reference_payload.empty()) reference_payload = run.payload;
          if (run.payload != reference_payload) identical = false;
        }
        if (run.errors > 0 && !run.detail.empty()) {
          std::fprintf(stderr, "client error (%u clients): %s\n", clients,
                       run.detail.c_str());
        }
      }
      std::sort(latencies.begin(), latencies.end());
      const double rate =
          elapsed > 0 ? static_cast<double>(latencies.size()) / elapsed
                      : 0;
      best_rate = std::max(best_rate, rate);
      total_errors += errors;
      if (!identical) exit_code = 1;
      table.AddRow({std::to_string(clients),
                    std::to_string(options.requests),
                    std::to_string(errors), FormatMs(rate),
                    FormatMs(Percentile(latencies, 0.50)),
                    FormatMs(Percentile(latencies, 0.99)),
                    identical ? "yes" : "NO"});
    }
    std::printf("%s\n", table.ToString().c_str());

    if (parked != nullptr) {
      // Unpark: cancel, then read the terminal frame — it must be the
      // typed cancelled error, promptly.
      if (!parked->Send(server::SerializeCancel(parked_request.id)).ok()) {
        std::fprintf(stderr, "cancel of parked request failed to send\n");
        exit_code = 1;
      } else {
        auto terminal = parked->ReadFrame();
        if (!terminal.ok() ||
            terminal->type != server::ResponseFrame::Type::kError ||
            terminal->error.code != server::ErrorCode::kCancelled) {
          std::fprintf(stderr,
                       "parked request did not end in a cancelled "
                       "error frame\n");
          exit_code = 1;
        }
      }
    }
  }

  // Server-side counters: the cache and overlap verdicts come from the
  // daemon, not from the harness's clocks. The connection must be
  // closed (scope exit) before ReapServer: the daemon drains live
  // connections on SIGTERM, so reaping with a connection still open
  // would deadlock waitpid against the server's recv.
  server::StatsFrame stats;
  {
    auto stats_conn = server::Client::Connect(port);
    if (!stats_conn.ok()) {
      std::fprintf(stderr, "stats connection: %s\n",
                   stats_conn.status().ToString().c_str());
      ReapServer(spawned);
      return 1;
    }
    auto snapshot = stats_conn->Stats();
    if (!snapshot.ok()) {
      std::fprintf(stderr, "stats: %s\n",
                   snapshot.status().ToString().c_str());
      exit_code = 1;
    } else {
      stats = *snapshot;
    }
  }
  std::printf("server: parsed=%llu cache_hits=%llu cache_misses=%llu "
              "accepted=%llu completed=%llu overload=%llu "
              "cancelled=%llu deadline=%llu max_overlap=%llu\n",
              static_cast<unsigned long long>(stats.programs_parsed),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected_overload),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.deadline_exceeded),
              static_cast<unsigned long long>(stats.max_overlap));

  ReapServer(spawned);

  if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %llu protocol error(s)\n",
                 static_cast<unsigned long long>(total_errors));
    exit_code = 1;
  }
  if (options.min_rate > 0 && best_rate < options.min_rate) {
    std::fprintf(stderr, "FAIL: best rate %.2f req/s below --min-rate=%u\n",
                 best_rate, options.min_rate);
    exit_code = 1;
  }
  if (options.require_overlap > 0 &&
      stats.max_overlap < options.require_overlap) {
    std::fprintf(stderr,
                 "FAIL: max_overlap %llu below --require-overlap=%u — "
                 "concurrent requests never overlapped on the pool\n",
                 static_cast<unsigned long long>(stats.max_overlap),
                 options.require_overlap);
    exit_code = 1;
  }
  if (exit_code == 0) std::printf("loadgen: all gates passed\n");
  return exit_code;
}

}  // namespace
}  // namespace nuchase

int main(int argc, char** argv) { return nuchase::Main(argc, argv); }
