// nuchase_server — chase-as-a-service daemon over the api facade.
//
//   nuchase_server --stdio                 serve one session on stdin/stdout
//   nuchase_server --port=0                serve TCP on 127.0.0.1 (0 picks an
//                                          ephemeral port; the chosen one is
//                                          printed as "listening on ...")
//   nuchase_server --list-frames           print the wire-protocol catalog
//
// The protocol is newline-delimited JSON, one frame per line; see
// docs/server.md for the frame catalog and admission-control semantics.
// The daemon is a thin shell around server::Server: one shared parse
// cache (--cache-size) and one admission-controlled scheduler
// (--max-inflight running, --max-queue waiting, typed `overloaded`
// rejections past that) serve every connection. SIGINT/SIGTERM shut the
// TCP mode down cleanly: stop accepting, drain live connections, exit 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "server/server.h"
#include "util/parse.h"

namespace nuchase {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stdio | --port=N] [options]\n"
               "\n"
               "modes (exactly one):\n"
               "  --stdio           serve newline-delimited JSON frames on\n"
               "                    stdin/stdout, exit once input drains\n"
               "  --port=N          listen on 127.0.0.1:N (N=0 picks an\n"
               "                    ephemeral port, printed on stdout)\n"
               "  --list-frames     print the wire catalog (requests,\n"
               "                    responses, error codes) and exit\n"
               "\n"
               "options:\n"
               "  --max-inflight=N  requests chasing concurrently "
               "(default 4,\n"
               "                    N in [1, 256])\n"
               "  --max-queue=N     requests waiting beyond that before\n"
               "                    admission rejects (default 64)\n"
               "  --cache-size=N    parsed programs the LRU cache holds\n"
               "                    (default 64, N >= 1)\n"
               "  --threads=N       chase workers for requests that leave\n"
               "                    'threads' unset (default 1 = "
               "sequential,\n"
               "                    0 = one per hardware thread)\n"
               "  --max-line-bytes=N  longest accepted frame line "
               "(default\n"
               "                    1048576, N in [1024, 1073741824])\n",
               argv0);
  return 2;
}

int ListFrames() {
  // One line per catalog entry, aligned like nuchase_lint --list-ids;
  // tests/server_frames_in_docs.cmake greps these names against
  // docs/server.md, so the catalog cannot outgrow its documentation.
  for (const server::FrameSpec& spec : server::FrameCatalog()) {
    std::printf("%-11s %-18s %s\n", spec.kind, spec.name, spec.summary);
  }
  return 0;
}

server::TcpListener* g_listener = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: Stop() only calls shutdown(2) on the listening
  // fd, which wakes the accept loop; the main thread then drains.
  if (g_listener != nullptr) g_listener->Stop();
}

int Main(int argc, char** argv) {
  bool stdio = false;
  bool have_port = false;
  int port = 0;
  server::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    unsigned long long n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg == "--list-frames") {
      return ListFrames();
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!util::ParseCountFlag("--port", arg.c_str() + 7, 0, 65535, &n)) {
        return 2;
      }
      have_port = true;
      port = static_cast<int>(n);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      if (!util::ParseCountFlag("--max-inflight", arg.c_str() + 15, 1, 256,
                                &n)) {
        return 2;
      }
      options.max_inflight = static_cast<unsigned>(n);
    } else if (arg.rfind("--max-queue=", 0) == 0) {
      if (!util::ParseCountFlag("--max-queue", arg.c_str() + 12, 0,
                                1000000, &n)) {
        return 2;
      }
      options.max_queue = static_cast<std::size_t>(n);
    } else if (arg.rfind("--cache-size=", 0) == 0) {
      if (!util::ParseCountFlag("--cache-size", arg.c_str() + 13, 1,
                                1000000, &n)) {
        return 2;
      }
      options.cache_size = static_cast<std::size_t>(n);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!util::ParseCountFlag("--threads", arg.c_str() + 10, 0, 256,
                                &n)) {
        return 2;
      }
      options.default_threads = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--max-line-bytes=", 0) == 0) {
      if (!util::ParseCountFlag("--max-line-bytes", arg.c_str() + 17, 1024,
                                1073741824, &n)) {
        return 2;
      }
      options.max_line_bytes = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (stdio == have_port) {
    std::fprintf(stderr, stdio ? "--stdio and --port are exclusive\n"
                               : "pick a mode: --stdio or --port=N\n");
    return Usage(argv[0]);
  }

  server::Server server(options);
  if (stdio) {
    server.ServeStream(std::cin, std::cout);
    return 0;
  }

  auto listener = server::TcpListener::Bind(port);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  // The one startup line a spawning harness (nuchase_loadgen
  // --spawn-server) parses: flushed before serving so the port is
  // readable the moment the socket accepts.
  std::printf("listening on 127.0.0.1:%d\n", listener->port());
  std::fflush(stdout);

  g_listener = &listener.value();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  listener->Run(&server);
  g_listener = nullptr;
  return 0;
}

}  // namespace
}  // namespace nuchase

int main(int argc, char** argv) { return nuchase::Main(argc, argv); }
