// nuchase_lint — static rule-set analysis without running a chase of D.
//
//   nuchase_lint [options] <file|->
//
// Parses the program, reports every analysis::Diagnostic finding, and
// prints the strongest purely static termination verdict (the class
// decider for SL/L/G, the WA → JA → MFA acyclicity ladder for general
// TGDs). FILE holds a program in the rule language of tgd::ParseProgram;
// "-" reads stdin.
//
// Exit code contract (golden-tested):
//   0  the program parsed and no warning- or error-severity finding
//      (info findings never dirty the exit code)
//   1  findings at warning/error severity, including NU000 (parse
//      failure), or the analysis itself failed
//   2  usage errors: unknown option, malformed flag value, missing file
//
// Output is byte-deterministic for a given input: findings come out in
// catalog-ID then rule order, and --threads only parallelizes the MFA
// rung's critical-instance chase, which is thread-invariant by the
// engine contract.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "nuchase/nuchase.h"
#include "tgd/classify.h"
#include "util/parse.h"

namespace nuchase {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file|->\n"
               "\n"
               "options:\n"
               "  --format=human|json  report format (default human)\n"
               "  --threads=N          workers for the MFA rung's chase\n"
               "                       (output is byte-identical for "
               "every N)\n"
               "  --list-ids           print the diagnostic catalog and "
               "exit\n"
               "\n"
               "exit codes: 0 clean, 1 findings (warning/error) or "
               "parse\n"
               "failure, 2 usage error\n",
               argv0);
  return 2;
}

struct LintOptions {
  std::string file;
  bool json = false;
  bool list_ids = false;
  std::uint32_t num_threads = chase::kNumThreadsDefault;
};

bool ParseArgs(int argc, char** argv, LintOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-ids") {
      out->list_ids = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string v = arg.substr(9);
      if (v == "json") {
        out->json = true;
      } else if (v == "human") {
        out->json = false;
      } else {
        std::fprintf(stderr, "unknown format '%s'\n", v.c_str());
        return false;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      unsigned long long n = 0;
      if (!util::ParseCountFlag("--threads", arg.c_str() + 10, 0, 256,
                                &n)) {
        return false;
      }
      out->num_threads = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      out->file = arg;
    }
  }
  return out->list_ids || !out->file.empty();
}

bool ReadProgramText(const std::string& file, std::string* text) {
  if (file == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *text = ss.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *text = ss.str();
  return true;
}

int ListIds() {
  for (const analysis::DiagnosticSpec& spec :
       analysis::DiagnosticCatalog()) {
    std::printf("%s %s %s\n", spec.id,
                analysis::SeverityName(spec.severity), spec.summary);
  }
  return 0;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void CountBySeverity(const std::vector<analysis::Diagnostic>& diagnostics,
                     std::size_t* errors, std::size_t* warnings,
                     std::size_t* infos) {
  for (const analysis::Diagnostic& d : diagnostics) {
    switch (d.severity) {
      case analysis::Severity::kError: ++*errors; break;
      case analysis::Severity::kWarning: ++*warnings; break;
      case analysis::Severity::kInfo: ++*infos; break;
    }
  }
}

void PrintJson(const std::string& file, const char* tgd_class,
               const std::vector<analysis::Diagnostic>& diagnostics,
               const char* decision, const std::string& method) {
  std::printf("{\n");
  std::printf("  \"file\": \"%s\",\n", JsonEscape(file).c_str());
  if (tgd_class != nullptr) {
    std::printf("  \"class\": \"%s\",\n", tgd_class);
  }
  if (decision != nullptr) {
    std::printf("  \"termination\": {\"decision\": \"%s\", \"method\": "
                "\"%s\"},\n",
                decision, JsonEscape(method).c_str());
  }
  std::printf("  \"diagnostics\": [");
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const analysis::Diagnostic& d = diagnostics[i];
    std::printf("%s\n    {\"id\": \"%s\", \"severity\": \"%s\", "
                "\"rule\": %d, \"predicate\": \"%s\", \"message\": "
                "\"%s\"}",
                i == 0 ? "" : ",", d.id.c_str(),
                analysis::SeverityName(d.severity), d.rule,
                JsonEscape(d.predicate).c_str(),
                JsonEscape(d.message).c_str());
  }
  std::printf("%s],\n", diagnostics.empty() ? "" : "\n  ");
  std::size_t errors = 0, warnings = 0, infos = 0;
  CountBySeverity(diagnostics, &errors, &warnings, &infos);
  std::printf("  \"summary\": {\"errors\": %zu, \"warnings\": %zu, "
              "\"infos\": %zu}\n",
              errors, warnings, infos);
  std::printf("}\n");
}

void PrintHuman(const std::string& file,
                const std::vector<analysis::Diagnostic>& diagnostics,
                const char* tgd_class, const char* decision,
                const std::string& method) {
  for (const analysis::Diagnostic& d : diagnostics) {
    std::printf("%s: %s %s: %s\n", file.c_str(),
                analysis::SeverityName(d.severity), d.id.c_str(),
                d.message.c_str());
  }
  if (tgd_class != nullptr) {
    std::printf("class:       %s\n", tgd_class);
  }
  if (decision != nullptr) {
    if (method.empty()) {
      std::printf("termination: %s (no static procedure certifies; try "
                  "'nuchase decide')\n",
                  decision);
    } else {
      std::printf("termination: %s (via %s)\n", decision, method.c_str());
    }
  }
  std::size_t errors = 0, warnings = 0, infos = 0;
  CountBySeverity(diagnostics, &errors, &warnings, &infos);
  std::printf("summary:     %zu error(s), %zu warning(s), %zu info(s)\n",
              errors, warnings, infos);
}

bool Dirty(const std::vector<analysis::Diagnostic>& diagnostics) {
  for (const analysis::Diagnostic& d : diagnostics) {
    if (d.severity != analysis::Severity::kInfo) return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      Usage(argv[0]);
      return 0;
    }
  }
  LintOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);
  if (options.list_ids) return ListIds();

  std::string text;
  if (!ReadProgramText(options.file, &text)) {
    std::fprintf(stderr, "cannot open '%s'\n", options.file.c_str());
    return 2;
  }

  auto program = api::Program::Parse(text);
  if (!program.ok()) {
    // A parse failure is itself a finding (NU000), so the JSON report
    // stays machine-readable end to end.
    std::vector<analysis::Diagnostic> diagnostics = {analysis::Diagnostic{
        "NU000", analysis::Severity::kError, -1, "",
        program.status().ToString()}};
    if (options.json) {
      PrintJson(options.file, nullptr, diagnostics, nullptr, "");
    } else {
      PrintHuman(options.file, diagnostics, nullptr, nullptr, "");
    }
    return 1;
  }

  api::Session session(
      *program,
      api::SessionOptions().set_num_threads(options.num_threads));
  auto analyzed = session.Analyze();
  if (!analyzed.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 analyzed.status().ToString().c_str());
    return 1;
  }

  const char* tgd_class = tgd::TgdClassName(analyzed->tgd_class);
  const char* decision = termination::DecisionName(analyzed->decision);
  if (options.json) {
    PrintJson(options.file, tgd_class, analyzed->diagnostics, decision,
              analyzed->method);
  } else {
    PrintHuman(options.file, analyzed->diagnostics, tgd_class, decision,
               analyzed->method);
  }
  return Dirty(analyzed->diagnostics) ? 1 : 0;
}

}  // namespace
}  // namespace nuchase

int main(int argc, char** argv) { return nuchase::Main(argc, argv); }
