# Wire-catalog / docs cross-check, run via
#   cmake -DNUCHASE_SERVER=<exe> -DREPO_DIR=<src> -P server_frames_in_docs.cmake
# Every frame and error code the daemon can put on the wire
# (nuchase_server --list-frames, which prints server::FrameCatalog)
# must be documented in docs/server.md as a backticked name. Adding a
# frame or an error code without documenting it fails this test; the
# catalog is append-only, so names never vanish either (mirrors
# lint_ids_in_docs.cmake for the diagnostic catalog).

if(NOT NUCHASE_SERVER OR NOT REPO_DIR)
  message(FATAL_ERROR "NUCHASE_SERVER and REPO_DIR must be set")
endif()

execute_process(
    COMMAND "${NUCHASE_SERVER}" --list-frames
    OUTPUT_VARIABLE listing
    ERROR_VARIABLE stderr
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "nuchase_server --list-frames exited ${rc}:\n${listing}\n${stderr}")
endif()

file(READ "${REPO_DIR}/docs/server.md" docs)

# Catalog lines are "<kind> <name> <summary>"; collect the names.
set(names "")
string(REGEX REPLACE "\n" ";" lines "${listing}")
foreach(line IN LISTS lines)
  if(line MATCHES "^(request|response|error-code) +([a-z-]+) ")
    list(APPEND names "${CMAKE_MATCH_2}")
  endif()
endforeach()
list(REMOVE_DUPLICATES names)
list(LENGTH names num_names)
if(num_names LESS 21)
  message(FATAL_ERROR
      "--list-frames printed only ${num_names} distinct names; the "
      "catalog starts at 21 (4 requests + 6 responses + 13 error codes, "
      "'stats' doubling as request and response) and is append-only:\n"
      "${listing}")
endif()

set(missing "")
foreach(name IN LISTS names)
  string(FIND "${docs}" "`${name}`" pos)
  if(pos EQUAL -1)
    list(APPEND missing "${name}")
  endif()
endforeach()
if(missing)
  message(FATAL_ERROR
      "frame/error-code names emitted by nuchase_server --list-frames "
      "but not documented in docs/server.md: ${missing}\n"
      "Add a section or an error-table row with the backticked name.")
endif()

message(STATUS
    "server_frames_in_docs: all ${num_names} catalog names documented")
