// Differential safety net for the semi-naive trigger engine: the
// delta-seeded engine and the full-scan baseline must produce
// byte-identical instances for every chase variant and both index
// settings, on seeded random workloads and on hand-picked programs that
// stress the restricted variant's order sensitivity. Plus accounting
// tests for the new ChaseStats counters.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "chase/chase.h"
#include "core/symbol_table.h"
#include "core/term.h"
#include "tgd/classify.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

struct DiffParams {
  std::uint32_t seed;
  tgd::TgdClass clazz;
};

std::string ParamName(const ::testing::TestParamInfo<DiffParams>& info) {
  return std::string(tgd::TgdClassName(info.param.clazz)) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<DiffParams> MakeSweep(tgd::TgdClass clazz,
                                  std::uint32_t count) {
  std::vector<DiffParams> out;
  for (std::uint32_t seed = 1; seed <= count; ++seed) {
    out.push_back({seed, clazz});
  }
  return out;
}

constexpr chase::ChaseVariant kVariants[] = {
    chase::ChaseVariant::kSemiOblivious,
    chase::ChaseVariant::kOblivious,
    chase::ChaseVariant::kRestricted,
};

/// Runs one (variant, use_delta, use_position_index) cell on a fresh
/// parse/generation of the same workload, so null naming cannot leak
/// between cells through the symbol table.
struct CellResult {
  chase::ChaseResult result;
  std::string sorted;
};

class DeltaDiffRandomTest : public ::testing::TestWithParam<DiffParams> {
 protected:
  CellResult RunCell(chase::ChaseVariant variant, bool use_delta,
                     bool use_position_index,
                     std::uint32_t num_threads = 1,
                     bool use_reliances = true) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = GetParam().seed;
    options.target = GetParam().clazz;
    options.name_tag = GetParam().seed;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    chase::ChaseOptions copt;
    copt.variant = variant;
    // Small enough that the quadratic full-scan baseline stays fast on
    // diverging workloads; both engines apply the identical canonical
    // firing sequence, so the comparison is exact at any cutoff.
    copt.max_atoms = 4000;
    copt.use_delta = use_delta;
    copt.use_position_index = use_position_index;
    copt.num_threads = num_threads;
    copt.use_reliances = use_reliances;
    CellResult cell;
    cell.result = chase::RunChase(&symbols, w.tgds, w.database, copt);
    cell.sorted = cell.result.instance.ToSortedString(symbols);
    return cell;
  }
};

/// The 2x2 ablation matrix {delta, full-scan} x {indexed, scan} must
/// agree cell-for-cell with the reference cell for every variant:
/// same outcome, same sorted instance, same triggers fired.
TEST_P(DeltaDiffRandomTest, AllAblationCellsAgree) {
  for (chase::ChaseVariant variant : kVariants) {
    CellResult reference = RunCell(variant, /*use_delta=*/true,
                                   /*use_position_index=*/true);
    for (bool use_delta : {true, false}) {
      for (bool use_position_index : {true, false}) {
        CellResult cell = RunCell(variant, use_delta, use_position_index);
        std::string label =
            std::string(chase::ChaseVariantName(variant)) + " delta=" +
            (use_delta ? "on" : "off") + " posindex=" +
            (use_position_index ? "on" : "off");
        EXPECT_EQ(cell.result.outcome, reference.result.outcome) << label;
        EXPECT_EQ(cell.sorted, reference.sorted) << label;
        EXPECT_EQ(cell.result.stats.triggers_fired,
                  reference.result.stats.triggers_fired)
            << label;
        // The storage counters depend only on the materialized atom
        // set, never on the engine that produced it.
        EXPECT_EQ(cell.result.stats.arena_bytes,
                  reference.result.stats.arena_bytes)
            << label;
        EXPECT_EQ(cell.result.stats.peak_atoms,
                  reference.result.stats.peak_atoms)
            << label;
      }
    }
  }
}

/// The parallel trigger engine must be invisible in the output: for
/// every variant, N workers sharding each round's delta produce the
/// byte-identical instance and the identical deterministic counters
/// (triggers, join probes, storage bytes) as the sequential engine.
/// Thread counts cover an even shard, an odd one (uneven chunking), and
/// more workers than most rounds have seeds.
TEST_P(DeltaDiffRandomTest, ParallelThreadsAreByteIdentical) {
  for (chase::ChaseVariant variant : kVariants) {
    CellResult reference = RunCell(variant, /*use_delta=*/true,
                                   /*use_position_index=*/true);
    for (std::uint32_t num_threads : {2u, 3u, 8u}) {
      CellResult cell = RunCell(variant, /*use_delta=*/true,
                                /*use_position_index=*/true, num_threads);
      std::string label = std::string(chase::ChaseVariantName(variant)) +
                          " threads=" + std::to_string(num_threads);
      EXPECT_EQ(cell.result.outcome, reference.result.outcome) << label;
      EXPECT_EQ(cell.sorted, reference.sorted) << label;
      EXPECT_EQ(cell.result.stats.triggers_fired,
                reference.result.stats.triggers_fired)
          << label;
      EXPECT_EQ(cell.result.stats.triggers_satisfied,
                reference.result.stats.triggers_satisfied)
          << label;
      EXPECT_EQ(cell.result.stats.join_probes,
                reference.result.stats.join_probes)
          << label;
      EXPECT_EQ(cell.result.stats.delta_atoms_scanned,
                reference.result.stats.delta_atoms_scanned)
          << label;
      EXPECT_EQ(cell.result.stats.rounds, reference.result.stats.rounds)
          << label;
      EXPECT_EQ(cell.result.stats.arena_bytes,
                reference.result.stats.arena_bytes)
          << label;
      EXPECT_EQ(cell.result.stats.peak_atoms,
                reference.result.stats.peak_atoms)
          << label;
      // Engagement telemetry (outside the identity contract): the
      // sequential reference must never report parallel apply batches,
      // and a multi-threaded run that applied at least one trigger must
      // have taken the parallel apply path — byte-identity alone cannot
      // catch a silent fallback to the serial code.
      EXPECT_EQ(reference.result.stats.parallel_apply_batches, 0u)
          << label;
      EXPECT_EQ(reference.result.stats.parallel_commit_batches, 0u)
          << label;
      if (cell.result.stats.triggers_fired +
              cell.result.stats.triggers_satisfied >
          0) {
        EXPECT_GT(cell.result.stats.parallel_apply_batches, 0u) << label;
      }
      // Per-predicate segment commits ride the batch-insert path, which
      // only the semi-oblivious and oblivious variants take (the
      // restricted variant inserts serially between head re-checks).
      if (variant == chase::ChaseVariant::kRestricted) {
        EXPECT_EQ(cell.result.stats.parallel_commit_batches, 0u) << label;
      } else if (cell.result.stats.triggers_fired > 0) {
        EXPECT_GT(cell.result.stats.parallel_commit_batches, 0u) << label;
      }
    }
  }
}

/// The reliance-driven cross-rule scheduler must be invisible in the
/// output: reliances {on, off} × threads {1, 2, 8} all reproduce the
/// sequential no-reliances reference — byte-identical instance and
/// identical deterministic counters (including join_probes and
/// delta_atoms_scanned, the two a mis-scheduled group collect would
/// skew first) — for every variant. cross_rule_parallel_rounds is
/// engagement telemetry: it must stay 0 whenever the scheduler is off
/// or the run is sequential.
TEST_P(DeltaDiffRandomTest, RelianceSchedulingIsParallelInvariant) {
  for (chase::ChaseVariant variant : kVariants) {
    CellResult reference =
        RunCell(variant, /*use_delta=*/true, /*use_position_index=*/true,
                /*num_threads=*/1, /*use_reliances=*/false);
    for (bool use_reliances : {true, false}) {
      for (std::uint32_t num_threads : {1u, 2u, 8u}) {
        CellResult cell =
            RunCell(variant, /*use_delta=*/true,
                    /*use_position_index=*/true, num_threads,
                    use_reliances);
        std::string label =
            std::string(chase::ChaseVariantName(variant)) +
            " reliances=" + (use_reliances ? "on" : "off") +
            " threads=" + std::to_string(num_threads);
        EXPECT_EQ(cell.result.outcome, reference.result.outcome) << label;
        EXPECT_EQ(cell.sorted, reference.sorted) << label;
        EXPECT_EQ(cell.result.stats.triggers_fired,
                  reference.result.stats.triggers_fired)
            << label;
        EXPECT_EQ(cell.result.stats.triggers_satisfied,
                  reference.result.stats.triggers_satisfied)
            << label;
        EXPECT_EQ(cell.result.stats.join_probes,
                  reference.result.stats.join_probes)
            << label;
        EXPECT_EQ(cell.result.stats.delta_atoms_scanned,
                  reference.result.stats.delta_atoms_scanned)
            << label;
        EXPECT_EQ(cell.result.stats.rounds, reference.result.stats.rounds)
            << label;
        EXPECT_EQ(cell.result.stats.arena_bytes,
                  reference.result.stats.arena_bytes)
            << label;
        EXPECT_EQ(cell.result.stats.peak_atoms,
                  reference.result.stats.peak_atoms)
            << label;
        // reliance_groups is Σ metadata (never workload-dependent);
        // cross-rule rounds require the scheduler AND a worker pool.
        if (!use_reliances) {
          EXPECT_EQ(cell.result.stats.reliance_groups, 0u) << label;
        } else {
          EXPECT_GT(cell.result.stats.reliance_groups, 0u) << label;
        }
        if (!use_reliances || num_threads == 1) {
          EXPECT_EQ(cell.result.stats.cross_rule_parallel_rounds, 0u)
              << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SimpleLinear, DeltaDiffRandomTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kSimpleLinear, 10)),
    ParamName);
INSTANTIATE_TEST_SUITE_P(
    Linear, DeltaDiffRandomTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kLinear, 10)),
    ParamName);
INSTANTIATE_TEST_SUITE_P(
    Guarded, DeltaDiffRandomTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kGuarded, 10)),
    ParamName);

chase::ChaseResult RunProgram(const char* text,
                              chase::ChaseVariant variant, bool use_delta,
                              std::string* sorted) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  chase::ChaseOptions copt;
  copt.variant = variant;
  copt.max_atoms = 2000;
  copt.use_delta = use_delta;
  chase::ChaseResult r =
      chase::RunChase(&symbols, p->tgds, p->database, copt);
  *sorted = r.instance.ToSortedString(symbols);
  return r;
}

/// The restricted chase is order-sensitive: a sibling rule can satisfy
/// another rule's head before it fires. Both engines must pick the same
/// canonical firing order.
TEST(DeltaDiffDirectedTest, RestrictedOrderSensitiveProgramsAgree) {
  const char* programs[] = {
      // The witness race from the paper's hierarchy examples.
      "R(a, b). R(x, y) -> R(y, y). R(x, y) -> R(y, z).",
      // Witnesses partially present in D.
      "Emp(e1, d1). Emp(e2, d1). Mgr(d1, m1).\n"
      "Emp(e, d) -> Mgr(d, m). Mgr(d, m) -> Emp(m, d).",
      // Multi-atom bodies joining old and new atoms.
      "G(a, b). H(b).\n"
      "G(x, y), H(y) -> K(x, y, z).\n"
      "K(x, y, z) -> H(z), L(z, x).",
  };
  for (const char* text : programs) {
    for (chase::ChaseVariant variant : kVariants) {
      std::string on, off;
      chase::ChaseResult r_on = RunProgram(text, variant, true, &on);
      chase::ChaseResult r_off = RunProgram(text, variant, false, &off);
      EXPECT_EQ(r_on.outcome, r_off.outcome) << text;
      EXPECT_EQ(on, off) << text;
      EXPECT_EQ(r_on.stats.triggers_fired, r_off.stats.triggers_fired)
          << text;
      EXPECT_EQ(r_on.stats.triggers_satisfied,
                r_off.stats.triggers_satisfied)
          << text;
    }
  }
}

/// Cross-worker duplicate collapse: on the wide depth family every
/// trigger is discoverable through `noise` homomorphisms whose seeds
/// may land in different workers' shards; the canonical merge must
/// collapse them exactly as the sequential `fired` set does, for all
/// three variants (the oblivious one diverges on this family, so the
/// atom budget cuts it — the canonical firing sequence makes the
/// comparison exact at any cutoff).
TEST(DeltaDiffDirectedTest, WideDepthFamilyParallelAgrees) {
  for (chase::ChaseVariant variant : kVariants) {
    CellResult cells[2];
    const std::uint32_t threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      core::SymbolTable symbols;
      workload::Workload w = workload::MakeWideDepthFamily(
          &symbols, /*layers=*/6, /*width=*/4, /*payloads=*/3,
          /*noise=*/5);
      chase::ChaseOptions copt;
      copt.variant = variant;
      copt.max_atoms = 3000;
      copt.num_threads = threads[i];
      cells[i].result = chase::RunChase(&symbols, w.tgds, w.database,
                                        copt);
      cells[i].sorted = cells[i].result.instance.ToSortedString(symbols);
    }
    std::string label = chase::ChaseVariantName(variant);
    EXPECT_EQ(cells[0].result.outcome, cells[1].result.outcome) << label;
    EXPECT_EQ(cells[0].sorted, cells[1].sorted) << label;
    EXPECT_EQ(cells[0].result.stats.triggers_fired,
              cells[1].result.stats.triggers_fired)
        << label;
    EXPECT_EQ(cells[0].result.stats.join_probes,
              cells[1].result.stats.join_probes)
        << label;
  }
}

/// The apply phase parallelizes even for run shapes the collect phase
/// refuses (here: the full-scan baseline, use_delta = false). Such runs
/// must report zero parallel_rounds but a nonzero parallel apply count,
/// and stay byte-identical to the sequential engine — the apply stages
/// are the only pooled work they do.
TEST(DeltaDiffDirectedTest, ApplyOnlyParallelIsByteIdentical) {
  for (chase::ChaseVariant variant : kVariants) {
    CellResult reference;
    {
      core::SymbolTable symbols;
      workload::Workload w = workload::MakeWideDepthFamily(
          &symbols, /*layers=*/6, /*width=*/4, /*payloads=*/3,
          /*noise=*/5);
      chase::ChaseOptions copt;
      copt.variant = variant;
      copt.max_atoms = 3000;
      copt.use_delta = false;
      copt.num_threads = 1;
      reference.result = chase::RunChase(&symbols, w.tgds, w.database,
                                         copt);
      reference.sorted = reference.result.instance.ToSortedString(symbols);
    }
    ASSERT_GT(reference.result.stats.triggers_fired, 0u);
    for (std::uint32_t num_threads : {2u, 3u, 8u}) {
      core::SymbolTable symbols;
      workload::Workload w = workload::MakeWideDepthFamily(
          &symbols, /*layers=*/6, /*width=*/4, /*payloads=*/3,
          /*noise=*/5);
      chase::ChaseOptions copt;
      copt.variant = variant;
      copt.max_atoms = 3000;
      copt.use_delta = false;
      copt.num_threads = num_threads;
      chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, w.database,
                                             copt);
      std::string label = std::string(chase::ChaseVariantName(variant)) +
                          " threads=" + std::to_string(num_threads);
      EXPECT_EQ(r.outcome, reference.result.outcome) << label;
      EXPECT_EQ(r.instance.ToSortedString(symbols), reference.sorted)
          << label;
      EXPECT_EQ(r.stats.triggers_fired,
                reference.result.stats.triggers_fired)
          << label;
      EXPECT_EQ(r.stats.triggers_satisfied,
                reference.result.stats.triggers_satisfied)
          << label;
      EXPECT_EQ(r.stats.join_probes, reference.result.stats.join_probes)
          << label;
      EXPECT_EQ(r.stats.arena_bytes, reference.result.stats.arena_bytes)
          << label;
      // Collect stays sequential without the delta engine; only the
      // apply stages ran on the pool.
      EXPECT_EQ(r.stats.parallel_rounds, 0u) << label;
      EXPECT_GT(r.stats.parallel_apply_batches, 0u) << label;
      // Same split for the per-predicate segment commits: pooled for
      // the batch-inserting variants, structurally absent (not merely
      // unpooled) for the restricted one.
      if (variant == chase::ChaseVariant::kRestricted) {
        EXPECT_EQ(r.stats.parallel_commit_batches, 0u) << label;
      } else {
        EXPECT_GT(r.stats.parallel_commit_batches, 0u) << label;
      }
    }
    EXPECT_EQ(reference.result.stats.parallel_rounds, 0u);
    EXPECT_EQ(reference.result.stats.parallel_apply_batches, 0u);
    EXPECT_EQ(reference.result.stats.parallel_commit_batches, 0u);
  }
}

/// Extent geometry (and with it the per-predicate segment partition's
/// internal layout) must be observationally invisible: any legal
/// extent_log2, at any thread count, reproduces the default geometry's
/// instance bytes AND its arena_bytes — the counter that would drift
/// first if a partially-filled extent's tail padding ever leaked into
/// the accounting (per-predicate segments multiply such tails: every
/// predicate now has its own). Pins the arena_bytes bugfix
/// engine/thread/geometry-invariant.
TEST(DeltaDiffDirectedTest, ArenaBytesAreExtentGeometryInvariant) {
  for (chase::ChaseVariant variant : kVariants) {
    chase::ChaseResult reference;
    std::string reference_sorted;
    bool have_reference = false;
    for (std::uint32_t extent_log2 : {0u, 2u, 3u, 7u}) {
      for (std::uint32_t num_threads : {1u, 4u}) {
        core::SymbolTable symbols;
        workload::Workload w = workload::MakeWideDepthFamily(
            &symbols, /*layers=*/6, /*width=*/4, /*payloads=*/3,
            /*noise=*/5);
        chase::ChaseOptions copt;
        copt.variant = variant;
        copt.max_atoms = 3000;
        copt.num_threads = num_threads;
        copt.extent_log2 = extent_log2;
        chase::ChaseResult r = chase::RunChase(&symbols, w.tgds,
                                               w.database, copt);
        std::string label =
            std::string(chase::ChaseVariantName(variant)) +
            " extent_log2=" + std::to_string(extent_log2) +
            " threads=" + std::to_string(num_threads);
        std::string sorted = r.instance.ToSortedString(symbols);
        if (!have_reference) {
          ASSERT_GT(r.stats.arena_bytes, 0u) << label;
          reference = std::move(r);
          reference_sorted = std::move(sorted);
          have_reference = true;
          continue;
        }
        EXPECT_EQ(r.outcome, reference.outcome) << label;
        EXPECT_EQ(sorted, reference_sorted) << label;
        EXPECT_EQ(r.stats.arena_bytes, reference.stats.arena_bytes)
            << label;
        EXPECT_EQ(r.stats.peak_atoms, reference.stats.peak_atoms)
            << label;
        EXPECT_EQ(r.stats.triggers_fired, reference.stats.triggers_fired)
            << label;
        EXPECT_EQ(r.stats.join_probes, reference.stats.join_probes)
            << label;
      }
    }
  }
}

/// Independent recursive rule families (disjoint predicates, so the
/// whole Σ is one collect group) are the shape the cross-rule scheduler
/// exists for: a multi-threaded run must take the group-collect path in
/// every multi-seed round (cross_rule_parallel_rounds engagement — byte
/// identity alone cannot catch a silent fallback to rule-at-a-time),
/// while staying byte- and counter-identical to the sequential and the
/// reliances-off runs.
TEST(DeltaDiffDirectedTest, IndependentFamiliesEngageCrossRuleCollect) {
  const char* text =
      "A(a1, a2). A(a2, a3). A(a3, a4). A(a4, a5). MA(a1).\n"
      "B(b1, b2). B(b2, b3). B(b3, b4). B(b4, b5). MB(b1).\n"
      "C(c1, c2). C(c2, c3). C(c3, c4). C(c4, c5). MC(c1).\n"
      "A(x, y), MA(x) -> MA(y).\n"
      "B(x, y), MB(x) -> MB(y).\n"
      "C(x, y), MC(x) -> MC(y).";
  for (chase::ChaseVariant variant : kVariants) {
    chase::ChaseResult reference;
    std::string reference_sorted;
    struct Cell {
      std::uint32_t num_threads;
      bool use_reliances;
    };
    const Cell cells[] = {
        {1, false}, {1, true}, {2, true}, {8, true}, {4, false}};
    for (const Cell& c : cells) {
      core::SymbolTable symbols;
      auto p = tgd::ParseProgram(&symbols, text);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      chase::ChaseOptions copt;
      copt.variant = variant;
      copt.num_threads = c.num_threads;
      copt.use_reliances = c.use_reliances;
      chase::ChaseResult r =
          chase::RunChase(&symbols, p->tgds, p->database, copt);
      std::string label = std::string(chase::ChaseVariantName(variant)) +
                          " threads=" + std::to_string(c.num_threads) +
                          " reliances=" + (c.use_reliances ? "on" : "off");
      EXPECT_EQ(r.outcome, chase::ChaseOutcome::kTerminated) << label;
      std::string sorted = r.instance.ToSortedString(symbols);
      if (c.num_threads == 1 && !c.use_reliances) {
        reference = std::move(r);
        reference_sorted = std::move(sorted);
        continue;
      }
      EXPECT_EQ(sorted, reference_sorted) << label;
      EXPECT_EQ(r.stats.triggers_fired, reference.stats.triggers_fired)
          << label;
      EXPECT_EQ(r.stats.triggers_satisfied,
                reference.stats.triggers_satisfied)
          << label;
      EXPECT_EQ(r.stats.join_probes, reference.stats.join_probes)
          << label;
      EXPECT_EQ(r.stats.delta_atoms_scanned,
                reference.stats.delta_atoms_scanned)
          << label;
      EXPECT_EQ(r.stats.rounds, reference.stats.rounds) << label;
      EXPECT_EQ(r.stats.arena_bytes, reference.stats.arena_bytes)
          << label;
      if (c.use_reliances) {
        // Disjoint families: one group spanning all three rules.
        EXPECT_EQ(r.stats.reliance_groups, 1u) << label;
        if (c.num_threads > 1) {
          EXPECT_GT(r.stats.cross_rule_parallel_rounds, 0u) << label;
        } else {
          EXPECT_EQ(r.stats.cross_rule_parallel_rounds, 0u) << label;
        }
      } else {
        EXPECT_EQ(r.stats.reliance_groups, 0u) << label;
        EXPECT_EQ(r.stats.cross_rule_parallel_rounds, 0u) << label;
      }
    }
  }
}

/// Null-id exhaustion must surface as a clean kResourceExhausted through
/// the staged apply path at every thread count: same outcome, same
/// deterministic counters, and the same (untorn) instance prefix as the
/// sequential engine, with earlier triggers of the failing batch
/// committed and nothing after the failure point. The overlay's
/// assumed-base-nulls budget trips the 2^30 Term-index cap after three
/// allocations instead of a billion.
TEST(DeltaDiffDirectedTest, ResourceExhaustionIsThreadCountInvariant) {
  // Six facts, one single-round rule allocating one null per firing: the
  // fourth binding in the batch exhausts a budget of three.
  const char* text =
      "R(a1, b1). R(a2, b2). R(a3, b3). R(a4, b4). R(a5, b5). "
      "R(a6, b6).\n"
      "R(x, y) -> S(y, z).";
  constexpr std::uint32_t kNullBudget = 3;
  for (chase::ChaseVariant variant : kVariants) {
    chase::ChaseResult reference;
    std::string reference_sorted;
    for (std::uint32_t num_threads : {1u, 2u, 8u}) {
      core::SymbolTable symbols;
      auto p = tgd::ParseProgram(&symbols, text);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      core::SymbolOverlay overlay(
          symbols, core::Term::kIndexMask + 1 - kNullBudget);
      chase::ChaseOptions copt;
      copt.variant = variant;
      copt.num_threads = num_threads;
      chase::ChaseResult r =
          chase::RunChase(&overlay, p->tgds, p->database, copt);
      std::string label = std::string(chase::ChaseVariantName(variant)) +
                          " threads=" + std::to_string(num_threads);
      EXPECT_EQ(r.outcome, chase::ChaseOutcome::kResourceExhausted)
          << label;
      // Exactly the three in-budget nulls were interned and committed:
      // the instance holds the six facts plus one S atom per successful
      // binding, whatever the thread count.
      EXPECT_EQ(overlay.num_nulls() -
                    (core::Term::kIndexMask + 1 - kNullBudget),
                kNullBudget)
          << label;
      EXPECT_EQ(r.instance.size(), 6u + kNullBudget) << label;
      std::string sorted = r.instance.ToSortedString(overlay);
      if (num_threads == 1) {
        reference = std::move(r);
        reference_sorted = std::move(sorted);
        continue;
      }
      EXPECT_EQ(sorted, reference_sorted) << label;
      EXPECT_EQ(r.stats.triggers_fired, reference.stats.triggers_fired)
          << label;
      EXPECT_EQ(r.stats.triggers_satisfied,
                reference.stats.triggers_satisfied)
          << label;
      EXPECT_EQ(r.stats.arena_bytes, reference.stats.arena_bytes)
          << label;
      EXPECT_EQ(r.stats.peak_atoms, reference.stats.peak_atoms) << label;
    }
  }
}

/// triggers_satisfied counts restricted-only skips: the other variants
/// never check head satisfaction.
TEST(ChaseStatsTest, TriggersSatisfiedIsRestrictedOnly) {
  // The database already holds every witness, so the restricted chase
  // skips while the others fire.
  const char* text =
      "Emp(e1, d1). Mgr(d1, m1).\n"
      "Emp(e, d) -> Mgr(d, m).";
  for (chase::ChaseVariant variant : kVariants) {
    std::string sorted;
    chase::ChaseResult r = RunProgram(text, variant, true, &sorted);
    if (variant == chase::ChaseVariant::kRestricted) {
      EXPECT_GT(r.stats.triggers_satisfied, 0u);
      EXPECT_EQ(r.stats.triggers_fired, 0u);
    } else {
      EXPECT_EQ(r.stats.triggers_satisfied, 0u);
      EXPECT_GT(r.stats.triggers_fired, 0u);
    }
  }
}

/// delta_atoms_scanned is a semi-naive-engine counter: it must stay 0
/// on the full-scan path, while join_probes counts in both engines (the
/// quantity the ablation bench compares) and drops with delta on.
TEST(ChaseStatsTest, DeltaCountersZeroWhenDeltaDisabled) {
  const char* text =
      "E(v0, v1). E(v1, v2). E(v2, v3). E(v3, v4).\n"
      "E(x, y) -> T(x, y).\n"
      "E(x, y), T(y, z) -> T(x, z).";
  std::string sorted;
  chase::ChaseResult off = RunProgram(
      text, chase::ChaseVariant::kSemiOblivious, false, &sorted);
  EXPECT_EQ(off.stats.delta_atoms_scanned, 0u);
  EXPECT_GT(off.stats.join_probes, 0u);

  chase::ChaseResult on = RunProgram(
      text, chase::ChaseVariant::kSemiOblivious, true, &sorted);
  EXPECT_GT(on.stats.delta_atoms_scanned, 0u);
  EXPECT_GT(on.stats.join_probes, 0u);
  EXPECT_LE(on.stats.join_probes, off.stats.join_probes);
}

}  // namespace
}  // namespace nuchase
