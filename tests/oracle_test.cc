#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chase/chase.h"
#include "saturation/canonical.h"
#include "saturation/type_oracle.h"
#include "tgd/parser.h"

namespace nuchase {
namespace saturation {
namespace {

/// Ground truth for complete(D, Σ) on terminating pairs: the atoms of
/// chase(D, Σ) whose terms all come from dom(D).
std::set<core::Atom> CompleteViaChase(core::SymbolTable* symbols,
                                      const tgd::TgdSet& tgds,
                                      const core::Database& db) {
  chase::ChaseResult result = chase::RunChase(symbols, tgds, db);
  EXPECT_TRUE(result.Terminated());
  auto dom = db.ActiveDomain();
  std::set<core::Atom> out;
  for (core::AtomIndex i = 0; i < result.instance.size(); ++i) {
    core::AtomView atom = result.instance.atom(i);
    core::TermSpan terms = atom.terms();
    bool inside = std::all_of(
        terms.begin(), terms.end(),
        [&](core::Term t) { return dom.count(t) > 0; });
    if (inside) out.insert(atom.ToAtom());
  }
  return out;
}

std::set<core::Atom> CompleteViaOracle(core::SymbolTable* symbols,
                                       const tgd::TgdSet& tgds,
                                       const core::Database& db) {
  auto oracle = TypeOracle::Create(*symbols, tgds, TypeOracle::Options{});
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto completed = oracle->Complete(db.facts());
  EXPECT_TRUE(completed.ok()) << completed.status().ToString();
  return {completed->begin(), completed->end()};
}

TEST(CanonicalTest, RenamesAscending) {
  CAtomSet atoms;
  atoms.insert(CAtom(0, {7, 3}));
  atoms.insert(CAtom(1, {3}));
  Canonicalized canon = Canonicalize(atoms);
  EXPECT_EQ(canon.key.num_terms, 2u);
  ASSERT_EQ(canon.new_to_old.size(), 2u);
  EXPECT_EQ(canon.new_to_old[0], 3u);
  EXPECT_EQ(canon.new_to_old[1], 7u);
  // R(7,3) becomes R(2,1); S(3) becomes S(1).
  EXPECT_EQ(canon.key.atoms[0], CAtom(0, {2, 1}));
  EXPECT_EQ(canon.key.atoms[1], CAtom(1, {1}));
}

TEST(CanonicalTest, IsomorphicInputsShareKeys) {
  CAtomSet a, b;
  a.insert(CAtom(0, {5, 9}));
  b.insert(CAtom(0, {1, 4}));
  EXPECT_EQ(Canonicalize(a).key, Canonicalize(b).key);
  CKeyHash h;
  EXPECT_EQ(h(Canonicalize(a).key), h(Canonicalize(b).key));
}

TEST(CanonicalTest, DeduplicatesAtoms) {
  CAtomSet atoms;
  atoms.insert(CAtom(0, {2, 2}));
  atoms.insert(CAtom(0, {9, 9}));  // isomorphic but distinct ints: kept
  Canonicalized canon = Canonicalize(atoms);
  EXPECT_EQ(canon.key.atoms.size(), 2u);
}

TEST(TypeOracleTest, RequiresGuardedness) {
  core::SymbolTable symbols;
  auto tgds =
      tgd::ParseTgdSet(&symbols, "R(x, y), S(y, z) -> T(x, z).");
  ASSERT_TRUE(tgds.ok());
  auto oracle = TypeOracle::Create(symbols, *tgds, TypeOracle::Options{});
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.status().code(), util::StatusCode::kFailedPrecondition);
}

struct OracleCase {
  const char* name;
  const char* program;
};

class OracleAgreementTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleAgreementTest, MatchesChaseOnTerminatingPairs) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols, GetParam().program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto via_chase =
      CompleteViaChase(&symbols, program->tgds, program->database);
  auto via_oracle =
      CompleteViaOracle(&symbols, program->tgds, program->database);
  EXPECT_EQ(via_chase, via_oracle) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OracleAgreementTest,
    ::testing::Values(
        OracleCase{"datalog_only",
                   "E(a, b). E(b, c). E(x, y) -> P(x, y). "
                   "P(x, y) -> Q(y)."},
        OracleCase{"one_hop_comeback",
                   "R(a, b). R(x, y) -> S(y, z). S(y, z) -> B(y)."},
        OracleCase{"two_hop_comeback",
                   "R(a). R(x) -> E(x, z). E(x, z) -> F(z, w). "
                   "F(z, w) -> Mark(z). E(x, z), Mark(z) -> Done(x)."},
        OracleCase{"side_atom_join",
                   "G(a, b). H(b). G(x, y), H(y) -> K(x, y, z). "
                   "K(x, y, z) -> L(x, y)."},
        OracleCase{"multi_head",
                   "P(a). P(x) -> S(x, z), T(z, x). T(z, x) -> U(x)."},
        OracleCase{"zero_ary",
                   "Start(s). Start(x) -> Path(x, z). Path(x, z) -> "
                   "Goal()."}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return info.param.name;
    });

TEST(TypeOracleTest, TerminatesOnInfiniteChase) {
  // D = {R(a,b)}, Σ = {R(x,y) → ∃z R(y,z)}: chase(D,Σ) is infinite, yet
  // complete(D,Σ) = D; the memoized fixpoint must cut the self-similar
  // recursion of child worlds.
  core::SymbolTable symbols;
  auto program =
      tgd::ParseProgram(&symbols, "R(a, b). R(x, y) -> R(y, z).");
  ASSERT_TRUE(program.ok());
  auto oracle =
      TypeOracle::Create(symbols, program->tgds, TypeOracle::Options{});
  ASSERT_TRUE(oracle.ok());
  auto completed = oracle->Complete(program->database.facts());
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  EXPECT_EQ(completed->size(), 1u);
  EXPECT_LE(oracle->memo_size(), 8u);
}

TEST(TypeOracleTest, InfiniteChaseWithComebacks) {
  // Infinite guarded chase where facts over dom(D) keep flowing back from
  // arbitrarily deep subtrees.
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols,
                                   "R(a, b).\n"
                                   "R(x, y) -> R(y, z).\n"
                                   "R(x, y) -> Seen(x).\n");
  ASSERT_TRUE(program.ok());
  auto oracle =
      TypeOracle::Create(symbols, program->tgds, TypeOracle::Options{});
  ASSERT_TRUE(oracle.ok());
  auto completed = oracle->Complete(program->database.facts());
  ASSERT_TRUE(completed.ok());
  // Over {a,b}: R(a,b), Seen(a), Seen(b).
  EXPECT_EQ(completed->size(), 3u);
}

TEST(TypeOracleTest, SelfSimilarWorldsShareOneMemoEntry) {
  // Both rules spawn child worlds isomorphic to {R(1,2)} — the memo must
  // collapse them all onto the root world's entry.
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(
      &symbols, "R(a, b). R(x, y) -> R(y, z). R(x, y) -> R(x, w).");
  ASSERT_TRUE(program.ok());
  auto oracle =
      TypeOracle::Create(symbols, program->tgds, TypeOracle::Options{});
  ASSERT_TRUE(oracle.ok());
  auto completed = oracle->Complete(program->database.facts());
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(oracle->memo_size(), 1u);
}

TEST(TypeOracleTest, BudgetIsEnforced) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(
      &symbols, "R(a, b). R(x, y) -> S(y, z). S(x, y) -> R(y, w).");
  ASSERT_TRUE(program.ok());
  TypeOracle::Options options;
  options.max_worlds = 1;
  auto oracle = TypeOracle::Create(symbols, program->tgds, options);
  ASSERT_TRUE(oracle.ok());
  auto completed = oracle->Complete(program->database.facts());
  ASSERT_FALSE(completed.ok());
  EXPECT_EQ(completed.status().code(),
            util::StatusCode::kResourceExhausted);
}

TEST(TypeOracleTest, RejectsVariablesInInput) {
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols, "R(x) -> S(x).");
  ASSERT_TRUE(tgds.ok());
  auto oracle = TypeOracle::Create(symbols, *tgds, TypeOracle::Options{});
  ASSERT_TRUE(oracle.ok());
  auto r = symbols.FindPredicate("R");
  ASSERT_TRUE(r.ok());
  core::Term x = symbols.InternVariable("x");
  auto bad = oracle->Complete({core::Atom(*r, {x})});
  EXPECT_FALSE(bad.ok());
}

TEST(TypeOracleTest, PropositionalEntailment) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols,
                                   "Start(s).\n"
                                   "Start(x) -> Path(x, z).\n"
                                   "Path(x, z) -> Goal().\n"
                                   "Unrelated(x) -> Never().\n");
  ASSERT_TRUE(program.ok());
  auto oracle =
      TypeOracle::Create(symbols, program->tgds, TypeOracle::Options{});
  ASSERT_TRUE(oracle.ok());
  auto goal = symbols.FindPredicate("Goal");
  auto never = symbols.FindPredicate("Never");
  ASSERT_TRUE(goal.ok());
  ASSERT_TRUE(never.ok());
  auto yes = oracle->EntailsPropositional(program->database, *goal);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = oracle->EntailsPropositional(program->database, *never);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

}  // namespace
}  // namespace saturation
}  // namespace nuchase
