#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chase/chase.h"
#include "chase/null_store.h"
#include "chase/trigger.h"
#include "query/evaluator.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"

namespace nuchase {
namespace chase {
namespace {

class ChaseTest : public ::testing::Test {
 protected:
  tgd::Program Parse(const std::string& text) {
    auto program = tgd::ParseProgram(&symbols_, text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return *program;
  }
  core::SymbolTable symbols_;
};

TEST_F(ChaseTest, TerminatingChaseIsAModel) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(b, c).\n"
      "R(x, y) -> P(x, y).\n"
      "P(x, y) -> Q(y).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  // D + 2 P-atoms + 2 Q-atoms.
  EXPECT_EQ(result.instance.size(), 6u);
  EXPECT_TRUE(query::Satisfies(result.instance, p.tgds));
  EXPECT_EQ(result.stats.max_depth, 0u);
}

TEST_F(ChaseTest, ExistentialsInventNulls) {
  tgd::Program p = Parse(
      "Person(alice).\n"
      "Person(x) -> HasParent(x, y), Person2(y).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.size(), 3u);
  EXPECT_EQ(result.stats.max_depth, 1u);
  EXPECT_EQ(symbols_.num_nulls(), 1u);
}

TEST_F(ChaseTest, SemiObliviousNullReuseAcrossHeadAtoms) {
  // Both head atoms must see the same null for y (Definition 3.1: the
  // null name depends only on (σ, h|fr, z)).
  tgd::Program p = Parse(
      "R(a).\n"
      "R(x) -> S(x, y), T(y, x).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  core::Term null;
  for (core::AtomIndex i = 0; i < result.instance.size(); ++i) {
    core::AtomView atom = result.instance.atom(i);
    if (symbols_.predicate_name(atom.predicate()) == "S") {
      null = atom.arg(1);
    }
  }
  auto t = symbols_.FindPredicate("T");
  ASSERT_TRUE(t.ok());
  core::Term a = *symbols_.InternConstant("a");
  EXPECT_TRUE(result.instance.Contains(core::Atom(*t, {null, a})));
}

TEST_F(ChaseTest, SemiObliviousFiresPerFrontierRestriction) {
  // σ = R(x,y) → ∃z S(y,z): the frontier is {y}, so R(a,b) and R(c,b)
  // yield the SAME trigger restriction and a single null.
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(c, b).\n"
      "R(x, y) -> S(y, z).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.size(), 3u);  // two facts + one S atom
  EXPECT_EQ(symbols_.num_nulls(), 1u);
}

TEST_F(ChaseTest, InfiniteChaseHitsAtomBudget) {
  workload::Workload w = workload::MakeInfinitePath(&symbols_);
  ChaseOptions options;
  options.max_atoms = 50;
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kAtomLimit);
  EXPECT_GT(result.instance.size(), 50u - 2);
}

TEST_F(ChaseTest, InfiniteChaseHitsDepthBudget) {
  workload::Workload w = workload::MakeInfinitePath(&symbols_);
  ChaseOptions options;
  options.max_depth = 7;
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kDepthLimit);
  EXPECT_EQ(result.stats.max_depth, 8u);  // the offending null
}

TEST_F(ChaseTest, RoundBudget) {
  workload::Workload w = workload::MakeInfinitePath(&symbols_);
  ChaseOptions options;
  options.max_rounds = 3;
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kRoundLimit);
  EXPECT_EQ(result.stats.rounds, 3u);
}

TEST(ChaseNamesTest, VariantNamesCoverAllVariants) {
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kSemiOblivious),
               "semi-oblivious");
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kOblivious), "oblivious");
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kRestricted), "restricted");
}

TEST(ChaseNamesTest, OutcomeNamesCoverAllOutcomes) {
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kTerminated), "terminated");
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kAtomLimit), "atom-limit");
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kDepthLimit), "depth-limit");
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kRoundLimit), "round-limit");
}

TEST_F(ChaseTest, AtomLimitOnInlineProgramReportsItsOutcome) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(x, y) -> R(y, z).\n");
  ChaseOptions options;
  options.max_atoms = 10;
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kAtomLimit);
  EXPECT_STREQ(ChaseOutcomeName(result.outcome), "atom-limit");
  EXPECT_FALSE(result.Terminated());
  // The budget stops the run promptly: at most one round past the limit.
  EXPECT_LE(result.instance.size(), 10u + 2);
}

TEST_F(ChaseTest, DepthLimitOnInlineProgramReportsItsOutcome) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(x, y) -> R(y, z).\n");
  ChaseOptions options;
  options.max_depth = 3;
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kDepthLimit);
  EXPECT_STREQ(ChaseOutcomeName(result.outcome), "depth-limit");
  EXPECT_EQ(result.stats.max_depth, 4u);  // the first over-deep null
}

TEST_F(ChaseTest, RoundLimitOnInlineProgramReportsItsOutcome) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(x, y) -> R(y, z).\n");
  ChaseOptions options;
  options.max_rounds = 2;
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kRoundLimit);
  EXPECT_STREQ(ChaseOutcomeName(result.outcome), "round-limit");
  EXPECT_EQ(result.stats.rounds, 2u);
}

TEST_F(ChaseTest, TerminatingChaseIgnoresGenerousLimits) {
  // All three budgets set but never reached: the outcome must still be
  // kTerminated, not any limit.
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(x, y) -> P(x, y).\n");
  ChaseOptions options;
  options.max_atoms = 1000;
  options.max_depth = 50;
  options.max_rounds = 50;
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kTerminated);
  EXPECT_STREQ(ChaseOutcomeName(result.outcome), "terminated");
  EXPECT_TRUE(result.Terminated());
}

TEST_F(ChaseTest, LimitsApplyToEveryVariant) {
  for (ChaseVariant variant :
       {ChaseVariant::kSemiOblivious, ChaseVariant::kOblivious,
        ChaseVariant::kRestricted}) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols,
                               "R(a, b).\n"
                               "R(x, y) -> R(y, z).\n");
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    ChaseOptions options;
    options.variant = variant;
    options.max_atoms = 25;
    ChaseResult result = RunChase(&symbols, p->tgds, p->database, options);
    EXPECT_EQ(result.outcome, ChaseOutcome::kAtomLimit)
        << ChaseVariantName(variant);
  }
}

TEST_F(ChaseTest, FairnessAllTgdsEventuallyFire) {
  // Section 3: a fair derivation must satisfy σ' = R(x,y) → P(x,y) along
  // the way; our breadth-first engine is fair by construction.
  workload::Workload w = workload::MakeFairnessExample(&symbols_);
  ChaseOptions options;
  options.max_atoms = 60;
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database, options);
  EXPECT_EQ(result.outcome, ChaseOutcome::kAtomLimit);
  auto pf = symbols_.FindPredicate("Pf");
  ASSERT_TRUE(pf.ok());
  // Many Pf atoms must exist, not just Rf atoms.
  EXPECT_GT(result.instance.AtomsWithPredicate(*pf).size(), 10u);
}

TEST_F(ChaseTest, JoinAcrossBodyAtoms) {
  tgd::Program p = Parse(
      "E(a, b).\n"
      "E(b, c).\n"
      "E(c, d).\n"
      "E(x, y), E(y, z) -> E2(x, z).\n"
      "E2(x, y), E(y, z) -> E3(x, z).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  auto e2 = symbols_.FindPredicate("E2");
  auto e3 = symbols_.FindPredicate("E3");
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(result.instance.AtomsWithPredicate(*e2).size(), 2u);
  EXPECT_EQ(result.instance.AtomsWithPredicate(*e3).size(), 1u);
}

TEST_F(ChaseTest, RepeatedVariablesInBodyMatchOnlyEqualArgs) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(c, c).\n"
      "R(x, x) -> Loop(x).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  auto loop = symbols_.FindPredicate("Loop");
  ASSERT_TRUE(loop.ok());
  ASSERT_EQ(result.instance.AtomsWithPredicate(*loop).size(), 1u);
}

TEST_F(ChaseTest, Example71HasNoTrigger) {
  workload::Workload w = workload::MakeExample71(&symbols_);
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.size(), w.database.size());
  EXPECT_EQ(result.stats.triggers_fired, 0u);
}

TEST_F(ChaseTest, DepthFamilyMaxDepth) {
  for (std::uint32_t n : {2u, 3u, 5u, 8u}) {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeDepthFamily(&symbols, n);
    EXPECT_EQ(w.database.size(), n);
    ChaseResult result = RunChase(&symbols, w.tgds, w.database);
    ASSERT_TRUE(result.Terminated());
    EXPECT_EQ(result.stats.max_depth, n - 1) << "n=" << n;
  }
}

TEST_F(ChaseTest, DepthFamilyInfiniteVariant) {
  workload::Workload w = workload::MakeDepthFamilyInfinite(&symbols_);
  ChaseOptions options;
  options.max_atoms = 100;
  ChaseResult result = RunChase(&symbols_, w.tgds, w.database, options);
  EXPECT_FALSE(result.Terminated());
}

TEST_F(ChaseTest, ForestRecordsGuardParents) {
  tgd::Program p = Parse(
      "R(a, b).\n"
      "R(x, y) -> S(x, y, z).\n"
      "S(x, y, z), R(x, y) -> T(z).\n");
  ChaseOptions options;
  options.build_forest = true;
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database, options);
  ASSERT_TRUE(result.Terminated());
  ASSERT_EQ(result.forest.size(), result.instance.size());
  EXPECT_EQ(result.forest.roots().size(), 1u);
  // All derived atoms belong to the tree rooted at R(a,b).
  EXPECT_EQ(result.forest.GtreeSize(0), result.instance.size());
  auto hist = result.forest.GtreeDepthHistogram(0);
  EXPECT_EQ(hist[0], 1u);  // the root
  EXPECT_EQ(hist[1], 2u);  // S(a,b,⊥) and T(⊥)
}

TEST_F(ChaseTest, EmptyTgdSetLeavesDatabase) {
  tgd::Program p = Parse("R(a, b).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.size(), 1u);
  EXPECT_EQ(result.stats.rounds, 1u);
}

TEST_F(ChaseTest, EmptyFrontierFiresOnce) {
  // σ = R(x) → ∃z Q(z): fr(σ) = ∅, so the semi-oblivious chase invents a
  // single null regardless of how many R-facts exist.
  tgd::Program p = Parse(
      "R(a).\n"
      "R(b).\n"
      "R(x) -> Q(z).\n");
  ChaseResult result = RunChase(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(result.Terminated());
  auto q = symbols_.FindPredicate("Q");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(result.instance.AtomsWithPredicate(*q).size(), 1u);
}

TEST(NullStoreTest, KeysOnTgdVarAndFrontier) {
  core::SymbolTable symbols;
  NullStore store(&symbols);
  core::Term z1 = symbols.InternVariable("z1");
  core::Term z2 = symbols.InternVariable("z2");
  core::Term a = *symbols.InternConstant("a");
  core::Term b = *symbols.InternConstant("b");

  core::Term n1 = *store.GetOrCreate(0, z1, {a});
  EXPECT_EQ(*store.GetOrCreate(0, z1, {a}), n1);  // same key → same null
  EXPECT_NE(*store.GetOrCreate(0, z2, {a}), n1);  // different variable
  EXPECT_NE(*store.GetOrCreate(1, z1, {a}), n1);  // different TGD
  EXPECT_NE(*store.GetOrCreate(0, z1, {b}), n1);  // different frontier
  EXPECT_EQ(store.size(), 4u);
}

TEST(NullStoreTest, DepthIsOnePlusMaxFrontierDepth) {
  core::SymbolTable symbols;
  NullStore store(&symbols);
  core::Term z = symbols.InternVariable("z");
  core::Term a = *symbols.InternConstant("a");

  core::Term n1 = *store.GetOrCreate(0, z, {a});
  EXPECT_EQ(symbols.depth(n1), 1u);
  core::Term n2 = *store.GetOrCreate(0, z, {n1});
  EXPECT_EQ(symbols.depth(n2), 2u);
  core::Term n3 = *store.GetOrCreate(0, z, {a, n2});
  EXPECT_EQ(symbols.depth(n3), 3u);
  // Empty frontier: depth 1 (= 1 + max(∅ ∪ {0})).
  core::Term n4 = *store.GetOrCreate(7, z, {});
  EXPECT_EQ(symbols.depth(n4), 1u);
}

/// NUCHASE_THREADS hygiene: the strict parser rejects every malformed
/// spelling (including the whitespace-prefixed one bare strtoul used to
/// accept as 4 workers), the resolver falls back to sequential, and the
/// warning is emitted once per process — not once per chase, which on a
/// CI shard would be thousands of identical lines.
TEST(ResolveNumThreadsTest, InvalidEnvWarnsOnceAndRunsSequential) {
  const char* saved = std::getenv("NUCHASE_THREADS");
  std::string saved_value = saved != nullptr ? saved : "";
  setenv("NUCHASE_THREADS", " 4", /*overwrite=*/1);
  ChaseOptions options;  // num_threads left at the overridable default
  ::testing::internal::CaptureStderr();
  std::uint32_t first = ResolveNumThreads(options);
  std::uint32_t second = ResolveNumThreads(options);
  std::string err = ::testing::internal::GetCapturedStderr();
  if (saved != nullptr) {
    setenv("NUCHASE_THREADS", saved_value.c_str(), /*overwrite=*/1);
  } else {
    unsetenv("NUCHASE_THREADS");
  }
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 1u);
  std::size_t first_hit = err.find("invalid NUCHASE_THREADS");
  ASSERT_NE(first_hit, std::string::npos) << err;
  EXPECT_EQ(err.find("invalid NUCHASE_THREADS", first_hit + 1),
            std::string::npos)
      << err;
  // An explicit setting always beats the environment, valid or not.
  options.num_threads = 3;
  EXPECT_EQ(ResolveNumThreads(options), 3u);
}

TEST(SubstitutionTest, ApplyLeavesUnboundVariables) {
  core::SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  core::Term x = symbols.InternVariable("x");
  core::Term y = symbols.InternVariable("y");
  core::Term a = *symbols.InternConstant("a");
  Substitution h{{x, a}};
  core::Atom out = ApplySubstitution(core::Atom(*r, {x, y}), h);
  EXPECT_EQ(out.args[0], a);
  EXPECT_EQ(out.args[1], y);
}

}  // namespace
}  // namespace chase
}  // namespace nuchase
