#include <gtest/gtest.h>

#include <cmath>

#include "chase/chase.h"
#include "query/evaluator.h"
#include "termination/bounds.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/classify.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

using termination::Decision;

struct PropertyParams {
  std::uint32_t seed;
  tgd::TgdClass clazz;
};

std::string ParamName(
    const ::testing::TestParamInfo<PropertyParams>& info) {
  return std::string(tgd::TgdClassName(info.param.clazz)) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<PropertyParams> MakeSweep(tgd::TgdClass clazz,
                                      std::uint32_t count) {
  std::vector<PropertyParams> out;
  for (std::uint32_t seed = 1; seed <= count; ++seed) {
    out.push_back({seed, clazz});
  }
  return out;
}

class RandomWorkloadTest
    : public ::testing::TestWithParam<PropertyParams> {
 protected:
  void SetUp() override {
    workload::RandomTgdOptions options;
    options.seed = GetParam().seed;
    options.target = GetParam().clazz;
    options.name_tag = GetParam().seed;
    workload_ = workload::MakeRandomWorkload(&symbols_, options);
    ASSERT_TRUE(tgd::ClassContainedIn(tgd::Classify(workload_.tgds),
                                      GetParam().clazz));
  }

  core::SymbolTable symbols_;
  workload::Workload workload_;
};

/// Property 1 (Theorems 6.4 / 7.5 / 8.3): the syntactic decider and the
/// bounded-chase ground truth agree.
TEST_P(RandomWorkloadTest, SyntacticDeciderMatchesGroundTruth) {
  termination::NaiveDecision truth = termination::DecideByChase(
      &symbols_, workload_.tgds, workload_.database,
      /*hard_atom_cap=*/300'000);
  if (truth.decision == Decision::kUnknown) {
    GTEST_SKIP() << "ground truth exceeded its practical budget";
  }
  auto syntactic = termination::Decide(&symbols_, workload_.tgds,
                                       workload_.database);
  ASSERT_TRUE(syntactic.ok()) << syntactic.status().ToString();
  EXPECT_EQ(syntactic->decision, truth.decision) << workload_.name;
}

/// Property 2: a terminated chase result is a model of Σ and respects
/// the paper's size and depth bounds.
TEST_P(RandomWorkloadTest, TerminatingChaseRespectsBounds) {
  chase::ChaseOptions options;
  options.max_atoms = 200000;
  chase::ChaseResult result = chase::RunChase(&symbols_, workload_.tgds,
                                              workload_.database, options);
  if (!result.Terminated()) {
    GTEST_SKIP() << "non-terminating workload";
  }
  EXPECT_TRUE(query::Satisfies(result.instance, workload_.tgds))
      << workload_.name;

  tgd::TgdClass clazz = tgd::Classify(workload_.tgds);
  double depth_bound =
      termination::DepthBound(clazz, workload_.tgds, symbols_);
  EXPECT_LE(static_cast<double>(result.stats.max_depth), depth_bound)
      << workload_.name;
  double size_bound =
      static_cast<double>(workload_.database.size()) *
      termination::SizeFactor(clazz, workload_.tgds, symbols_);
  EXPECT_LE(static_cast<double>(result.instance.size()), size_bound)
      << workload_.name;
}

/// Property 3 (Theorems 6.6 / 7.7): the UCQ data-complexity decider
/// agrees with the syntactic one on SL and L inputs.
TEST_P(RandomWorkloadTest, UcqDeciderMatchesSyntactic) {
  tgd::TgdClass clazz = tgd::Classify(workload_.tgds);
  if (clazz != tgd::TgdClass::kSimpleLinear &&
      clazz != tgd::TgdClass::kLinear) {
    GTEST_SKIP() << "UCQ decider applies to SL and L only";
  }
  auto syntactic = termination::Decide(&symbols_, workload_.tgds,
                                       workload_.database);
  ASSERT_TRUE(syntactic.ok());
  auto via_ucq = termination::DecideByUcq(&symbols_, workload_.tgds,
                                          workload_.database);
  ASSERT_TRUE(via_ucq.ok()) << via_ucq.status().ToString();
  EXPECT_EQ(*via_ucq, syntactic->decision) << workload_.name;
}

/// Property 4 (Lemma 5.1): per-depth guarded-forest levels obey
/// |gtree_i(δ,α)| ≤ ||Σ||^{2·ar(Σ)·(i+1)} for guarded workloads.
TEST_P(RandomWorkloadTest, GtreeLevelsRespectLemma51) {
  if (GetParam().clazz != tgd::TgdClass::kGuarded) {
    GTEST_SKIP() << "forest bound is stated for guarded sets";
  }
  chase::ChaseOptions options;
  options.max_atoms = 50000;
  options.build_forest = true;
  chase::ChaseResult result = chase::RunChase(&symbols_, workload_.tgds,
                                              workload_.database, options);
  if (!result.Terminated()) GTEST_SKIP() << "non-terminating";
  for (core::AtomIndex root : result.forest.roots()) {
    for (const auto& [depth, count] :
         result.forest.GtreeDepthHistogram(root)) {
      EXPECT_LE(static_cast<double>(count),
                termination::GtreeLevelBound(depth, workload_.tgds,
                                             symbols_))
          << workload_.name << " root=" << root << " depth=" << depth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SimpleLinear, RandomWorkloadTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kSimpleLinear, 12)),
    ParamName);
INSTANTIATE_TEST_SUITE_P(
    Linear, RandomWorkloadTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kLinear, 12)),
    ParamName);
INSTANTIATE_TEST_SUITE_P(
    Guarded, RandomWorkloadTest,
    ::testing::ValuesIn(MakeSweep(tgd::TgdClass::kGuarded, 12)),
    ParamName);

}  // namespace
}  // namespace nuchase
