#include <gtest/gtest.h>

#include "chase/chase.h"
#include "query/evaluator.h"
#include "query/ucq.h"
#include "tgd/parser.h"

namespace nuchase {
namespace query {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = tgd::ParseProgram(&symbols_,
                                     "E(a, b).\n"
                                     "E(b, c).\n"
                                     "E(c, a).\n"
                                     "Color(a, red).\n"
                                     "Color(b, blue).\n"
                                     "Loop(d, d).\n");
    ASSERT_TRUE(program.ok());
    instance_ = program->database.ToInstance();
    db_ = program->database;
  }

  core::Atom MakeAtom(const std::string& pred,
                      const std::vector<std::string>& vars) {
    auto p = symbols_.FindPredicate(pred);
    EXPECT_TRUE(p.ok());
    std::vector<core::Term> args;
    for (const std::string& v : vars) {
      args.push_back(symbols_.InternVariable(v));
    }
    return core::Atom(*p, std::move(args));
  }

  core::SymbolTable symbols_;
  core::Instance instance_;
  core::Database db_;
};

TEST_F(QueryTest, SingleAtomCq) {
  ConjunctiveQuery cq{{MakeAtom("E", {"x", "y"})}};
  EXPECT_TRUE(Satisfies(instance_, cq));
}

TEST_F(QueryTest, JoinCq) {
  // A path of length 3 exists (a→b→c→a).
  ConjunctiveQuery cq{{MakeAtom("E", {"x", "y"}), MakeAtom("E", {"y", "z"}),
                       MakeAtom("E", {"z", "w"})}};
  EXPECT_TRUE(Satisfies(instance_, cq));
}

TEST_F(QueryTest, RepeatedVariablesEncodeEquality) {
  // Loop(x, x) only matches Loop(d, d); E(x, x) matches nothing.
  ConjunctiveQuery loop{{MakeAtom("Loop", {"x", "x"})}};
  EXPECT_TRUE(Satisfies(instance_, loop));
  ConjunctiveQuery self_edge{{MakeAtom("E", {"x", "x"})}};
  EXPECT_FALSE(Satisfies(instance_, self_edge));
}

TEST_F(QueryTest, ConstantsMustMatchExactly) {
  auto color = symbols_.FindPredicate("Color");
  ASSERT_TRUE(color.ok());
  core::Term red = *symbols_.InternConstant("red");
  core::Term x = symbols_.InternVariable("x");
  ConjunctiveQuery cq{{core::Atom(*color, {x, red})}};
  EXPECT_TRUE(Satisfies(instance_, cq));
  core::Term green = *symbols_.InternConstant("green");
  ConjunctiveQuery none{{core::Atom(*color, {x, green})}};
  EXPECT_FALSE(Satisfies(instance_, none));
}

TEST_F(QueryTest, UcqIsDisjunction) {
  UnionOfConjunctiveQueries ucq;
  ucq.disjuncts.push_back({{MakeAtom("E", {"x", "x"})}});  // false
  EXPECT_FALSE(Satisfies(instance_, ucq));
  ucq.disjuncts.push_back({{MakeAtom("Loop", {"y", "y"})}});  // true
  EXPECT_TRUE(Satisfies(instance_, ucq));
  EXPECT_TRUE(Satisfies(db_, ucq));
}

TEST_F(QueryTest, EmptyUcqIsFalse) {
  EXPECT_FALSE(Satisfies(instance_, UnionOfConjunctiveQueries{}));
}

TEST_F(QueryTest, TgdSatisfaction) {
  // Every E edge has a color on its source? Only a and b are colored; c
  // is a source (E(c,a)), so the TGD is violated.
  auto violated = tgd::ParseTgd(&symbols_,
                                "E(x, y) -> Color(x, c)");
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(Satisfies(instance_, *violated));

  // Every colored node has an outgoing edge: true (a and b do).
  auto holds = tgd::ParseTgd(&symbols_, "Color(x, u) -> E(x, y)");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(Satisfies(instance_, *holds));
}

TEST_F(QueryTest, TgdSatisfactionUsesFrontierOnly) {
  // σ: E(x,y) → ∃z E(y,z). In the 3-cycle every node has an outgoing
  // edge, so the instance is a model even though no nulls exist.
  auto rule = tgd::ParseTgd(&symbols_, "E(x, y) -> E(y, z)");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(Satisfies(instance_, *rule));
}

TEST_F(QueryTest, ChaseResultSatisfiesItsTgds) {
  auto program = tgd::ParseProgram(&symbols_,
                                   "Start(s).\n"
                                   "Start(x) -> Next(x, y).\n"
                                   "Next(x, y) -> Mark(y).\n");
  ASSERT_TRUE(program.ok());
  chase::ChaseResult result =
      chase::RunChase(&symbols_, program->tgds, program->database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_TRUE(Satisfies(result.instance, program->tgds));
}

TEST_F(QueryTest, ToStringRenders) {
  ConjunctiveQuery cq{{MakeAtom("E", {"x", "y"})}};
  EXPECT_NE(cq.ToString(symbols_).find("E(x, y)"), std::string::npos);
  UnionOfConjunctiveQueries ucq{{cq}};
  EXPECT_NE(ucq.ToString(symbols_).find("Ans()"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace nuchase
