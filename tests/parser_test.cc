#include <gtest/gtest.h>

#include "tgd/parser.h"
#include "tgd/printer.h"

namespace nuchase {
namespace tgd {
namespace {

TEST(ParserTest, FactsAndRulesAreSeparated) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols,
                              "% a comment\n"
                              "R(a, b).\n"
                              "# another comment\n"
                              "R(x, y) -> R(y, z).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->database.size(), 1u);
  EXPECT_EQ(program->tgds.size(), 1u);
}

TEST(ParserTest, FactIdentifiersAreConstants) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols, "R(a, b).");
  ASSERT_TRUE(program.ok());
  const core::Atom& fact = program->database.facts()[0];
  EXPECT_TRUE(fact.args[0].IsConstant());
}

TEST(ParserTest, RuleIdentifiersAreVariables) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols, "R(a, b) -> R(b, c).");
  ASSERT_TRUE(program.ok());
  // In a rule, "a" and "b" are variables despite their lowercase names.
  const tgd::Tgd& rule = program->tgds.tgd(0);
  EXPECT_TRUE(rule.body()[0].args[0].IsVariable());
  EXPECT_EQ(rule.existential().size(), 1u);  // c
}

TEST(ParserTest, MultiAtomBodiesAndHeads) {
  core::SymbolTable symbols;
  auto rule = ParseTgd(&symbols, "R(x, y), P(x, z, v) -> P(y, w, z)");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body().size(), 2u);
  EXPECT_EQ(rule->head().size(), 1u);
  EXPECT_EQ(rule->existential().size(), 1u);  // w
}

TEST(ParserTest, ZeroAryAtoms) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols,
                              "Go().\n"
                              "R(x) -> Done().\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->database.facts()[0].arity(), 0u);
  EXPECT_EQ(program->tgds.tgd(0).head()[0].arity(), 0u);
}

TEST(ParserTest, BracketedPredicateNames) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols, "R[1,2,1](a, b).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(
      symbols.predicate_name(program->database.facts()[0].predicate),
      "R[1,2,1]");
}

TEST(ParserTest, ArityMismatchIsAnError) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols, "R(a, b). R(a).");
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  core::SymbolTable symbols;
  auto program = ParseProgram(&symbols, "R(a, b).\nR(a, -> .\n");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, MissingDotIsAnError) {
  core::SymbolTable symbols;
  EXPECT_FALSE(ParseProgram(&symbols, "R(a, b)").ok());
}

TEST(ParserTest, UnexpectedCharacterIsAnError) {
  core::SymbolTable symbols;
  EXPECT_FALSE(ParseProgram(&symbols, "R(a; b).").ok());
}

TEST(ParserTest, ParseTgdAcceptsMissingDot) {
  core::SymbolTable symbols;
  EXPECT_TRUE(ParseTgd(&symbols, "R(x) -> S(x)").ok());
  EXPECT_TRUE(ParseTgd(&symbols, "R(x) -> S(x) .").ok());
}

TEST(ParserTest, ParseTgdRejectsPrograms) {
  core::SymbolTable symbols;
  EXPECT_FALSE(ParseTgd(&symbols, "R(x) -> S(x). S(x) -> T(x).").ok());
}

TEST(ParserTest, ParseTgdSetRejectsFacts) {
  core::SymbolTable symbols;
  EXPECT_FALSE(ParseTgdSet(&symbols, "R(a).").ok());
  EXPECT_TRUE(ParseDatabase(&symbols, "R(a).").ok());
  EXPECT_FALSE(ParseDatabase(&symbols, "R(x) -> S(x).").ok());
}

TEST(PrinterTest, ProgramRoundTrip) {
  core::SymbolTable symbols;
  const std::string text =
      "R(a, b).\n"
      "S(b).\n"
      "R(x, y) -> R(y, z).\n"
      "R(x, y), S(x) -> T(x, y).\n";
  auto program = ParseProgram(&symbols, text);
  ASSERT_TRUE(program.ok());
  std::string printed =
      ProgramToString(program->tgds, program->database, symbols);
  auto reparsed = ParseProgram(&symbols, printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->database.ToSortedString(symbols),
            program->database.ToSortedString(symbols));
  EXPECT_EQ(reparsed->tgds.ToString(symbols),
            program->tgds.ToString(symbols));
}

}  // namespace
}  // namespace tgd
}  // namespace nuchase
