#include <gtest/gtest.h>

#include <set>

#include "chase/chase.h"
#include "query/evaluator.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "workload/university.h"

namespace nuchase {
namespace workload {
namespace {

TEST(UniversityTest, OntologyIsGuarded) {
  core::SymbolTable symbols;
  Workload w = MakeUniversityWorkload(&symbols);
  EXPECT_TRUE(tgd::ClassContainedIn(tgd::Classify(w.tgds),
                                    tgd::TgdClass::kGuarded));
}

TEST(UniversityTest, ChaseTerminatesAndIsAModel) {
  core::SymbolTable symbols;
  Workload w = MakeUniversityWorkload(&symbols);
  chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, w.database);
  ASSERT_TRUE(r.Terminated());
  EXPECT_TRUE(query::Satisfies(r.instance, w.tgds));
  EXPECT_GT(r.instance.size(), w.database.size());
}

TEST(UniversityTest, EveryStudentGetsAnAdvisor) {
  core::SymbolTable symbols;
  UniversityOptions options;
  options.departments = 2;
  options.students_per_department = 10;
  Workload w = MakeUniversityWorkload(&symbols, options);
  chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, w.database);
  ASSERT_TRUE(r.Terminated());

  auto student = symbols.FindPredicate("Student");
  auto has_advisor = symbols.FindPredicate("HasAdvisor");
  ASSERT_TRUE(student.ok());
  ASSERT_TRUE(has_advisor.ok());
  std::set<core::Term> students;
  for (core::AtomIndex i : r.instance.AtomsWithPredicate(*student)) {
    students.insert(r.instance.atom(i).arg(0));
  }
  std::set<core::Term> advised;
  for (core::AtomIndex i : r.instance.AtomsWithPredicate(*has_advisor)) {
    advised.insert(r.instance.atom(i).arg(0));
  }
  EXPECT_FALSE(students.empty());
  for (core::Term s : students) {
    EXPECT_TRUE(advised.count(s));
  }
}

TEST(UniversityTest, SyntacticDeciderAccepts) {
  core::SymbolTable symbols;
  Workload w = MakeUniversityWorkload(&symbols);
  auto d = termination::Decide(&symbols, w.tgds, w.database);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->decision, termination::Decision::kTerminates);
}

TEST(UniversityTest, ReviewRuleIsHarmlessWithoutSeeds) {
  core::SymbolTable symbols;
  UniversityOptions options;
  options.include_review_rule = true;
  options.under_review = 0;
  Workload w = MakeUniversityWorkload(&symbols, options);
  auto d = termination::Decide(&symbols, w.tgds, w.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, termination::Decision::kTerminates);
}

TEST(UniversityTest, ReviewSeedBreaksTermination) {
  core::SymbolTable symbols;
  UniversityOptions options;
  options.include_review_rule = true;
  options.under_review = 1;
  Workload w = MakeUniversityWorkload(&symbols, options);
  auto d = termination::Decide(&symbols, w.tgds, w.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, termination::Decision::kDoesNotTerminate);

  chase::ChaseOptions copt;
  copt.max_atoms = 20000;
  chase::ChaseResult r =
      chase::RunChase(&symbols, w.tgds, w.database, copt);
  EXPECT_FALSE(r.Terminated());
}

TEST(UniversityTest, DeterministicInTheSeed) {
  core::SymbolTable s1, s2;
  UniversityOptions options;
  options.seed = 7;
  Workload a = MakeUniversityWorkload(&s1, options);
  Workload b = MakeUniversityWorkload(&s2, options);
  EXPECT_EQ(a.database.ToSortedString(s1), b.database.ToSortedString(s2));

  core::SymbolTable s3;
  options.seed = 8;
  Workload c = MakeUniversityWorkload(&s3, options);
  EXPECT_NE(a.database.ToSortedString(s1), c.database.ToSortedString(s3));
}

TEST(UniversityTest, ScalesLinearly) {
  // The headline result on realistic data: doubling the student body
  // roughly doubles the materialization.
  std::size_t sizes[2];
  for (int i = 0; i < 2; ++i) {
    core::SymbolTable symbols;
    UniversityOptions options;
    options.students_per_department = i == 0 ? 20 : 40;
    Workload w = MakeUniversityWorkload(&symbols, options);
    chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, w.database);
    ASSERT_TRUE(r.Terminated());
    sizes[i] = r.instance.size();
  }
  EXPECT_GT(sizes[1], sizes[0]);
  EXPECT_LT(sizes[1], sizes[0] * 3);
}

}  // namespace
}  // namespace workload
}  // namespace nuchase
