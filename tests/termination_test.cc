#include <gtest/gtest.h>

#include <cmath>

#include "graph/weak_acyclicity.h"
#include "termination/advisor.h"
#include "termination/bounds.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"

namespace nuchase {
namespace termination {
namespace {

class TerminationTest : public ::testing::Test {
 protected:
  tgd::Program Parse(const std::string& text) {
    auto program = tgd::ParseProgram(&symbols_, text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return *program;
  }
  core::SymbolTable symbols_;
};

TEST_F(TerminationTest, BoundsOrdering) {
  tgd::Program p = Parse("R(x, y) -> R(y, z).");
  double dsl = DepthBoundSL(p.tgds, symbols_);
  double dl = DepthBoundL(p.tgds, symbols_);
  double dg = DepthBoundG(p.tgds, symbols_);
  EXPECT_EQ(dsl, 1 * 2);          // |sch| · ar = 1·2
  EXPECT_EQ(dl, 1 * std::pow(2, 3));  // |sch| · ar^(ar+1)
  EXPECT_GT(dg, dl);
  EXPECT_GT(dl, dsl);
  EXPECT_TRUE(std::isinf(
      DepthBound(tgd::TgdClass::kGeneral, p.tgds, symbols_)));
  EXPECT_GT(SizeFactorSL(p.tgds, symbols_), 0);
  EXPECT_GE(SizeFactorL(p.tgds, symbols_),
            SizeFactorSL(p.tgds, symbols_));
}

TEST_F(TerminationTest, NaiveDeciderAcceptsTerminating) {
  tgd::Program p = Parse("R(a, b). R(x, y) -> S(y, z).");
  NaiveDecision d = DecideByChase(&symbols_, p.tgds, p.database);
  EXPECT_EQ(d.decision, Decision::kTerminates);
  EXPECT_EQ(d.outcome, chase::ChaseOutcome::kTerminated);
  EXPECT_EQ(d.atoms, 2u);
}

TEST_F(TerminationTest, NaiveDeciderRejectsViaDepthBound) {
  tgd::Program p = Parse("R(a, b). R(x, y) -> R(y, z).");
  NaiveDecision d = DecideByChase(&symbols_, p.tgds, p.database);
  EXPECT_EQ(d.decision, Decision::kDoesNotTerminate);
  // d_SL = 2: the chase is cut as soon as a depth-3 null appears.
  EXPECT_EQ(d.outcome, chase::ChaseOutcome::kDepthLimit);
  EXPECT_LE(d.max_depth, 3u);
}

TEST_F(TerminationTest, NaiveDeciderUnknownForGeneralTgds) {
  // Prop 4.5's infinite variant is not guarded: no depth bound applies,
  // so the naive decider can only report kUnknown at its hard cap.
  workload::Workload w = workload::MakeDepthFamilyInfinite(&symbols_);
  NaiveDecision d = DecideByChase(&symbols_, w.tgds, w.database, 500);
  EXPECT_EQ(d.decision, Decision::kUnknown);
}

TEST_F(TerminationTest, SyntacticSLMatchesChase) {
  tgd::Program loop = Parse("R(a, b). R(x, y) -> R(y, z).");
  auto d1 = DecideSimpleLinear(&symbols_, loop.tgds, loop.database);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->decision, Decision::kDoesNotTerminate);

  tgd::Program fin = Parse("P(a, b). P(x, y) -> Q(y, z).");
  auto d2 = DecideSimpleLinear(&symbols_, fin.tgds, fin.database);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->decision, Decision::kTerminates);
}

TEST_F(TerminationTest, SyntacticSLIsDatabaseSensitive) {
  // The same Σ terminates for databases that do not support the cycle.
  tgd::Program p = Parse(
      "Q(a).\n"
      "R(x, y) -> R(y, z).\n"
      "Q(x) -> Q2(x).\n");
  auto d = DecideSimpleLinear(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kTerminates);
}

TEST_F(TerminationTest, SyntacticSLRejectsNonSimple) {
  tgd::Program p = Parse("R(a, a). R(x, x) -> R(z, x).");
  EXPECT_FALSE(DecideSimpleLinear(&symbols_, p.tgds, p.database).ok());
}

TEST_F(TerminationTest, Example71NeedsSimplification) {
  // Theorem 6.4's characterization fails for non-simple linear TGDs:
  // Example 7.1's chase is finite although Σ is not D-weakly-acyclic.
  // DecideLinear (Theorem 7.5) gets it right.
  workload::Workload w = workload::MakeExample71(&symbols_);
  graph::WeakAcyclicityResult wa =
      graph::CheckWeakAcyclicity(w.tgds, w.database, symbols_);
  EXPECT_FALSE(wa.weakly_acyclic);  // raw WA is wrong for L ...
  auto d = DecideLinear(&symbols_, w.tgds, w.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kTerminates);  // ... simplification fixes it
}

TEST_F(TerminationTest, LinearDeciderMatchesChaseOnLoop) {
  tgd::Program p = Parse("R(a, a). R(x, x) -> R(x, z), R(z, x).");
  // Chase: R(a,a) → R(a,⊥), R(⊥,a); no further R(x,x) match: finite.
  auto d = DecideLinear(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kTerminates);

  // Note S(x,x) → ∃z S(z,z) alone does NOT loop in the semi-oblivious
  // chase: fr(σ) = ∅, so ⊥^z_{σ,h|∅} is one fixed null and the second
  // application is inactive. A genuine loop needs a frontier variable.
  tgd::Program q =
      Parse("S(b, b). S(x, x) -> T(x, z). T(x, y) -> T(y, w).");
  // S(b,b) → T(b,⊥) → T(⊥,⊥') → ... infinite.
  auto d2 = DecideLinear(&symbols_, q.tgds, q.database);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->decision, Decision::kDoesNotTerminate);
}

TEST_F(TerminationTest, GuardedDecider) {
  tgd::Program fin = Parse(
      "G(a, b). H(b).\n"
      "G(x, y), H(y) -> K(x, y, z).\n"
      "K(x, y, z) -> H(z).\n");
  auto d = DecideGuarded(&symbols_, fin.tgds, fin.database);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->decision, Decision::kTerminates);
  EXPECT_GT(d->lin_types, 0u);
  EXPECT_GT(d->simple_tgds, 0u);

  tgd::Program inf = Parse(
      "G2(a, b). H2(b).\n"
      "G2(x, y), H2(y) -> K2(x, y, z).\n"
      "K2(x, y, z) -> G2(y, z), H2(z).\n");
  auto d2 = DecideGuarded(&symbols_, inf.tgds, inf.database);
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();
  EXPECT_EQ(d2->decision, Decision::kDoesNotTerminate);
}

TEST_F(TerminationTest, DispatchPicksTheRightDecider) {
  tgd::Program sl = Parse("A(a, b). A(x, y) -> B(y, z).");
  auto d = Decide(&symbols_, sl.tgds, sl.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->used_class, tgd::TgdClass::kSimpleLinear);

  // General TGDs dispatch to the acyclicity ladder instead of failing:
  // a full (existential-free) set is trivially weakly acyclic, so the
  // cheapest rung certifies it.
  tgd::Program general = Parse(
      "C(a, b). C(x, y), D(y, z) -> E(x, z).");
  auto dg = Decide(&symbols_, general.tgds, general.database);
  ASSERT_TRUE(dg.ok()) << dg.status().ToString();
  EXPECT_EQ(dg->used_class, tgd::TgdClass::kGeneral);
  EXPECT_EQ(dg->decision, Decision::kTerminates);
  EXPECT_EQ(dg->ladder_rung, "wa");
}

TEST_F(TerminationTest, DecideGeneralUpgradesUnknownToTerminates) {
  // The committed JA showcase: not WA w.r.t. D, so before the ladder
  // the general-class answer was a budget-bound kUnknown; JA certifies
  // it statically. A starved bounded chase still says kUnknown — the
  // upgrade is real, not a side effect of the chase finishing.
  tgd::Program p = Parse(
      "P(a). R(a, b).\n"
      "P(x) -> Q(x, y).\n"
      "Q(x, y), R(y, w) -> P(y).\n");
  NaiveDecision naive =
      DecideByChase(&symbols_, p.tgds, p.database, /*max_atoms=*/2);
  EXPECT_EQ(naive.decision, Decision::kUnknown);

  auto d = DecideGeneral(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kTerminates);
  EXPECT_EQ(d->ladder_rung, "ja");
}

TEST_F(TerminationTest, AdvisorUsesLadderForGeneralTgds) {
  tgd::Program p = Parse(
      "B(a). D(a, b).\n"
      "B(x) -> R(x, y).\n"
      "R(x, y), B(y), D(x, w) -> C(x).\n"
      "C(x), R(x, y) -> B(y).\n");
  auto report = Advise(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tgd_class, tgd::TgdClass::kGeneral);
  EXPECT_EQ(report->decision, Decision::kTerminates);
  EXPECT_EQ(report->method, "ladder:mfa");
  ASSERT_TRUE(report->materialization.has_value());
}

TEST_F(TerminationTest, UcqDeciderSL) {
  tgd::Program p = Parse("R(x, y) -> R(y, z). Q(x) -> Q2(x).");
  auto ucq = BuildTerminationUcq(&symbols_, p.tgds);
  ASSERT_TRUE(ucq.ok());
  EXPECT_GE(ucq->disjuncts.size(), 1u);

  core::Database with_r;
  ASSERT_TRUE(with_r.AddFact(&symbols_, "R", {"a", "b"}).ok());
  auto d1 = DecideByUcq(&symbols_, p.tgds, with_r);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, Decision::kDoesNotTerminate);

  core::Database with_q;
  ASSERT_TRUE(with_q.AddFact(&symbols_, "Q", {"a"}).ok());
  auto d2 = DecideByUcq(&symbols_, p.tgds, with_q);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d2, Decision::kTerminates);
}

TEST_F(TerminationTest, UcqDeciderLinearUsesPatterns) {
  // Only the diagonal pattern S[1,1] feeds the looping T-chain: the UCQ
  // must distinguish S(a,a) (non-terminating) from S(a,b) (terminating),
  // which plain predicate-occurrence checks cannot (Theorem 7.7 /
  // Appendix E's equality-pattern disjuncts).
  tgd::Program p = Parse("S(x, x) -> T(x, z). T(x, y) -> T(y, w).");
  core::Database diag;
  ASSERT_TRUE(diag.AddFact(&symbols_, "S", {"a", "a"}).ok());
  core::Database off_diag;
  ASSERT_TRUE(off_diag.AddFact(&symbols_, "S", {"a", "b"}).ok());

  auto d1 = DecideByUcq(&symbols_, p.tgds, diag);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, Decision::kDoesNotTerminate);
  auto d2 = DecideByUcq(&symbols_, p.tgds, off_diag);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d2, Decision::kTerminates);
}

TEST_F(TerminationTest, UcqDeciderRejectsGuarded) {
  tgd::Program p = Parse("G(x, y), H(y) -> K(x, y, z).");
  EXPECT_FALSE(BuildTerminationUcq(&symbols_, p.tgds).ok());
}

TEST_F(TerminationTest, AdvisorMaterializesTerminatingSets) {
  tgd::Program p = Parse(
      "Emp(e1, d1).\n"
      "Emp(x, y) -> Dept(y).\n"
      "Dept(y) -> Mgr(y, z).\n");
  auto report = Advise(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->decision, Decision::kTerminates);
  EXPECT_EQ(report->tgd_class, tgd::TgdClass::kSimpleLinear);
  EXPECT_EQ(report->method, "weak-acyclicity");
  ASSERT_TRUE(report->materialization.has_value());
  EXPECT_EQ(report->materialization->instance.size(), 3u);
  // The paper's headline guarantee: |chase| ≤ |D| · f_C(Σ).
  EXPECT_LE(
      static_cast<double>(report->materialization->instance.size()),
      report->size_bound);
}

TEST_F(TerminationTest, AdvisorDeclinesNonTerminating) {
  tgd::Program p = Parse("R(a, b). R(x, y) -> R(y, z).");
  auto report = Advise(&symbols_, p.tgds, p.database);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->decision, Decision::kDoesNotTerminate);
  EXPECT_FALSE(report->materialization.has_value());
}

TEST_F(TerminationTest, AdvisorHandlesGeneralTgdsBestEffort) {
  workload::Workload w = workload::MakeDepthFamily(&symbols_, 4);
  auto report = Advise(&symbols_, w.tgds, w.database);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tgd_class, tgd::TgdClass::kGeneral);
  EXPECT_EQ(report->method, "bounded-chase");
  EXPECT_EQ(report->decision, Decision::kTerminates);
  ASSERT_TRUE(report->materialization.has_value());
}

TEST(DecisionNameTest, Names) {
  EXPECT_STREQ(DecisionName(Decision::kTerminates), "terminates");
  EXPECT_STREQ(DecisionName(Decision::kDoesNotTerminate),
               "does-not-terminate");
  EXPECT_STREQ(DecisionName(Decision::kUnknown), "unknown");
}

}  // namespace
}  // namespace termination
}  // namespace nuchase
