// Integration tests for the chase daemon core (server::Server), driven
// hermetically: most cases feed a whole frame script through
// ServeStream (the --stdio path — no sockets, no clocks except where a
// deadline is the thing under test) and assert on the complete
// transcript; the admission-control cases use a gated transport whose
// script advances only once the server has observably reached the
// state the next line is meant to poke (a queued request stays queued
// because the worker is provably busy — not because the test got
// lucky); and the determinism matrix drives real TCP connections
// concurrently, requiring byte-identical payloads across client
// threads, scheduler widths and chase thread counts, pinned to the
// answer a direct api::Session run produces.
#include <gtest/gtest.h>

#include <condition_variable>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/program.h"
#include "api/session.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace nuchase {
namespace server {
namespace {

/// An infinite null chain: one fresh atom per round, never terminates —
/// the workload for everything that must be aborted (cancel, deadline)
/// or must provably occupy a scheduler slot.
const char kInfiniteProgram[] = "E(a, b).\nE(x, y) -> E(y, z).\n";

std::string ChainProgram(int edges) {
  std::string text;
  for (int i = 0; i < edges; ++i) {
    text += "E(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
            ").\n";
  }
  text += "E(x, y) -> T(x, y).\n";
  text += "T(x, y), E(y, z) -> T(x, z).\n";
  return text;
}

/// Runs a frame script through ServeStream and parses the transcript.
/// ServeStream drains every live request before returning, so the
/// counters copied into `final_stats` are the run's final tallies —
/// unlike an in-script stats request, which the reader answers while
/// earlier chases may still be mid-flight.
std::vector<ResponseFrame> RunScript(const ServerOptions& options,
                                     const std::vector<std::string>& lines,
                                     StatsFrame* final_stats = nullptr) {
  std::string input;
  for (const std::string& line : lines) {
    input += line;
    input += '\n';
  }
  std::istringstream in(input);
  std::ostringstream out;
  Server server(options);
  server.ServeStream(in, out);
  if (final_stats != nullptr) *final_stats = server.stats();
  std::vector<ResponseFrame> frames;
  std::istringstream transcript(out.str());
  std::string line;
  while (std::getline(transcript, line)) {
    auto frame = ParseResponse(line);
    EXPECT_TRUE(frame.ok()) << "unparseable response line: " << line;
    if (frame.ok()) frames.push_back(*frame);
  }
  return frames;
}

/// The frames of one request id, in transcript order. Error frames with
/// an empty id match the empty id only.
std::vector<ResponseFrame> FramesFor(const std::vector<ResponseFrame>& all,
                                     const std::string& id) {
  std::vector<ResponseFrame> out;
  for (const ResponseFrame& frame : all) {
    std::string frame_id;
    switch (frame.type) {
      case ResponseFrame::Type::kAck: frame_id = frame.ack.id; break;
      case ResponseFrame::Type::kEvent: frame_id = frame.event.id; break;
      case ResponseFrame::Type::kResult: frame_id = frame.result.id; break;
      case ResponseFrame::Type::kError: frame_id = frame.error.id; break;
      default: continue;
    }
    if (frame_id == id) out.push_back(frame);
  }
  return out;
}

ChaseRequest MakeChase(const std::string& id, const std::string& rules) {
  ChaseRequest request;
  request.id = id;
  request.rules = rules;
  return request;
}

TEST(ServerStreamTest, PingChaseStatsTranscript) {
  ChaseRequest chase = MakeChase("r1", "P(a).\nP(x) -> Q(x).\n");
  chase.payload = true;
  auto frames = RunScript({}, {SerializePing(), SerializeRequest(chase),
                               SerializeStatsRequest()});
  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, ResponseFrame::Type::kPong);

  auto r1 = FramesFor(frames, "r1");
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[0].type, ResponseFrame::Type::kAck);
  ASSERT_EQ(r1[1].type, ResponseFrame::Type::kResult);
  EXPECT_EQ(r1[1].result.outcome, "terminated");
  EXPECT_FALSE(r1[1].result.cached);
  EXPECT_EQ(r1[1].result.atoms, 2u);
  ASSERT_TRUE(r1[1].result.has_payload);
  EXPECT_EQ(r1[1].result.payload, "P(a)\nQ(a)\n");
}

TEST(ServerStreamTest, PayloadMatchesADirectSessionRun) {
  const std::string rules = ChainProgram(8);
  ChaseRequest chase = MakeChase("r1", rules);
  chase.payload = true;
  auto frames = RunScript({}, {SerializeRequest(chase)});
  auto r1 = FramesFor(frames, "r1");
  ASSERT_EQ(r1.size(), 2u);
  ASSERT_EQ(r1[1].type, ResponseFrame::Type::kResult);

  auto program = api::Program::Parse(rules);
  ASSERT_TRUE(program.ok());
  auto run = api::Session(*program).Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(r1[1].result.payload, run->ToSortedString());
  EXPECT_EQ(r1[1].result.atoms, run->instance().size());
}

TEST(ServerStreamTest, SecondIdenticalProgramHitsTheCache) {
  // One worker, so `a` finishes before `b` starts and the hit is
  // certain rather than racing a concurrent parse of the same text.
  ServerOptions options;
  options.max_inflight = 1;
  const std::string rules = ChainProgram(4);
  StatsFrame stats;
  auto frames = RunScript(options,
                          {SerializeRequest(MakeChase("a", rules)),
                           SerializeRequest(MakeChase("b", rules))},
                          &stats);
  auto a = FramesFor(frames, "a");
  auto b = FramesFor(frames, "b");
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  ASSERT_EQ(a[1].type, ResponseFrame::Type::kResult);
  ASSERT_EQ(b[1].type, ResponseFrame::Type::kResult);
  EXPECT_FALSE(a[1].result.cached);
  EXPECT_TRUE(b[1].result.cached);
  EXPECT_EQ(b[1].result.payload, a[1].result.payload);

  EXPECT_EQ(stats.programs_parsed, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServerStreamTest, MalformedLinesGetTypedErrorsAndConnectionSurvives) {
  ServerOptions options;
  options.max_line_bytes = 2048;
  ChaseRequest good = MakeChase("ok", "P(a).\n");
  std::string oversized = "{\"type\":\"chase\",\"id\":\"big\",\"rules\":\"";
  oversized.append(4096, 'x');
  oversized += "\"}";
  auto frames = RunScript(
      options,
      {
          "this is not json",
          "{\"type\":\"warp\",\"id\":\"w\"}",
          "{\"type\":\"chase\",\"id\":\"t\",\"rules\":\"P(a).\","
          "\"turbo\":true}",
          oversized,
          SerializeRequest(MakeChase("bad", "this is not a program")),
          "",  // blank lines are skipped, not errors
          SerializeRequest(good),
      });

  // One typed error per bad line, in input order, then the good chase.
  std::vector<std::pair<std::string, ErrorCode>> expected = {
      {"", ErrorCode::kMalformedFrame},
      {"w", ErrorCode::kUnknownType},
      {"t", ErrorCode::kUnknownField},
      {"", ErrorCode::kOversizedFrame},
  };
  std::size_t at = 0;
  for (const auto& [id, code] : expected) {
    ASSERT_LT(at, frames.size());
    ASSERT_EQ(frames[at].type, ResponseFrame::Type::kError)
        << "frame " << at;
    EXPECT_EQ(frames[at].error.id, id);
    EXPECT_EQ(frames[at].error.code, code);
    ++at;
  }
  auto bad = FramesFor(frames, "bad");
  ASSERT_EQ(bad.size(), 2u);  // ack, then the parse failure
  ASSERT_EQ(bad[1].type, ResponseFrame::Type::kError);
  EXPECT_EQ(bad[1].error.code, ErrorCode::kInvalidProgram);

  auto ok = FramesFor(frames, "ok");
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok[0].type, ResponseFrame::Type::kAck);
  ASSERT_EQ(ok[1].type, ResponseFrame::Type::kResult);
  EXPECT_EQ(ok[1].result.outcome, "terminated");
}

TEST(ServerStreamTest, CancelAbortsALiveChase) {
  ChaseRequest chase = MakeChase("victim", kInfiniteProgram);
  auto frames = RunScript({}, {SerializeRequest(chase),
                               SerializeCancel("victim"),
                               SerializeCancel("nobody")});
  auto victim = FramesFor(frames, "victim");
  ASSERT_EQ(victim.size(), 2u);
  EXPECT_EQ(victim[0].type, ResponseFrame::Type::kAck);
  ASSERT_EQ(victim[1].type, ResponseFrame::Type::kError);
  EXPECT_EQ(victim[1].error.code, ErrorCode::kCancelled);

  auto nobody = FramesFor(frames, "nobody");
  ASSERT_EQ(nobody.size(), 1u);
  ASSERT_EQ(nobody[0].type, ResponseFrame::Type::kError);
  EXPECT_EQ(nobody[0].error.code, ErrorCode::kUnknownId);
}

TEST(ServerStreamTest, DeadlineExpiresMidChase) {
  // The program never terminates, so the only way this test ends is the
  // deadline firing mid-chase — and the server must report it as
  // deadline-exceeded, not as a plain cancellation.
  ChaseRequest chase = MakeChase("slow", kInfiniteProgram);
  chase.deadline_ms = 50;
  StatsFrame stats;
  auto frames = RunScript({}, {SerializeRequest(chase)}, &stats);
  auto slow = FramesFor(frames, "slow");
  ASSERT_EQ(slow.size(), 2u);
  ASSERT_EQ(slow[1].type, ResponseFrame::Type::kError);
  EXPECT_EQ(slow[1].error.code, ErrorCode::kDeadlineExceeded);

  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServerStreamTest, DuplicateLiveIdIsRejected) {
  auto frames = RunScript(
      {}, {SerializeRequest(MakeChase("dup", kInfiniteProgram)),
           SerializeRequest(MakeChase("dup", "P(a).\n")),
           SerializeCancel("dup")});
  auto dup = FramesFor(frames, "dup");
  // ack (first), duplicate-id error (second), cancelled (first).
  ASSERT_EQ(dup.size(), 3u);
  EXPECT_EQ(dup[0].type, ResponseFrame::Type::kAck);
  ASSERT_EQ(dup[1].type, ResponseFrame::Type::kError);
  EXPECT_EQ(dup[1].error.code, ErrorCode::kDuplicateId);
  ASSERT_EQ(dup[2].type, ResponseFrame::Type::kError);
  EXPECT_EQ(dup[2].error.code, ErrorCode::kCancelled);
}

TEST(ServerStreamTest, EventsStreamRoundProgress) {
  ChaseRequest chase = MakeChase("ev", ChainProgram(6));
  chase.events = true;
  auto frames = RunScript({}, {SerializeRequest(chase)});
  auto ev = FramesFor(frames, "ev");
  ASSERT_GE(ev.size(), 3u);
  EXPECT_EQ(ev.front().type, ResponseFrame::Type::kAck);
  ASSERT_EQ(ev.back().type, ResponseFrame::Type::kResult);
  const ResultFrame& result = ev.back().result;
  // One event per round, rounds numbered 1..n in order, the last one
  // agreeing with the result's round count.
  const std::size_t events = ev.size() - 2;
  EXPECT_EQ(events, result.rounds);
  for (std::size_t i = 0; i < events; ++i) {
    ASSERT_EQ(ev[i + 1].type, ResponseFrame::Type::kEvent);
    EXPECT_EQ(ev[i + 1].event.round, i + 1);
  }
  EXPECT_EQ(ev[events].event.atoms, result.atoms);
}

/// A FrameTransport whose script advances through explicit gates: each
/// step can wait until the transcript satisfies a predicate before its
/// line is released to the reader. This is what makes the admission
/// tests deterministic — "the next line is sent once request A has
/// streamed an event" proves A occupies a worker; no sleeps, no races.
class GatedTransport : public FrameTransport {
 public:
  using Gate = std::function<bool(const std::vector<ResponseFrame>&)>;

  void Push(std::string line, Gate gate = nullptr) {
    steps_.push_back({std::move(gate), std::move(line)});
  }

  ReadResult ReadLine(std::string* line) override {
    if (index_ >= steps_.size()) return ReadResult::kEof;
    Step& step = steps_[index_++];
    if (step.gate) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return step.gate(frames_); });
    }
    *line = step.line;
    return ReadResult::kOk;
  }

  bool WriteLine(const std::string& line) override {
    auto frame = ParseResponse(line);
    EXPECT_TRUE(frame.ok()) << "unparseable response line: " << line;
    std::lock_guard<std::mutex> lock(mu_);
    if (frame.ok()) frames_.push_back(*frame);
    cv_.notify_all();
    return true;
  }

  std::vector<ResponseFrame> frames() {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }

 private:
  struct Step {
    Gate gate;
    std::string line;
  };
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ResponseFrame> frames_;
};

GatedTransport::Gate SawEvent(const std::string& id) {
  return [id](const std::vector<ResponseFrame>& frames) {
    for (const ResponseFrame& f : frames) {
      if (f.type == ResponseFrame::Type::kEvent && f.event.id == id) {
        return true;
      }
    }
    return false;
  };
}

GatedTransport::Gate SawAck(const std::string& id) {
  return [id](const std::vector<ResponseFrame>& frames) {
    for (const ResponseFrame& f : frames) {
      if (f.type == ResponseFrame::Type::kAck && f.ack.id == id) {
        return true;
      }
    }
    return false;
  };
}

GatedTransport::Gate SawError(const std::string& id) {
  return [id](const std::vector<ResponseFrame>& frames) {
    for (const ResponseFrame& f : frames) {
      if (f.type == ResponseFrame::Type::kError && f.error.id == id) {
        return true;
      }
    }
    return false;
  };
}

TEST(ServerAdmissionTest, QueueFullRejectsAndQueuedCancelAborts) {
  // One worker, one queue slot. The script is gated so each admission
  // state is proven before the next line lands:
  //   A admitted and chasing (its first event arrived) — worker busy;
  //   B admitted (acked) — the single queue slot is now provably held;
  //   C submitted — must bounce with `overloaded`;
  //   cancel B — B is still queued (A never finished), so B must abort
  //     without ever chasing ("cancelled while queued");
  //   cancel A — drains the connection.
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 1;

  ChaseRequest a = MakeChase("a", kInfiniteProgram);
  a.events = true;
  GatedTransport transport;
  transport.Push(SerializeRequest(a));
  transport.Push(SerializeRequest(MakeChase("b", kInfiniteProgram)),
                 SawEvent("a"));
  transport.Push(SerializeRequest(MakeChase("c", kInfiniteProgram)),
                 SawAck("b"));
  transport.Push(SerializeCancel("b"), SawError("c"));
  transport.Push(SerializeCancel("a"));

  Server server(options);
  server.Serve(&transport);
  auto frames = transport.frames();

  auto c = FramesFor(frames, "c");
  ASSERT_EQ(c.size(), 1u);
  ASSERT_EQ(c[0].type, ResponseFrame::Type::kError);
  EXPECT_EQ(c[0].error.code, ErrorCode::kOverloaded);

  auto b = FramesFor(frames, "b");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].type, ResponseFrame::Type::kAck);
  ASSERT_EQ(b[1].type, ResponseFrame::Type::kError);
  EXPECT_EQ(b[1].error.code, ErrorCode::kCancelled);
  EXPECT_NE(b[1].error.message.find("queued"), std::string::npos)
      << "B should have been aborted before ever chasing, got: "
      << b[1].error.message;

  auto a_frames = FramesFor(frames, "a");
  ASSERT_GE(a_frames.size(), 2u);
  ASSERT_EQ(a_frames.back().type, ResponseFrame::Type::kError);
  EXPECT_EQ(a_frames.back().error.code, ErrorCode::kCancelled);

  const StatsFrame stats = server.stats();
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.accepted, 2u);
}

TEST(ServerAdmissionTest, QueuedRequestRunsOnceAWorkerFrees) {
  // Same single-worker setup, but the queued request is allowed to run:
  // once A is cancelled the worker must pick B up and finish it
  // normally — admission defers work, it must not lose it.
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;

  ChaseRequest a = MakeChase("a", kInfiniteProgram);
  a.events = true;
  ChaseRequest b = MakeChase("b", "P(a).\nP(x) -> Q(x).\n");
  b.payload = true;
  GatedTransport transport;
  transport.Push(SerializeRequest(a));
  transport.Push(SerializeRequest(b), SawEvent("a"));
  transport.Push(SerializeCancel("a"), SawAck("b"));

  Server server(options);
  server.Serve(&transport);
  auto frames = transport.frames();

  auto b_frames = FramesFor(frames, "b");
  ASSERT_EQ(b_frames.size(), 2u);
  ASSERT_EQ(b_frames[1].type, ResponseFrame::Type::kResult);
  EXPECT_EQ(b_frames[1].result.outcome, "terminated");
  EXPECT_EQ(b_frames[1].result.payload, "P(a)\nQ(a)\n");
  EXPECT_EQ(server.stats().completed, 1u);
}

/// One live TCP server for the concurrency matrix.
struct LiveServer {
  explicit LiveServer(const ServerOptions& options) : server(options) {
    auto bound = TcpListener::Bind(0);
    EXPECT_TRUE(bound.ok());
    listener = std::make_unique<TcpListener>(std::move(*bound));
    thread = std::thread([this] { listener->Run(&server); });
  }
  ~LiveServer() {
    listener->Stop();
    thread.join();
  }
  Server server;
  std::unique_ptr<TcpListener> listener;
  std::thread thread;
};

TEST(ServerTcpTest, DeterministicPayloadsAcrossTheConcurrencyMatrix) {
  const std::string rules = ChainProgram(12);
  auto program = api::Program::Parse(rules);
  ASSERT_TRUE(program.ok());
  auto reference = api::Session(*program).Chase();
  ASSERT_TRUE(reference.ok());
  const std::string expected = reference->ToSortedString();
  ASSERT_FALSE(expected.empty());

  // Scheduler width x per-request chase threads. Every payload from
  // every client in every cell must equal the direct single-threaded
  // api::Session answer, byte for byte.
  for (unsigned workers : {1u, 4u}) {
    for (std::uint32_t threads : {1u, 4u}) {
      ServerOptions options;
      options.max_inflight = workers;
      LiveServer live(options);
      constexpr int kClients = 4;
      constexpr int kRequests = 3;
      std::vector<std::string> mismatches(kClients);
      std::vector<std::thread> pool;
      for (int c = 0; c < kClients; ++c) {
        pool.emplace_back([&, c] {
          auto client = Client::Connect(live.listener->port());
          if (!client.ok()) {
            mismatches[c] = client.status().ToString();
            return;
          }
          for (int r = 0; r < kRequests; ++r) {
            ChaseRequest request = MakeChase(
                "c" + std::to_string(c) + "-" + std::to_string(r), rules);
            request.payload = true;
            request.num_threads = threads;
            auto outcome = client->RunChase(request);
            if (!outcome.ok() || !outcome->ok) {
              mismatches[c] = "request failed";
              return;
            }
            if (outcome->result.payload != expected) {
              mismatches[c] = "payload diverged";
              return;
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(mismatches[c], "")
            << "client " << c << " at workers=" << workers
            << " threads=" << threads;
      }
    }
  }
}

TEST(ServerTcpTest, PingStatsAndCancelOverTcp) {
  ServerOptions options;
  LiveServer live(options);
  auto client = Client::Connect(live.listener->port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->Send(SerializePing()).ok());
  auto pong = client->ReadFrame();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, ResponseFrame::Type::kPong);

  // Park an infinite chase, cancel it from the same connection.
  ChaseRequest chase = MakeChase("park", kInfiniteProgram);
  ASSERT_TRUE(client->Send(SerializeRequest(chase)).ok());
  auto ack = client->ReadFrame();
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, ResponseFrame::Type::kAck);
  ASSERT_TRUE(client->Send(SerializeCancel("park")).ok());
  auto terminal = client->ReadFrame();
  ASSERT_TRUE(terminal.ok());
  ASSERT_EQ(terminal->type, ResponseFrame::Type::kError);
  EXPECT_EQ(terminal->error.code, ErrorCode::kCancelled);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cancelled, 1u);
  EXPECT_EQ(stats->accepted, 1u);
}

}  // namespace
}  // namespace server
}  // namespace nuchase
