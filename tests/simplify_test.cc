#include <gtest/gtest.h>

#include "chase/chase.h"
#include "rewrite/simplify.h"
#include "tgd/classify.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace rewrite {
namespace {

TEST(IdPatternTest, FirstOccurrenceNumbering) {
  core::SymbolTable symbols;
  core::Term x = symbols.InternVariable("x");
  core::Term y = symbols.InternVariable("y");
  core::Term z = symbols.InternVariable("z");
  // The paper's example: id(x,y,x,z,y) = (1,2,1,3,2).
  EXPECT_EQ(IdPattern({x, y, x, z, y}),
            (std::vector<std::uint32_t>{1, 2, 1, 3, 2}));
  EXPECT_EQ(IdPattern({x}), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(IdPattern({}), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(IdPattern({x, x, x}), (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(SimplifyAtomTest, CollapsesRepeatedTerms) {
  core::SymbolTable symbols;
  Simplifier simplifier(&symbols);
  auto r = symbols.InternPredicate("R", 3);
  core::Term a = *symbols.InternConstant("a");
  core::Term b = *symbols.InternConstant("b");
  core::Atom simple = simplifier.SimplifyAtom(core::Atom(*r, {a, b, a}));
  EXPECT_EQ(symbols.predicate_name(simple.predicate), "R[1,2,1]");
  EXPECT_EQ(symbols.arity(simple.predicate), 2u);
  ASSERT_EQ(simple.args.size(), 2u);
  EXPECT_EQ(simple.args[0], a);
  EXPECT_EQ(simple.args[1], b);

  core::PredicateId original;
  std::vector<std::uint32_t> pattern;
  ASSERT_TRUE(simplifier.Origin(simple.predicate, &original, &pattern));
  EXPECT_EQ(original, *r);
  EXPECT_EQ(pattern, (std::vector<std::uint32_t>{1, 2, 1}));
}

TEST(SimplifyDatabaseTest, PatternsSeparateFacts) {
  core::SymbolTable symbols;
  Simplifier simplifier(&symbols);
  core::Database db;
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "a"}).ok());
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "b"}).ok());
  core::Database simple = simplifier.SimplifyDatabase(db);
  EXPECT_EQ(simple.size(), 2u);
  EXPECT_EQ(simple.Predicates().size(), 2u);  // R[1,1] and R[1,2]
}

TEST(SimplifyTgdsTest, RejectsNonLinear) {
  core::SymbolTable symbols;
  auto tgds =
      tgd::ParseTgdSet(&symbols, "R(x, y), S(x) -> T(x).");
  ASSERT_TRUE(tgds.ok());
  Simplifier simplifier(&symbols);
  auto simple = simplifier.SimplifyTgds(*tgds);
  EXPECT_FALSE(simple.ok());
  EXPECT_EQ(simple.status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SimplifyTgdsTest, OutputIsSimpleLinear) {
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(
      &symbols, "R(x, y, x) -> R(y, z, y), R(x, x, z).");
  ASSERT_TRUE(tgds.ok());
  Simplifier simplifier(&symbols);
  auto simple = simplifier.SimplifyTgds(*tgds);
  ASSERT_TRUE(simple.ok()) << simple.status().ToString();
  EXPECT_EQ(tgd::Classify(*simple), tgd::TgdClass::kSimpleLinear);
  EXPECT_GE(simple->size(), 2u);  // identity + merged specialization
}

TEST(SimplifyTgdsTest, SpecializationCount) {
  // Body R(x,y,z) with 3 distinct variables: specializations follow the
  // "restricted growth" pattern: f(x)=x; f(y)∈{x,y}; f(z)∈{images,z}.
  // Counts: 1 · 2 · (2..3) = Bell(3) = 5.
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols, "R(x, y, z) -> P(x).");
  ASSERT_TRUE(tgds.ok());
  Simplifier simplifier(&symbols);
  auto simple = simplifier.SimplifyTgds(*tgds);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->size(), 5u);
}

TEST(SimplifyTgdsTest, Example71SimplificationTerminates) {
  // Example 7.1: Σ = { R(x,x) → ∃z R(z,x) } is not D-weakly-acyclic for
  // D = {R(a,b)}, yet chase(D,Σ) = D. Simplification fixes the analysis:
  // simple(D) = {R[1,2](a,b)} while the only simplification with a
  // special cycle lives on R[1,1].
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols, "R(x, x) -> R(z, x).");
  ASSERT_TRUE(tgds.ok());
  Simplifier simplifier(&symbols);
  auto simple = simplifier.SimplifyTgds(*tgds);
  ASSERT_TRUE(simple.ok());
  // The body R(x,x) already has a single distinct variable: exactly one
  // specialization.
  EXPECT_EQ(simple->size(), 1u);
  EXPECT_EQ(symbols.predicate_name(simple->tgd(0).body()[0].predicate),
            "R[1,1]");
}

// --- Proposition 7.3: simplification preserves finiteness and maxdepth. --

struct SimplifyCase {
  const char* name;
  const char* program;
  bool finite;
};

class SimplifyPreservationTest
    : public ::testing::TestWithParam<SimplifyCase> {};

TEST_P(SimplifyPreservationTest, FinitenessAndDepthArePreserved) {
  const SimplifyCase& param = GetParam();
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols, param.program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  Simplifier simplifier(&symbols);
  auto simple_tgds = simplifier.SimplifyTgds(program->tgds);
  ASSERT_TRUE(simple_tgds.ok());
  core::Database simple_db = simplifier.SimplifyDatabase(program->database);

  chase::ChaseOptions options;
  options.max_atoms = 20000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, program->tgds, program->database, options);
  chase::ChaseResult simplified =
      chase::RunChase(&symbols, *simple_tgds, simple_db, options);

  EXPECT_EQ(original.Terminated(), param.finite) << param.name;
  // Item (1) of Proposition 7.3.
  EXPECT_EQ(original.Terminated(), simplified.Terminated()) << param.name;
  // Item (2): maxdepth(D,Σ) = maxdepth(simple(D), simple(Σ)) — for
  // infinite chases compare the bounded prefixes' depth only as ≥ 1.
  if (param.finite) {
    EXPECT_EQ(original.stats.max_depth, simplified.stats.max_depth)
        << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimplifyPreservationTest,
    ::testing::Values(
        SimplifyCase{"example71", "R(a, b). R(x, x) -> R(z, x).", true},
        // R(a,a) fires R(x,x) → ∃z R(z,x) once; the produced atom has
        // distinct arguments, so the chase still terminates.
        SimplifyCase{"example71-selfloop", "R(a, a). R(x, x) -> R(z, x).",
                     true},
        SimplifyCase{"simple-chain",
                     "R(a, b). R(x, y) -> S(y, z). S(x, y) -> T(x).",
                     true},
        SimplifyCase{"repeat-head",
                     "P(a). P(x) -> R(x, x). R(x, x) -> S(x, z, z).",
                     true},
        SimplifyCase{"self-feeding",
                     "R(a, b). R(x, y) -> R(y, z).", false},
        SimplifyCase{"diamond",
                     "R(a, b). R(x, y) -> S(x, y, x). "
                     "S(x, y, x) -> T(y). S(x, y, z) -> U(z, w).",
                     true}),
    [](const ::testing::TestParamInfo<SimplifyCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

// Simplification of the Theorem 7.6 lower-bound family stays linear-sized
// in the family parameters and preserves termination.
TEST(SimplifyTgdsTest, LinearLowerBoundFamilySimplifies) {
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeLinearLowerBound(&symbols, 1, 1, 2);
  ASSERT_EQ(tgd::Classify(w.tgds), tgd::TgdClass::kLinear);
  Simplifier simplifier(&symbols);
  auto simple = simplifier.SimplifyTgds(w.tgds);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(tgd::Classify(*simple), tgd::TgdClass::kSimpleLinear);

  core::Database simple_db = simplifier.SimplifyDatabase(w.database);
  chase::ChaseOptions options;
  options.max_atoms = 100000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  chase::ChaseResult simplified =
      chase::RunChase(&symbols, *simple, simple_db, options);
  ASSERT_TRUE(original.Terminated());
  ASSERT_TRUE(simplified.Terminated());
  EXPECT_EQ(original.stats.max_depth, simplified.stats.max_depth);
}

}  // namespace
}  // namespace rewrite
}  // namespace nuchase
