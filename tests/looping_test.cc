#include <gtest/gtest.h>

#include "chase/chase.h"
#include "saturation/type_oracle.h"
#include "termination/looping.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

namespace nuchase {
namespace termination {
namespace {

class LoopingTest : public ::testing::Test {
 protected:
  tgd::Program Parse(const std::string& text) {
    auto p = tgd::ParseProgram(&symbols_, text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  core::SymbolTable symbols_;
};

TEST_F(LoopingTest, GoalEntailedMakesTheLoopSpin) {
  // Alarm() is entailed: Smoke(a) → Fire(a) → Alarm(). The looped
  // program must therefore be non-terminating.
  tgd::Program p = Parse(
      "Smoke(a).\n"
      "Smoke(x) -> Fire(x).\n"
      "Fire(x) -> Alarm().\n");
  auto alarm = symbols_.FindPredicate("Alarm");
  ASSERT_TRUE(alarm.ok());
  auto looped = ApplyLoopingOperator(&symbols_, p.tgds, p.database,
                                     *alarm);
  ASSERT_TRUE(looped.ok()) << looped.status().ToString();
  // Guardedness is preserved (the reduction stays within G).
  EXPECT_TRUE(tgd::ClassContainedIn(tgd::Classify(looped->tgds),
                                    tgd::TgdClass::kGuarded));

  auto d = Decide(&symbols_, looped->tgds, looped->database);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->decision, Decision::kDoesNotTerminate);

  chase::ChaseOptions options;
  options.max_atoms = 10000;
  EXPECT_FALSE(chase::RunChase(&symbols_, looped->tgds,
                               looped->database, options)
                   .Terminated());
}

TEST_F(LoopingTest, GoalNotEntailedKeepsTermination) {
  // No Smoke fact: Alarm() is not entailed, the loop rule never fires,
  // and the looped program terminates.
  tgd::Program p = Parse(
      "Dust(a).\n"
      "Smoke(x) -> Fire(x).\n"
      "Fire(x) -> Alarm().\n");
  auto alarm = symbols_.FindPredicate("Alarm");
  ASSERT_TRUE(alarm.ok());
  auto looped = ApplyLoopingOperator(&symbols_, p.tgds, p.database,
                                     *alarm);
  ASSERT_TRUE(looped.ok());

  chase::ChaseResult r =
      chase::RunChase(&symbols_, looped->tgds, looped->database);
  EXPECT_TRUE(r.Terminated());
}

TEST_F(LoopingTest, AgreesWithTheTypeOracleOnPae) {
  // The reduction's correctness statement, cross-checked against the
  // saturation-based PAE decider on a family of programs.
  struct Case {
    const char* program;
    bool entailed;
  };
  const Case cases[] = {
      {"Smoke(a). Smoke(x) -> Fire(x). Fire(x) -> Alarm().", true},
      {"Dust(a). Smoke(x) -> Fire(x). Fire(x) -> Alarm().", false},
      {"E(a, b). E(x, y) -> P(y, z). P(y, z) -> Alarm().", true},
      {"E(a, a). E(x, y), P(y) -> Alarm(). Q(x) -> P(x).", false},
  };
  for (const Case& c : cases) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols, c.program);
    ASSERT_TRUE(p.ok());
    auto alarm = symbols.FindPredicate("Alarm");
    if (!alarm.ok()) {
      auto interned = symbols.InternPredicate("Alarm", 0);
      ASSERT_TRUE(interned.ok());
      alarm = *interned;
    }

    auto oracle = saturation::TypeOracle::Create(
        symbols, p->tgds, saturation::TypeOracle::Options{});
    ASSERT_TRUE(oracle.ok()) << c.program;
    auto entailed = oracle->EntailsPropositional(p->database, *alarm);
    ASSERT_TRUE(entailed.ok()) << entailed.status().ToString();
    EXPECT_EQ(*entailed, c.entailed) << c.program;

    auto looped =
        ApplyLoopingOperator(&symbols, p->tgds, p->database, *alarm);
    ASSERT_TRUE(looped.ok()) << c.program;
    auto d = Decide(&symbols, looped->tgds, looped->database);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(d->decision == Decision::kDoesNotTerminate, c.entailed)
        << c.program;
  }
}

TEST_F(LoopingTest, RejectsNonPropositionalGoal) {
  tgd::Program p = Parse("R(a, b). R(x, y) -> S(y).");
  auto r = symbols_.FindPredicate("R");
  ASSERT_TRUE(r.ok());
  auto looped = ApplyLoopingOperator(&symbols_, p.tgds, p.database, *r);
  EXPECT_FALSE(looped.ok());
  EXPECT_EQ(looped.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(LoopingTest, RejectsClashingLoopPredicate) {
  tgd::Program p = Parse("Smoke(a). Smoke(x) -> Alarm().");
  auto alarm = symbols_.FindPredicate("Alarm");
  ASSERT_TRUE(alarm.ok());
  auto looped = ApplyLoopingOperator(&symbols_, p.tgds, p.database,
                                     *alarm, "Smoke");
  EXPECT_FALSE(looped.ok());
}

}  // namespace
}  // namespace termination
}  // namespace nuchase
