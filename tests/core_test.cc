#include <gtest/gtest.h>

#include "core/atom.h"
#include "core/database.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/symbol_table.h"
#include "core/term.h"

namespace nuchase {
namespace core {
namespace {

TEST(TermTest, EncodesKindAndIndex) {
  Term t(TermKind::kNull, 12345);
  EXPECT_TRUE(t.IsNull());
  EXPECT_FALSE(t.IsConstant());
  EXPECT_EQ(t.index(), 12345u);
  EXPECT_EQ(Term::FromBits(t.bits()), t);
}

TEST(TermTest, DistinctKindsCompareUnequal) {
  EXPECT_NE(Term(TermKind::kConstant, 0), Term(TermKind::kNull, 0));
  EXPECT_NE(Term(TermKind::kConstant, 0), Term(TermKind::kVariable, 0));
}

TEST(SymbolTableTest, InternPredicateIsIdempotent) {
  SymbolTable symbols;
  auto p1 = symbols.InternPredicate("R", 2);
  auto p2 = symbols.InternPredicate("R", 2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);
  EXPECT_EQ(symbols.arity(*p1), 2u);
  EXPECT_EQ(symbols.predicate_name(*p1), "R");
}

TEST(SymbolTableTest, ArityMismatchIsRejected) {
  SymbolTable symbols;
  ASSERT_TRUE(symbols.InternPredicate("R", 2).ok());
  auto bad = symbols.InternPredicate("R", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SymbolTableTest, FindPredicate) {
  SymbolTable symbols;
  ASSERT_TRUE(symbols.InternPredicate("R", 1).ok());
  EXPECT_TRUE(symbols.FindPredicate("R").ok());
  EXPECT_FALSE(symbols.FindPredicate("S").ok());
}

TEST(SymbolTableTest, ConstantsAndVariablesAreInterned) {
  SymbolTable symbols;
  Term a1 = *symbols.InternConstant("a");
  Term a2 = *symbols.InternConstant("a");
  Term x = symbols.InternVariable("a");  // same text, different sort
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, x);
  EXPECT_EQ(symbols.constant_name(a1), "a");
  EXPECT_EQ(symbols.variable_name(x), "a");
}

TEST(SymbolTableTest, NullDepths) {
  SymbolTable symbols;
  Term n0 = *symbols.MakeNull(0);
  Term n3 = *symbols.MakeNull(3);
  Term c = *symbols.InternConstant("c");
  EXPECT_EQ(symbols.depth(n0), 0u);
  EXPECT_EQ(symbols.depth(n3), 3u);
  EXPECT_EQ(symbols.depth(c), 0u);
  EXPECT_NE(n0, n3);
}

TEST(AtomTest, EqualityAndIsFact) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  Term a = *symbols.InternConstant("a");
  Term n = *symbols.MakeNull(1);
  Atom fact(*r, {a, a});
  Atom with_null(*r, {a, n});
  EXPECT_TRUE(fact.IsFact());
  EXPECT_FALSE(with_null.IsFact());
  EXPECT_NE(fact, with_null);
  EXPECT_EQ(fact.ToString(symbols), "R(a, a)");
}

TEST(SchemaTest, PositionsOfTerm) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 3);
  Term x = symbols.InternVariable("x");
  Term y = symbols.InternVariable("y");
  Atom atom(*r, {x, y, x});
  auto pos = PositionsOfTerm(atom, x);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], Position(*r, 0));
  EXPECT_EQ(pos[1], Position(*r, 2));
  EXPECT_EQ(VariablesOf(atom).size(), 2u);
}

TEST(SchemaTest, AllPositions) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  auto s = symbols.InternPredicate("S", 1);
  auto all = AllPositions({*r, *s}, symbols);
  EXPECT_EQ(all.size(), 3u);
}

TEST(InstanceTest, InsertDeduplicates) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Instance inst;
  auto [i1, fresh1] = inst.Insert(Atom(*r, {a, b}));
  auto [i2, fresh2] = inst.Insert(Atom(*r, {a, b}));
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(inst.size(), 1u);
  EXPECT_TRUE(inst.Contains(Atom(*r, {a, b})));
  EXPECT_FALSE(inst.Contains(Atom(*r, {b, a})));
}

TEST(InstanceTest, PositionIndex) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Term c = *symbols.InternConstant("c");
  Instance inst;
  inst.Insert(Atom(*r, {a, b}));
  inst.Insert(Atom(*r, {a, c}));
  inst.Insert(Atom(*r, {b, c}));
  EXPECT_EQ(inst.AtomsWithPredicate(*r).size(), 3u);
  EXPECT_EQ(inst.AtomsWithTermAt(*r, 0, a).size(), 2u);
  EXPECT_EQ(inst.AtomsWithTermAt(*r, 1, c).size(), 2u);
  EXPECT_EQ(inst.AtomsWithTermAt(*r, 1, a).size(), 0u);
}

TEST(InstanceTest, ActiveDomainIsIncrementalAndOrdered) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Term n = *symbols.MakeNull(1);
  Instance inst;
  inst.Insert(Atom(*r, {a, n}));
  // Maintained incrementally, in deterministic first-occurrence order.
  EXPECT_EQ(inst.ActiveDomain(), (std::vector<Term>{a, n}));
  inst.Insert(Atom(*r, {b, a}));
  EXPECT_EQ(inst.ActiveDomain(), (std::vector<Term>{a, n, b}));
  // Duplicate insert adds nothing.
  inst.Insert(Atom(*r, {b, a}));
  EXPECT_EQ(inst.ActiveDomain().size(), 3u);
}

TEST(InstanceTest, FindReturnsIndex) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 1);
  Term a = *symbols.InternConstant("a");
  Instance inst;
  auto [idx, fresh] = inst.Insert(Atom(*r, {a}));
  ASSERT_TRUE(fresh);
  AtomIndex found = 999;
  EXPECT_TRUE(inst.Find(Atom(*r, {a}), &found));
  EXPECT_EQ(found, idx);
  Term b = *symbols.InternConstant("b");
  EXPECT_FALSE(inst.Find(Atom(*r, {b}), &found));
}

TEST(DatabaseTest, RejectsNonGroundFacts) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 1);
  Term x = symbols.InternVariable("x");
  Database db;
  EXPECT_FALSE(db.AddFact(Atom(*r, {x})).ok());
  Term n = *symbols.MakeNull(0);
  EXPECT_FALSE(db.AddFact(Atom(*r, {n})).ok());
}

TEST(DatabaseTest, AddFactByNameAndDedup) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "b"}).ok());
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.Predicates().size(), 1u);
  EXPECT_EQ(db.ActiveDomain().size(), 2u);
}

TEST(DatabaseTest, ToInstanceRoundTrip) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact(&symbols, "S", {"a"}).ok());
  Instance inst = db.ToInstance();
  EXPECT_EQ(inst.size(), 2u);
  for (const Atom& f : db.facts()) EXPECT_TRUE(inst.Contains(f));
}

TEST(DatabaseTest, SortedStringIsStable) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.AddFact(&symbols, "B", {"b"}).ok());
  ASSERT_TRUE(db.AddFact(&symbols, "A", {"a"}).ok());
  EXPECT_EQ(db.ToSortedString(symbols), "A(a)\nB(b)\n");
}

TEST(InstanceTest, InsertTupleFastPathMatchesAtomWrapper) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Instance inst;
  std::vector<Term> tuple{a, b};
  auto [i1, fresh1] = inst.InsertTuple(*r, TermSpan(tuple));
  EXPECT_TRUE(fresh1);
  // The wrapper and the fast path dedup against each other.
  auto [i2, fresh2] = inst.Insert(Atom(*r, {a, b}));
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i1, i2);
  AtomIndex found = 0;
  EXPECT_TRUE(inst.FindTuple(*r, TermSpan(tuple), &found));
  EXPECT_EQ(found, i1);
  EXPECT_EQ(inst.PredicateArity(*r), 2u);
}

TEST(InstanceTest, AtomViewReadsTheArena) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 2);
  auto s = symbols.InternPredicate("S", 1);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Instance inst;
  inst.Insert(Atom(*r, {a, b}));
  inst.Insert(Atom(*s, {b}));
  AtomView v0 = inst.atom(0);
  AtomView v1 = inst.atom(1);
  EXPECT_EQ(v0.predicate(), *r);
  EXPECT_EQ(v0.arity(), 2u);
  EXPECT_EQ(v0.arg(0), a);
  EXPECT_EQ(v0.arg(1), b);
  EXPECT_EQ(v0.ToString(symbols), "R(a, b)");
  EXPECT_EQ(v0.ToAtom(), Atom(*r, {a, b}));
  EXPECT_TRUE(v0.IsFact());
  EXPECT_EQ(v1.predicate(), *s);
  EXPECT_EQ(v1.arity(), 1u);
  // Views survive later growth: offsets are stable and the arena is
  // resolved through the owning vector.
  for (int i = 0; i < 1000; ++i) {
    inst.Insert(Atom(*s, {*symbols.InternConstant("c" + std::to_string(i))}));
  }
  EXPECT_EQ(v0.arg(1), b);
  EXPECT_EQ(v1.arg(0), b);
}

TEST(InstanceTest, PredicateArityIsZeroForUnseenPredicates) {
  SymbolTable symbols;
  auto low = symbols.InternPredicate("Low", 2);
  auto high = symbols.InternPredicate("High", 3);
  Term a = *symbols.InternConstant("a");
  Instance inst;
  // Only the higher predicate id gets atoms: the arity table now spans
  // the lower id without having recorded it.
  inst.Insert(Atom(*high, {a, a, a}));
  EXPECT_EQ(inst.PredicateArity(*high), 3u);
  EXPECT_EQ(inst.PredicateArity(*low), 0u);
  EXPECT_EQ(inst.PredicateArity(*high + 1000), 0u);
}

TEST(InstanceTest, ZeroAryPredicates) {
  SymbolTable symbols;
  auto p = symbols.InternPredicate("Alarm", 0);
  Instance inst;
  auto [idx, fresh] = inst.Insert(Atom(*p, {}));
  EXPECT_TRUE(fresh);
  EXPECT_FALSE(inst.Insert(Atom(*p, {})).second);
  EXPECT_TRUE(inst.Contains(Atom(*p, {})));
  EXPECT_EQ(inst.atom(idx).arity(), 0u);
  EXPECT_EQ(inst.arena_terms(), 0u);
}

TEST(InstanceTest, ArenaAccountingIsExact) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 3);
  Term a = *symbols.InternConstant("a");
  Instance inst;
  EXPECT_EQ(inst.arena_bytes(), 0u);
  inst.Insert(Atom(*r, {a, a, a}));
  EXPECT_EQ(inst.arena_terms(), 3u);
  EXPECT_EQ(inst.arena_bytes(), 3 * sizeof(Term));
  inst.Insert(Atom(*r, {a, a, a}));  // duplicate: arena unchanged
  EXPECT_EQ(inst.arena_terms(), 3u);
}

TEST(InstanceTest, DedupSurvivesSlotTableGrowth) {
  SymbolTable symbols;
  auto r = symbols.InternPredicate("R", 1);
  Instance inst;
  std::vector<Term> constants;
  for (int i = 0; i < 500; ++i) {
    Term c = *symbols.InternConstant("c" + std::to_string(i));
    constants.push_back(c);
    auto [idx, fresh] = inst.Insert(Atom(*r, {c}));
    EXPECT_TRUE(fresh);
    EXPECT_EQ(idx, static_cast<AtomIndex>(i));
  }
  // After many rehashes every atom is still found at its original index.
  for (int i = 0; i < 500; ++i) {
    AtomIndex found = 0;
    ASSERT_TRUE(inst.Find(Atom(*r, {constants[i]}), &found));
    EXPECT_EQ(found, static_cast<AtomIndex>(i));
    EXPECT_FALSE(inst.Insert(Atom(*r, {constants[i]})).second);
  }
  EXPECT_EQ(inst.size(), 500u);
}

}  // namespace
}  // namespace core
}  // namespace nuchase
