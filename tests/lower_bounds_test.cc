#include <gtest/gtest.h>

#include "chase/chase.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {
namespace {

std::uint64_t CountPredicate(const core::SymbolTable& symbols,
                             const core::Instance& instance,
                             const std::string& name) {
  auto pred = symbols.FindPredicate(name);
  EXPECT_TRUE(pred.ok()) << name;
  return instance.AtomsWithPredicate(*pred).size();
}

// --- Theorem 6.5 (SL): |chase| ≥ ℓ · m^{n·m}, met with equality on R_n. --

struct SlParams {
  std::uint64_t ell;
  std::uint32_t n, m;
};

class SlLowerBoundTest : public ::testing::TestWithParam<SlParams> {};

TEST_P(SlLowerBoundTest, MeetsTheBound) {
  const SlParams& p = GetParam();
  core::SymbolTable symbols;
  Workload w = MakeSlLowerBound(&symbols, p.ell, p.n, p.m);
  ASSERT_EQ(tgd::Classify(w.tgds), tgd::TgdClass::kSimpleLinear);
  ASSERT_EQ(w.database.size(), p.ell);

  chase::ChaseOptions options;
  options.max_atoms = 5'000'000;
  chase::ChaseResult result =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  ASSERT_TRUE(result.Terminated()) << w.name;

  double bound = SlLowerBoundValue(p.ell, p.n, p.m);
  EXPECT_GE(static_cast<double>(result.instance.size()), bound) << w.name;
  // The R_n relation alone realizes the bound exactly (Claim E.1).
  std::string rn = "R" + std::to_string(p.n) + "_" +
                   std::to_string(p.n) + "_" + std::to_string(p.m);
  EXPECT_EQ(static_cast<double>(
                CountPredicate(symbols, result.instance, rn)),
            bound)
      << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlLowerBoundTest,
    ::testing::Values(SlParams{1, 1, 2}, SlParams{1, 2, 2},
                      SlParams{2, 1, 2}, SlParams{1, 1, 3},
                      SlParams{3, 2, 2}, SlParams{1, 2, 3}),
    [](const ::testing::TestParamInfo<SlParams>& info) {
      return "ell" + std::to_string(info.param.ell) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

TEST(SlLowerBoundTest, SyntacticDeciderAgrees) {
  core::SymbolTable symbols;
  Workload w = MakeSlLowerBound(&symbols, 2, 2, 2);
  auto d = termination::DecideSimpleLinear(&symbols, w.tgds, w.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, termination::Decision::kTerminates);
}

// --- Theorem 7.6 (L): |chase| ≥ ℓ · 2^{n·(2^m−1)}. ---------------------

struct LParams {
  std::uint64_t ell;
  std::uint32_t n, m;
};

class LinearLowerBoundTest : public ::testing::TestWithParam<LParams> {};

TEST_P(LinearLowerBoundTest, MeetsTheBound) {
  const LParams& p = GetParam();
  core::SymbolTable symbols;
  Workload w = MakeLinearLowerBound(&symbols, p.ell, p.n, p.m);
  ASSERT_EQ(tgd::Classify(w.tgds), tgd::TgdClass::kLinear);

  chase::ChaseOptions options;
  options.max_atoms = 5'000'000;
  chase::ChaseResult result =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  ASSERT_TRUE(result.Terminated()) << w.name;

  double bound = LinearLowerBoundValue(p.ell, p.n, p.m);
  std::string rn = "R" + std::to_string(p.n) + "_" +
                   std::to_string(p.n) + "_" + std::to_string(p.m);
  EXPECT_GE(static_cast<double>(
                CountPredicate(symbols, result.instance, rn)),
            bound)
      << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearLowerBoundTest,
    ::testing::Values(LParams{1, 1, 1}, LParams{1, 1, 2},
                      LParams{1, 2, 2}, LParams{2, 1, 3},
                      LParams{1, 2, 3}),
    [](const ::testing::TestParamInfo<LParams>& info) {
      return "ell" + std::to_string(info.param.ell) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

TEST(LinearLowerBoundTest, LinearDeciderAgrees) {
  core::SymbolTable symbols;
  Workload w = MakeLinearLowerBound(&symbols, 1, 2, 2);
  auto d = termination::DecideLinear(&symbols, w.tgds, w.database);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, termination::Decision::kTerminates);
}

// --- Theorem 8.4 (G): |chase| ≥ ℓ · 2^{2^n·(2^{2^m}−1)}. ----------------

struct GParams {
  std::uint64_t ell;
  std::uint32_t n, m;
};

class GuardedLowerBoundTest : public ::testing::TestWithParam<GParams> {};

TEST_P(GuardedLowerBoundTest, MeetsTheBound) {
  const GParams& p = GetParam();
  core::SymbolTable symbols;
  Workload w = MakeGuardedLowerBound(&symbols, p.ell, p.n, p.m);
  ASSERT_EQ(tgd::Classify(w.tgds), tgd::TgdClass::kGuarded);

  chase::ChaseOptions options;
  options.max_atoms = 5'000'000;
  chase::ChaseResult result =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  ASSERT_TRUE(result.Terminated()) << w.name;

  double bound = GuardedLowerBoundValue(p.ell, p.n, p.m);
  std::string node = "Node_" + std::to_string(p.n) + "_" +
                     std::to_string(p.m);
  EXPECT_GE(static_cast<double>(
                CountPredicate(symbols, result.instance, node)),
            bound)
      << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuardedLowerBoundTest,
    ::testing::Values(GParams{1, 1, 1}, GParams{2, 1, 1}),
    [](const ::testing::TestParamInfo<GParams>& info) {
      return "ell" + std::to_string(info.param.ell) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

TEST(LowerBoundValuesTest, ClosedForms) {
  EXPECT_EQ(SlLowerBoundValue(1, 1, 2), 4);       // m^{n·m} = 2^2
  EXPECT_EQ(SlLowerBoundValue(3, 2, 2), 3 * 16);  // 3 · 2^4
  EXPECT_EQ(LinearLowerBoundValue(1, 1, 1), 2);   // 2^{1·(2−1)}
  EXPECT_EQ(LinearLowerBoundValue(1, 2, 2), 64);  // 2^{2·3}
  EXPECT_EQ(GuardedLowerBoundValue(1, 1, 1), 64);  // 2^{2·(2^2−1)}
}

}  // namespace
}  // namespace workload
}  // namespace nuchase
