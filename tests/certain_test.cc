#include <gtest/gtest.h>

#include "query/certain.h"
#include <set>

#include "tgd/parser.h"

namespace nuchase {
namespace query {
namespace {

class CertainAnswersTest : public ::testing::Test {
 protected:
  tgd::Program Parse(const std::string& text) {
    auto p = tgd::ParseProgram(&symbols_, text);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return std::move(*p);
  }

  core::Atom MakeAtom(const std::string& pred,
                      const std::vector<core::Term>& args) {
    auto id = symbols_.FindPredicate(pred);
    EXPECT_TRUE(id.ok()) << pred;
    return core::Atom(*id, args);
  }

  core::SymbolTable symbols_;
};

TEST_F(CertainAnswersTest, InferredFactsAreCertain) {
  // Dept(d) is not stored for "sales" but follows from the ontology.
  tgd::Program p = Parse(
      "Emp(alice, sales). Emp(bob, eng).\n"
      "Emp(x, d) -> Dept(d).\n");
  core::Term d = symbols_.InternVariable("qd");
  AnswerQuery q{{MakeAtom("Dept", {d})}, {d}};
  auto answers = CertainAnswers(&symbols_, p.tgds, p.database, q);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  std::set<core::Term> got{(*answers)[0][0], (*answers)[1][0]};
  EXPECT_TRUE(got.count(*symbols_.InternConstant("eng")));
  EXPECT_TRUE(got.count(*symbols_.InternConstant("sales")));
}

TEST_F(CertainAnswersTest, NullWitnessesAreNotCertain) {
  // Every department has SOME manager, but no specific constant is a
  // certain manager: the labelled null must not leak into the answers.
  tgd::Program p = Parse(
      "Dept(sales).\n"
      "Dept(d) -> Mgr(d, m).\n");
  core::Term d = symbols_.InternVariable("qd");
  core::Term m = symbols_.InternVariable("qm");
  AnswerQuery who{{MakeAtom("Mgr", {d, m})}, {d, m}};
  auto answers = CertainAnswers(&symbols_, p.tgds, p.database, who);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());

  // The Boolean-style projection onto d alone IS certain: sales
  // certainly has a manager.
  AnswerQuery which{{MakeAtom("Mgr", {d, m})}, {d}};
  auto depts = CertainAnswers(&symbols_, p.tgds, p.database, which);
  ASSERT_TRUE(depts.ok());
  ASSERT_EQ(depts->size(), 1u);
  EXPECT_EQ((*depts)[0][0], *symbols_.InternConstant("sales"));
}

TEST_F(CertainAnswersTest, JoinsThroughInferredAtoms) {
  // Mgr(m,d) → Emp(m,d): managers are employees; the join Emp ⋈ Emp on
  // the department closes over inferred tuples. Answers must still be
  // null-free pairs of constants.
  tgd::Program p = Parse(
      "Emp(alice, sales). Mgr(carol, sales).\n"
      "Mgr(m, d) -> Emp(m, d).\n");
  core::Term e1 = symbols_.InternVariable("qe1");
  core::Term e2 = symbols_.InternVariable("qe2");
  core::Term d = symbols_.InternVariable("qd");
  AnswerQuery q{{MakeAtom("Emp", {e1, d}), MakeAtom("Emp", {e2, d})},
                {e1, e2}};
  auto answers = CertainAnswers(&symbols_, p.tgds, p.database, q);
  ASSERT_TRUE(answers.ok());
  // {alice,carol} × {alice,carol}.
  EXPECT_EQ(answers->size(), 4u);
}

TEST_F(CertainAnswersTest, RejectsUnboundAnswerVariable) {
  tgd::Program p = Parse("R(a, b).");
  core::Term x = symbols_.InternVariable("qx");
  core::Term y = symbols_.InternVariable("qy");
  AnswerQuery q{{MakeAtom("R", {x, x})}, {y}};
  auto answers = CertainAnswers(&symbols_, p.tgds, p.database, q);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(CertainAnswersTest, NonTerminatingChaseIsReported) {
  tgd::Program p = Parse("R(a, b). R(x, y) -> R(y, z).");
  core::Term x = symbols_.InternVariable("qx");
  core::Term y = symbols_.InternVariable("qy");
  AnswerQuery q{{MakeAtom("R", {x, y})}, {x}};
  CertainAnswersOptions options;
  options.max_atoms = 5000;
  auto answers =
      CertainAnswers(&symbols_, p.tgds, p.database, q, options);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(),
            util::StatusCode::kResourceExhausted);
}

TEST_F(CertainAnswersTest, ConstantsInQueryAtoms) {
  tgd::Program p = Parse(
      "Emp(alice, sales). Emp(bob, eng).\n"
      "Emp(x, d) -> Dept(d).\n");
  core::Term e = symbols_.InternVariable("qe");
  AnswerQuery q{{MakeAtom("Emp", {e, *symbols_.InternConstant("eng")})},
                {e}};
  auto answers = CertainAnswers(&symbols_, p.tgds, p.database, q);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], *symbols_.InternConstant("bob"));
}

TEST_F(CertainAnswersTest, MonotoneInTheDatabase) {
  tgd::Program small = Parse(
      "Emp(alice, sales).\n"
      "Emp(x, d) -> Dept(d).\n");
  core::SymbolTable symbols2;
  auto big = tgd::ParseProgram(&symbols2,
                               "Emp(alice, sales). Emp(bob, eng).\n"
                               "Emp(x, d) -> Dept(d).\n");
  ASSERT_TRUE(big.ok());

  core::Term d1 = symbols_.InternVariable("qd");
  AnswerQuery q1{{MakeAtom("Dept", {d1})}, {d1}};
  auto a1 = CertainAnswers(&symbols_, small.tgds, small.database, q1);

  core::Term d2 = symbols2.InternVariable("qd");
  auto dept2 = symbols2.FindPredicate("Dept");
  ASSERT_TRUE(dept2.ok());
  AnswerQuery q2{{core::Atom(*dept2, {d2})}, {d2}};
  auto a2 = CertainAnswers(&symbols2, big->tgds, big->database, q2);

  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_LT(a1->size(), a2->size());
}

TEST_F(CertainAnswersTest, ToStringRendersTheQuery) {
  tgd::Program p = Parse("R(a, b).");
  core::Term x = symbols_.InternVariable("x");
  core::Term y = symbols_.InternVariable("y");
  AnswerQuery q{{MakeAtom("R", {x, y})}, {x}};
  EXPECT_EQ(q.ToString(symbols_), "?(x) :- R(x, y)");
}

}  // namespace
}  // namespace query
}  // namespace nuchase
