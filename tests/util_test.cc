#include <gtest/gtest.h>

#include <cerrno>

#include "util/hash.h"
#include "util/parse.h"
#include "util/status.h"
#include "util/table.h"

namespace nuchase {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad rule");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(HashTest, CombineChangesSeed) {
  std::size_t seed = 0;
  HashCombine(&seed, 123);
  EXPECT_NE(seed, 0u);
}

TEST(HashTest, VectorHashDistinguishesOrder) {
  VectorHash<std::uint32_t> h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({1, 2}), h({1, 2}));
}

TEST(HashTest, VectorHashDistinguishesLength) {
  VectorHash<std::uint32_t> h;
  EXPECT_NE(h({}), h({0}));
  EXPECT_NE(h({0}), h({0, 0}));
}

TEST(TableTest, RendersAlignedColumns) {
  Table t("demo", {"name", "count"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "100"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, FormatCountSmallAndHuge) {
  EXPECT_EQ(FormatCount(42), "42");
  EXPECT_EQ(FormatCount(1000000), "1000000");
  EXPECT_EQ(FormatCount(1e12).substr(0, 1), "~");
}

TEST(ParseCountTest, AcceptsPlainDigitStringsUpToMax) {
  unsigned long long v = 99;
  EXPECT_TRUE(ParseCount("0", 10, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseCount("42", 100, &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseCount("100", 100, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(ParseCount("18446744073709551615",
                         ~0ull, &v));
  EXPECT_EQ(v, ~0ull);
}

TEST(ParseCountTest, RejectsEverySpellingStrtoulAccepts) {
  // The whole point of the strict parser: every skip strtoull performs
  // on its own (whitespace, signs) and every suffix it tolerates is an
  // error here, as is a value past max or past unsigned long long.
  unsigned long long v = 99;
  EXPECT_FALSE(ParseCount(nullptr, 10, &v));
  EXPECT_FALSE(ParseCount("", 10, &v));
  EXPECT_FALSE(ParseCount(" 4", 10, &v));
  EXPECT_FALSE(ParseCount("\t4", 10, &v));
  EXPECT_FALSE(ParseCount("+4", 10, &v));
  EXPECT_FALSE(ParseCount("-4", 10, &v));
  EXPECT_FALSE(ParseCount("4 ", 10, &v));
  EXPECT_FALSE(ParseCount("4x", 10, &v));
  EXPECT_FALSE(ParseCount("0x8", 10, &v));
  EXPECT_FALSE(ParseCount("11", 10, &v));
  EXPECT_FALSE(ParseCount("18446744073709551616", ~0ull, &v));
  // Failure never writes through the out pointer.
  EXPECT_EQ(v, 99u);
}

TEST(ParseCountTest, ResetsErrnoBeforeParsing) {
  // A stale ERANGE from an earlier call must not poison a valid parse —
  // the bug bare strtoul callers hit when they test errno without
  // resetting it.
  unsigned long long v = 0;
  ASSERT_FALSE(ParseCount("18446744073709551616", ~0ull, &v));
  // errno is now ERANGE; the next parse must still succeed.
  EXPECT_TRUE(ParseCount("7", 10, &v));
  EXPECT_EQ(v, 7u);
}

}  // namespace
}  // namespace util
}  // namespace nuchase
