// Cross-checks of the performance-critical paths against brute-force
// oracles, plus parser robustness: the per-position index must agree
// with a full scan, the indexed UCQ evaluator with naive enumeration,
// and the parser must reject garbage with a Status rather than crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/trigger.h"
#include "core/instance.h"
#include "query/evaluator.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

/// xorshift32 for deterministic pseudo-random data.
std::uint32_t Next(std::uint32_t* s) {
  std::uint32_t x = *s;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return *s = x;
}

core::Instance RandomInstance(core::SymbolTable* symbols,
                              std::uint32_t seed, std::uint32_t atoms,
                              std::uint32_t predicates,
                              std::uint32_t constants) {
  core::Instance out;
  std::uint32_t rng = seed == 0 ? 1 : seed;
  std::vector<core::PredicateId> preds;
  for (std::uint32_t p = 0; p < predicates; ++p) {
    auto id = symbols->InternPredicate(
        "P" + std::to_string(seed) + "_" + std::to_string(p),
        1 + p % 3);
    preds.push_back(*id);
  }
  for (std::uint32_t i = 0; i < atoms; ++i) {
    core::PredicateId pred = preds[Next(&rng) % preds.size()];
    std::vector<core::Term> args;
    for (std::uint32_t a = 0; a < symbols->arity(pred); ++a) {
      args.push_back(*symbols->InternConstant(
          "c" + std::to_string(Next(&rng) % constants)));
    }
    out.Insert(core::Atom(pred, std::move(args)));
  }
  return out;
}

TEST(InstanceIndexTest, PositionIndexAgreesWithFullScan) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    core::SymbolTable symbols;
    core::Instance inst = RandomInstance(&symbols, seed, 300, 4, 12);
    for (std::uint32_t p = 0; p < symbols.num_predicates(); ++p) {
      for (std::uint32_t pos = 0; pos < symbols.arity(p); ++pos) {
        for (std::uint32_t c = 0; c < 12; ++c) {
          core::Term t = *symbols.InternConstant("c" + std::to_string(c));
          std::vector<core::AtomIndex> scan;
          for (core::AtomIndex i = 0; i < inst.size(); ++i) {
            core::AtomView a = inst.atom(i);
            if (a.predicate() == p && a.arg(pos) == t) scan.push_back(i);
          }
          EXPECT_EQ(inst.AtomsWithTermAt(p, pos, t), scan)
              << "seed " << seed << " pred " << p << " pos " << pos;
        }
      }
    }
  }
}

TEST(InstanceIndexTest, InsertIsIdempotent) {
  core::SymbolTable symbols;
  core::Instance inst;
  auto pred = symbols.InternPredicate("R", 2);
  core::Term a = *symbols.InternConstant("a");
  core::Term b = *symbols.InternConstant("b");
  auto [i1, fresh1] = inst.Insert(core::Atom(*pred, {a, b}));
  auto [i2, fresh2] = inst.Insert(core::Atom(*pred, {a, b}));
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst.AtomsWithPredicate(*pred).size(), 1u);
  EXPECT_EQ(inst.AtomsWithTermAt(*pred, 0, a).size(), 1u);
}

TEST(HomomorphismFinderTest, IndexedAndScanModesAgree) {
  // The same enumeration with and without the position index must
  // produce the same set of homomorphisms (as multisets of frontier
  // bindings).
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    core::SymbolTable symbols;
    core::Instance inst = RandomInstance(&symbols, seed, 200, 3, 8);
    // Query: join the first two predicates on their first argument.
    auto p0 = symbols.FindPredicate("P" + std::to_string(seed) + "_0");
    auto p1 = symbols.FindPredicate("P" + std::to_string(seed) + "_1");
    ASSERT_TRUE(p0.ok());
    ASSERT_TRUE(p1.ok());
    core::Term x = symbols.InternVariable("x");
    core::Term y = symbols.InternVariable("y");
    std::vector<core::Atom> query{
        core::Atom(*p0, {x}),
        core::Atom(*p1, {x, y})};

    auto collect = [&](bool use_index) {
      std::vector<std::pair<core::Term, core::Term>> out;
      chase::HomomorphismFinder finder(inst, use_index);
      finder.Enumerate(query, [&](const chase::Substitution& h) {
        out.emplace_back(h.at(x), h.at(y));
        return true;
      });
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(collect(true), collect(false)) << "seed " << seed;
  }
}

TEST(UcqEvaluatorTest, AgreesWithBruteForceOnRandomInstances) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    core::SymbolTable symbols;
    core::Instance inst = RandomInstance(&symbols, seed, 60, 3, 5);
    // Boolean CQ: some P_2(x, y, z) with x = z (repeated variable).
    auto p2 = symbols.FindPredicate("P" + std::to_string(seed) + "_2");
    ASSERT_TRUE(p2.ok());
    ASSERT_EQ(symbols.arity(*p2), 3u);
    core::Term x = symbols.InternVariable("x");
    core::Term y = symbols.InternVariable("y");
    query::ConjunctiveQuery cq{{core::Atom(*p2, {x, y, x})}};
    bool brute = false;
    for (core::AtomIndex i = 0; i < inst.size(); ++i) {
      core::AtomView a = inst.atom(i);
      if (a.predicate() == *p2 && a.arg(0) == a.arg(2)) brute = true;
    }
    query::UnionOfConjunctiveQueries ucq{{cq}};
    EXPECT_EQ(query::Satisfies(inst, ucq), brute) << "seed " << seed;
  }
}

TEST(ParserRobustnessTest, GarbageYieldsStatusNotCrash) {
  const char* cases[] = {
      "",                       // empty program is fine (no error)
      "R(",                     // truncated
      "R(a, b)",                // missing '.'
      "-> S(x).",               // empty body
      "R(x, y) ->.",            // empty head
      "R(x, y) -> S(x, y",      // truncated head
      "R(a, b). R(a).",         // arity clash
      "R(x, y) -> S(y). extra", // trailing junk
      "1234(a).",               // numeric predicate
      "R(x, y), -> S(x).",      // comma before arrow
      "R(x,, y) -> S(x).",      // double comma
      "R(a, b) -> S(a).",       // constants in a rule: rules are
                                // variable-only by convention; the
                                // identifiers parse as variables, so
                                // this one is accepted
      "R(x, y) -> S(x)",        // unterminated rule (no '.')
      "R(x, y) -> S(x), ",      // rule trailing off after a comma
      "R(x, y) -> ",            // arrow into EOF
      "R(x y) -> S(x).",        // missing comma between args
      "R(x, y) R(y, z) -> S(x).",  // missing comma between atoms
      "R(x, y) -> -> S(x).",    // double arrow
      "R(x, y) -> S().",        // empty argument list in head
      "R(). ",                  // empty argument list in fact
      "R(x, y) -> S(x). Q(a, b). Q(a, b, c).",  // late arity clash
      "R(x, y) -> Q(x). Q(a, b).",  // rule/fact arity clash
      ".",                      // stray period
      "....",                   // periods only
      "(a, b).",                // missing predicate name
      "R(a, b)) .",             // unbalanced parens
      "R((a, b).",              // nested open paren
  };
  for (const char* text : cases) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols, text);
    // Must not crash; specific cases below pin expected outcomes.
    (void)p;
  }

  core::SymbolTable symbols;
  EXPECT_TRUE(tgd::ParseProgram(&symbols, "").ok());
  EXPECT_FALSE(tgd::ParseProgram(&symbols, "R(").ok());
  EXPECT_FALSE(tgd::ParseProgram(&symbols, "-> S(x).").ok());
  EXPECT_FALSE(
      tgd::ParseProgram(&symbols, "Q(a, b). Q(a).").ok());  // arity
}

TEST(ParserRobustnessTest, MalformedRulesYieldStatusWithMessage) {
  // The classes of damage the CLI is most likely to meet in hand-edited
  // .tgd files: unterminated rules, arity mismatches, empty heads. Each
  // must produce a non-ok Status carrying a non-empty message — never a
  // crash, never a silent success.
  const char* must_fail[] = {
      "R(x, y) -> S(x)",               // unterminated rule
      "R(x, y) -> ",                   // arrow into EOF
      "R(x, y) ->.",                   // empty head
      "R(a, b). R(x) -> S(x).",        // body arity != fact arity
      "R(x, y) -> S(x). S(a, b).",     // head arity != fact arity
      "R(x, y) -> S(x), T(x, y",       // truncated multi-atom head
      "R(x y) -> S(x).",               // missing comma
      "R(x, y) R(y, z) -> S(x).",      // missing comma between atoms
  };
  for (const char* text : must_fail) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols, text);
    ASSERT_FALSE(p.ok()) << "accepted malformed input: " << text;
    EXPECT_FALSE(p.status().ToString().empty()) << text;
  }
}

TEST(ParserRobustnessTest, PathologicalInputsDoNotCrash) {
  core::SymbolTable symbols;
  // Deeply repetitive and oversized inputs: the parser must stay
  // iterative / bounded, returning ok or a Status either way.
  std::string many_facts;
  for (int i = 0; i < 5000; ++i) {
    many_facts += "R(c" + std::to_string(i) + ", c" +
                  std::to_string(i + 1) + ").\n";
  }
  EXPECT_TRUE(tgd::ParseProgram(&symbols, many_facts).ok());

  std::string long_body = "R(x0, x1)";
  for (int i = 1; i < 500; ++i) {
    long_body += ", R(x" + std::to_string(i) + ", x" +
                 std::to_string(i + 1) + ")";
  }
  long_body += " -> S(x0).";
  EXPECT_TRUE(tgd::ParseProgram(&symbols, long_body).ok());

  std::string opens(10000, '(');
  EXPECT_FALSE(tgd::ParseProgram(&symbols, "R" + opens).ok());

  std::string no_newline(65536, 'a');
  auto p = tgd::ParseProgram(&symbols, no_newline);
  (void)p;  // ok or error; must not crash

  EXPECT_FALSE(tgd::ParseProgram(&symbols, "R(x, y) -> S(x)\n"
                                           "Q(a).").ok());
}

TEST(ParserRobustnessTest, CommentsAndWhitespace) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "% leading comment\n"
                             "  R(a, b).   # trailing comment\n"
                             "\n\n"
                             "R(x, y) -> S(y, z). % rule comment\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->database.size(), 1u);
  EXPECT_EQ(p->tgds.size(), 1u);
}

TEST(ChaseDeterminismTest, RepeatedRunsProduceTheSameInstance) {
  // The semi-oblivious chase result is unique [20]; our engine must
  // also be bit-stable run to run (deterministic null allocation).
  for (int run = 0; run < 3; ++run) {
    core::SymbolTable s1, s2;
    auto p1 = tgd::ParseProgram(&s1,
                                "G(a, b). H(b).\n"
                                "G(x, y), H(y) -> K(x, y, z).\n"
                                "K(x, y, z) -> H(z), L(z, x).\n");
    auto p2 = tgd::ParseProgram(&s2,
                                "G(a, b). H(b).\n"
                                "G(x, y), H(y) -> K(x, y, z).\n"
                                "K(x, y, z) -> H(z), L(z, x).\n");
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    chase::ChaseResult r1 = chase::RunChase(&s1, p1->tgds, p1->database);
    chase::ChaseResult r2 = chase::RunChase(&s2, p2->tgds, p2->database);
    EXPECT_EQ(r1.instance.ToSortedString(s1),
              r2.instance.ToSortedString(s2));
  }
}

}  // namespace
}  // namespace nuchase
