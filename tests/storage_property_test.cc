// Property test for the columnar storage layer: core::Instance (flat
// term arena + AtomRef directory + arena-probing open-addressing dedup)
// must behave exactly like a naive reference container — an
// insertion-ordered vector of owning Atoms with a set for dedup —
// under random insert / find / iterate sequences over mixed predicates
// and arities, including the delta rotation of the semi-naive engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/symbol_table.h"

namespace nuchase {
namespace core {
namespace {

/// The naive reference: insertion-ordered atoms, set-based dedup, scan-
/// based lookups and domain.
struct ReferenceInstance {
  std::vector<Atom> atoms;
  std::set<Atom> dedup;

  std::pair<AtomIndex, bool> Insert(const Atom& a) {
    auto it = dedup.find(a);
    if (it != dedup.end()) {
      auto pos = std::find(atoms.begin(), atoms.end(), a);
      return {static_cast<AtomIndex>(pos - atoms.begin()), false};
    }
    dedup.insert(a);
    atoms.push_back(a);
    return {static_cast<AtomIndex>(atoms.size() - 1), true};
  }

  bool Find(const Atom& a, AtomIndex* idx) const {
    auto pos = std::find(atoms.begin(), atoms.end(), a);
    if (pos == atoms.end()) return false;
    *idx = static_cast<AtomIndex>(pos - atoms.begin());
    return true;
  }

  std::vector<Term> Domain() const {
    std::vector<Term> out;
    std::set<std::uint32_t> seen;
    for (const Atom& a : atoms) {
      for (Term t : a.args) {
        if (seen.insert(t.bits()).second) out.push_back(t);
      }
    }
    return out;
  }

  std::string ToSortedString(const SymbolScope& symbols) const {
    std::vector<std::string> lines;
    for (const Atom& a : atoms) lines.push_back(a.ToString(symbols));
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& l : lines) {
      out += l;
      out += '\n';
    }
    return out;
  }
};

class StorageFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StorageFuzz, ArenaAgreesWithNaiveReference) {
  const std::uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  SymbolTable symbols;

  // Mixed predicates with mixed arities, including a 0-ary one.
  std::vector<PredicateId> preds;
  for (std::uint32_t p = 0; p < 6; ++p) {
    auto id = symbols.InternPredicate("P" + std::to_string(p), p % 4);
    ASSERT_TRUE(id.ok());
    preds.push_back(*id);
  }
  std::vector<Term> pool;
  for (std::uint32_t c = 0; c < 12; ++c) {
    pool.push_back(*symbols.InternConstant("c" + std::to_string(c)));
  }
  for (std::uint32_t n = 0; n < 4; ++n) {
    pool.push_back(*symbols.MakeNull(1 + n % 3));
  }

  auto random_atom = [&]() {
    PredicateId pred = preds[rng() % preds.size()];
    std::vector<Term> args;
    for (std::uint32_t i = 0; i < symbols.arity(pred); ++i) {
      args.push_back(pool[rng() % pool.size()]);
    }
    return Atom(pred, std::move(args));
  };

  Instance inst;
  ReferenceInstance ref;
  // Half the seeds exercise the delta machinery alongside.
  const bool track_delta = (seed % 2) == 0;
  if (track_delta) inst.EnableDeltaTracking();
  std::vector<Atom> rotation_window;  // fresh atoms since last rotation

  for (std::uint32_t step = 0; step < 900; ++step) {
    const std::uint32_t op = rng() % 100;
    if (op < 60) {
      // Insert (sometimes through the span fast path, sometimes via the
      // Atom wrapper, sometimes re-inserting an existing view's tuple —
      // the aliasing case).
      Atom a = random_atom();
      if (op < 10 && !inst.empty()) {
        AtomIndex i = static_cast<AtomIndex>(rng() % inst.size());
        AtomView v = inst.atom(i);
        auto [idx, fresh] = inst.InsertTuple(v.predicate(), v.terms());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(idx, i);
        continue;
      }
      auto got = (op % 2) == 0
                     ? inst.Insert(a)
                     : inst.InsertTuple(a.predicate, a.terms());
      auto want = ref.Insert(a);
      EXPECT_EQ(got, want) << "step " << step;
      if (track_delta && got.second) rotation_window.push_back(a);
    } else if (op < 85) {
      // Find/Contains on a mix of present and absent tuples.
      Atom a = random_atom();
      AtomIndex got_idx = 0, want_idx = 0;
      bool got = inst.Find(a, &got_idx);
      bool want = ref.Find(a, &want_idx);
      EXPECT_EQ(got, want);
      if (got && want) {
        EXPECT_EQ(got_idx, want_idx);
      }
      EXPECT_EQ(inst.ContainsTuple(a.predicate, a.terms()),
                ref.dedup.count(a) > 0);
    } else if (op < 95 || !track_delta) {
      // Iterate: every view must render the reference atom at its index
      // (spot-check a random window; full check after the loop).
      if (!inst.empty()) {
        AtomIndex i = static_cast<AtomIndex>(rng() % inst.size());
        EXPECT_EQ(inst.atom(i).ToAtom(), ref.atoms[i]);
      }
    } else {
      // Delta rotation: the atoms inserted since the previous rotation
      // become the current delta, grouped per predicate in insertion
      // order.
      EXPECT_EQ(inst.AdvanceDelta(), rotation_window.size());
      std::unordered_map<PredicateId, std::vector<Atom>> per_pred;
      for (const Atom& a : rotation_window) {
        per_pred[a.predicate].push_back(a);
      }
      for (PredicateId pred : preds) {
        const std::vector<AtomIndex>& delta =
            inst.DeltaAtomsWithPredicate(pred);
        const std::vector<Atom>& want = per_pred[pred];
        ASSERT_EQ(delta.size(), want.size());
        for (std::size_t k = 0; k < delta.size(); ++k) {
          EXPECT_EQ(inst.atom(delta[k]).ToAtom(), want[k]);
        }
      }
      rotation_window.clear();
    }
  }

  // Full structural comparison at the end.
  ASSERT_EQ(inst.size(), ref.atoms.size());
  std::uint64_t expected_terms = 0;
  for (AtomIndex i = 0; i < inst.size(); ++i) {
    AtomView v = inst.atom(i);
    EXPECT_EQ(v.ToAtom(), ref.atoms[i]) << "index " << i;
    EXPECT_EQ(v.arity(), ref.atoms[i].arity());
    expected_terms += v.arity();
    AtomIndex found = 0;
    ASSERT_TRUE(inst.Find(ref.atoms[i], &found));
    EXPECT_EQ(found, i);  // dedup stability: first insert wins forever
  }
  EXPECT_EQ(inst.arena_terms(), expected_terms);
  EXPECT_EQ(inst.arena_bytes(), expected_terms * sizeof(Term));
  EXPECT_EQ(inst.ActiveDomain(), ref.Domain());
  EXPECT_EQ(inst.ToSortedString(symbols), ref.ToSortedString(symbols));

  // Views obtained before further growth stay valid (the arena is
  // resolved through the vector object, offsets never move).
  if (!inst.empty()) {
    AtomView early = inst.atom(0);
    Atom expect_first = ref.atoms[0];
    for (std::uint32_t extra = 0; extra < 64; ++extra) {
      Atom a = random_atom();
      inst.Insert(a);
      ref.Insert(a);
    }
    EXPECT_EQ(early.ToAtom(), expect_first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace core
}  // namespace nuchase
