// Property test for the columnar storage layer: core::Instance (flat
// term arena + AtomRef directory + arena-probing open-addressing dedup)
// must behave exactly like a naive reference container — an
// insertion-ordered vector of owning Atoms with a set for dedup —
// under random insert / find / iterate sequences over mixed predicates
// and arities, including the delta rotation of the semi-naive engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/symbol_table.h"
#include "util/thread_pool.h"

namespace nuchase {
namespace core {
namespace {

/// The naive reference: insertion-ordered atoms, set-based dedup, scan-
/// based lookups and domain.
struct ReferenceInstance {
  std::vector<Atom> atoms;
  std::set<Atom> dedup;

  std::pair<AtomIndex, bool> Insert(const Atom& a) {
    auto it = dedup.find(a);
    if (it != dedup.end()) {
      auto pos = std::find(atoms.begin(), atoms.end(), a);
      return {static_cast<AtomIndex>(pos - atoms.begin()), false};
    }
    dedup.insert(a);
    atoms.push_back(a);
    return {static_cast<AtomIndex>(atoms.size() - 1), true};
  }

  bool Find(const Atom& a, AtomIndex* idx) const {
    auto pos = std::find(atoms.begin(), atoms.end(), a);
    if (pos == atoms.end()) return false;
    *idx = static_cast<AtomIndex>(pos - atoms.begin());
    return true;
  }

  std::vector<Term> Domain() const {
    std::vector<Term> out;
    std::set<std::uint32_t> seen;
    for (const Atom& a : atoms) {
      for (Term t : a.args) {
        if (seen.insert(t.bits()).second) out.push_back(t);
      }
    }
    return out;
  }

  std::string ToSortedString(const SymbolScope& symbols) const {
    std::vector<std::string> lines;
    for (const Atom& a : atoms) lines.push_back(a.ToString(symbols));
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& l : lines) {
      out += l;
      out += '\n';
    }
    return out;
  }
};

class StorageFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StorageFuzz, ArenaAgreesWithNaiveReference) {
  const std::uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  SymbolTable symbols;

  // Mixed predicates with mixed arities, including a 0-ary one.
  std::vector<PredicateId> preds;
  for (std::uint32_t p = 0; p < 6; ++p) {
    auto id = symbols.InternPredicate("P" + std::to_string(p), p % 4);
    ASSERT_TRUE(id.ok());
    preds.push_back(*id);
  }
  std::vector<Term> pool;
  for (std::uint32_t c = 0; c < 12; ++c) {
    pool.push_back(*symbols.InternConstant("c" + std::to_string(c)));
  }
  for (std::uint32_t n = 0; n < 4; ++n) {
    pool.push_back(*symbols.MakeNull(1 + n % 3));
  }

  auto random_atom = [&]() {
    PredicateId pred = preds[rng() % preds.size()];
    std::vector<Term> args;
    for (std::uint32_t i = 0; i < symbols.arity(pred); ++i) {
      args.push_back(pool[rng() % pool.size()]);
    }
    return Atom(pred, std::move(args));
  };

  // A third of the seeds shrink the extents to 2^3 = 8 terms, so tuples
  // hit extent-boundary padding constantly; nothing observable may
  // change — padding is invisible to accounting, lookup and iteration.
  Instance inst(seed % 3 == 0 ? 3u : Instance::kDefaultExtentLog2);
  ReferenceInstance ref;
  // Half the seeds exercise the delta machinery alongside.
  const bool track_delta = (seed % 2) == 0;
  if (track_delta) inst.EnableDeltaTracking();
  std::vector<Atom> rotation_window;  // fresh atoms since last rotation

  for (std::uint32_t step = 0; step < 900; ++step) {
    const std::uint32_t op = rng() % 100;
    if (op < 60) {
      // Insert (sometimes through the span fast path, sometimes via the
      // Atom wrapper, sometimes re-inserting an existing view's tuple —
      // the aliasing case).
      Atom a = random_atom();
      if (op < 10 && !inst.empty()) {
        AtomIndex i = static_cast<AtomIndex>(rng() % inst.size());
        AtomView v = inst.atom(i);
        auto [idx, fresh] = inst.InsertTuple(v.predicate(), v.terms());
        EXPECT_FALSE(fresh);
        EXPECT_EQ(idx, i);
        continue;
      }
      auto got = (op % 2) == 0
                     ? inst.Insert(a)
                     : inst.InsertTuple(a.predicate, a.terms());
      auto want = ref.Insert(a);
      EXPECT_EQ(got, want) << "step " << step;
      if (track_delta && got.second) rotation_window.push_back(a);
    } else if (op < 85) {
      // Find/Contains on a mix of present and absent tuples.
      Atom a = random_atom();
      AtomIndex got_idx = 0, want_idx = 0;
      bool got = inst.Find(a, &got_idx);
      bool want = ref.Find(a, &want_idx);
      EXPECT_EQ(got, want);
      if (got && want) {
        EXPECT_EQ(got_idx, want_idx);
      }
      EXPECT_EQ(inst.ContainsTuple(a.predicate, a.terms()),
                ref.dedup.count(a) > 0);
    } else if (op < 95 || !track_delta) {
      // Iterate: every view must render the reference atom at its index
      // (spot-check a random window; full check after the loop).
      if (!inst.empty()) {
        AtomIndex i = static_cast<AtomIndex>(rng() % inst.size());
        EXPECT_EQ(inst.atom(i).ToAtom(), ref.atoms[i]);
      }
    } else {
      // Delta rotation: the atoms inserted since the previous rotation
      // become the current delta, grouped per predicate in insertion
      // order.
      EXPECT_EQ(inst.AdvanceDelta(), rotation_window.size());
      std::unordered_map<PredicateId, std::vector<Atom>> per_pred;
      for (const Atom& a : rotation_window) {
        per_pred[a.predicate].push_back(a);
      }
      for (PredicateId pred : preds) {
        const std::vector<AtomIndex>& delta =
            inst.DeltaAtomsWithPredicate(pred);
        const std::vector<Atom>& want = per_pred[pred];
        ASSERT_EQ(delta.size(), want.size());
        for (std::size_t k = 0; k < delta.size(); ++k) {
          EXPECT_EQ(inst.atom(delta[k]).ToAtom(), want[k]);
        }
      }
      rotation_window.clear();
    }
  }

  // Full structural comparison at the end.
  ASSERT_EQ(inst.size(), ref.atoms.size());
  std::uint64_t expected_terms = 0;
  for (AtomIndex i = 0; i < inst.size(); ++i) {
    AtomView v = inst.atom(i);
    EXPECT_EQ(v.ToAtom(), ref.atoms[i]) << "index " << i;
    EXPECT_EQ(v.arity(), ref.atoms[i].arity());
    expected_terms += v.arity();
    AtomIndex found = 0;
    ASSERT_TRUE(inst.Find(ref.atoms[i], &found));
    EXPECT_EQ(found, i);  // dedup stability: first insert wins forever
  }
  EXPECT_EQ(inst.arena_terms(), expected_terms);
  EXPECT_EQ(inst.arena_bytes(), expected_terms * sizeof(Term));
  EXPECT_EQ(inst.ActiveDomain(), ref.Domain());
  EXPECT_EQ(inst.ToSortedString(symbols), ref.ToSortedString(symbols));

  // Per-predicate views over the segmented layout: each predicate's
  // index list must be the reference sequence filtered to it (global
  // indexes, insertion order — the cross-predicate interleaving is
  // exactly what the per-segment atom lists must reconstruct), and the
  // per-position join index must agree tuple-for-tuple.
  for (PredicateId pred : preds) {
    std::vector<AtomIndex> want_idx;
    for (std::size_t i = 0; i < ref.atoms.size(); ++i) {
      if (ref.atoms[i].predicate == pred) {
        want_idx.push_back(static_cast<AtomIndex>(i));
      }
    }
    EXPECT_EQ(inst.AtomsWithPredicate(pred), want_idx);
    if (!want_idx.empty()) {
      EXPECT_EQ(inst.PredicateArity(pred), symbols.arity(pred));
    }
    for (std::uint32_t pos = 0; pos < symbols.arity(pred); ++pos) {
      for (Term t : pool) {
        std::vector<AtomIndex> want_at;
        for (AtomIndex i : want_idx) {
          if (ref.atoms[i].args[pos] == t) want_at.push_back(i);
        }
        EXPECT_EQ(inst.AtomsWithTermAt(pred, pos, t), want_at);
      }
    }
  }

  // Views obtained before further growth stay valid (the arena is
  // resolved through the vector object, offsets never move).
  if (!inst.empty()) {
    AtomView early = inst.atom(0);
    Atom expect_first = ref.atoms[0];
    for (std::uint32_t extra = 0; extra < 64; ++extra) {
      Atom a = random_atom();
      inst.Insert(a);
      ref.Insert(a);
    }
    EXPECT_EQ(early.ToAtom(), expect_first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// Drives InsertTupleBatch with random batches — intra-batch
/// duplicates, arena duplicates, 0-ary tuples, early-stopped merges —
/// and checks the callback sequence and the final state against the
/// equivalent serial InsertTuple loop (and the naive reference). Seeds
/// vary the worker pool (none / 3 / 8 workers, the latter far
/// oversubscribing this container) and the extent size: the batch path
/// must be byte-identical in every configuration.
class BatchFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchFuzz, BatchInsertAgreesWithSerialLoop) {
  const std::uint32_t seed = GetParam();
  std::mt19937 rng(seed);
  SymbolTable symbols;

  std::vector<PredicateId> preds;
  for (std::uint32_t p = 0; p < 5; ++p) {
    auto id = symbols.InternPredicate("B" + std::to_string(p), p % 4);
    ASSERT_TRUE(id.ok());
    preds.push_back(*id);
  }
  // A small term pool makes duplicates — within a batch, across
  // batches, and across dedup shards — common rather than accidental.
  std::vector<Term> terms_pool;
  for (std::uint32_t c = 0; c < 9; ++c) {
    terms_pool.push_back(*symbols.InternConstant("b" + std::to_string(c)));
  }

  std::optional<util::ThreadPool> pool;
  if (seed % 3 == 1) pool.emplace(3);
  if (seed % 3 == 2) pool.emplace(8);
  const std::uint32_t extent_log2 =
      seed % 2 == 0 ? 3u : Instance::kDefaultExtentLog2;
  Instance batched(extent_log2);
  Instance serial(extent_log2);
  ReferenceInstance ref;
  batched.EnableDeltaTracking();
  serial.EnableDeltaTracking();

  using Event = std::tuple<std::size_t, AtomIndex, bool>;
  for (std::uint32_t round = 0; round < 48; ++round) {
    std::vector<Term> buffer;
    std::vector<BatchTuple> tuples;
    const std::uint32_t count = rng() % 24;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!tuples.empty() && rng() % 4 == 0) {
        // Intra-batch duplicate: repeat an earlier tuple verbatim (at a
        // fresh buffer position, so it dedups by value, not by offset).
        const BatchTuple prev = tuples[rng() % tuples.size()];
        BatchTuple dup = prev;
        dup.begin = buffer.size();
        for (std::uint32_t a = 0; a < prev.arity; ++a) {
          buffer.push_back(buffer[prev.begin + a]);
        }
        tuples.push_back(dup);
        continue;
      }
      PredicateId pred = preds[rng() % preds.size()];
      BatchTuple t;
      t.pred = pred;
      t.begin = buffer.size();
      t.arity = symbols.arity(pred);
      for (std::uint32_t a = 0; a < t.arity; ++a) {
        buffer.push_back(terms_pool[rng() % terms_pool.size()]);
      }
      tuples.push_back(t);
    }

    // Some rounds veto the merge midway: the scrubbed tail must behave
    // as if those tuples were never offered (later batches re-insert
    // them fresh).
    const std::size_t stop_after =
        (rng() % 5 == 0 && !tuples.empty()) ? rng() % tuples.size() + 1
                                            : tuples.size() + 1;

    std::vector<Event> batch_events;
    std::size_t merged = batched.InsertTupleBatch(
        buffer.data(), tuples, pool.has_value() ? &*pool : nullptr,
        [&](std::size_t pos, AtomIndex idx, bool fresh) {
          batch_events.emplace_back(pos, idx, fresh);
          return batch_events.size() < stop_after;
        });

    std::vector<Event> serial_events;
    for (std::size_t i = 0;
         i < tuples.size() && serial_events.size() < stop_after; ++i) {
      const BatchTuple& t = tuples[i];
      TermSpan span(buffer.data() + t.begin, t.arity);
      auto [idx, fresh] = serial.InsertTuple(t.pred, span);
      serial_events.emplace_back(i, idx, fresh);
      ref.Insert(Atom(t.pred, span.ToVector()));
    }

    EXPECT_EQ(merged, batch_events.size());
    EXPECT_EQ(batch_events, serial_events) << "round " << round;
    if (rng() % 4 == 0) {
      EXPECT_EQ(batched.AdvanceDelta(), serial.AdvanceDelta());
    }
  }

  // Full structural comparison: directory, dedup, accounting, domain
  // and rendering all agree with the serial loop and the reference.
  ASSERT_EQ(batched.size(), serial.size());
  EXPECT_EQ(batched.arena_terms(), serial.arena_terms());
  EXPECT_EQ(batched.arena_bytes(), serial.arena_bytes());
  for (AtomIndex i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched.atom(i).ToAtom(), serial.atom(i).ToAtom());
    AtomIndex found = 0;
    ASSERT_TRUE(batched.Find(serial.atom(i).ToAtom(), &found));
    EXPECT_EQ(found, i);
  }
  EXPECT_EQ(batched.ActiveDomain(), serial.ActiveDomain());
  EXPECT_EQ(batched.ToSortedString(symbols), serial.ToSortedString(symbols));
  EXPECT_EQ(batched.ToSortedString(symbols), ref.ToSortedString(symbols));
  // The parallel per-predicate commits must leave every segment-derived
  // view — per-predicate lists, recorded arities, the per-position join
  // index — identical to the serial loop's, not merely the same global
  // directory.
  for (PredicateId pred : preds) {
    EXPECT_EQ(batched.AtomsWithPredicate(pred),
              serial.AtomsWithPredicate(pred));
    EXPECT_EQ(batched.PredicateArity(pred), serial.PredicateArity(pred));
    for (std::uint32_t pos = 0; pos < symbols.arity(pred); ++pos) {
      for (Term t : terms_pool) {
        EXPECT_EQ(batched.AtomsWithTermAt(pred, pos, t),
                  serial.AtomsWithTermAt(pred, pos, t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u));

/// Deterministic extent-boundary coverage: with 4-term extents an
/// arity-3 tuple cannot use a 1-term tail, so the second insert starts
/// a fresh extent. The padding must be invisible to accounting, the
/// first tuple's storage must not move, and 0-ary tuples (which store
/// no terms at all) must dedup like any other atom.
TEST(StorageExtents, BoundaryPaddingIsInvisible) {
  SymbolTable symbols;
  PredicateId r = *symbols.InternPredicate("R", 3);
  PredicateId z = *symbols.InternPredicate("Z", 0);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Term c = *symbols.InternConstant("c");

  Instance inst(/*extent_log2=*/2);
  std::vector<Term> t0{a, b, c};
  std::vector<Term> t1{b, c, a};
  auto [i0, f0] = inst.InsertTuple(r, TermSpan(t0));
  EXPECT_TRUE(f0);
  const Term* first = inst.TupleData(i0);
  auto [i1, f1] = inst.InsertTuple(r, TermSpan(t1));
  EXPECT_TRUE(f1);
  EXPECT_EQ(inst.arena_terms(), 6u);
  EXPECT_EQ(inst.arena_bytes(), 6 * sizeof(Term));
  EXPECT_EQ(inst.TupleData(i0), first);

  auto [zi, zf] = inst.InsertTuple(z, TermSpan());
  EXPECT_TRUE(zf);
  auto dup = inst.InsertTuple(z, TermSpan());
  EXPECT_EQ(dup.first, zi);
  EXPECT_FALSE(dup.second);
  EXPECT_EQ(inst.arena_terms(), 6u);

  AtomIndex found = 0;
  ASSERT_TRUE(inst.FindTuple(r, TermSpan(t1), &found));
  EXPECT_EQ(found, i1);
  EXPECT_EQ(inst.atom(i1).arg(2), a);
  EXPECT_EQ(inst.atom(zi).arity(), 0u);
}

/// An early-stopped merge must leave every segment exactly as if the
/// vetoed tail had never been offered — even though per-predicate
/// commits land segment-side (in parallel) before the serial merge
/// walks the batch. Covers both rollback shapes: a predicate whose
/// FIRST atom sat in the vetoed tail (its whole segment unwinds, arity
/// included) and a predicate keeping earlier atoms (only its raw tail
/// truncates).
TEST(StorageExtents, EarlyStopRollsBackSegments) {
  SymbolTable symbols;
  PredicateId p = *symbols.InternPredicate("P", 2);
  PredicateId q = *symbols.InternPredicate("Q", 3);
  Term a = *symbols.InternConstant("a");
  Term b = *symbols.InternConstant("b");
  Term c = *symbols.InternConstant("c");

  util::ThreadPool pool(3);
  Instance inst(/*extent_log2=*/2);
  std::vector<Term> seeded{a, b};
  auto [i0, f0] = inst.InsertTuple(p, TermSpan(seeded));
  ASSERT_TRUE(f0);

  // Batch: P(b,c), Q(a,b,c), P(c,a) — all fresh. Stop after the first
  // merge callback: Q's first-ever atom and P's second batch atom are
  // vetoed after their segments committed them.
  std::vector<Term> buffer{b, c, a, b, c, c, a};
  std::vector<BatchTuple> tuples(3);
  tuples[0] = {p, 0, 2};
  tuples[1] = {q, 2, 3};
  tuples[2] = {p, 5, 2};
  std::size_t merged = inst.InsertTupleBatch(
      buffer.data(), tuples, &pool,
      [&](std::size_t pos, AtomIndex idx, bool fresh) {
        EXPECT_EQ(pos, 0u);
        EXPECT_EQ(idx, 1u);
        EXPECT_TRUE(fresh);
        return false;  // veto everything after P(b,c)
      });
  EXPECT_EQ(merged, 1u);

  // Observable state: two P atoms, nothing else. Accounting is exact
  // (no phantom terms from the unwound commits), Q reverts to unseen,
  // and the vetoed tuples are genuinely absent, not tombstoned.
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.arena_terms(), 4u);
  EXPECT_EQ(inst.arena_bytes(), 4 * sizeof(Term));
  EXPECT_TRUE(inst.AtomsWithPredicate(q).empty());
  EXPECT_EQ(inst.PredicateArity(q), 0u);
  std::vector<Term> qt{a, b, c};
  std::vector<Term> pt{c, a};
  EXPECT_FALSE(inst.ContainsTuple(q, TermSpan(qt)));
  EXPECT_FALSE(inst.ContainsTuple(p, TermSpan(pt)));

  // Re-offering the vetoed tuples behaves as a first offer: fresh
  // inserts, contiguous global indexes, arity recorded anew.
  auto [qi, qf] = inst.InsertTuple(q, TermSpan(qt));
  EXPECT_TRUE(qf);
  EXPECT_EQ(qi, 2u);
  auto [pi, pf] = inst.InsertTuple(p, TermSpan(pt));
  EXPECT_TRUE(pf);
  EXPECT_EQ(pi, 3u);
  EXPECT_EQ(inst.PredicateArity(q), 3u);
  EXPECT_EQ(inst.arena_terms(), 9u);
  EXPECT_EQ(inst.atom(i0).arg(0), a);
  EXPECT_EQ(inst.atom(qi).arg(2), c);
  EXPECT_EQ(inst.AtomsWithPredicate(p),
            (std::vector<AtomIndex>{0, 1, 3}));
}

}  // namespace
}  // namespace core
}  // namespace nuchase
