// Tests for the bench results harness (bench/bench_util.h): explicit
// row recording, automatic table capture, JSON emission, and the
// environment-driven BENCH_<name>.json flush used by tools/run_benches.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "util/table.h"

namespace nuchase {
namespace bench {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string JsonFor(const BenchReporter& reporter) {
  std::ostringstream out;
  reporter.WriteJson(out);
  return out.str();
}

TEST(BenchReporterTest, ExplicitRowsRoundTripToJson) {
  BenchReporter reporter;
  reporter.SetBenchName("demo");
  reporter.SetClaim("f(n) is linear");
  reporter.BeginExperiment("scaling sweep");

  BenchRow row;
  row.params = {{"|D|", "1000"}, {"seed", "7"}};
  row.seconds = 0.25;
  row.atoms = 42;
  row.outcome = "terminated";
  reporter.Record(row);

  const std::string json = JsonFor(reporter);
  EXPECT_TRUE(Contains(json, "\"bench\": \"demo\"")) << json;
  EXPECT_TRUE(Contains(json, "\"claim\": \"f(n) is linear\"")) << json;
  EXPECT_TRUE(Contains(json, "\"experiment\": \"scaling sweep\"")) << json;
  EXPECT_TRUE(Contains(json, "\"|D|\": \"1000\"")) << json;
  EXPECT_TRUE(Contains(json, "\"seconds\": 0.250000")) << json;
  EXPECT_TRUE(Contains(json, "\"atoms\": 42")) << json;
  EXPECT_TRUE(Contains(json, "\"outcome\": \"terminated\"")) << json;
}

TEST(BenchReporterTest, RowWithExplicitExperimentCreatesIt) {
  BenchReporter reporter;
  BenchRow row;
  row.experiment = "named elsewhere";
  row.seconds = 1.5;
  reporter.Record(row);
  EXPECT_TRUE(Contains(JsonFor(reporter),
                       "\"experiment\": \"named elsewhere\""));
}

TEST(BenchReporterTest, TableCaptureLiftsTimingColumns) {
  util::Table table("sweep", {"workload", "chase(s)", "atoms", "decision"});
  table.AddRow({"emp-mgr", "0.1234", "99", "terminates"});
  table.AddRow({"random-g-1", "0.5000", "7", "does not"});

  BenchReporter reporter;
  reporter.SetBenchName("capture");
  reporter.RecordTable(table);

  const std::string json = JsonFor(reporter);
  EXPECT_TRUE(Contains(json, "\"experiment\": \"sweep\"")) << json;
  // Every column survives as a param...
  EXPECT_TRUE(Contains(json, "\"workload\": \"emp-mgr\"")) << json;
  EXPECT_TRUE(Contains(json, "\"chase(s)\": \"0.1234\"")) << json;
  // ...and the timing/size/verdict columns are promoted to fields.
  EXPECT_TRUE(Contains(json, "\"seconds\": 0.123400")) << json;
  EXPECT_TRUE(Contains(json, "\"atoms\": 99")) << json;
  EXPECT_TRUE(Contains(json, "\"outcome\": \"terminates\"")) << json;
}

TEST(BenchReporterTest, UnmeasuredTimingCellsDoNotBecomeZeroSeconds) {
  // bench_pae-style row: the oracle column holds "-" when skipped; the
  // real timing must come from the later chase(s) column, and a row
  // with no parseable timing at all must carry no "seconds" field.
  util::Table table("skips", {"workload", "oracle(s)", "chase(s)"});
  table.AddRow({"skipped-oracle", "-", "0.7500"});
  table.AddRow({"nothing-measured", "-", "-"});

  BenchReporter reporter;
  reporter.SetBenchName("skips");
  reporter.RecordTable(table);

  const std::string json = JsonFor(reporter);
  EXPECT_TRUE(Contains(json, "\"seconds\": 0.750000")) << json;
  EXPECT_FALSE(Contains(json, "\"seconds\": 0.000000")) << json;
}

TEST(BenchReporterTest, JsonStringsAreEscaped) {
  BenchReporter reporter;
  reporter.SetBenchName("esc");
  reporter.SetClaim("says \"hi\"\nand\ttabs \\ backslash");
  BenchRow row;
  row.outcome = "a\"b";
  reporter.Record(row);

  const std::string json = JsonFor(reporter);
  EXPECT_TRUE(Contains(json, "says \\\"hi\\\"\\nand\\ttabs \\\\ backslash"))
      << json;
  EXPECT_TRUE(Contains(json, "\"outcome\": \"a\\\"b\"")) << json;
}

TEST(BenchReporterTest, EmptyReporterWritesValidSkeleton) {
  BenchReporter reporter;
  reporter.SetBenchName("empty");
  EXPECT_TRUE(reporter.empty());
  const std::string json = JsonFor(reporter);
  EXPECT_TRUE(Contains(json, "\"experiments\": []")) << json;
}

TEST(BenchReporterTest, FlushToEnvWritesBenchJsonFile) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  std::string path = dir + "/BENCH_flush_test.json";
  std::remove(path.c_str());

  BenchReporter reporter;
  reporter.SetBenchName("flush_test");
  BenchRow row;
  row.seconds = 0.5;
  reporter.Record(row);

  ASSERT_EQ(unsetenv("NUCHASE_BENCH_JSON"), 0);
  ASSERT_EQ(unsetenv("NUCHASE_BENCH_JSON_DIR"), 0);
  EXPECT_FALSE(reporter.FlushToEnv());

  ASSERT_EQ(setenv("NUCHASE_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  EXPECT_TRUE(reporter.FlushToEnv());
  ASSERT_EQ(unsetenv("NUCHASE_BENCH_JSON_DIR"), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_TRUE(Contains(contents.str(), "\"bench\": \"flush_test\""));
  std::remove(path.c_str());
}

TEST(TableAccessorsTest, ExposeTitleHeadersRows) {
  util::Table table("t", {"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.title(), "t");
  ASSERT_EQ(table.headers().size(), 2u);
  EXPECT_EQ(table.headers()[1], "b");
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_EQ(table.rows()[0][0], "1");
}

}  // namespace
}  // namespace bench
}  // namespace nuchase
