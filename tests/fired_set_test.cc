// Unit tests for chase::FlatFiredSet — the collect phase's (σ, h)-dedup
// table. The chase only ever observes membership (Insert's bool and
// Contains), so these tests pin exactly that surface: first-insert /
// duplicate semantics across growth, epoch-tagged Reset, and the
// adversarial shapes open addressing has to survive (shared prefixes,
// length-only differences, empty keys).
#include "chase/fired_set.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace nuchase {
namespace chase {
namespace {

using Key = std::vector<std::uint32_t>;

TEST(FlatFiredSet, InsertIsFirstTimeOnlyAndContainsAgrees) {
  FlatFiredSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(Key{1, 2, 3}));

  EXPECT_TRUE(set.Insert(Key{1, 2, 3}));
  EXPECT_FALSE(set.Insert(Key{1, 2, 3}));
  EXPECT_TRUE(set.Contains(Key{1, 2, 3}));
  EXPECT_EQ(set.size(), 1u);

  // Shared-prefix and length-only variants are distinct keys: the rule
  // index prefixes every trigger key, so rules sharing a frontier image
  // differ only in one word, and a trigger of a shorter-frontier rule
  // can be a strict prefix of another's.
  EXPECT_TRUE(set.Insert(Key{1, 2}));
  EXPECT_TRUE(set.Insert(Key{1, 2, 3, 4}));
  EXPECT_TRUE(set.Insert(Key{2, 2, 3}));
  EXPECT_FALSE(set.Contains(Key{1}));
  EXPECT_EQ(set.size(), 4u);
}

TEST(FlatFiredSet, EmptyKeyIsAKey) {
  FlatFiredSet set;
  EXPECT_FALSE(set.Contains(Key{}));
  EXPECT_TRUE(set.Insert(Key{}));
  EXPECT_FALSE(set.Insert(Key{}));
  EXPECT_TRUE(set.Contains(Key{}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatFiredSet, SurvivesGrowthWithoutForgettingOrInventing) {
  FlatFiredSet set;
  // Push far past the 256-slot initial table (several doublings) and
  // re-check every key on both sides of each growth boundary.
  const std::uint32_t n = 5000;
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(set.Insert(Key{i, i ^ 0x9e37u, i * 3u})) << i;
    ASSERT_FALSE(set.Insert(Key{i, i ^ 0x9e37u, i * 3u})) << i;
  }
  EXPECT_EQ(set.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(set.Contains(Key{i, i ^ 0x9e37u, i * 3u})) << i;
    ASSERT_FALSE(set.Contains(Key{i, i ^ 0x9e37u, i * 3u + 1u})) << i;
  }
}

TEST(FlatFiredSet, ResetForgetsEverythingAndReusesCapacity) {
  FlatFiredSet set;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(set.Insert(Key{i}));
  }
  set.Reset();
  EXPECT_EQ(set.size(), 0u);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_FALSE(set.Contains(Key{i})) << i;
  }
  // The logically empty table accepts the same keys as first inserts.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(set.Insert(Key{i})) << i;
    ASSERT_FALSE(set.Insert(Key{i})) << i;
  }
  EXPECT_EQ(set.size(), 1000u);
}

TEST(FlatFiredSet, ManyEpochsStayIndependent) {
  FlatFiredSet set;
  // Each epoch inserts an overlapping window of keys; stale-epoch slots
  // from earlier generations must read as holes, not as members.
  for (std::uint32_t epoch = 0; epoch < 100; ++epoch) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(set.Insert(Key{epoch + i, epoch})) << epoch << " " << i;
    }
    ASSERT_FALSE(set.Contains(Key{epoch, epoch + 1}));
    ASSERT_EQ(set.size(), 50u);
    set.Reset();
    ASSERT_FALSE(set.Contains(Key{epoch, epoch}));
  }
}

TEST(FlatFiredSet, GrowthMidEpochKeepsPriorEpochsDead) {
  FlatFiredSet set;
  // Fill one epoch well past a growth boundary, reset, then grow again
  // in the next epoch: re-seating must drop stale slots rather than
  // resurrect them.
  for (std::uint32_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(set.Insert(Key{i, 7u}));
  }
  set.Reset();
  for (std::uint32_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(set.Insert(Key{i, 8u})) << i;
  }
  for (std::uint32_t i = 0; i < 600; ++i) {
    ASSERT_FALSE(set.Contains(Key{i, 7u})) << i;
    ASSERT_TRUE(set.Contains(Key{i, 8u})) << i;
  }
}

}  // namespace
}  // namespace chase
}  // namespace nuchase
