// Unit suite for graph::RelianceGraph — the rule-pair analysis behind
// the cross-rule collect scheduler — plus the api-level contracts that
// hang off it: the tgd::kMaxRules cap at Program analysis time and the
// restricted variant's opt-in restraint-guided firing order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/program.h"
#include "api/session.h"
#include "chase/chase.h"
#include "core/symbol_table.h"
#include "graph/reliance.h"
#include "tgd/parser.h"
#include "util/status.h"

namespace nuchase {
namespace graph {
namespace {

class RelianceTest : public ::testing::Test {
 protected:
  tgd::TgdSet ParseRules(const std::string& text) {
    auto tgds = tgd::ParseTgdSet(&symbols_, text);
    EXPECT_TRUE(tgds.ok()) << tgds.status().ToString();
    return *tgds;
  }
  core::SymbolTable symbols_;
};

TEST_F(RelianceTest, FeedsFollowsPredicateOverlap) {
  // 0: R feeds S-consumers; 1: S feeds T-consumers; 2: T feeds R-consumers.
  tgd::TgdSet tgds = ParseRules(
      "R(x, y) -> S(y, z). S(x, y) -> T(x). T(x) -> R(x, x).");
  RelianceGraph g(tgds);
  ASSERT_EQ(g.num_rules(), 3u);
  EXPECT_TRUE(g.Feeds(0, 1));
  EXPECT_TRUE(g.Feeds(1, 2));
  EXPECT_TRUE(g.Feeds(2, 0));
  EXPECT_FALSE(g.Feeds(1, 0));
  EXPECT_FALSE(g.Feeds(2, 1));
  EXPECT_FALSE(g.Feeds(0, 2));
  EXPECT_FALSE(g.Feeds(0, 0));  // R -> S... does not read S.
}

TEST_F(RelianceTest, PositiveRefinesFeedsOnExistentialPatterns) {
  // All four producers write B, so Feeds(r, 3) holds for each — but the
  // consumer's repeated-variable body B(y, y) only matches atoms whose
  // two entries can be equal. A fresh null is never equal to a frontier
  // image or to a different fresh null; a null is equal to itself.
  tgd::TgdSet tgds = ParseRules(
      "A(x) -> B(z, x)."   // 0: existential next to frontier — no
      "A(x) -> B(z, w)."   // 1: two distinct existentials — no
      "A(x) -> B(z, z)."   // 2: the same existential twice — yes
      "A(x) -> B(x, x)."   // 3: all-frontier — yes
      "B(y, y) -> C(y).");  // 4: the repeated-variable consumer
  RelianceGraph g(tgds);
  ASSERT_EQ(g.num_rules(), 5u);
  for (tgd::RuleIndex r = 0; r < 4; ++r) EXPECT_TRUE(g.Feeds(r, 4));
  EXPECT_FALSE(g.Positive(0, 4));
  EXPECT_FALSE(g.Positive(1, 4));
  EXPECT_TRUE(g.Positive(2, 4));
  EXPECT_TRUE(g.Positive(3, 4));
}

TEST_F(RelianceTest, RestrainsIsDirectional) {
  // The all-frontier head E(x, x) can be the atom that satisfies the
  // existential head E(x, z) (z may map to the frontier image), but the
  // existential head can never satisfy the all-frontier one: a head
  // frontier image predates any null the firing mints.
  tgd::TgdSet tgds = ParseRules("N(x) -> E(x, z). N(x) -> E(x, x).");
  RelianceGraph g(tgds);
  EXPECT_TRUE(g.Restrains(1, 0));
  EXPECT_FALSE(g.Restrains(0, 1));
  // A head trivially satisfies its own pattern.
  EXPECT_TRUE(g.Restrains(0, 0));
  EXPECT_TRUE(g.Restrains(1, 1));
}

TEST_F(RelianceTest, CollectGroupsSplitOnForwardFeeds) {
  // The quickstart chain: each rule feeds the next, so every forward
  // edge forces a flush — three singleton groups in Σ-order.
  tgd::TgdSet tgds = ParseRules(
      "Emp(x, d) -> Dept(d). Dept(d) -> Mgr(d, m). "
      "Mgr(d, m) -> Emp(m, d).");
  RelianceGraph g(tgds);
  const auto& groups = g.CollectGroups();
  ASSERT_EQ(groups.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(groups[i].size(), 1u);
    EXPECT_EQ(groups[i][0], static_cast<tgd::RuleIndex>(i));
  }
}

TEST_F(RelianceTest, IndependentFamiliesShareOneGroup) {
  // Three recursive rules over disjoint predicate families: each rule
  // feeds only itself (a harmless self-loop), so the greedy partition
  // keeps all of Σ in a single group — the shape the cross-rule
  // parallel collect exists for.
  tgd::TgdSet tgds = ParseRules(
      "A(x, y), MA(x) -> MA(y)."
      "B(x, y), MB(x) -> MB(y)."
      "C(x, y), MC(x) -> MC(y).");
  RelianceGraph g(tgds);
  const auto& groups = g.CollectGroups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0],
            (std::vector<tgd::RuleIndex>{0, 1, 2}));
}

TEST_F(RelianceTest, BackwardFeedsEdgeDoesNotSplit) {
  // Rule 1 feeds rule 0 (B into B-body), but no FORWARD edge exists:
  // under either schedule rule 0's collect precedes rule 1's apply, so
  // the pair legally shares a group.
  tgd::TgdSet tgds = ParseRules("B(x) -> C(x). A(x) -> B(x).");
  RelianceGraph g(tgds);
  EXPECT_FALSE(g.Feeds(0, 1));
  EXPECT_TRUE(g.Feeds(1, 0));
  ASSERT_EQ(g.CollectGroups().size(), 1u);
  EXPECT_EQ(g.CollectGroups()[0],
            (std::vector<tgd::RuleIndex>{0, 1}));
}

TEST_F(RelianceTest, SccIdsCondenseMutualRecursion) {
  // Rules 0 and 1 are mutually recursive through R and S; rule 2 lives
  // in its own component. Ids are densely renumbered in Σ-order.
  tgd::TgdSet tgds = ParseRules(
      "R(x, y) -> S(y, z). S(x, y) -> R(y, x). T(x) -> U(x).");
  RelianceGraph g(tgds);
  const auto& scc = g.SccIds();
  ASSERT_EQ(scc.size(), 3u);
  EXPECT_EQ(scc[0], scc[1]);
  EXPECT_NE(scc[0], scc[2]);
  EXPECT_EQ(g.num_sccs(), 2u);
  EXPECT_EQ(scc[0], 0u);
}

TEST_F(RelianceTest, RestraintOrderPlacesRestrainersFirst) {
  // The committed order-sensitivity program: within the {σ1, σ2} group
  // the all-frontier rule one-way-restrains the existential one, so the
  // guided order swaps them; the third rule is its own group.
  tgd::TgdSet tgds = ParseRules(
      "N(x) -> E(x, z). N(x) -> E(x, x). E(x, y) -> N(y).");
  RelianceGraph g(tgds);
  const auto& groups = g.CollectGroups();
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_EQ(groups[0], (std::vector<tgd::RuleIndex>{0, 1}));
  EXPECT_EQ(g.RestraintOrder(groups[0]),
            (std::vector<tgd::RuleIndex>{1, 0}));
  EXPECT_EQ(g.RestraintOrder(groups[1]),
            (std::vector<tgd::RuleIndex>{2}));
}

TEST_F(RelianceTest, RestraintOrderFallsBackOnMutualRestraints) {
  // Two all-frontier heads restrain each other symmetrically: no
  // one-way edge exists, so the guided order degenerates to Σ-order.
  tgd::TgdSet tgds = ParseRules("N(x) -> E(x, x). M(x) -> E(x, x).");
  RelianceGraph g(tgds);
  EXPECT_TRUE(g.Restrains(0, 1));
  EXPECT_TRUE(g.Restrains(1, 0));
  EXPECT_EQ(g.RestraintOrder({0, 1}),
            (std::vector<tgd::RuleIndex>{0, 1}));
}

// ---------------------------------------------------------------------
// api-level contracts.

TEST(RelianceProgramTest, ProgramExposesRelianceGraph) {
  auto program = api::Program::Parse(
      "Emp(alice, sales).\n"
      "Emp(x, d) -> Dept(d). Dept(d) -> Mgr(d, m).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const RelianceGraph& g = program->reliances();
  EXPECT_EQ(g.num_rules(), 2u);
  EXPECT_EQ(g.CollectGroups().size(), 2u);
}

TEST(RelianceProgramTest, RuleCapIsRejectedAtParseTime) {
  // tgd::kMaxRules + 1 copies of a trivial rule: analysis must reject
  // the set cleanly before any planning or reliance work touches it.
  std::string text = "P(a).\n";
  text.reserve(text.size() + 15 * (tgd::kMaxRules + 1));
  for (std::size_t i = 0; i <= tgd::kMaxRules; ++i) {
    text += "P(x) -> Q(x).\n";
  }
  auto program = api::Program::Parse(text);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(program.status().ToString().find("rule cap"),
            std::string::npos)
      << program.status().ToString();
}

TEST(RelianceProgramTest, RestraintOrderTerminatesOrderSensitiveChase) {
  // examples/programs/restraint_order.tgd inline: plain Σ-order fires
  // the existential rule first every round and diverges; the
  // restraint-guided order fires the all-frontier rule first, the
  // existential trigger is born satisfied, and the chase closes in two
  // rounds with the two-atom core.
  const char* text =
      "N(a).\n"
      "N(x) -> E(x, z). N(x) -> E(x, x). E(x, y) -> N(y).";
  auto program = api::Program::Parse(text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto plain = api::Session(
                   *program,
                   api::SessionOptions()
                       .set_variant(chase::ChaseVariant::kRestricted)
                       .set_max_rounds(6))
                   .Chase();
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->outcome(), chase::ChaseOutcome::kRoundLimit);

  auto guided = api::Session(
                    *program,
                    api::SessionOptions()
                        .set_variant(chase::ChaseVariant::kRestricted)
                        .set_restraint_order(true))
                    .Chase();
  ASSERT_TRUE(guided.ok());
  EXPECT_EQ(guided->outcome(), chase::ChaseOutcome::kTerminated);
  EXPECT_EQ(guided->stats().rounds, 2u);
  EXPECT_EQ(guided->instance().size(), 2u);
  EXPECT_EQ(guided->stats().reliance_groups, 2u);

  // The guided schedule is deterministic and thread-invariant even
  // though it is not Σ-order: every worker count reproduces the same
  // instance and the same deterministic counters.
  for (std::uint32_t threads : {2u, 8u}) {
    auto cell = api::Session(
                    *program,
                    api::SessionOptions()
                        .set_variant(chase::ChaseVariant::kRestricted)
                        .set_restraint_order(true)
                        .set_num_threads(threads))
                    .Chase();
    ASSERT_TRUE(cell.ok());
    EXPECT_EQ(cell->outcome(), chase::ChaseOutcome::kTerminated);
    EXPECT_EQ(cell->ToSortedString(), guided->ToSortedString());
    EXPECT_EQ(cell->stats().triggers_fired,
              guided->stats().triggers_fired);
    EXPECT_EQ(cell->stats().triggers_satisfied,
              guided->stats().triggers_satisfied);
    EXPECT_EQ(cell->stats().join_probes, guided->stats().join_probes);
    EXPECT_EQ(cell->stats().rounds, guided->stats().rounds);
  }
}

TEST(RelianceProgramTest, RelianceGroupsStatIsSchedulerMetadata) {
  // reliance_groups is a pure function of Σ, reported whenever the
  // scheduler is on (any thread count) and zero when ablated away.
  auto program = api::Program::Parse(
      "Emp(alice, sales).\n"
      "Emp(x, d) -> Dept(d). Dept(d) -> Mgr(d, m). "
      "Mgr(d, m) -> Emp(m, d).");
  ASSERT_TRUE(program.ok());
  auto on = api::Session(*program).Chase();
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->stats().reliance_groups, 3u);
  auto off = api::Session(*program,
                          api::SessionOptions().set_use_reliances(false))
                 .Chase();
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->stats().reliance_groups, 0u);
  // The ablation is identity-preserving: same bytes, same counters.
  EXPECT_EQ(off->ToSortedString(), on->ToSortedString());
  EXPECT_EQ(off->stats().triggers_fired, on->stats().triggers_fired);
  EXPECT_EQ(off->stats().join_probes, on->stats().join_probes);
}

}  // namespace
}  // namespace graph
}  // namespace nuchase
