#include <gtest/gtest.h>

#include "chase/chase.h"
#include "query/evaluator.h"
#include "termination/advisor.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/parser.h"
#include "tgd/printer.h"

namespace nuchase {
namespace {

/// End-to-end: parse an OBDA-style program, decide termination, pick the
/// materialization strategy, chase, and answer queries over the
/// materialized universal model (the workflow the paper's introduction
/// motivates).
TEST(IntegrationTest, ObdaMaterializationPipeline) {
  core::SymbolTable symbols;
  const std::string text = R"(
% Data: employees, departments, managers.
WorksIn(alice, sales).
WorksIn(bob, engineering).
Manages(carol, sales).

% Ontology (simple linear TGDs):
WorksIn(x, d) -> Dept(d).
Manages(m, d) -> Dept(d), Emp(m).
WorksIn(x, d) -> Emp(x).
Dept(d) -> HasHead(d, h), Emp(h).
)";
  auto program = tgd::ParseProgram(&symbols, text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto report =
      termination::Advise(&symbols, program->tgds, program->database);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->decision, termination::Decision::kTerminates);
  ASSERT_TRUE(report->materialization.has_value());
  const core::Instance& model = report->materialization->instance;

  // The universal model answers CQs over inferred atoms: every
  // department has a head who is an employee.
  auto has_head = symbols.FindPredicate("HasHead");
  auto emp = symbols.FindPredicate("Emp");
  ASSERT_TRUE(has_head.ok());
  ASSERT_TRUE(emp.ok());
  core::Term d = symbols.InternVariable("qd");
  core::Term h = symbols.InternVariable("qh");
  query::ConjunctiveQuery cq{
      {core::Atom(*has_head, {d, h}), core::Atom(*emp, {h})}};
  EXPECT_TRUE(query::Satisfies(model, cq));
  EXPECT_TRUE(query::Satisfies(model, program->tgds));
}

/// End-to-end: a non-terminating ontology is detected *before*
/// materialization, and the UCQ decider gives the same verdict straight
/// from the database.
TEST(IntegrationTest, NonTerminatingOntologyIsRefused) {
  core::SymbolTable symbols;
  const std::string text = R"(
Person(adam).
Person(x) -> HasParent(x, y).
HasParent(x, y) -> Person(y).
)";
  auto program = tgd::ParseProgram(&symbols, text);
  ASSERT_TRUE(program.ok());

  auto report =
      termination::Advise(&symbols, program->tgds, program->database);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->decision, termination::Decision::kDoesNotTerminate);
  EXPECT_FALSE(report->materialization.has_value());

  auto via_ucq = termination::DecideByUcq(&symbols, program->tgds,
                                          program->database);
  ASSERT_TRUE(via_ucq.ok());
  EXPECT_EQ(*via_ucq, termination::Decision::kDoesNotTerminate);
}

/// The same ontology terminates on a database that does not feed the
/// cycle — the essence of *non-uniform* analysis.
TEST(IntegrationTest, NonUniformityDatabaseMatters) {
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols,
                               "Person(x) -> HasParent(x, y).\n"
                               "HasParent(x, y) -> Person(y).\n"
                               "City(c) -> Named(c, n).\n");
  ASSERT_TRUE(tgds.ok());

  core::Database people;
  ASSERT_TRUE(people.AddFact(&symbols, "Person", {"adam"}).ok());
  core::Database cities;
  ASSERT_TRUE(cities.AddFact(&symbols, "City", {"rome"}).ok());

  auto d1 = termination::Decide(&symbols, *tgds, people);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->decision, termination::Decision::kDoesNotTerminate);

  auto d2 = termination::Decide(&symbols, *tgds, cities);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->decision, termination::Decision::kTerminates);
}

/// Data-exchange style: guarded source-to-target dependencies, decided
/// via the full gsimple pipeline and materialized.
TEST(IntegrationTest, GuardedDataExchange) {
  core::SymbolTable symbols;
  const std::string text = R"(
Src(a, b).
Ref(b).
Src(x, y), Ref(y) -> Tgt(x, y, k).
Tgt(x, y, k) -> Key(k), Pair(x, y).
)";
  auto program = tgd::ParseProgram(&symbols, text);
  ASSERT_TRUE(program.ok());

  auto decision = termination::DecideGuarded(&symbols, program->tgds,
                                             program->database);
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision->decision, termination::Decision::kTerminates);

  chase::ChaseResult result =
      chase::RunChase(&symbols, program->tgds, program->database);
  ASSERT_TRUE(result.Terminated());
  EXPECT_TRUE(query::Satisfies(result.instance, program->tgds));
  auto key = symbols.FindPredicate("Key");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(result.instance.AtomsWithPredicate(*key).size(), 1u);
}

/// Round-trip: print a program, re-parse it, re-decide — decisions are
/// representation-independent.
TEST(IntegrationTest, PrintParseDecideRoundTrip) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols,
                                   "R(a, b).\n"
                                   "R(x, y) -> S(y, z).\n"
                                   "S(x, y) -> R(y, x).\n");
  ASSERT_TRUE(program.ok());
  std::string printed =
      tgd::ProgramToString(program->tgds, program->database, symbols);

  core::SymbolTable symbols2;
  auto reparsed = tgd::ParseProgram(&symbols2, printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  auto d1 = termination::Decide(&symbols, program->tgds,
                                program->database);
  auto d2 = termination::Decide(&symbols2, reparsed->tgds,
                                reparsed->database);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->decision, d2->decision);
}

}  // namespace
}  // namespace nuchase
