// Tests for the nuchase/nuchase.h facade: Program::Parse error paths,
// parse-once/run-many equivalence with the legacy free functions,
// observer and cancellation semantics, and the concurrency contract —
// N sessions chasing one shared `const api::Program` produce
// byte-identical results (this is the test the TSan CI job runs).
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nuchase/nuchase.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

constexpr const char* kQuickstart =
    "Emp(alice, sales).\n"
    "Emp(bob, eng).\n"
    "Emp(x, d) -> Dept(d).\n"
    "Dept(d) -> Mgr(d, m).\n"
    "Mgr(d, m) -> Emp(m, d).\n";

// R(x,y) -> ∃z R(y,z) over {R(a,b)}: the Section 3 diverging pair.
constexpr const char* kDiverging = "R(a, b). R(x, y) -> R(y, z).";

// A mid-size program whose chase invents one null per department chain,
// big enough that concurrent (and sharded) runs genuinely overlap.
std::string ConcurrencyProgramText() {
  std::string text =
      "Emp(x, d) -> Dept(d).\n"
      "Dept(d) -> Mgr(d, m).\n"
      "Mgr(d, m) -> Emp(m, d).\n"
      "Emp(x, d), Mgr(d, m) -> Reports(x, m).\n";
  for (int i = 0; i < 400; ++i) {
    text += "Emp(e" + std::to_string(i) + ", d" +
            std::to_string(i % 40) + ").\n";
  }
  return text;
}

// ---------------------------------------------------------------------
// Program::Parse and the facade's Status surface.

TEST(ProgramTest, ParseAnalyzesOnce) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rule_count(), 3u);
  EXPECT_EQ(program->fact_count(), 2u);
  EXPECT_EQ(program->tgd_class(), tgd::TgdClass::kSimpleLinear);
  // Join plans are precomputed for every rule.
  EXPECT_EQ(program->join_plans().size(), 3u);
  // SL bounds are finite and precomputed.
  EXPECT_TRUE(std::isfinite(program->depth_bound()));
  EXPECT_GT(program->depth_bound(), 0);
}

TEST(ProgramTest, ProgramsAreCheaplyCopyableHandles) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Program copy = *program;  // pointer copy, same frozen analysis
  EXPECT_EQ(&copy.symbols(), &program->symbols());
  EXPECT_EQ(&copy.tgds(), &program->tgds());
}

TEST(ProgramTest, ParseSyntaxErrorIsInvalidArgument) {
  for (const char* bad : {
           "R(x",                  // unterminated atom
           "R(x, y) -> ",          // missing head
           "-> S(x).",             // missing body
           "R(a). R(a, b).",       // arity clash
           "R(x, y) R(y, z).",     // missing separator
       }) {
    auto program = api::Program::Parse(bad);
    ASSERT_FALSE(program.ok()) << "accepted: " << bad;
    EXPECT_EQ(program.status().code(), util::StatusCode::kInvalidArgument)
        << bad << " -> " << program.status().ToString();
  }
}

TEST(ProgramTest, FindPredicateMissingIsNotFound) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->FindPredicate("Emp").ok());
  auto missing = program->FindPredicate("NoSuchPredicate");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(ProgramTest, CreateRejectsForeignParts) {
  // A database built against one table handed in with an empty table:
  // the predicate ids cannot resolve.
  core::SymbolTable symbols;
  core::Database db;
  ASSERT_TRUE(db.AddFact(&symbols, "R", {"a", "b"}).ok());
  auto program =
      api::Program::Create(core::SymbolTable(), tgd::TgdSet(), db);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SessionTest, ChaseWithZeroAtomBudgetIsInvalidArgument) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Session session(*program, api::SessionOptions().set_max_atoms(0));
  auto run = session.Chase();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SessionTest, UcqDecideOnGuardedIsFailedPrecondition) {
  // The UCQ of Theorems 6.6 / 7.7 exists for SL and L only; this set is
  // guarded but not linear.
  auto program = api::Program::Parse(
      "E(a, b).\n"
      "E(x, y), E(y, x) -> E(y, z).\n");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->tgd_class(), tgd::TgdClass::kGuarded);
  auto decision = api::Session(*program).Decide(api::DecideMethod::kUcq);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SessionTest, AdviseBeyondBudgetIsResourceExhausted) {
  // The decider certifies termination, but a 1-atom materialization
  // budget cannot hold the 8-atom chase.
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Session session(*program, api::SessionOptions().set_max_atoms(1));
  auto advice = session.Advise();
  ASSERT_FALSE(advice.ok());
  EXPECT_EQ(advice.status().code(),
            util::StatusCode::kResourceExhausted);
}

TEST(StatusSurfaceTest, EveryStatusCodeIsConstructibleAndNamed) {
  // The facade returns util::Status end to end; pin the full code
  // vocabulary (including kInternal, which no healthy run produces).
  EXPECT_STREQ(util::StatusCodeName(util::StatusCode::kOk), "OK");
  EXPECT_EQ(util::Status::InvalidArgument("x").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(util::Status::NotFound("x").code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(util::Status::ResourceExhausted("x").code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(util::Status::FailedPrecondition("x").code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(util::Status::Internal("x").code(),
            util::StatusCode::kInternal);
}

// ---------------------------------------------------------------------
// Session results match the legacy per-layer path byte for byte.

TEST(SessionTest, ChaseMatchesLegacyFreeFunction) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());

  // Legacy path: a private mutable table threaded through RunChase.
  core::SymbolTable legacy_symbols = program->symbols();
  chase::ChaseResult legacy = chase::RunChase(
      &legacy_symbols, program->tgds(), program->database());

  auto run = api::Session(*program).Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->Terminated());
  EXPECT_EQ(run->ToSortedString(),
            legacy.instance.ToSortedString(legacy_symbols));
  EXPECT_EQ(run->stats().triggers_fired, legacy.stats.triggers_fired);
  // The shared program's frozen table gained no nulls.
  EXPECT_EQ(program->symbols().num_nulls(), 0u);
}

TEST(SessionTest, StatsSurfaceStorageCounters) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  auto run = api::Session(*program).Chase();
  ASSERT_TRUE(run.ok());
  // The memory counters describe the materialized instance exactly:
  // peak_atoms is its size, arena_bytes its term storage.
  EXPECT_EQ(run->stats().peak_atoms, run->instance().size());
  EXPECT_EQ(run->stats().arena_bytes,
            run->instance().arena_terms() * sizeof(core::Term));
  EXPECT_GT(run->stats().arena_bytes, 0u);
}

TEST(SessionTest, ClassifyReportsPaperQuantities) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  auto c = api::Session(*program).Classify();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->tgd_class, tgd::TgdClass::kSimpleLinear);
  EXPECT_EQ(c->num_tgds, 3u);
  EXPECT_EQ(c->num_schema_predicates, 3u);
  EXPECT_EQ(c->max_arity, 2u);
  EXPECT_EQ(c->num_facts, 2u);
  EXPECT_TRUE(c->has_bounds);
}

TEST(SessionTest, DecideAutoUcqAndBoundedChaseAgree) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Session session(*program);

  auto by_auto = session.Decide();
  ASSERT_TRUE(by_auto.ok());
  EXPECT_EQ(by_auto->decision, termination::Decision::kTerminates);
  EXPECT_EQ(by_auto->method, "weak-acyclicity");

  auto by_ucq = session.Decide(api::DecideMethod::kUcq);
  ASSERT_TRUE(by_ucq.ok());
  EXPECT_EQ(by_ucq->decision, termination::Decision::kTerminates);

  auto by_chase = session.Decide(api::DecideMethod::kBoundedChase);
  ASSERT_TRUE(by_chase.ok());
  EXPECT_EQ(by_chase->decision, termination::Decision::kTerminates);
  EXPECT_GT(by_chase->atoms, 0u);
}

TEST(SessionTest, DecideRejectsDivergingPair) {
  auto program = api::Program::Parse(kDiverging);
  ASSERT_TRUE(program.ok());
  auto d = api::Session(*program).Decide();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, termination::Decision::kDoesNotTerminate);
}

// The committed JA showcase (examples/programs/ja_ladder.tgd): general
// class, not WA w.r.t. D, jointly acyclic.
constexpr const char* kJaShowcase =
    "P(a). R(a, b).\n"
    "P(x) -> Q(x, y).\n"
    "Q(x, y), R(y, w) -> P(y).\n";

TEST(SessionTest, AnalyzeReportsDiagnosticsAndLadder) {
  auto program = api::Program::Parse(
      "Start(a). Orphan(b).\n"
      "Start(x) -> Log(y).\n");
  ASSERT_TRUE(program.ok());
  // Diagnostics are computed at parse and frozen into the Program.
  ASSERT_EQ(program->diagnostics().size(), 2u);
  EXPECT_EQ(program->diagnostics()[0].id, "NU001");
  EXPECT_EQ(program->diagnostics()[1].id, "NU003");

  auto analyzed = api::Session(*program).Analyze();
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed->diagnostics.size(), 2u);
  EXPECT_EQ(analyzed->decision, termination::Decision::kTerminates);
  EXPECT_EQ(analyzed->method, "weak-acyclicity");
  EXPECT_TRUE(analyzed->ladder.wa.weakly_acyclic);
}

TEST(SessionTest, DecideAutoUpgradesGeneralViaLadder) {
  auto program = api::Program::Parse(kJaShowcase);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->tgd_class(), tgd::TgdClass::kGeneral);
  // A starved bounded chase cannot certify ...
  api::Session starved(*program, api::SessionOptions().set_max_atoms(2));
  auto naive = starved.Decide(api::DecideMethod::kBoundedChase);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->decision, termination::Decision::kUnknown);
  // ... but kAuto decides statically, without chasing D at all.
  auto by_auto = starved.Decide();
  ASSERT_TRUE(by_auto.ok());
  EXPECT_EQ(by_auto->decision, termination::Decision::kTerminates);
  EXPECT_EQ(by_auto->method, "ladder:ja");
}

TEST(SessionTest, StaticAnalysisIsComputedOncePerProgram) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Session session(*program);
  const std::uint64_t before =
      termination::DeciderInvocationsForTest().load();
  // Analyze, repeated Decides and an Advise over one frozen Program:
  // exactly one syntactic-decider computation in total.
  ASSERT_TRUE(session.Analyze().ok());
  ASSERT_TRUE(session.Decide().ok());
  ASSERT_TRUE(session.Decide().ok());
  api::Session second(*program);  // caches live on the Program, not the
  ASSERT_TRUE(second.Advise().ok());  // Session
  EXPECT_EQ(termination::DeciderInvocationsForTest().load(), before + 1);

  // A session with a non-default linearization budget must bypass the
  // default-budget cache (quickstart is SL, so the class decider runs
  // again rather than serving a budget-mismatched memo).
  api::Session custom(*program,
                      api::SessionOptions().set_max_types(7));
  ASSERT_TRUE(custom.Decide().ok());
  EXPECT_EQ(termination::DeciderInvocationsForTest().load(), before + 2);
}

TEST(SessionTest, LadderIsComputedOncePerProgram) {
  auto program = api::Program::Parse(kJaShowcase);
  ASSERT_TRUE(program.ok());
  const termination::LadderResult* first = &program->ladder();
  EXPECT_EQ(first, &program->ladder());
  const std::uint64_t before =
      termination::DeciderInvocationsForTest().load();
  api::Session session(*program);
  // The advisor borrows the memoized ladder: repeated kAuto decisions
  // run no decider and no fresh ladder.
  ASSERT_TRUE(session.Decide().ok());
  ASSERT_TRUE(session.Decide().ok());
  ASSERT_TRUE(session.Analyze().ok());
  EXPECT_EQ(termination::DeciderInvocationsForTest().load(), before);
}

TEST(SessionTest, RoundBudgetStopsWithRoundLimit) {
  auto program = api::Program::Parse(
      "E(v1, v2). E(v2, v3). E(v3, v4).\n"
      "E(x, y) -> T(x, y).\n"
      "T(x, y), E(y, z) -> T(x, z).\n");
  ASSERT_TRUE(program.ok());
  api::Session session(*program,
                       api::SessionOptions().set_max_rounds(2));
  auto run = session.Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kRoundLimit);
  EXPECT_EQ(run->stats().rounds, 2u);
}

// ---------------------------------------------------------------------
// Observer semantics.

class RecordingObserver : public api::ChaseObserver {
 public:
  void OnRound(const api::RoundProgress& p) override {
    rounds.push_back(p);
  }
  void OnFire(std::uint32_t tgd_index, std::size_t atoms) override {
    ++fires;
    last_fire_tgd = tgd_index;
    last_fire_atoms = atoms;
  }
  void OnDone(api::ChaseOutcome outcome,
              const api::ChaseStats& stats) override {
    ++done_calls;
    final_outcome = outcome;
    final_fired = stats.triggers_fired;
  }

  std::vector<api::RoundProgress> rounds;
  std::uint64_t fires = 0;
  std::uint32_t last_fire_tgd = 0;
  std::size_t last_fire_atoms = 0;
  int done_calls = 0;
  api::ChaseOutcome final_outcome = api::ChaseOutcome::kTerminated;
  std::uint64_t final_fired = 0;
};

TEST(ObserverTest, RoundFireAndDoneHooksAreConsistent) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  RecordingObserver observer;
  api::Session session(*program,
                       api::SessionOptions().set_observer(&observer));
  auto run = session.Chase();
  ASSERT_TRUE(run.ok());

  // One OnRound per executed round, with 1-based increasing numbering
  // and monotone atom counts.
  ASSERT_EQ(observer.rounds.size(), run->stats().rounds);
  for (std::size_t i = 0; i < observer.rounds.size(); ++i) {
    EXPECT_EQ(observer.rounds[i].round, i + 1);
    EXPECT_GT(observer.rounds[i].delta_atoms, 0u);
    if (i > 0) {
      EXPECT_GE(observer.rounds[i].atoms, observer.rounds[i - 1].atoms);
    }
  }
  // One OnFire per fired trigger; the last one saw the final atom count.
  EXPECT_EQ(observer.fires, run->stats().triggers_fired);
  EXPECT_EQ(observer.last_fire_atoms, run->instance().size());
  // Exactly one OnDone, after the stats were final.
  EXPECT_EQ(observer.done_calls, 1);
  EXPECT_EQ(observer.final_outcome, api::ChaseOutcome::kTerminated);
  EXPECT_EQ(observer.final_fired, run->stats().triggers_fired);
}

TEST(ObserverTest, ObserverRunsOnAdvisorChases) {
  // The observer threads through Advise()'s materialization chase too.
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  RecordingObserver observer;
  api::Session session(*program,
                       api::SessionOptions().set_observer(&observer));
  auto advice = session.Advise();
  ASSERT_TRUE(advice.ok());
  ASSERT_TRUE(advice->has_materialization());
  EXPECT_EQ(observer.done_calls, 1);
  EXPECT_GT(observer.fires, 0u);
}

// ---------------------------------------------------------------------
// Cancellation: token and deadline.

class CancellingObserver : public api::ChaseObserver {
 public:
  CancellingObserver(api::CancelToken* token, std::uint64_t after_fires)
      : token_(token), after_fires_(after_fires) {}
  void OnFire(std::uint32_t, std::size_t) override {
    if (++fires_ >= after_fires_) token_->Cancel();
  }

 private:
  api::CancelToken* token_;
  std::uint64_t after_fires_;
  std::uint64_t fires_ = 0;
};

TEST(CancelTest, TokenStopsDivergingChaseMidRun) {
  auto program = api::Program::Parse(kDiverging);
  ASSERT_TRUE(program.ok());
  api::CancelToken token;
  CancellingObserver observer(&token, 100);
  api::Session session(*program, api::SessionOptions()
                                     .set_observer(&observer)
                                     .set_cancel(&token));
  auto run = session.Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
  // Stopped promptly: within a couple of rounds of the cancel point,
  // far below any budget.
  EXPECT_LT(run->instance().size(), 1000u);
}

TEST(CancelTest, CrossThreadCancelStopsNonTerminatingProgram) {
  // The acceptance scenario: a chase that would run forever, cancelled
  // from another thread, stops with kCancelled in bounded time.
  auto program = api::Program::Parse(kDiverging);
  ASSERT_TRUE(program.ok());
  api::CancelToken token;
  api::Session session(*program,
                       api::SessionOptions().set_cancel(&token));

  util::StatusOr<api::ChaseRun> run = util::Status::Internal("unset");
  std::thread chaser([&]() { run = session.Chase(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  chaser.join();

  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
}

TEST(CancelTest, DeadlineStopsNonTerminatingProgram) {
  auto program = api::Program::Parse(kDiverging);
  ASSERT_TRUE(program.ok());
  api::Session session(*program,
                       api::SessionOptions().set_deadline_ms(100));
  auto start = std::chrono::steady_clock::now();
  auto run = session.Chase();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
  // 100 ms deadline, generous slack for sanitizer/CI jitter.
  EXPECT_LT(seconds, 10.0);
}

TEST(CancelTest, DeadlineInterruptsMatchFreeJoinEnumeration) {
  // A join that produces zero homomorphisms never reaches the
  // per-homomorphism poll: A and B have disjoint domains, so the body
  // A(x), B(x) fails on every one of the ~10^8 probe pairs (position
  // index off forces the full per-predicate scan). The probe-level
  // interrupt in HomomorphismFinder must stop it at the deadline —
  // without it the run would grind through the whole join and finish
  // with kTerminated.
  core::SymbolTable symbols;
  core::Database db;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(db.AddFact(&symbols, "A", {"a" + std::to_string(i)}).ok());
    ASSERT_TRUE(db.AddFact(&symbols, "B", {"b" + std::to_string(i)}).ok());
  }
  tgd::TgdSet tgds;
  auto rule = tgd::ParseTgd(&symbols, "A(x), B(x) -> C(x)");
  ASSERT_TRUE(rule.ok());
  tgds.Add(std::move(*rule));
  auto program = api::Program::Create(std::move(symbols), std::move(tgds),
                                      std::move(db));
  ASSERT_TRUE(program.ok());

  api::Session session(*program, api::SessionOptions()
                                     .set_use_position_index(false)
                                     .set_deadline_ms(100));
  auto start = std::chrono::steady_clock::now();
  auto run = session.Chase();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
  EXPECT_LT(seconds, 10.0);
}

// ---------------------------------------------------------------------
// The parallel trigger engine behind SessionOptions::num_threads.

TEST(ParallelTest, EightWorkerChaseIsByteIdenticalToSequential) {
  // The TSan acceptance scenario: one chase sharded across 8 workers
  // must be race-free and byte-identical to the sequential engine —
  // instance, stats, everything.
  auto program = api::Program::Parse(ConcurrencyProgramText());
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto sequential = api::Session(*program).Chase();
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(sequential->Terminated());

  api::Session parallel_session(
      *program, api::SessionOptions().set_num_threads(8));
  auto parallel = parallel_session.Chase();
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(parallel->Terminated());

  EXPECT_EQ(parallel->ToSortedString(), sequential->ToSortedString());
  EXPECT_EQ(parallel->stats().triggers_fired,
            sequential->stats().triggers_fired);
  EXPECT_EQ(parallel->stats().triggers_satisfied,
            sequential->stats().triggers_satisfied);
  EXPECT_EQ(parallel->stats().join_probes,
            sequential->stats().join_probes);
  EXPECT_EQ(parallel->stats().delta_atoms_scanned,
            sequential->stats().delta_atoms_scanned);
  EXPECT_EQ(parallel->stats().rounds, sequential->stats().rounds);
  EXPECT_EQ(parallel->stats().arena_bytes,
            sequential->stats().arena_bytes);
}

TEST(ParallelTest, HardwareThreadsZeroResolvesAndMatches) {
  // num_threads = 0 means "one worker per hardware thread"; whatever
  // that resolves to, the result is the same bytes.
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  auto sequential = api::Session(*program).Chase();
  ASSERT_TRUE(sequential.ok());
  api::Session session(*program,
                       api::SessionOptions().set_num_threads(0));
  auto run = session.Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->Terminated());
  EXPECT_EQ(run->ToSortedString(), sequential->ToSortedString());
}

// A diverging program with wide rounds: both recursive rules double the
// frontier every round, so within a few rounds every one of the 8
// workers holds live shards when the cancel lands.
constexpr const char* kWideDiverging =
    "R(a, b).\n"
    "R(x, y) -> R(y, z).\n"
    "R(x, y) -> R(x, w).\n";

TEST(ParallelTest, CrossThreadCancelStopsAllWorkersPromptly) {
  // Cancellation under parallelism: the token is observed by every
  // worker (each polls it independently), the pool joins, and the run
  // returns kCancelled with a consistent prefix in bounded time.
  auto program = api::Program::Parse(kWideDiverging);
  ASSERT_TRUE(program.ok());
  api::CancelToken token;
  api::Session session(*program, api::SessionOptions()
                                     .set_num_threads(8)
                                     .set_cancel(&token));

  util::StatusOr<api::ChaseRun> run = util::Status::Internal("unset");
  auto start = std::chrono::steady_clock::now();
  std::thread chaser([&]() { run = session.Chase(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel();
  chaser.join();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
  // Observed promptly by all workers: generous slack for TSan/CI, but
  // far below what ignoring the token until the atom budget would take.
  EXPECT_LT(seconds, 10.0);
}

TEST(ParallelTest, DeadlineStopsParallelDivergingChase) {
  auto program = api::Program::Parse(kWideDiverging);
  ASSERT_TRUE(program.ok());
  api::Session session(*program, api::SessionOptions()
                                     .set_num_threads(4)
                                     .set_deadline_ms(100));
  auto start = std::chrono::steady_clock::now();
  auto run = session.Chase();
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kCancelled);
  EXPECT_LT(seconds, 10.0);
}

TEST(ParallelTest, ConcurrentParallelSessionsShareOneProgram) {
  // Sessions-of-pools: 4 sessions, each itself chasing with 4 workers,
  // all over one shared frozen Program — the heavy-multi-user shape.
  auto parsed = api::Program::Parse(ConcurrencyProgramText());
  ASSERT_TRUE(parsed.ok());
  const api::Program program = *parsed;

  auto reference = api::Session(program).Chase();
  ASSERT_TRUE(reference.ok());
  const std::string expected = reference->ToSortedString();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      api::Session session(program,
                           api::SessionOptions().set_num_threads(4));
      auto run = session.Chase();
      if (!run.ok() || !run->Terminated() ||
          run->ToSortedString() != expected) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(CancelTest, DeadlineLeavesTerminatingRunsAlone) {
  auto program = api::Program::Parse(kQuickstart);
  ASSERT_TRUE(program.ok());
  api::Session session(*program,
                       api::SessionOptions().set_deadline_ms(60'000));
  auto run = session.Chase();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome(), api::ChaseOutcome::kTerminated);
}

// ---------------------------------------------------------------------
// Concurrency: N sessions over one shared `const Program`.

TEST(ConcurrencyTest, EightSessionsOneProgramByteIdentical) {
  auto parsed = api::Program::Parse(ConcurrencyProgramText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const api::Program program = *parsed;  // shared, frozen

  // Single-threaded reference through the legacy path.
  core::SymbolTable reference_symbols = program.symbols();
  chase::ChaseResult reference = chase::RunChase(
      &reference_symbols, program.tgds(), program.database());
  ASSERT_TRUE(reference.Terminated());
  const std::string expected =
      reference.instance.ToSortedString(reference_symbols);

  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 3;
  std::vector<std::string> results(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      // Each thread builds its own sessions against the shared program;
      // repeated runs must be self-consistent too.
      std::string mine;
      for (int i = 0; i < kRunsPerThread; ++i) {
        api::Session session(program);
        auto run = session.Chase();
        if (!run.ok() || !run->Terminated()) {
          failures.fetch_add(1);
          return;
        }
        std::string sorted = run->ToSortedString();
        if (i == 0) {
          mine = std::move(sorted);
        } else if (sorted != mine) {
          failures.fetch_add(1);
          return;
        }
      }
      results[t] = std::move(mine);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], expected) << "thread " << t << " diverged";
  }
  // The shared table was never touched: still no nulls in the base.
  EXPECT_EQ(program.symbols().num_nulls(), 0u);
}

TEST(ConcurrencyTest, ConcurrentVariantsAndDecidersShareOneProgram) {
  // Mixed traffic on one frozen artifact: chases of all three variants
  // plus syntactic decisions, concurrently.
  auto parsed = api::Program::Parse(ConcurrencyProgramText());
  ASSERT_TRUE(parsed.ok());
  const api::Program program = *parsed;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const chase::ChaseVariant variants[3] = {
      chase::ChaseVariant::kSemiOblivious,
      chase::ChaseVariant::kOblivious,
      chase::ChaseVariant::kRestricted,
  };
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      if (t % 2 == 0) {
        api::Session session(
            program,
            api::SessionOptions().set_variant(variants[(t / 2) % 3]));
        auto run = session.Chase();
        if (!run.ok() || !run->Terminated()) failures.fetch_add(1);
      } else {
        auto decision = api::Session(program).Decide();
        if (!decision.ok() ||
            decision->decision != termination::Decision::kTerminates) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace nuchase
