#include <gtest/gtest.h>

#include "chase/chase.h"
#include "query/evaluator.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace chase {
namespace {

ChaseResult Chase(core::SymbolTable* symbols, const tgd::Program& p,
                ChaseVariant variant, std::uint64_t max_atoms = 100000) {
  ChaseOptions options;
  options.variant = variant;
  options.max_atoms = max_atoms;
  return RunChase(symbols, p.tgds, p.database, options);
}

TEST(ChaseVariantsTest, VariantNames) {
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kSemiOblivious),
               "semi-oblivious");
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kOblivious), "oblivious");
  EXPECT_STREQ(ChaseVariantName(ChaseVariant::kRestricted), "restricted");
}

TEST(ChaseVariantsTest, AgreeOnExistentialFreeRules) {
  // Plain datalog: all three chases compute the same least model.
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "E(a, b). E(b, c). E(c, d).\n"
                             "E(x, y) -> T(x, y).\n"
                             "E(x, y), T(y, z) -> T(x, z).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult so = Chase(&symbols, *p, ChaseVariant::kSemiOblivious);
  ChaseResult ob = Chase(&symbols, *p, ChaseVariant::kOblivious);
  ChaseResult re = Chase(&symbols, *p, ChaseVariant::kRestricted);
  ASSERT_TRUE(so.Terminated());
  ASSERT_TRUE(ob.Terminated());
  ASSERT_TRUE(re.Terminated());
  EXPECT_EQ(so.instance.ToSortedString(symbols),
            ob.instance.ToSortedString(symbols));
  EXPECT_EQ(so.instance.ToSortedString(symbols),
            re.instance.ToSortedString(symbols));
}

TEST(ChaseVariantsTest, ObliviousRefinesSemiOblivious) {
  // σ = Emp(e,d) → ∃m Mgr(d,m) has frontier {d} only: the semi-oblivious
  // chase invents one manager per department, the oblivious one per
  // (employee, department) pair.
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "Emp(e1, d1). Emp(e2, d1). Emp(e3, d2).\n"
                             "Emp(e, d) -> Mgr(d, m).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult so = Chase(&symbols, *p, ChaseVariant::kSemiOblivious);
  ChaseResult ob = Chase(&symbols, *p, ChaseVariant::kOblivious);
  ASSERT_TRUE(so.Terminated());
  ASSERT_TRUE(ob.Terminated());
  // 3 Emp + 2 Mgr (one per department) vs 3 Emp + 3 Mgr.
  EXPECT_EQ(so.instance.size(), 5u);
  EXPECT_EQ(ob.instance.size(), 6u);
}

TEST(ChaseVariantsTest, RestrictedSkipsSatisfiedTriggers) {
  // The database already provides a witness for e1's department: the
  // restricted chase fires nothing, the semi-oblivious chase still
  // invents its functional null.
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "Emp(e1, d1). Mgr(d1, boss).\n"
                             "Emp(e, d) -> Mgr(d, m).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult re = Chase(&symbols, *p, ChaseVariant::kRestricted);
  ASSERT_TRUE(re.Terminated());
  EXPECT_EQ(re.instance.size(), 2u);
  EXPECT_EQ(re.stats.triggers_fired, 0u);
  EXPECT_EQ(re.stats.triggers_satisfied, 1u);

  core::SymbolTable symbols2;
  auto p2 = tgd::ParseProgram(&symbols2,
                              "Emp(e1, d1). Mgr(d1, boss).\n"
                              "Emp(e, d) -> Mgr(d, m).\n");
  ASSERT_TRUE(p2.ok());
  ChaseResult so = Chase(&symbols2, *p2, ChaseVariant::kSemiOblivious);
  ASSERT_TRUE(so.Terminated());
  EXPECT_EQ(so.instance.size(), 3u);
}

TEST(ChaseVariantsTest, RestrictedTerminatesWhereSemiObliviousDoesNot) {
  // Σ = { R(x,y) → R(y,y),  R(x,y) → ∃z R(y,z) } over {R(a,b)}. The
  // first rule (listed first, so fired first in each round) provides the
  // witness R(y,y) that satisfies the second rule's head: the restricted
  // chase stops after one round, while the semi-oblivious chase spins a
  // fresh null per step. CT^so_D ⊊ CT^res_D is strict.
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "R(a, b).\n"
                             "R(x, y) -> R(y, y).\n"
                             "R(x, y) -> R(y, z).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult re = Chase(&symbols, *p, ChaseVariant::kRestricted, 10000);
  EXPECT_TRUE(re.Terminated());
  EXPECT_GT(re.stats.triggers_satisfied, 0u);

  ChaseResult so =
      Chase(&symbols, *p, ChaseVariant::kSemiOblivious, 10000);
  EXPECT_FALSE(so.Terminated());
  ChaseResult ob = Chase(&symbols, *p, ChaseVariant::kOblivious, 10000);
  EXPECT_FALSE(ob.Terminated());
}

TEST(ChaseVariantsTest, FrontierEmptyRuleCollapsesSemiObliviously) {
  // P(x) → ∃z Q(z) has fr(σ) = ∅: the semi-oblivious chase fires it
  // exactly once no matter how many P-facts exist (the null ⊥^z_{σ,∅}
  // is shared), while the oblivious chase invents one Q-null per
  // homomorphism.
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols, "P(a). P(b). P(x) -> Q(z).");
  ASSERT_TRUE(p.ok());
  ChaseResult so = Chase(&symbols, *p, ChaseVariant::kSemiOblivious);
  ChaseResult ob = Chase(&symbols, *p, ChaseVariant::kOblivious);
  ASSERT_TRUE(so.Terminated());
  ASSERT_TRUE(ob.Terminated());
  EXPECT_EQ(so.instance.size(), 3u);  // one shared Q-null
  EXPECT_EQ(ob.instance.size(), 4u);  // one Q-null per P-fact
}

TEST(ChaseVariantsTest, AllVariantsSatisfyTheTgdsOnTermination) {
  for (ChaseVariant variant :
       {ChaseVariant::kSemiOblivious, ChaseVariant::kOblivious,
        ChaseVariant::kRestricted}) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols,
                               "G(a, b). H(b).\n"
                               "G(x, y), H(y) -> K(x, y, z).\n"
                               "K(x, y, z) -> H(z).\n"
                               "K(x, y, z) -> L(z, x).\n");
    ASSERT_TRUE(p.ok());
    ChaseResult r = Chase(&symbols, *p, variant);
    ASSERT_TRUE(r.Terminated()) << ChaseVariantName(variant);
    EXPECT_TRUE(query::Satisfies(r.instance, p->tgds))
        << ChaseVariantName(variant);
  }
}

TEST(ChaseVariantsTest, RestrictedNeverLargerThanSemiOblivious) {
  // On every random workload whose semi-oblivious chase terminates, the
  // restricted result is no larger (it fires a subset of the triggers
  // and adds witnesses only when needed).
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    ChaseOptions copt;
    copt.max_atoms = 50000;
    ChaseResult so = RunChase(&symbols, w.tgds, w.database, copt);
    if (!so.Terminated()) continue;
    copt.variant = ChaseVariant::kRestricted;
    ChaseResult re = RunChase(&symbols, w.tgds, w.database, copt);
    ASSERT_TRUE(re.Terminated()) << w.name;
    EXPECT_LE(re.instance.size(), so.instance.size()) << w.name;
    EXPECT_TRUE(query::Satisfies(re.instance, w.tgds)) << w.name;

    copt.variant = ChaseVariant::kOblivious;
    ChaseResult ob = RunChase(&symbols, w.tgds, w.database, copt);
    if (ob.Terminated()) {
      EXPECT_GE(ob.instance.size(), so.instance.size()) << w.name;
    }
  }
}

TEST(ChaseVariantsTest, Proposition45DepthFamilyAgreesAcrossVariants) {
  // The Prop 4.5 family is TGD-singleton with a full-frontier rule: all
  // variants coincide there (every body variable is frontier, and no
  // head witness pre-exists).
  for (std::uint32_t n : {3u, 5u, 8u}) {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeDepthFamily(&symbols, n);
    for (ChaseVariant variant :
         {ChaseVariant::kSemiOblivious, ChaseVariant::kOblivious}) {
      ChaseOptions options;
      options.variant = variant;
      ChaseResult r = RunChase(&symbols, w.tgds, w.database, options);
      ASSERT_TRUE(r.Terminated());
      EXPECT_EQ(r.stats.max_depth, n - 1) << ChaseVariantName(variant);
    }
  }
}

}  // namespace
}  // namespace chase
}  // namespace nuchase
