#include <gtest/gtest.h>

#include "chase/chase.h"
#include "graph/weak_acyclicity.h"
#include "termination/uniform.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace termination {
namespace {

tgd::TgdSet ParseRules(core::SymbolTable* symbols, const char* text) {
  auto tgds = tgd::ParseTgdSet(symbols, text);
  EXPECT_TRUE(tgds.ok()) << tgds.status().ToString();
  return std::move(*tgds);
}

TEST(CriticalDatabaseTest, OneFactPerPredicate) {
  core::SymbolTable symbols;
  tgd::TgdSet tgds = ParseRules(
      &symbols, "R(x, y) -> S(y, z). S(x, y), T(x) -> U(x, y, w).");
  core::Database crit = *MakeCriticalDatabase(&symbols, tgds);
  EXPECT_EQ(crit.size(), 4u);  // R, S, T, U
  for (const core::Atom& fact : crit.facts()) {
    ASSERT_GE(fact.arity(), 1u);
    for (core::Term t : fact.args) {
      EXPECT_EQ(t, fact.args[0]);  // single shared constant
    }
  }
}

TEST(CriticalDatabaseTest, EmptySigma) {
  core::SymbolTable symbols;
  tgd::TgdSet tgds;
  EXPECT_TRUE(MakeCriticalDatabase(&symbols, tgds)->empty());
}

TEST(UniformDeciderTest, MatchesUniformWeakAcyclicityOnSL) {
  // For SL, uniform termination ⇔ (uniform) weak-acyclicity [8], and
  // D_Σ-weak-acyclicity coincides with it: the critical database
  // supports every cycle.
  const char* cases[] = {
      "R(x, y) -> S(y, z).",                  // acyclic: uniform
      "R(x, y) -> R(y, z).",                  // special self-cycle: not
      "A(x) -> B(x). B(x) -> A(x).",          // cycle without specials: ok
      "A(x) -> B(x, z). B(x, z) -> A(z).",    // special cycle: not
  };
  for (const char* text : cases) {
    core::SymbolTable symbols;
    tgd::TgdSet tgds = ParseRules(&symbols, text);
    bool uwa = graph::IsUniformlyWeaklyAcyclic(tgds, symbols);
    auto d = DecideUniform(&symbols, tgds);
    ASSERT_TRUE(d.ok()) << text;
    EXPECT_EQ(d->decision == Decision::kTerminates, uwa) << text;
  }
}

TEST(UniformDeciderTest, GuardedOntologyUniformlyTerminating) {
  core::SymbolTable symbols;
  tgd::TgdSet tgds = ParseRules(&symbols,
                                "Emp(x, d) -> Dept(d).\n"
                                "Dept(d) -> Mgr(d, m).\n"
                                "Mgr(d, m) -> Emp(m, d).\n");
  auto d = DecideUniform(&symbols, tgds);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kTerminates);
}

TEST(UniformDeciderTest, Proposition45FamilyIsNotUniform) {
  // Σ = { R(x,y), P(x,z,v) → ∃w P(y,w,z) } terminates on every chain
  // database D_n (Prop 4.5) but NOT uniformly: on the critical database
  // it chases forever. Σ is not guarded, so the exact per-class
  // procedures don't apply; the acyclicity ladder must stay honest —
  // sufficient-only, so kUnknown, never a false kTerminates — and the
  // bounded chase on D_Σ certifies divergence empirically.
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeDepthFamily(&symbols, 4);
  auto d = DecideUniform(&symbols, w.tgds);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->decision, Decision::kUnknown);
  EXPECT_TRUE(d->ladder_rung.empty());

  core::Database crit = *MakeCriticalDatabase(&symbols, w.tgds);
  chase::ChaseOptions options;
  options.max_atoms = 20000;
  chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, crit, options);
  EXPECT_FALSE(r.Terminated());
}

TEST(UniformDeciderTest, UniformImpliesNonUniformEverywhere) {
  // Marnette's transfer property, tested: whenever the uniform decider
  // accepts Σ, the non-uniform decider accepts (D, Σ) for every random
  // database over its schema — and the chase indeed terminates.
  for (std::uint32_t seed = 1; seed <= 15; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    auto uniform = DecideUniform(&symbols, w.tgds);
    ASSERT_TRUE(uniform.ok()) << w.name;
    if (uniform->decision != Decision::kTerminates) continue;
    auto nonuniform = Decide(&symbols, w.tgds, w.database);
    ASSERT_TRUE(nonuniform.ok()) << w.name;
    EXPECT_EQ(nonuniform->decision, Decision::kTerminates) << w.name;
    chase::ChaseOptions copt;
    copt.max_atoms = 200000;
    EXPECT_TRUE(
        chase::RunChase(&symbols, w.tgds, w.database, copt).Terminated())
        << w.name;
  }
}

TEST(UniformDeciderTest, NonUniformStrictlyWeaker) {
  // The paper's headline phenomenon: Σ ∉ CT yet Σ ∈ CT_D for a D that
  // avoids the dangerous predicate.
  core::SymbolTable symbols;
  tgd::TgdSet tgds = ParseRules(&symbols,
                                "Safe(x) -> Mark(x).\n"
                                "Loop(x, y) -> Loop(y, z).\n");
  auto uniform = DecideUniform(&symbols, tgds);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->decision, Decision::kDoesNotTerminate);

  core::Database safe_db;
  ASSERT_TRUE(safe_db.AddFact(&symbols, "Safe", {"a"}).ok());
  auto nonuniform = Decide(&symbols, tgds, safe_db);
  ASSERT_TRUE(nonuniform.ok());
  EXPECT_EQ(nonuniform->decision, Decision::kTerminates);
}

}  // namespace
}  // namespace termination
}  // namespace nuchase
