# Diagnostic-catalog / docs cross-check, run via
#   cmake -DNUCHASE_LINT=<exe> -DREPO_DIR=<src> -P lint_ids_in_docs.cmake
# Every diagnostic ID the linter can emit (nuchase_lint --list-ids,
# which prints analysis::DiagnosticCatalog) must be documented in
# docs/analysis.md. Adding a diagnostic without documenting it fails
# this test; the catalog is append-only, so IDs never vanish either.

if(NOT NUCHASE_LINT OR NOT REPO_DIR)
  message(FATAL_ERROR "NUCHASE_LINT and REPO_DIR must be set")
endif()

execute_process(
    COMMAND "${NUCHASE_LINT}" --list-ids
    OUTPUT_VARIABLE listing
    ERROR_VARIABLE stderr
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "nuchase_lint --list-ids exited ${rc}:\n${listing}\n${stderr}")
endif()

file(READ "${REPO_DIR}/docs/analysis.md" docs)

string(REGEX MATCHALL "NU[0-9][0-9][0-9]" ids "${listing}")
list(REMOVE_DUPLICATES ids)
list(LENGTH ids num_ids)
if(num_ids LESS 8)
  message(FATAL_ERROR
      "--list-ids printed only ${num_ids} distinct IDs; the catalog "
      "starts at 8 (NU000..NU007) and is append-only:\n${listing}")
endif()

set(missing "")
foreach(id IN LISTS ids)
  string(FIND "${docs}" "`${id}`" pos)
  if(pos EQUAL -1)
    list(APPEND missing "${id}")
  endif()
endforeach()
if(missing)
  message(FATAL_ERROR
      "diagnostic IDs emitted by nuchase_lint --list-ids but not "
      "documented in docs/analysis.md: ${missing}\n"
      "Add a row to the 'Diagnostic catalog' table.")
endif()

message(STATUS
    "lint_ids_in_docs: all ${num_ids} catalog IDs documented")
