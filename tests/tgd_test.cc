#include <gtest/gtest.h>

#include "tgd/classify.h"
#include "tgd/parser.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace tgd {
namespace {

class TgdTest : public ::testing::Test {
 protected:
  Tgd Parse(const std::string& text) {
    auto rule = ParseTgd(&symbols_, text);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return *rule;
  }
  core::SymbolTable symbols_;
};

TEST_F(TgdTest, FrontierAndExistentials) {
  Tgd rule = Parse("R(x, y) -> S(y, z)");
  EXPECT_EQ(rule.frontier().size(), 1u);  // y
  EXPECT_EQ(rule.existential().size(), 1u);  // z
  EXPECT_EQ(rule.body_variables().size(), 2u);
  EXPECT_TRUE(rule.IsFrontier(symbols_.InternVariable("y")));
  EXPECT_FALSE(rule.IsFrontier(symbols_.InternVariable("x")));
  EXPECT_TRUE(rule.IsExistential(symbols_.InternVariable("z")));
}

TEST_F(TgdTest, FullRuleNoExistentials) {
  Tgd rule = Parse("R(x, y) -> P(x, y)");
  EXPECT_TRUE(rule.existential().empty());
  EXPECT_EQ(rule.frontier().size(), 2u);
}

TEST_F(TgdTest, GuardDetection) {
  Tgd guarded = Parse("R(x, y, z), S(x, y) -> T(z, w)");
  EXPECT_TRUE(guarded.IsGuarded());
  EXPECT_EQ(guarded.guard_index(), 0);

  Tgd leftmost = Parse("S2(x, y), R2(x, y, z), T2(x, y, z) -> P2(x)");
  EXPECT_TRUE(leftmost.IsGuarded());
  EXPECT_EQ(leftmost.guard_index(), 1);  // leftmost atom with all vars

  Tgd unguarded = Parse("R3(x, y), S3(y, z) -> T3(x, z)");
  EXPECT_FALSE(unguarded.IsGuarded());
}

TEST_F(TgdTest, LinearityAndSimplicity) {
  EXPECT_TRUE(Parse("R(x, y) -> S(y, z)").IsSimpleLinear());
  EXPECT_FALSE(Parse("R(x, x) -> S(x, z)").IsSimpleLinear());
  EXPECT_TRUE(Parse("R(x, x) -> S(x, z)").IsLinear());
  EXPECT_FALSE(Parse("R(x, y), S(x, y) -> T(x)").IsLinear());
}

TEST_F(TgdTest, CreateRejectsEmptyParts) {
  auto r = symbols_.InternPredicate("R", 1);
  core::Term x = symbols_.InternVariable("x");
  EXPECT_FALSE(Tgd::Create({}, {core::Atom(*r, {x})}).ok());
  EXPECT_FALSE(Tgd::Create({core::Atom(*r, {x})}, {}).ok());
}

TEST_F(TgdTest, CreateRejectsConstants) {
  auto r = symbols_.InternPredicate("R", 1);
  core::Term a = *symbols_.InternConstant("a");
  core::Term x = symbols_.InternVariable("x");
  auto bad = Tgd::Create({core::Atom(*r, {a})}, {core::Atom(*r, {x})});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(TgdTest, ToStringRoundTripsThroughParser) {
  Tgd rule = Parse("R(x, y), S(x, y) -> T(y, z), R(z, z)");
  std::string printed = rule.ToString(symbols_);
  auto reparsed = ParseTgd(&symbols_, printed);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(symbols_), printed);
}

TEST_F(TgdTest, ClassifySingleRules) {
  EXPECT_EQ(Classify(Parse("R(x, y) -> S(y, z)")),
            TgdClass::kSimpleLinear);
  EXPECT_EQ(Classify(Parse("R(x, x) -> S(x, z)")), TgdClass::kLinear);
  EXPECT_EQ(Classify(Parse("R(x, y), S1(x) -> T1(y)")),
            TgdClass::kGuarded);
  EXPECT_EQ(Classify(Parse("R(x, y), S(y, z) -> T2(x, z)")),
            TgdClass::kGeneral);
}

TEST_F(TgdTest, ClassifySetTakesMaximum) {
  auto tgds = ParseTgdSet(&symbols_,
                          "R(x, y) -> S(y, z).\n"
                          "R(x, x) -> S(x, z).\n");
  ASSERT_TRUE(tgds.ok());
  EXPECT_EQ(Classify(*tgds), TgdClass::kLinear);
  EXPECT_TRUE(ClassContainedIn(TgdClass::kSimpleLinear, TgdClass::kLinear));
  EXPECT_FALSE(ClassContainedIn(TgdClass::kGuarded, TgdClass::kLinear));
  EXPECT_STREQ(TgdClassName(TgdClass::kGuarded), "G");
}

TEST_F(TgdTest, SchemaQuantities) {
  auto tgds = ParseTgdSet(&symbols_,
                          "R(x, y) -> S(y, z).\n"
                          "S(x, y) -> T(x, y, y).\n");
  ASSERT_TRUE(tgds.ok());
  EXPECT_EQ(tgds->SchemaPredicates().size(), 3u);  // R, S, T
  EXPECT_EQ(tgds->MaxArity(symbols_), 3u);
  EXPECT_EQ(tgds->NumAtoms(), 4u);
  // ||Σ|| = |atoms| · |sch| · ar = 4 · 3 · 3.
  EXPECT_EQ(tgds->Norm(symbols_), 36u);
}

TEST_F(TgdTest, EmptySetQuantities) {
  TgdSet empty;
  EXPECT_EQ(Classify(empty), TgdClass::kSimpleLinear);
  EXPECT_EQ(empty.MaxArity(symbols_), 0u);
  EXPECT_EQ(empty.Norm(symbols_), 0u);
}

}  // namespace
}  // namespace tgd
}  // namespace nuchase
