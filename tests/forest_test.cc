#include <gtest/gtest.h>

#include "chase/chase.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace chase {
namespace {

ChaseResult RunWithForest(core::SymbolTable* symbols,
                          const tgd::TgdSet& tgds,
                          const core::Database& db) {
  ChaseOptions options;
  options.build_forest = true;
  options.max_atoms = 100000;
  return RunChase(symbols, tgds, db, options);
}

TEST(ForestTest, RootsAreExactlyTheDatabaseAtoms) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "G(a, b). H(b). G(c, d).\n"
                             "G(x, y), H(y) -> K(x, y, z).\n"
                             "K(x, y, z) -> H(z).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult r = RunWithForest(&symbols, p->tgds, p->database);
  ASSERT_TRUE(r.Terminated());
  ASSERT_EQ(r.forest.roots().size(), p->database.size());
  for (core::AtomIndex root : r.forest.roots()) {
    EXPECT_EQ(r.forest.parent(root), Forest::kNoParent);
    EXPECT_EQ(r.forest.root(root), root);
    EXPECT_EQ(r.forest.depth(root), 0u);  // facts have depth 0
  }
}

TEST(ForestTest, EveryDerivedAtomDescendsFromItsGuard) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "G(a, b). H(b).\n"
                             "G(x, y), H(y) -> K(x, y, z).\n"
                             "K(x, y, z) -> H(z).\n"
                             "K(x, y, z) -> L(z, x).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult r = RunWithForest(&symbols, p->tgds, p->database);
  ASSERT_TRUE(r.Terminated());
  for (core::AtomIndex i = 0; i < r.instance.size(); ++i) {
    core::AtomIndex parent = r.forest.parent(i);
    if (parent == Forest::kNoParent) continue;
    // Walking parents reaches the recorded root.
    core::AtomIndex cur = i;
    int steps = 0;
    while (r.forest.parent(cur) != Forest::kNoParent && steps < 1000) {
      cur = r.forest.parent(cur);
      ++steps;
    }
    EXPECT_EQ(cur, r.forest.root(i));
  }
}

TEST(ForestTest, ChildDepthWithinOneOfParent) {
  // Lemma 5.1's proof skeleton: a child invents nulls of depth at most
  // parent-frontier-depth + 1, so depth(child) ≤ max over tree path + 1.
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeGuardedLowerBound(&symbols, 1, 1, 1);
  ChaseResult r = RunWithForest(&symbols, w.tgds, w.database);
  ASSERT_TRUE(r.Terminated());
  for (core::AtomIndex i = 0; i < r.instance.size(); ++i) {
    core::AtomIndex parent = r.forest.parent(i);
    if (parent == Forest::kNoParent) continue;
    EXPECT_LE(r.forest.depth(i), r.forest.depth(parent) + 1)
        << "atom " << i;
  }
}

TEST(ForestTest, HistogramSumsToTreeSize) {
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeSlLowerBound(&symbols, 3, 2, 2);
  ChaseResult r = RunWithForest(&symbols, w.tgds, w.database);
  ASSERT_TRUE(r.Terminated());
  for (core::AtomIndex root : r.forest.roots()) {
    std::uint64_t total = 0;
    for (const auto& [depth, count] :
         r.forest.GtreeDepthHistogram(root)) {
      total += count;
    }
    EXPECT_EQ(total, r.forest.GtreeSize(root));
  }
}

TEST(ForestTest, TreesPartitionTheGuardedChase) {
  // gforest(δ) = union of gtree(δ, α) over database atoms α, and the
  // trees are node-disjoint (every atom has one root).
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols,
                             "G(a, b). H(b). G(b, c). H(c).\n"
                             "G(x, y), H(y) -> K(x, y, z).\n"
                             "K(x, y, z) -> L(z).\n");
  ASSERT_TRUE(p.ok());
  ChaseResult r = RunWithForest(&symbols, p->tgds, p->database);
  ASSERT_TRUE(r.Terminated());
  std::uint64_t total = 0;
  for (core::AtomIndex root : r.forest.roots()) {
    total += r.forest.GtreeSize(root);
  }
  EXPECT_EQ(total, r.instance.size());
}

TEST(ForestTest, ForestOffByDefault) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols, "A(a, b). A(x, y) -> B(y, z).");
  ASSERT_TRUE(p.ok());
  ChaseResult r = RunChase(&symbols, p->tgds, p->database);
  EXPECT_TRUE(r.forest.empty());
}

TEST(ForestTest, RandomGuardedForestsAreWellFormed) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    ChaseResult r = RunWithForest(&symbols, w.tgds, w.database);
    if (!r.Terminated()) continue;
    ASSERT_EQ(r.forest.size(), r.instance.size()) << w.name;
    for (core::AtomIndex i = 0; i < r.instance.size(); ++i) {
      core::AtomIndex parent = r.forest.parent(i);
      if (parent != Forest::kNoParent) {
        EXPECT_LT(parent, i) << w.name;  // parents precede children
      }
    }
  }
}

}  // namespace
}  // namespace chase
}  // namespace nuchase
