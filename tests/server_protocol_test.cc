// Wire-protocol serde tests for the chase daemon: every frame type
// round-trips byte-for-byte through its serializer and parser, the
// strict JSON subset rejects what it promises to reject, and a
// malformed line always maps to the right typed error code with the
// request id recovered whenever the line carried one — the property
// that lets a client correlate a rejection with the request it sent.
#include <gtest/gtest.h>

#include <string>

#include "server/json.h"
#include "server/protocol.h"

namespace nuchase {
namespace server {
namespace {

// --- the strict JSON subset ---

TEST(JsonTest, RoundTripsObjectsInOrder) {
  const std::string line =
      "{\"b\":1,\"a\":\"x\",\"flag\":true,\"list\":[1,2,3],\"nil\":null}";
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), line);
}

TEST(JsonTest, RoundTripsStringEscapes) {
  const std::string line =
      "{\"s\":\"line\\nbreak \\\"quoted\\\" back\\\\slash \\u0007\"}";
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto reparsed = ParseJson(parsed->Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Find("s")->string(),
            parsed->Find("s")->string());
}

TEST(JsonTest, RejectsWhatTheProtocolNeverCarries) {
  // Floats, signs, exponents: every protocol number is a count.
  EXPECT_FALSE(ParseJson("{\"n\":1.5}").ok());
  EXPECT_FALSE(ParseJson("{\"n\":-3}").ok());
  EXPECT_FALSE(ParseJson("{\"n\":1e9}").ok());
  // Duplicate keys, trailing garbage, truncation.
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\":").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonTest, EnforcesTheDepthCap) {
  std::string deep, close;
  for (int i = 0; i < 100; ++i) {
    deep += "[";
    close += "]";
  }
  EXPECT_FALSE(ParseJson(deep + close).ok());
  // Well under the cap parses fine.
  EXPECT_TRUE(ParseJson("[[[[[[[[1]]]]]]]]").ok());
}

// --- request frames: serialize -> parse equality ---

TEST(ProtocolTest, ChaseRequestRoundTripsEveryField) {
  ChaseRequest request;
  request.id = "req-7";
  request.rules = "E(x, y) -> T(x, y).\nE(a, b).\n";
  request.variant = chase::ChaseVariant::kRestricted;
  request.max_atoms = 123456;
  request.max_depth = 9;
  request.max_rounds = 77;
  request.deadline_ms = 2500;
  request.num_threads = 4;
  request.payload = true;
  request.events = true;

  RequestParse parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok) << parsed.message;
  ASSERT_EQ(parsed.frame.type, RequestFrame::Type::kChase);
  const ChaseRequest& got = parsed.frame.chase;
  EXPECT_EQ(got.id, request.id);
  EXPECT_EQ(got.rules, request.rules);
  EXPECT_EQ(got.variant, request.variant);
  EXPECT_EQ(got.max_atoms, request.max_atoms);
  EXPECT_EQ(got.max_depth, request.max_depth);
  EXPECT_EQ(got.max_rounds, request.max_rounds);
  EXPECT_EQ(got.deadline_ms, request.deadline_ms);
  EXPECT_EQ(got.num_threads, request.num_threads);
  EXPECT_EQ(got.payload, request.payload);
  EXPECT_EQ(got.events, request.events);
}

TEST(ProtocolTest, ChaseRequestDefaultsSurviveTheWire) {
  ChaseRequest request;
  request.id = "minimal";
  request.rules = "P(a).\n";
  RequestParse parsed = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(parsed.ok) << parsed.message;
  const ChaseRequest& got = parsed.frame.chase;
  EXPECT_EQ(got.variant, chase::ChaseVariant::kSemiOblivious);
  EXPECT_EQ(got.max_atoms, 0u);
  EXPECT_EQ(got.deadline_ms, 0u);
  // "threads unset" must survive: the server substitutes its own
  // default, and that decision belongs to the server, not the wire.
  EXPECT_EQ(got.num_threads, chase::kNumThreadsDefault);
  EXPECT_FALSE(got.payload);
  EXPECT_FALSE(got.events);
}

TEST(ProtocolTest, ControlFramesRoundTrip) {
  RequestParse cancel = ParseRequest(SerializeCancel("job-3"));
  ASSERT_TRUE(cancel.ok);
  ASSERT_EQ(cancel.frame.type, RequestFrame::Type::kCancel);
  EXPECT_EQ(cancel.frame.cancel.id, "job-3");
  EXPECT_EQ(cancel.id, "job-3");

  RequestParse stats = ParseRequest(SerializeStatsRequest());
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.frame.type, RequestFrame::Type::kStats);

  RequestParse ping = ParseRequest(SerializePing());
  ASSERT_TRUE(ping.ok);
  EXPECT_EQ(ping.frame.type, RequestFrame::Type::kPing);
}

// --- malformed lines -> the right typed rejection ---

TEST(ProtocolTest, MalformedLinesRejectWithTypedCodes) {
  struct Case {
    const char* line;
    ErrorCode code;
  };
  const Case cases[] = {
      {"not json at all", ErrorCode::kMalformedFrame},
      {"{\"type\":\"chase\",\"id\":\"x\"", ErrorCode::kMalformedFrame},
      {"[1,2,3]", ErrorCode::kMalformedFrame},
      {"{\"id\":\"x\"}", ErrorCode::kMalformedFrame},
      {"{\"type\":\"chase\",\"id\":\"x\"}", ErrorCode::kMalformedFrame},
      {"{\"type\":\"chase\",\"rules\":\"P(a).\"}",
       ErrorCode::kMalformedFrame},
      {"{\"type\":\"warp\",\"id\":\"x\"}", ErrorCode::kUnknownType},
      {"{\"type\":\"chase\",\"id\":\"x\",\"rules\":\"P(a).\","
       "\"ruels\":\"typo\"}",
       ErrorCode::kUnknownField},
      {"{\"type\":\"chase\",\"id\":\"x\",\"rules\":\"P(a).\","
       "\"threads\":257}",
       ErrorCode::kInvalidOptions},
      {"{\"type\":\"chase\",\"id\":\"x\",\"rules\":\"P(a).\","
       "\"variant\":\"lazy\"}",
       ErrorCode::kInvalidOptions},
      {"{\"type\":\"chase\",\"id\":\"x\",\"rules\":\"P(a).\","
       "\"payload\":\"yes\"}",
       ErrorCode::kInvalidOptions},
      {"{\"type\":\"cancel\"}", ErrorCode::kMalformedFrame},
      {"{\"type\":\"stats\",\"extra\":1}", ErrorCode::kUnknownField},
  };
  for (const Case& c : cases) {
    RequestParse parsed = ParseRequest(c.line);
    EXPECT_FALSE(parsed.ok) << c.line;
    EXPECT_EQ(parsed.code, c.code) << c.line;
    EXPECT_FALSE(parsed.message.empty()) << c.line;
  }
}

TEST(ProtocolTest, RejectionsRecoverTheIdWhenTheLineCarriesOne) {
  RequestParse parsed = ParseRequest(
      "{\"type\":\"chase\",\"id\":\"job-9\",\"rules\":\"P(a).\","
      "\"bogus\":1}");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.code, ErrorCode::kUnknownField);
  EXPECT_EQ(parsed.id, "job-9");

  // No id on the line -> empty id in the rejection, not garbage.
  parsed = ParseRequest("{\"type\":\"warp\"}");
  EXPECT_FALSE(parsed.ok);
  EXPECT_TRUE(parsed.id.empty());
}

// --- response frames: serialize -> parse equality ---

TEST(ProtocolTest, ResponseFramesRoundTrip) {
  auto ack = ParseResponse(Serialize(AckFrame{"r1"}));
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, ResponseFrame::Type::kAck);
  EXPECT_EQ(ack->ack.id, "r1");

  EventFrame event{"r1", 3, 100, 10, 42};
  auto parsed_event = ParseResponse(Serialize(event));
  ASSERT_TRUE(parsed_event.ok());
  ASSERT_EQ(parsed_event->type, ResponseFrame::Type::kEvent);
  EXPECT_EQ(parsed_event->event.id, "r1");
  EXPECT_EQ(parsed_event->event.round, 3u);
  EXPECT_EQ(parsed_event->event.atoms, 100u);
  EXPECT_EQ(parsed_event->event.delta_atoms, 10u);
  EXPECT_EQ(parsed_event->event.triggers_fired, 42u);

  ResultFrame result;
  result.id = "r1";
  result.outcome = "terminated";
  result.cached = true;
  result.atoms = 512;
  result.rounds = 7;
  result.triggers_fired = 99;
  result.max_depth = 4;
  result.arena_bytes = 4096;
  result.has_payload = true;
  result.payload = "P(a)\nQ(a)\n";
  auto parsed_result = ParseResponse(Serialize(result));
  ASSERT_TRUE(parsed_result.ok());
  ASSERT_EQ(parsed_result->type, ResponseFrame::Type::kResult);
  EXPECT_EQ(parsed_result->result.id, result.id);
  EXPECT_EQ(parsed_result->result.outcome, result.outcome);
  EXPECT_EQ(parsed_result->result.cached, result.cached);
  EXPECT_EQ(parsed_result->result.atoms, result.atoms);
  EXPECT_EQ(parsed_result->result.rounds, result.rounds);
  EXPECT_EQ(parsed_result->result.triggers_fired, result.triggers_fired);
  EXPECT_EQ(parsed_result->result.max_depth, result.max_depth);
  EXPECT_EQ(parsed_result->result.arena_bytes, result.arena_bytes);
  ASSERT_TRUE(parsed_result->result.has_payload);
  EXPECT_EQ(parsed_result->result.payload, result.payload);

  // A result without payload stays payload-less through the wire.
  result.has_payload = false;
  result.payload.clear();
  parsed_result = ParseResponse(Serialize(result));
  ASSERT_TRUE(parsed_result.ok());
  EXPECT_FALSE(parsed_result->result.has_payload);

  auto pong = ParseResponse(Serialize(PongFrame{}));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, ResponseFrame::Type::kPong);
}

TEST(ProtocolTest, ErrorFramesRoundTripEveryCode) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    ErrorFrame frame;
    frame.id = "r1";
    frame.code = static_cast<ErrorCode>(c);
    frame.message = "details";
    auto parsed = ParseResponse(Serialize(frame));
    ASSERT_TRUE(parsed.ok()) << ErrorCodeName(frame.code);
    ASSERT_EQ(parsed->type, ResponseFrame::Type::kError);
    EXPECT_EQ(parsed->error.code, frame.code);
    EXPECT_EQ(parsed->error.id, "r1");
    EXPECT_EQ(parsed->error.message, "details");
  }
  // The id-less rejection form (unparseable line, no id recovered).
  ErrorFrame anonymous;
  anonymous.code = ErrorCode::kOversizedFrame;
  auto parsed = ParseResponse(Serialize(anonymous));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->error.id.empty());
}

TEST(ProtocolTest, StatsFrameRoundTripsEveryCounter) {
  StatsFrame stats;
  stats.programs_parsed = 1;
  stats.cache_hits = 2;
  stats.cache_misses = 3;
  stats.cache_evictions = 4;
  stats.cache_entries = 5;
  stats.accepted = 6;
  stats.completed = 7;
  stats.rejected_overload = 8;
  stats.cancelled = 9;
  stats.deadline_exceeded = 10;
  stats.max_overlap = 11;
  stats.inflight = 12;
  stats.queued = 13;
  auto parsed = ParseResponse(Serialize(stats));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->type, ResponseFrame::Type::kStats);
  const StatsFrame& got = parsed->stats;
  EXPECT_EQ(got.programs_parsed, 1u);
  EXPECT_EQ(got.cache_hits, 2u);
  EXPECT_EQ(got.cache_misses, 3u);
  EXPECT_EQ(got.cache_evictions, 4u);
  EXPECT_EQ(got.cache_entries, 5u);
  EXPECT_EQ(got.accepted, 6u);
  EXPECT_EQ(got.completed, 7u);
  EXPECT_EQ(got.rejected_overload, 8u);
  EXPECT_EQ(got.cancelled, 9u);
  EXPECT_EQ(got.deadline_exceeded, 10u);
  EXPECT_EQ(got.max_overlap, 11u);
  EXPECT_EQ(got.inflight, 12u);
  EXPECT_EQ(got.queued, 13u);
}

TEST(ProtocolTest, ParseResponseRejectsNonFrames) {
  EXPECT_FALSE(ParseResponse("garbage").ok());
  EXPECT_FALSE(ParseResponse("{\"no_type\":1}").ok());
  EXPECT_FALSE(ParseResponse("{\"type\":\"novel\"}").ok());
  EXPECT_FALSE(
      ParseResponse("{\"type\":\"error\",\"code\":\"made-up\"}").ok());
}

// --- the catalog mirror ---

TEST(ProtocolTest, FrameCatalogCoversEveryFrameAndCode) {
  int requests = 0, responses = 0, codes = 0;
  for (const FrameSpec& spec : FrameCatalog()) {
    const std::string kind = spec.kind;
    if (kind == "request") ++requests;
    if (kind == "response") ++responses;
    if (kind == "error-code") ++codes;
  }
  EXPECT_EQ(requests, 4);
  EXPECT_EQ(responses, 6);
  // Every ErrorCode value must appear in the catalog by its wire name.
  EXPECT_EQ(codes, static_cast<int>(ErrorCode::kInternal) + 1);
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    const std::string name = ErrorCodeName(static_cast<ErrorCode>(c));
    bool found = false;
    for (const FrameSpec& spec : FrameCatalog()) {
      if (spec.kind == std::string("error-code") && name == spec.name) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "catalog is missing error code " << name;
  }
}

}  // namespace
}  // namespace server
}  // namespace nuchase
