# End-to-end test for tools/nuchase_server's command line, run via
#   cmake -DNUCHASE_SERVER=<exe> -DWORK_DIR=<dir> -P server_cli.cmake
# Asserts the strict-flag contract every nuchase binary shares (exit 2
# on any malformed numeric flag, via util::ParseCountFlag — garbage,
# empty, signed, trailing-junk, out-of-range and overflowing spellings
# all rejected, never silently parsed), the mode exclusivity rules, and
# a small --stdio transcript so the daemon's hermetic mode stays
# drivable from a shell pipeline.

if(NOT NUCHASE_SERVER OR NOT WORK_DIR)
  message(FATAL_ERROR "NUCHASE_SERVER and WORK_DIR must be set")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# run_server(<out-var> <expected-rc> [INPUT <file>] <arg>...)
function(run_server out_var expected_rc)
  cmake_parse_arguments(RS "" "INPUT" "" ${ARGN})
  set(input_args "")
  if(RS_INPUT)
    set(input_args INPUT_FILE "${RS_INPUT}")
  endif()
  execute_process(
      COMMAND "${NUCHASE_SERVER}" ${RS_UNPARSED_ARGUMENTS}
      ${input_args}
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
        "nuchase_server ${RS_UNPARSED_ARGUMENTS}: exit ${rc}, expected "
        "${expected_rc}\nstdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_line output needle context)
  string(FIND "${output}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "${context}: expected output to contain '${needle}', got:\n"
        "${output}")
  endif()
endfunction()

# --list-frames and --help succeed without a mode.
run_server(out 0 --list-frames)
expect_line("${out}" "oversized-frame" "--list-frames")
run_server(out 0 --help)

# Mode errors: none, both, unknown option.
run_server(out 2)
run_server(out 2 --stdio --port=0)
run_server(out 2 --stdio --bogus)

# Strict numeric flags: one garbage, one empty, one signed, one
# trailing-junk, one out-of-range and one overflow spelling across the
# daemon's whole flag surface — all exit 2.
run_server(out 2 --port=abc)
run_server(out 2 --port=)
run_server(out 2 --port=-1)
run_server(out 2 --port=80x)
run_server(out 2 --port=65536)
run_server(out 2 --port=99999999999999999999)
run_server(out 2 --stdio --max-inflight=0)
run_server(out 2 --stdio --max-inflight=abc)
run_server(out 2 --stdio --max-inflight=257)
run_server(out 2 --stdio --max-queue=-1)
run_server(out 2 --stdio --max-queue=two)
run_server(out 2 --stdio --max-queue=1000001)
run_server(out 2 --stdio --cache-size=0)
run_server(out 2 --stdio --cache-size=)
run_server(out 2 --stdio --threads=257)
run_server(out 2 --stdio --threads=4.5)
run_server(out 2 --stdio --max-line-bytes=10)
run_server(out 2 --stdio --max-line-bytes=1073741825)

# A --stdio transcript: ping, one chase with payload, stats. The
# daemon must answer every frame and exit 0 once stdin drains.
set(SCRIPT_FILE "${WORK_DIR}/stdio_script.jsonl")
file(WRITE "${SCRIPT_FILE}"
"{\"type\":\"ping\"}
{\"type\":\"chase\",\"id\":\"r1\",\"rules\":\"P(a).\\nP(x) -> Q(x).\",\"payload\":true}
{\"type\":\"not-a-frame\"}
{\"type\":\"stats\"}
")
run_server(out 0 --stdio INPUT "${SCRIPT_FILE}")
expect_line("${out}" "\"type\":\"pong\"" "stdio ping")
expect_line("${out}" "\"type\":\"ack\",\"id\":\"r1\"" "stdio ack")
expect_line("${out}" "\"outcome\":\"terminated\"" "stdio result")
expect_line("${out}" "\"payload\":\"P(a)\\nQ(a)\\n\"" "stdio payload")
expect_line("${out}" "\"code\":\"unknown-type\"" "stdio rejection")
expect_line("${out}" "\"type\":\"stats\"" "stdio stats")

# The well-formed spellings still serve.
set(PING_FILE "${WORK_DIR}/ping.jsonl")
file(WRITE "${PING_FILE}" "{\"type\":\"ping\"}\n")
run_server(out 0 --stdio --max-inflight=2 --max-queue=0 --cache-size=1
    --threads=2 --max-line-bytes=4096 INPUT "${PING_FILE}")
expect_line("${out}" "\"type\":\"pong\"" "stdio with flags")

message(STATUS "server_cli: all flag and transcript checks passed")
