#include <gtest/gtest.h>

#include "chase/chase.h"
#include "rewrite/linearize.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

namespace nuchase {
namespace rewrite {
namespace {

rewrite::Linearized Lin(core::SymbolTable* symbols,
                        const std::string& program_text) {
  auto program = tgd::ParseProgram(symbols, program_text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto lin = Linearize(program->database, program->tgds, symbols,
                       LinearizeOptions{});
  EXPECT_TRUE(lin.ok()) << lin.status().ToString();
  return std::move(*lin);
}

TEST(LinearizeTest, RequiresGuardedness) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(
      &symbols, "R(a, b). R(x, y), S(y, z) -> T(x, z).");
  ASSERT_TRUE(program.ok());
  auto lin = Linearize(program->database, program->tgds, &symbols,
                       LinearizeOptions{});
  EXPECT_FALSE(lin.ok());
  EXPECT_EQ(lin.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(LinearizeTest, OutputIsLinear) {
  core::SymbolTable symbols;
  Linearized lin = Lin(&symbols,
                       "R(a, b).\n"
                       "S(b).\n"
                       "R(x, y), S(y) -> T(y, z).\n"
                       "T(y, z) -> S(z).\n");
  // lin(Σ) is linear by construction; Classify reports the most specific
  // class, which may be SL when no [τ]-body repeats a variable.
  EXPECT_TRUE(tgd::ClassContainedIn(tgd::Classify(lin.tgds),
                                    tgd::TgdClass::kLinear));
  EXPECT_GE(lin.num_types, 2u);
  // Every lin(D) fact uses a [τ] predicate of the registry.
  for (const core::Atom& fact : lin.database.facts()) {
    EXPECT_TRUE(lin.types.count(fact.predicate));
  }
}

TEST(LinearizeTest, TypeEncodesGuardAndCompanions) {
  // D = {R(a,a,b,c)} with σ' = R(x,x,y,z) → Q(x,z) (Example E.9): the
  // type of R(a,a,b,c) contains Q(a,c), and the [τ] name records the
  // pattern R(1,1,2,3) with companion Q(1,3).
  core::SymbolTable symbols;
  Linearized lin = Lin(&symbols,
                       "R(a, a, b, c).\n"
                       "R(x, x, y, z) -> Q(x, z).\n");
  ASSERT_EQ(lin.database.size(), 1u);
  const core::Atom& fact = lin.database.facts()[0];
  std::string name = symbols.predicate_name(fact.predicate);
  EXPECT_NE(name.find("R(1,1,2,3)"), std::string::npos) << name;
  EXPECT_NE(name.find("Q(1,3)"), std::string::npos) << name;
  // Full-arity convention: [τ](a,a,b,c).
  EXPECT_EQ(fact.args.size(), 4u);
}

// --- Proposition 8.1: linearization preserves finiteness and maxdepth. --

struct LinearizeCase {
  const char* name;
  const char* program;
  bool finite;
};

class LinearizePreservationTest
    : public ::testing::TestWithParam<LinearizeCase> {};

TEST_P(LinearizePreservationTest, FinitenessAndDepthArePreserved) {
  const LinearizeCase& param = GetParam();
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols, param.program);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto lin = Linearize(program->database, program->tgds, &symbols,
                       LinearizeOptions{});
  ASSERT_TRUE(lin.ok()) << lin.status().ToString();

  chase::ChaseOptions options;
  options.max_atoms = 20000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, program->tgds, program->database, options);
  chase::ChaseResult linearized =
      chase::RunChase(&symbols, lin->tgds, lin->database, options);

  EXPECT_EQ(original.Terminated(), param.finite) << param.name;
  EXPECT_EQ(original.Terminated(), linearized.Terminated()) << param.name;
  if (param.finite) {
    EXPECT_EQ(original.stats.max_depth, linearized.stats.max_depth)
        << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LinearizePreservationTest,
    ::testing::Values(
        LinearizeCase{"datalog", "E(a, b). E(x, y) -> P(x, y).", true},
        LinearizeCase{"one_null",
                      "R(a, b). S(b). R(x, y), S(y) -> T(y, z).", true},
        LinearizeCase{"chain",
                      "R(a). R(x) -> E(x, z). E(x, z) -> F(z, w).", true},
        LinearizeCase{"side_conditions_finite",
                      "G(a, b). H(b). G(x, y), H(y) -> K(x, y, z). "
                      "K(x, y, z) -> H(z).",
                      true},
        LinearizeCase{"side_conditions_infinite",
                      "G(a, b). H(b). G(x, y), H(y) -> K(x, y, z). "
                      "K(x, y, z) -> G(y, z), H(z).",
                      false},
        LinearizeCase{"guarded_loop_finite",
                      "G(a, b). H(b). G(x, y), H(y) -> K(x, y, z). "
                      "K(x, y, z) -> L(x, y).",
                      true},
        LinearizeCase{"infinite_path",
                      "R(a, b). R(x, y) -> R(y, z).", false},
        LinearizeCase{"two_rules_interlock",
                      "R(a, b). R(x, y) -> S(y, z). S(x, y) -> R(x, x).",
                      true}),
    [](const ::testing::TestParamInfo<LinearizeCase>& info) {
      return info.param.name;
    });

TEST(GSimplifyTest, ComposesLinearizationAndSimplification) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols,
                                   "R(a, b).\n"
                                   "S(b).\n"
                                   "R(x, y), S(y) -> T(y, z).\n"
                                   "T(y, z) -> S(z).\n");
  ASSERT_TRUE(program.ok());
  auto gsimple = GSimplify(program->database, program->tgds, &symbols,
                           LinearizeOptions{});
  ASSERT_TRUE(gsimple.ok()) << gsimple.status().ToString();
  EXPECT_EQ(tgd::Classify(gsimple->tgds), tgd::TgdClass::kSimpleLinear);
  EXPECT_GE(gsimple->num_types, 2u);
  EXPECT_GE(gsimple->num_linear_tgds, 1u);
  EXPECT_EQ(gsimple->database.size(), program->database.size());
}

TEST(LinearizeTest, TypeBudgetIsEnforced) {
  core::SymbolTable symbols;
  auto program = tgd::ParseProgram(&symbols,
                                   "R(a, b).\n"
                                   "R(x, y) -> S(y, z).\n"
                                   "S(x, y) -> R(y, z).\n");
  ASSERT_TRUE(program.ok());
  LinearizeOptions options;
  options.max_types = 1;
  auto lin = Linearize(program->database, program->tgds, &symbols,
                       options);
  EXPECT_FALSE(lin.ok());
  EXPECT_EQ(lin.status().code(), util::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace rewrite
}  // namespace nuchase
