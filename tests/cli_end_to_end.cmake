# End-to-end test for tools/nuchase_cli and tools/nuchase_lint, run via
#   cmake -DNUCHASE_CLI=<exe> -DNUCHASE_LINT=<exe> -DWORK_DIR=<dir>
#         -DREPO_DIR=<src> -P cli_end_to_end.cmake
# Drives classify/decide/chase/rewrite on the quickstart ontology,
# asserts on exit codes and key output lines, and compares the
# examples/programs/ outputs byte-for-byte against tests/golden/ so
# engine refactors cannot silently change results.

if(NOT NUCHASE_CLI OR NOT NUCHASE_LINT OR NOT WORK_DIR OR NOT REPO_DIR)
  message(FATAL_ERROR
      "NUCHASE_CLI, NUCHASE_LINT, WORK_DIR and REPO_DIR must be set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(PROGRAM_FILE "${WORK_DIR}/quickstart.tgd")
file(WRITE "${PROGRAM_FILE}"
"Emp(alice, sales).
Emp(bob, eng).
Emp(x, d) -> Dept(d).
Dept(d) -> Mgr(d, m).
Mgr(d, m) -> Emp(m, d).
")

# run_cli(<out-var> <expected-rc> <arg>...) — runs the CLI, asserts the
# exit code, and stores combined stdout in the out-var.
function(run_cli out_var expected_rc)
  execute_process(
      COMMAND "${NUCHASE_CLI}" ${ARGN}
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
        "nuchase ${ARGN}: exit ${rc}, expected ${expected_rc}\n"
        "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_line output needle context)
  string(FIND "${output}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "${context}: expected output to contain '${needle}', got:\n"
        "${output}")
  endif()
endfunction()

run_cli(out 0 classify "${PROGRAM_FILE}")
expect_line("${out}" "class:" "classify")
expect_line("${out}" "SL" "classify")
expect_line("${out}" "d_C(Sigma)" "classify")

run_cli(out 0 decide "${PROGRAM_FILE}")
expect_line("${out}" "terminates" "decide")

run_cli(out 0 chase --print "${PROGRAM_FILE}")
expect_line("${out}" "outcome:    terminated" "chase")
expect_line("${out}" "variant:    semi-oblivious" "chase")
expect_line("${out}" "Dept(" "chase --print")

run_cli(out 0 chase --variant=restricted "${PROGRAM_FILE}")
expect_line("${out}" "variant:    restricted" "chase restricted")

run_cli(out 0 rewrite --mode=simplify "${PROGRAM_FILE}")

# Error paths: unknown command and missing file must fail loudly.
run_cli(out 2 badcommand "${PROGRAM_FILE}")

# Malformed numeric flags must be rejected (exit 2), never silently
# parsed as 0: trailing junk, empty values, signs, non-digits, values
# past the flag's range, and overflow past unsigned long long.
run_cli(out 2 chase --max-atoms=abc "${PROGRAM_FILE}")
run_cli(out 2 chase --max-rounds= "${PROGRAM_FILE}")
run_cli(out 2 chase --max-depth=12x "${PROGRAM_FILE}")
run_cli(out 2 chase --deadline-ms=-5 "${PROGRAM_FILE}")
run_cli(out 2 chase --threads=two "${PROGRAM_FILE}")
run_cli(out 2 chase --threads=257 "${PROGRAM_FILE}")
run_cli(out 2 chase --max-rounds=99999999999999999999 "${PROGRAM_FILE}")
run_cli(out 2 chase --max-depth=4294967296 "${PROGRAM_FILE}")
# --extent-log2 is range-capped to [2, 24]: garbage, empty, signed and
# out-of-range spellings all exit 2.
run_cli(out 2 chase --extent-log2=abc "${PROGRAM_FILE}")
run_cli(out 2 chase --extent-log2= "${PROGRAM_FILE}")
run_cli(out 2 chase --extent-log2=-4 "${PROGRAM_FILE}")
run_cli(out 2 chase --extent-log2=1 "${PROGRAM_FILE}")
run_cli(out 2 chase --extent-log2=25 "${PROGRAM_FILE}")
# The well-formed spellings of the same budgets still work.
run_cli(out 0 chase --max-rounds=50 --max-depth=10 "${PROGRAM_FILE}")
expect_line("${out}" "outcome:    terminated" "chase with budgets")
execute_process(
    COMMAND "${NUCHASE_CLI}" classify "${WORK_DIR}/no_such_file.tgd"
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "classify on a missing file must not exit 0")
endif()

# ---------------------------------------------------------------------
# Golden-file checks over examples/programs/: every committed program's
# classify/decide/chase output must match tests/golden/ exactly.

# run_golden(<program.tgd> <golden-file> <expected-rc> <arg>...)
function(run_golden program golden expected_rc)
  execute_process(
      COMMAND "${NUCHASE_CLI}" ${ARGN} "${REPO_DIR}/examples/programs/${program}"
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
        "golden ${golden}: nuchase ${ARGN} ${program} exited ${rc}, "
        "expected ${expected_rc}\nstdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  file(READ "${REPO_DIR}/tests/golden/${golden}" expected)
  if(NOT stdout STREQUAL expected)
    message(FATAL_ERROR
        "golden mismatch for ${golden} (nuchase ${ARGN} ${program}).\n"
        "--- expected ---\n${expected}\n--- got ---\n${stdout}\n"
        "If the change is intentional, regenerate tests/golden/ (see "
        "README, Benchmarks) and commit the diff.")
  endif()
endfunction()

foreach(prog quickstart data_exchange datalog_tc)
  run_golden(${prog}.tgd ${prog}_classify.txt 0 classify)
  run_golden(${prog}.tgd ${prog}_decide.txt 0 decide)
  run_golden(${prog}.tgd ${prog}_chase.txt 0 chase --print)
endforeach()
# Budget flags: a round budget must stop the recursive datalog program
# with outcome round-limit (exit 1 — the instance is only a chase
# prefix) and deterministic counters.
run_golden(datalog_tc.tgd datalog_tc_rounds.txt 1 chase --max-rounds=2)

# The ladder showcases: general TGDs that no per-class procedure
# covers, certified by the joint-acyclicity and MFA rungs.
run_golden(ja_ladder.tgd ja_ladder_decide.txt 0 decide)
run_golden(mfa_ladder.tgd mfa_ladder_decide.txt 0 decide)

run_golden(witness_race.tgd witness_race_classify.txt 0 classify)
run_golden(witness_race.tgd witness_race_decide.txt 1 decide)
run_golden(witness_race.tgd witness_race_chase.txt 0
    chase --variant=restricted --print)

# Parallel-engine purity: --threads=N must reproduce the sequential
# goldens byte-for-byte, stats lines included — every counter the CLI
# prints is deterministic across thread counts.
foreach(prog quickstart data_exchange datalog_tc)
  run_golden(${prog}.tgd ${prog}_chase.txt 0 chase --print --threads=4)
endforeach()

# Extent-geometry purity: segment geometry is observationally invisible,
# so any legal --extent-log2 (alone or under the parallel engine) must
# reproduce the goldens byte-for-byte — arena-bytes line included, since
# tail padding is excluded from the accounting per segment.
foreach(elog2 2 4 16)
  run_golden(quickstart.tgd quickstart_chase.txt 0
      chase --print --extent-log2=${elog2})
endforeach()
run_golden(datalog_tc.tgd datalog_tc_chase.txt 0
    chase --print --extent-log2=3 --threads=4)
run_golden(witness_race.tgd witness_race_chase.txt 0
    chase --variant=restricted --print --threads=3)

# Restraint-guided firing order (restricted variant): plain Σ-order
# diverges on the committed order-sensitivity program (round-limit
# prefix pinned as a golden), --restraint-order terminates — in fewer
# rounds, with a smaller instance — and stays byte-identical across
# thread counts like every other schedule.
run_golden(restraint_order.tgd restraint_order_sigma.txt 1
    chase --variant=restricted --max-rounds=6)
run_golden(restraint_order.tgd restraint_order_guided.txt 0
    chase --variant=restricted --restraint-order --print)
run_golden(restraint_order.tgd restraint_order_guided.txt 0
    chase --variant=restricted --restraint-order --print --threads=2)

# Reliance-scheduling purity: --no-reliances must reproduce the chase
# byte-for-byte — instance and every stats line — except the schedule
# line, which reports the ablation instead of the group count.
function(strip_schedule_line text out_var)
  string(REGEX REPLACE "schedule:[^\n]*\n" "" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

# check_reliance_purity(<program> <arg>...): run the chase with and
# without reliance scheduling and demand identical output modulo the
# schedule line.
function(check_reliance_purity prog)
  run_cli(rel_on 0 chase ${ARGN} --print
      "${REPO_DIR}/examples/programs/${prog}.tgd")
  run_cli(rel_off 0 chase ${ARGN} --print --no-reliances
      "${REPO_DIR}/examples/programs/${prog}.tgd")
  expect_line("${rel_off}" "schedule:   reliances off"
      "${prog} --no-reliances")
  strip_schedule_line("${rel_on}" rel_on)
  strip_schedule_line("${rel_off}" rel_off)
  if(NOT rel_on STREQUAL rel_off)
    message(FATAL_ERROR
        "${prog}: reliance scheduling changed the result.\n"
        "--- reliances on ---\n${rel_on}\n"
        "--- reliances off ---\n${rel_off}")
  endif()
endfunction()

foreach(prog quickstart data_exchange datalog_tc)
  check_reliance_purity(${prog})
endforeach()
check_reliance_purity(witness_race --variant=restricted)
check_reliance_purity(witness_race --variant=restricted --threads=3)

# NUCHASE_THREADS hygiene: a malformed value (including the
# whitespace-prefixed spelling bare strtoul used to accept) must warn
# once on stderr and fall back to sequential — stdout stays golden.
foreach(bad_threads "garbage" " 4" "+4" "0x8" "257")
  execute_process(
      COMMAND ${CMAKE_COMMAND} -E env "NUCHASE_THREADS=${bad_threads}"
          "${NUCHASE_CLI}" chase --print
          "${REPO_DIR}/examples/programs/quickstart.tgd"
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "NUCHASE_THREADS='${bad_threads}': exit ${rc}\n${stderr}")
  endif()
  file(READ "${REPO_DIR}/tests/golden/quickstart_chase.txt" expected)
  if(NOT stdout STREQUAL expected)
    message(FATAL_ERROR
        "NUCHASE_THREADS='${bad_threads}' changed stdout:\n${stdout}")
  endif()
  string(FIND "${stderr}" "ignoring invalid NUCHASE_THREADS" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "NUCHASE_THREADS='${bad_threads}': expected a warning on "
        "stderr, got:\n${stderr}")
  endif()
endforeach()
# A well-formed value engages silently and reproduces the golden.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "NUCHASE_THREADS=4"
        "${NUCHASE_CLI}" chase --print
        "${REPO_DIR}/examples/programs/quickstart.tgd"
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr
    RESULT_VARIABLE rc)
file(READ "${REPO_DIR}/tests/golden/quickstart_chase.txt" expected)
if(NOT rc EQUAL 0 OR NOT stdout STREQUAL expected)
  message(FATAL_ERROR "NUCHASE_THREADS=4: exit ${rc}\n${stdout}")
endif()
string(FIND "${stderr}" "NUCHASE_THREADS" pos)
if(NOT pos EQUAL -1)
  message(FATAL_ERROR
      "NUCHASE_THREADS=4 must not warn, got:\n${stderr}")
endif()

# Ablation purity: the full-scan engine must materialize the identical
# instance; only the engine/joins stat lines may differ.
function(strip_engine_lines text out_var)
  string(REGEX REPLACE "engine:[^\n]*\n" "" text "${text}")
  string(REGEX REPLACE "joins:[^\n]*\n" "" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

foreach(prog quickstart data_exchange datalog_tc)
  run_cli(delta_on 0 chase --print
      "${REPO_DIR}/examples/programs/${prog}.tgd")
  run_cli(delta_off 0 chase --print --no-delta --no-position-index
      "${REPO_DIR}/examples/programs/${prog}.tgd")
  strip_engine_lines("${delta_on}" delta_on)
  strip_engine_lines("${delta_off}" delta_off)
  if(NOT delta_on STREQUAL delta_off)
    message(FATAL_ERROR
        "${prog}: delta and full-scan engines disagree.\n"
        "--- delta on ---\n${delta_on}\n--- delta off ---\n${delta_off}")
  endif()
endforeach()

# ---------------------------------------------------------------------
# nuchase_lint: exit-code contract, golden reports, byte-determinism.
#
# The linter echoes the file path exactly as given, so every golden run
# uses WORKING_DIRECTORY = examples/programs/ with a bare file name —
# build-tree paths must never leak into tests/golden/.

# run_lint(<out-var> <expected-rc> <arg>...) — like run_cli, for the
# linter, run from the examples/programs directory.
function(run_lint out_var expected_rc)
  execute_process(
      COMMAND "${NUCHASE_LINT}" ${ARGN}
      WORKING_DIRECTORY "${REPO_DIR}/examples/programs"
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
        "nuchase_lint ${ARGN}: exit ${rc}, expected ${expected_rc}\n"
        "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

# run_lint_golden(<program.tgd> <golden-file> <expected-rc> <arg>...)
function(run_lint_golden program golden expected_rc)
  run_lint(stdout ${expected_rc} ${ARGN} "${program}")
  file(READ "${REPO_DIR}/tests/golden/${golden}" expected)
  if(NOT stdout STREQUAL expected)
    message(FATAL_ERROR
        "golden mismatch for ${golden} (nuchase_lint ${ARGN} "
        "${program}).\n--- expected ---\n${expected}\n"
        "--- got ---\n${stdout}\n"
        "If the change is intentional, regenerate tests/golden/ and "
        "commit the diff.")
  endif()
endfunction()

# Exit 0: clean programs (the ladder showcases raise no findings).
run_lint_golden(ja_ladder.tgd ja_ladder_lint.txt 0)
run_lint_golden(mfa_ladder.tgd mfa_ladder_lint.txt 0)

# Exit 1: the showcase program raises every parsed-program diagnostic,
# pinned byte-for-byte in both report formats.
run_lint_golden(lint_showcase.tgd lint_showcase_lint.txt 1)
run_lint_golden(lint_showcase.tgd lint_showcase_lint_json.txt 1
    --format=json)

# Byte-determinism: a second run, and runs under different --threads
# values (the MFA rung chases the critical instance in parallel), must
# reproduce the goldens exactly.
run_lint_golden(lint_showcase.tgd lint_showcase_lint_json.txt 1
    --format=json)
run_lint_golden(mfa_ladder.tgd mfa_ladder_lint.txt 0 --threads=2)
run_lint_golden(mfa_ladder.tgd mfa_ladder_lint.txt 0 --threads=3)

# A clean SL program exits 0 and reports the per-class procedure.
run_lint(out 0 "${PROGRAM_FILE}")
expect_line("${out}" "class:       SL" "lint quickstart")
expect_line("${out}" "termination: terminates (via weak-acyclicity)"
    "lint quickstart")
expect_line("${out}" "summary:     0 error(s), 0 warning(s), 0 info(s)"
    "lint quickstart")

# Exit 1: a parse failure surfaces as the synthetic NU000 diagnostic in
# both formats, never as a crash or a usage error.
file(WRITE "${WORK_DIR}/broken.tgd" "Emp(x ->\n")
run_lint(out 1 "${WORK_DIR}/broken.tgd")
expect_line("${out}" "error NU000" "lint parse failure")
run_lint(out 1 --format=json "${WORK_DIR}/broken.tgd")
expect_line("${out}" "\"id\": \"NU000\"" "lint parse failure json")

# --list-ids prints the catalog and exits 0.
run_lint(out 0 --list-ids)
expect_line("${out}" "NU001 warning" "lint --list-ids")
expect_line("${out}" "NU007 warning" "lint --list-ids")

# Exit 2: usage errors — bad flag values, unknown options, a missing
# operand, and an unreadable file.
run_lint(out 2 --threads=abc ja_ladder.tgd)
run_lint(out 2 --threads=257 ja_ladder.tgd)
run_lint(out 2 --threads= ja_ladder.tgd)
run_lint(out 2 --format=xml ja_ladder.tgd)
run_lint(out 2 --bogus ja_ladder.tgd)
run_lint(out 2)
run_lint(out 2 "${WORK_DIR}/no_such_file.tgd")

message(STATUS "cli_end_to_end: all checks passed")
