# End-to-end test for tools/nuchase_cli, run via
#   cmake -DNUCHASE_CLI=<exe> -DWORK_DIR=<dir> -P cli_end_to_end.cmake
# Drives classify/decide/chase/rewrite on the quickstart ontology and
# asserts on exit codes and key output lines.

if(NOT NUCHASE_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "NUCHASE_CLI and WORK_DIR must be set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(PROGRAM_FILE "${WORK_DIR}/quickstart.tgd")
file(WRITE "${PROGRAM_FILE}"
"Emp(alice, sales).
Emp(bob, eng).
Emp(x, d) -> Dept(d).
Dept(d) -> Mgr(d, m).
Mgr(d, m) -> Emp(m, d).
")

# run_cli(<out-var> <expected-rc> <arg>...) — runs the CLI, asserts the
# exit code, and stores combined stdout in the out-var.
function(run_cli out_var expected_rc)
  execute_process(
      COMMAND "${NUCHASE_CLI}" ${ARGN}
      OUTPUT_VARIABLE stdout
      ERROR_VARIABLE stderr
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL expected_rc)
    message(FATAL_ERROR
        "nuchase ${ARGN}: exit ${rc}, expected ${expected_rc}\n"
        "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_line output needle context)
  string(FIND "${output}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "${context}: expected output to contain '${needle}', got:\n"
        "${output}")
  endif()
endfunction()

run_cli(out 0 classify "${PROGRAM_FILE}")
expect_line("${out}" "class:" "classify")
expect_line("${out}" "SL" "classify")
expect_line("${out}" "d_C(Sigma)" "classify")

run_cli(out 0 decide "${PROGRAM_FILE}")
expect_line("${out}" "terminates" "decide")

run_cli(out 0 chase --print "${PROGRAM_FILE}")
expect_line("${out}" "outcome:    terminated" "chase")
expect_line("${out}" "variant:    semi-oblivious" "chase")
expect_line("${out}" "Dept(" "chase --print")

run_cli(out 0 chase --variant=restricted "${PROGRAM_FILE}")
expect_line("${out}" "variant:    restricted" "chase restricted")

run_cli(out 0 rewrite --mode=simplify "${PROGRAM_FILE}")

# Error paths: unknown command and missing file must fail loudly.
run_cli(out 2 badcommand "${PROGRAM_FILE}")
execute_process(
    COMMAND "${NUCHASE_CLI}" classify "${WORK_DIR}/no_such_file.tgd"
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "classify on a missing file must not exit 0")
endif()

message(STATUS "cli_end_to_end: all checks passed")
