#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "graph/joint_acyclicity.h"
#include "graph/reliance.h"
#include "graph/weak_acyclicity.h"
#include "termination/ladder.h"
#include "termination/mfa.h"
#include "termination/naive_decider.h"
#include "termination/uniform.h"
#include "tgd/parser.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

// The committed JA-not-WA separating example (examples/programs/
// ja_ladder.tgd): general class, not weakly acyclic w.r.t. D, jointly
// acyclic.
constexpr char kJaNotWa[] =
    "P(a). R(a, b).\n"
    "P(x) -> Q(x, y).\n"
    "Q(x, y), R(y, w) -> P(y).\n";

// The committed MFA-not-JA separating example (examples/programs/
// mfa_ladder.tgd): JA sees a self-fed existential, the critical-
// instance chase terminates at depth 2.
constexpr char kMfaNotJa[] =
    "B(a). D(a, b).\n"
    "B(x) -> R(x, y).\n"
    "R(x, y), B(y), D(x, w) -> C(x).\n"
    "C(x), R(x, y) -> B(y).\n";

// Diverges on every rung: the one-rule transitive loop.
constexpr char kDiverging[] = "R(a, b). R(x, y) -> R(y, z).";

class AnalysisTest : public ::testing::Test {
 protected:
  tgd::Program Parse(const std::string& text) {
    auto program = tgd::ParseProgram(&symbols_, text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return *program;
  }
  core::SymbolTable symbols_;
};

// ---------------------------------------------------------------- JA --

TEST_F(AnalysisTest, JointAcyclicityAcceptsWhereWaFails) {
  tgd::Program p = Parse(kJaNotWa);
  graph::WeakAcyclicityResult wa =
      graph::CheckWeakAcyclicity(p.tgds, p.database, symbols_);
  EXPECT_FALSE(wa.weakly_acyclic);
  graph::JointAcyclicityResult ja =
      graph::CheckJointAcyclicity(p.tgds, symbols_);
  EXPECT_TRUE(ja.jointly_acyclic);
  EXPECT_TRUE(ja.cycle.empty());
  // One existential (y of rule 0) whose movement set is {(Q,2)} alone.
  ASSERT_EQ(ja.move_sizes.size(), 1u);
  EXPECT_EQ(ja.move_sizes[0], 1u);
}

TEST_F(AnalysisTest, JointAcyclicityFindsSelfFedExistential) {
  tgd::Program p = Parse(kMfaNotJa);
  graph::JointAcyclicityResult ja =
      graph::CheckJointAcyclicity(p.tgds, symbols_);
  EXPECT_FALSE(ja.jointly_acyclic);
  ASSERT_FALSE(ja.cycle.empty());
  // The sole existential is y of rule 0, and the cycle is its
  // self-loop; the witness variable really is existential in its rule.
  EXPECT_EQ(ja.cycle.size(), 1u);
  EXPECT_EQ(ja.cycle[0].rule, 0u);
  const std::vector<core::Term>& ex = p.tgds.tgd(0).existential();
  EXPECT_NE(std::find(ex.begin(), ex.end(), ja.cycle[0].variable),
            ex.end());
}

TEST_F(AnalysisTest, JointAcyclicityTrivialForFullTgds) {
  // No existentials: the dependency graph has no nodes at all.
  tgd::Program p = Parse("C(a, b). C(x, y), D(y, z) -> E(x, z).");
  graph::JointAcyclicityResult ja =
      graph::CheckJointAcyclicity(p.tgds, symbols_);
  EXPECT_TRUE(ja.jointly_acyclic);
  EXPECT_TRUE(ja.move_sizes.empty());
}

// --------------------------------------------------------------- MFA --

TEST_F(AnalysisTest, MfaCertifiesUniformTermination) {
  tgd::Program p = Parse(kMfaNotJa);
  termination::MfaResult mfa = termination::CheckMfa(symbols_, p.tgds);
  EXPECT_EQ(mfa.status, termination::MfaStatus::kAcyclic);
  EXPECT_GT(mfa.critical_atoms, 0u);
  // Feeding a null back into B needs an underivable D-fact, so the
  // critical chase stops at depth 2 — inside the automatic E + 2 = 3
  // tripwire.
  EXPECT_EQ(mfa.max_depth_seen, 2u);
  EXPECT_TRUE(mfa.cycle.empty());
}

TEST_F(AnalysisTest, MfaReportsSelfFedNullWitness) {
  tgd::Program p = Parse(kDiverging);
  termination::MfaResult mfa = termination::CheckMfa(symbols_, p.tgds);
  EXPECT_EQ(mfa.status, termination::MfaStatus::kCyclic);
  ASSERT_FALSE(mfa.cycle.empty());
  EXPECT_FALSE(mfa.witness_null.empty());
  // Every step of the witness names an existential of its rule (the
  // one rule here), and the auto tripwire E + 2 = 3 bounds the breach.
  for (const termination::MfaCycleStep& step : mfa.cycle) {
    EXPECT_EQ(step.rule, 0u);
    const std::vector<core::Term>& ex = p.tgds.tgd(step.rule).existential();
    EXPECT_NE(std::find(ex.begin(), ex.end(), step.variable), ex.end());
  }
  // The breach happens one level past the automatic E + 2 = 3 tripwire.
  EXPECT_EQ(mfa.max_depth_seen, 4u);
}

TEST_F(AnalysisTest, MfaAtomBudgetIsInconclusive) {
  tgd::Program p = Parse(kDiverging);
  termination::MfaOptions options;
  options.max_atoms = 3;
  options.max_depth = 50;  // keep the tripwire out of the way
  termination::MfaResult mfa =
      termination::CheckMfa(symbols_, p.tgds, options);
  EXPECT_EQ(mfa.status, termination::MfaStatus::kBudget);
  EXPECT_TRUE(mfa.cycle.empty());
}

// ------------------------------------------------------------ ladder --

TEST_F(AnalysisTest, LadderCertifiesOnTheCheapestRung) {
  tgd::Program wa = Parse("A(a, b). A(x, y) -> W(y, z).");
  termination::LadderResult r1 =
      termination::RunLadder(symbols_, wa.tgds, wa.database);
  EXPECT_EQ(r1.verdict, termination::Decision::kTerminates);
  EXPECT_EQ(r1.rung, "wa");
  EXPECT_FALSE(r1.mfa_ran);  // short-circuited: WA already certified

  tgd::Program ja = Parse(kJaNotWa);
  termination::LadderResult r2 =
      termination::RunLadder(symbols_, ja.tgds, ja.database);
  EXPECT_EQ(r2.verdict, termination::Decision::kTerminates);
  EXPECT_EQ(r2.rung, "ja");
  EXPECT_FALSE(r2.wa.weakly_acyclic);
  EXPECT_FALSE(r2.mfa_ran);

  tgd::Program mfa = Parse(kMfaNotJa);
  termination::LadderResult r3 =
      termination::RunLadder(symbols_, mfa.tgds, mfa.database);
  EXPECT_EQ(r3.verdict, termination::Decision::kTerminates);
  EXPECT_EQ(r3.rung, "mfa");
  EXPECT_FALSE(r3.wa.weakly_acyclic);
  EXPECT_FALSE(r3.ja.jointly_acyclic);
  EXPECT_TRUE(r3.mfa_ran);
}

TEST_F(AnalysisTest, LadderUnknownWhenNoRungCertifies) {
  tgd::Program p = Parse(kDiverging);
  termination::LadderResult r =
      termination::RunLadder(symbols_, p.tgds, p.database);
  EXPECT_EQ(r.verdict, termination::Decision::kUnknown);
  EXPECT_TRUE(r.rung.empty());
  EXPECT_TRUE(r.mfa_ran);
  EXPECT_EQ(r.mfa.status, termination::MfaStatus::kCyclic);
}

TEST_F(AnalysisTest, LadderChaseFreeModeSkipsMfa) {
  tgd::Program p = Parse(kMfaNotJa);
  termination::LadderOptions options;
  options.run_mfa = false;
  termination::LadderResult r =
      termination::RunLadder(symbols_, p.tgds, p.database, options);
  EXPECT_FALSE(r.mfa_ran);
  EXPECT_EQ(r.verdict, termination::Decision::kUnknown);
}

// ------------------------------------------------------- diagnostics --

std::vector<analysis::Diagnostic> Lint(const tgd::Program& p,
                                       const core::SymbolTable& symbols) {
  graph::RelianceGraph reliances(p.tgds);
  return analysis::LintProgram(p.tgds, p.database, symbols, &reliances);
}

TEST_F(AnalysisTest, LintIsQuietOnCleanPrograms) {
  tgd::Program p = Parse(
      "Emp(alice, sales).\n"
      "Emp(x, d) -> Dept(d).\n"
      "Dept(d) -> Mgr(d, m).\n"
      "Mgr(d, m) -> Emp(m, d).\n");
  EXPECT_TRUE(Lint(p, symbols_).empty());
}

TEST_F(AnalysisTest, LintRaisesEveryDiagnostic) {
  // The examples/programs/lint_showcase.tgd rule set, inline.
  tgd::Program p = Parse(
      "Start(a). Orphan(b). Other(c). P(d). Q(d).\n"
      "Start(x) -> Log(y).\n"
      "Ghost(x) -> Start(x).\n"
      "Start(x), Other(w) -> Pair(x, w).\n"
      "Start(x) -> Log(y).\n"
      "P(x) -> E(x, y).\n"
      "Q(x) -> E(x, z).\n");
  std::vector<analysis::Diagnostic> found = Lint(p, symbols_);

  std::multiset<std::string> ids;
  for (const analysis::Diagnostic& d : found) ids.insert(d.id);
  EXPECT_EQ(ids.count("NU001"), 2u);  // both Log rules
  EXPECT_EQ(ids.count("NU002"), 1u);  // Ghost
  EXPECT_EQ(ids.count("NU003"), 1u);  // Orphan
  EXPECT_EQ(ids.count("NU004"), 1u);  // the Ghost rule is dead
  EXPECT_EQ(ids.count("NU005"), 1u);  // duplicate Log rule
  EXPECT_EQ(ids.count("NU006"), 2u);  // Log pair and E pair
  EXPECT_EQ(ids.count("NU007"), 1u);  // cartesian Pair rule

  // Findings come out in catalog-ID order, locations attached.
  for (std::size_t i = 1; i < found.size(); ++i) {
    EXPECT_LE(found[i - 1].id, found[i].id);
  }
  for (const analysis::Diagnostic& d : found) {
    if (d.id == "NU003") {
      EXPECT_EQ(d.rule, -1);
      EXPECT_EQ(d.predicate, "Orphan");
      EXPECT_EQ(d.severity, analysis::Severity::kInfo);
    }
    if (d.id == "NU005") EXPECT_EQ(d.rule, 3);
    EXPECT_FALSE(d.message.empty());
  }
}

TEST_F(AnalysisTest, LintWorksWithoutRelianceGraph) {
  tgd::Program p = Parse(
      "P(d). Q(d).\n"
      "P(x) -> E(x, y).\n"
      "Q(x) -> E(x, z).\n");
  // Without the graph the NU006 check is skipped; everything else runs.
  std::vector<analysis::Diagnostic> found =
      analysis::LintProgram(p.tgds, p.database, symbols_, nullptr);
  EXPECT_TRUE(found.empty());
  graph::RelianceGraph reliances(p.tgds);
  std::vector<analysis::Diagnostic> with =
      analysis::LintProgram(p.tgds, p.database, symbols_, &reliances);
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0].id, "NU006");
}

TEST_F(AnalysisTest, CatalogIsSortedUniqueAndCoversEmittedIds) {
  const std::vector<analysis::DiagnosticSpec>& catalog =
      analysis::DiagnosticCatalog();
  ASSERT_FALSE(catalog.empty());
  std::set<std::string> catalog_ids;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i > 0) EXPECT_LT(std::string(catalog[i - 1].id), catalog[i].id);
    catalog_ids.insert(catalog[i].id);
    EXPECT_NE(std::string(catalog[i].summary), "");
  }
  // Every finding the showcase rule set produces carries a cataloged
  // id at the cataloged severity.
  tgd::Program p = Parse(
      "Start2(a). Orphan2(b). Other2(c).\n"
      "Start2(x) -> Log2(y).\n"
      "Ghost2(x) -> Start2(x).\n"
      "Start2(x), Other2(w) -> Pair2(x, w).\n"
      "Start2(x) -> Log2(y).\n");
  for (const analysis::Diagnostic& d : Lint(p, symbols_)) {
    ASSERT_EQ(catalog_ids.count(d.id), 1u) << d.id;
    for (const analysis::DiagnosticSpec& spec : catalog) {
      if (d.id == spec.id) EXPECT_EQ(d.severity, spec.severity);
    }
  }
}

TEST(SeverityNameTest, Names) {
  EXPECT_STREQ(analysis::SeverityName(analysis::Severity::kInfo), "info");
  EXPECT_STREQ(analysis::SeverityName(analysis::Severity::kWarning),
               "warning");
  EXPECT_STREQ(analysis::SeverityName(analysis::Severity::kError),
               "error");
}

// --------------------------------------------------------- soundness --

// Ladder soundness: whenever any rung certifies a random (D, Σ), the
// bounded chase of (D, Σ) must terminate — and for the uniform rungs
// (JA, MFA) so must the chase of the critical database D_Σ.
TEST_F(AnalysisTest, LadderSoundOnRandomWorkloads) {
  const tgd::TgdClass classes[] = {
      tgd::TgdClass::kSimpleLinear, tgd::TgdClass::kLinear,
      tgd::TgdClass::kGuarded, tgd::TgdClass::kGeneral};
  std::uint32_t tag = 0;
  int certified = 0;
  for (tgd::TgdClass target : classes) {
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
      workload::RandomTgdOptions options;
      options.seed = seed;
      options.target = target;
      options.num_tgds = 4;
      options.name_tag = ++tag;
      workload::Workload w =
          workload::MakeRandomWorkload(&symbols_, options);
      termination::LadderResult ladder =
          termination::RunLadder(symbols_, w.tgds, w.database);
      if (ladder.verdict != termination::Decision::kTerminates) continue;
      ++certified;
      termination::NaiveDecision on_d = termination::DecideByChase(
          &symbols_, w.tgds, w.database, 200000);
      EXPECT_EQ(on_d.decision, termination::Decision::kTerminates)
          << "ladder rung '" << ladder.rung
          << "' certified a diverging set (class "
          << tgd::TgdClassName(target) << ", seed " << seed << ")";
      if (ladder.rung == "ja" || ladder.rung == "mfa") {
        auto critical = termination::MakeCriticalDatabase(
            &symbols_, w.tgds, "crit" + std::to_string(tag));
        ASSERT_TRUE(critical.ok());
        termination::NaiveDecision on_crit = termination::DecideByChase(
            &symbols_, w.tgds, *critical, 200000);
        EXPECT_EQ(on_crit.decision, termination::Decision::kTerminates)
            << "uniform rung '" << ladder.rung
            << "' but the critical chase diverges (seed " << seed << ")";
      }
    }
  }
  // The sweep must actually exercise the claim, not vacuously pass.
  EXPECT_GT(certified, 0);
}

// JA ⊇ uniform WA on random sets: every uniformly weakly acyclic Σ is
// jointly acyclic (Krötzsch & Rudolph).
TEST_F(AnalysisTest, JaSubsumesUniformWaOnRandomWorkloads) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGeneral;
    options.name_tag = 100 + seed;
    workload::Workload w = workload::MakeRandomWorkload(&symbols_, options);
    if (!graph::IsUniformlyWeaklyAcyclic(w.tgds, symbols_)) continue;
    graph::JointAcyclicityResult ja =
        graph::CheckJointAcyclicity(w.tgds, symbols_);
    EXPECT_TRUE(ja.jointly_acyclic)
        << "seed " << seed << ": uniformly WA but not JA";
  }
}

}  // namespace
}  // namespace nuchase
