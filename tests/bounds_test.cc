#include <gtest/gtest.h>

#include <cmath>

#include "termination/bounds.h"
#include "tgd/parser.h"

namespace nuchase {
namespace termination {
namespace {

tgd::TgdSet ParseRules(core::SymbolTable* symbols, const char* text) {
  auto tgds = tgd::ParseTgdSet(symbols, text);
  EXPECT_TRUE(tgds.ok()) << tgds.status().ToString();
  return std::move(*tgds);
}

class BoundsTest : public ::testing::Test {
 protected:
  core::SymbolTable symbols_;
};

TEST_F(BoundsTest, SimpleLinearDepthBoundFormula) {
  // d_SL(Σ) = |sch(Σ)| · ar(Σ). Two predicates of arity 2: 2·2 = 4.
  tgd::TgdSet tgds = ParseRules(&symbols_, "R(x, y) -> S(y, z).");
  EXPECT_DOUBLE_EQ(DepthBoundSL(tgds, symbols_), 4.0);
}

TEST_F(BoundsTest, LinearDepthBoundFormula) {
  // d_L(Σ) = |sch(Σ)| · ar(Σ)^(ar(Σ)+1). |sch| = 2, ar = 3:
  // 2 · 3^4 = 162.
  tgd::TgdSet tgds =
      ParseRules(&symbols_, "R(x, y, x) -> S(y, x, z).");
  EXPECT_DOUBLE_EQ(DepthBoundL(tgds, symbols_), 162.0);
}

TEST_F(BoundsTest, GuardedDepthBoundFormula) {
  // d_G(Σ) = |sch(Σ)| · ar(Σ)^(2·ar(Σ)+1) · 2^(|sch(Σ)|·ar(Σ)^ar(Σ)).
  // |sch| = 3, ar = 2: 3 · 2^5 · 2^(3·4) = 3 · 32 · 4096 = 393216.
  tgd::TgdSet tgds =
      ParseRules(&symbols_, "G(x, y), H(y) -> K(x, y).");
  EXPECT_DOUBLE_EQ(DepthBoundG(tgds, symbols_), 393216.0);
}

TEST_F(BoundsTest, DepthBoundsAreNestedForTheSameSet) {
  // SL ⊆ L ⊆ G, and the class-specific depth bounds grow in the same
  // direction on any fixed Σ (the looser the class, the looser the
  // guarantee).
  const char* cases[] = {
      "R(x, y) -> S(y, z).",
      "A(x) -> B(x). B(x) -> C(x, w).",
      "P(x, y, z) -> Q(z, y, w).",
  };
  for (const char* text : cases) {
    core::SymbolTable symbols;
    tgd::TgdSet tgds = ParseRules(&symbols, text);
    double sl = DepthBoundSL(tgds, symbols);
    double l = DepthBoundL(tgds, symbols);
    double g = DepthBoundG(tgds, symbols);
    EXPECT_LE(sl, l) << text;
    EXPECT_LE(l, g) << text;
  }
}

TEST_F(BoundsTest, DepthBoundDispatchesOnClass) {
  tgd::TgdSet tgds = ParseRules(&symbols_, "R(x, y) -> S(y, z).");
  EXPECT_DOUBLE_EQ(DepthBound(tgd::TgdClass::kSimpleLinear, tgds, symbols_),
                   DepthBoundSL(tgds, symbols_));
  EXPECT_DOUBLE_EQ(DepthBound(tgd::TgdClass::kLinear, tgds, symbols_),
                   DepthBoundL(tgds, symbols_));
  EXPECT_DOUBLE_EQ(DepthBound(tgd::TgdClass::kGuarded, tgds, symbols_),
                   DepthBoundG(tgds, symbols_));
  EXPECT_TRUE(std::isinf(
      DepthBound(tgd::TgdClass::kGeneral, tgds, symbols_)));
}

TEST_F(BoundsTest, SizeFactorFormula) {
  // SizeFactor(d, Σ) = (d+1) · ||Σ||^(2·ar(Σ)·(d+1)) (Prop 5.2).
  tgd::TgdSet tgds = ParseRules(&symbols_, "R(x, y) -> S(y, z).");
  std::uint64_t norm = tgds.Norm(symbols_);  // |atoms|·|sch|·ar = 2·2·2 = 8
  EXPECT_EQ(norm, 8u);
  double expected =
      2.0 * std::pow(static_cast<double>(norm), 2.0 * 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(SizeFactor(1.0, tgds, symbols_), expected);
}

TEST_F(BoundsTest, SizeFactorMonotoneInDepth) {
  tgd::TgdSet tgds = ParseRules(&symbols_, "R(x, y) -> S(y, z).");
  double prev = 0;
  for (double d : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    double f = SizeFactor(d, tgds, symbols_);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST_F(BoundsTest, GuardedSizeFactorSaturatesToInfinity) {
  // d_G is astronomically large for any non-trivial guarded set: f_G
  // overflows double range and must saturate (not UB, not negative).
  tgd::TgdSet tgds =
      ParseRules(&symbols_, "G(x, y), H(y) -> K(x, y, z).");
  double f = SizeFactorG(tgds, symbols_);
  EXPECT_TRUE(std::isinf(f) || f > 1e100);
  EXPECT_GT(f, 0);
}

TEST_F(BoundsTest, GtreeLevelBoundGrowsGeometrically) {
  // ||Σ||^(2·ar·(i+1)): the ratio between consecutive levels is
  // ||Σ||^(2·ar), constant in i.
  tgd::TgdSet tgds = ParseRules(&symbols_, "G(x, y), H(y) -> K(x, y).");
  double b0 = GtreeLevelBound(0, tgds, symbols_);
  double b1 = GtreeLevelBound(1, tgds, symbols_);
  double b2 = GtreeLevelBound(2, tgds, symbols_);
  ASSERT_GT(b0, 0);
  EXPECT_DOUBLE_EQ(b1 / b0, b2 / b1);
  double norm = static_cast<double>(tgds.Norm(symbols_));
  EXPECT_DOUBLE_EQ(b1 / b0,
                   std::pow(norm, 2.0 * tgds.MaxArity(symbols_)));
}

TEST_F(BoundsTest, EmptySigma) {
  tgd::TgdSet tgds;
  // No predicates: every bound collapses to 0; nothing crashes.
  EXPECT_DOUBLE_EQ(DepthBoundSL(tgds, symbols_), 0.0);
  EXPECT_GE(SizeFactorSL(tgds, symbols_), 0.0);
}

TEST_F(BoundsTest, SlChainDepthStaysWithinBound) {
  // A chain of frontier-carrying existential hops realizes depth k − 1
  // on k predicates; d_SL = |sch|·ar = 4·2 = 8 safely covers it.
  core::SymbolTable symbols;
  tgd::TgdSet tgds = ParseRules(&symbols,
                                "R1(x, y) -> R2(y, z).\n"
                                "R2(x, y) -> R3(y, z).\n"
                                "R3(x, y) -> R4(y, z).\n");
  EXPECT_DOUBLE_EQ(DepthBoundSL(tgds, symbols), 8.0);
  EXPECT_GE(DepthBoundSL(tgds, symbols), 3.0);  // realized maxdepth
}

}  // namespace
}  // namespace termination
}  // namespace nuchase
