#include <gtest/gtest.h>

#include "chase/chase.h"
#include "tgd/classify.h"
#include "workload/turing.h"

namespace nuchase {
namespace workload {
namespace {

TEST(TmSimulatorTest, HaltingMachineHalts) {
  for (std::uint32_t k : {0u, 1u, 3u, 6u}) {
    auto steps = SimulateTm(MakeHaltingTm(k), 1000);
    ASSERT_TRUE(steps.has_value()) << "k=" << k;
    EXPECT_EQ(*steps, k) << "k=" << k;
  }
}

TEST(TmSimulatorTest, LoopingMachinesDoNot) {
  EXPECT_FALSE(SimulateTm(MakeLoopingTm(), 2000).has_value());
  EXPECT_FALSE(SimulateTm(MakeSpinningTm(), 2000).has_value());
}

TEST(TmSimulatorTest, ZigZagHalts) {
  auto steps = SimulateTm(MakeZigZagTm(), 100);
  ASSERT_TRUE(steps.has_value());
  EXPECT_EQ(*steps, 3u);
}

TEST(TuringEncodingTest, SigmaStarIsFixedAndConstantFree) {
  core::SymbolTable symbols;
  tgd::TgdSet sigma = MakeTuringTgds(&symbols);
  EXPECT_EQ(sigma.size(), 6u);
  // Σ★ is far from guarded (Deutsch–Nash–Remmel-style encodings).
  EXPECT_EQ(tgd::Classify(sigma), tgd::TgdClass::kGeneral);
}

TEST(TuringEncodingTest, DatabaseStoresMachineAndConfiguration) {
  core::SymbolTable symbols;
  TuringMachine tm = MakeHaltingTm(2);
  core::Database db = MakeTuringDatabase(&symbols, tm);
  auto trans = symbols.FindPredicate("Trans");
  ASSERT_TRUE(trans.ok());
  std::uint64_t trans_facts = 0;
  for (const core::Atom& f : db.facts()) {
    if (f.predicate == *trans) ++trans_facts;
  }
  EXPECT_EQ(trans_facts, tm.rules.size());
  EXPECT_TRUE(symbols.FindPredicate("Head").ok());
  EXPECT_TRUE(symbols.FindPredicate("Tape").ok());
}

/// The core of Proposition 4.2 / Appendix A, exercised: the chase of
/// D_M w.r.t. the fixed Σ★ terminates iff M halts on the empty input.
struct TmCase {
  const char* name;
  TuringMachine (*make)();
  bool halts;
};

TuringMachine Halting0() { return MakeHaltingTm(0); }
TuringMachine Halting1() { return MakeHaltingTm(1); }
TuringMachine Halting4() { return MakeHaltingTm(4); }

class TuringChaseTest : public ::testing::TestWithParam<TmCase> {};

TEST_P(TuringChaseTest, ChaseTerminationMatchesHalting) {
  const TmCase& param = GetParam();
  core::SymbolTable symbols;
  TuringMachine tm = param.make();
  Workload w = MakeTuringWorkload(&symbols, tm, param.name);

  chase::ChaseOptions options;
  options.max_atoms = 20000;
  chase::ChaseResult result =
      chase::RunChase(&symbols, w.tgds, w.database, options);

  EXPECT_EQ(result.Terminated(), param.halts) << param.name;
  EXPECT_EQ(SimulateTm(tm, 5000).has_value(), param.halts) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Machines, TuringChaseTest,
    ::testing::Values(TmCase{"halting0", &Halting0, true},
                      TmCase{"halting1", &Halting1, true},
                      TmCase{"halting4", &Halting4, true},
                      TmCase{"zigzag", &MakeZigZagTm, true},
                      TmCase{"looping", &MakeLoopingTm, false},
                      TmCase{"spinning", &MakeSpinningTm, false}),
    [](const ::testing::TestParamInfo<TmCase>& info) {
      return info.param.name;
    });

TEST(TuringChaseTest, ChaseGrowsWithRuntime) {
  // Longer computations materialize more configuration rows.
  core::SymbolTable s1, s2;
  Workload short_run =
      MakeTuringWorkload(&s1, MakeHaltingTm(1), "short");
  Workload long_run = MakeTuringWorkload(&s2, MakeHaltingTm(5), "long");
  chase::ChaseResult r1 = chase::RunChase(&s1, short_run.tgds,
                                          short_run.database);
  chase::ChaseResult r2 =
      chase::RunChase(&s2, long_run.tgds, long_run.database);
  ASSERT_TRUE(r1.Terminated());
  ASSERT_TRUE(r2.Terminated());
  EXPECT_GT(r2.instance.size(), r1.instance.size());
}

}  // namespace
}  // namespace workload
}  // namespace nuchase
