// Property tests for the paper's two preservation results:
//   Proposition 7.3: Σ ∈ CT_D  iff  simple(Σ) ∈ CT_simple(D), and
//                    maxdepth(D,Σ) = maxdepth(simple(D), simple(Σ));
//   Proposition 8.1: the same for lin(·) on guarded sets.
// Each is checked on seeded random workloads via bounded chases: when
// both sides terminate, finiteness AND maxdepth must agree; when one
// side exceeds the budget, the other must as well (we use a generous
// budget asymmetry to avoid flakes near the boundary).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "rewrite/linearize.h"
#include "rewrite/simplify.h"
#include "tgd/classify.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace rewrite {
namespace {

struct ChasePair {
  chase::ChaseResult original;
  chase::ChaseResult rewritten;
};

class SimplifyPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(SimplifyPropertyTest, Proposition73OnRandomLinearWorkloads) {
  core::SymbolTable symbols;
  workload::RandomTgdOptions options;
  options.seed = GetParam();
  options.target = tgd::TgdClass::kLinear;
  workload::Workload w = workload::MakeRandomWorkload(&symbols, options);

  Simplifier simplifier(&symbols);
  auto simple_tgds = simplifier.SimplifyTgds(w.tgds);
  ASSERT_TRUE(simple_tgds.ok()) << simple_tgds.status().ToString();
  core::Database simple_db = simplifier.SimplifyDatabase(w.database);

  chase::ChaseOptions copt;
  copt.max_atoms = 60000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, w.tgds, w.database, copt);
  chase::ChaseResult simplified =
      chase::RunChase(&symbols, *simple_tgds, simple_db, copt);

  EXPECT_EQ(original.Terminated(), simplified.Terminated()) << w.name;
  if (original.Terminated() && simplified.Terminated()) {
    EXPECT_EQ(original.stats.max_depth, simplified.stats.max_depth)
        << w.name;
    // |simple(D)| = |D| (simplification renames facts one-to-one).
    EXPECT_EQ(simple_db.size(), w.database.size()) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Range(1u, 25u));

class LinearizePropertyTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LinearizePropertyTest, Proposition81OnRandomGuardedWorkloads) {
  core::SymbolTable symbols;
  workload::RandomTgdOptions options;
  options.seed = GetParam();
  options.target = tgd::TgdClass::kGuarded;
  workload::Workload w = workload::MakeRandomWorkload(&symbols, options);

  LinearizeOptions lopt;
  auto lin = Linearize(w.database, w.tgds, &symbols, lopt);
  ASSERT_TRUE(lin.ok()) << lin.status().ToString();

  chase::ChaseOptions copt;
  copt.max_atoms = 60000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, w.tgds, w.database, copt);
  chase::ChaseResult linearized =
      chase::RunChase(&symbols, lin->tgds, lin->database, copt);

  EXPECT_EQ(original.Terminated(), linearized.Terminated()) << w.name;
  if (original.Terminated() && linearized.Terminated()) {
    EXPECT_EQ(original.stats.max_depth, linearized.stats.max_depth)
        << w.name;
    // |lin(D)| = |D| (one [τ]-fact per original fact).
    EXPECT_EQ(lin->database.size(), w.database.size()) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizePropertyTest,
                         ::testing::Range(1u, 25u));

class GSimplePropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(GSimplePropertyTest, ComposedRewritingPreservesFiniteness) {
  // gsimple = simple ∘ lin: composing Propositions 7.3 and 8.1. This is
  // precisely what Theorem 8.3's decider relies on.
  core::SymbolTable symbols;
  workload::RandomTgdOptions options;
  options.seed = GetParam();
  options.target = tgd::TgdClass::kGuarded;
  workload::Workload w = workload::MakeRandomWorkload(&symbols, options);

  LinearizeOptions lopt;
  auto gs = GSimplify(w.database, w.tgds, &symbols, lopt);
  ASSERT_TRUE(gs.ok()) << gs.status().ToString();

  chase::ChaseOptions copt;
  copt.max_atoms = 60000;
  chase::ChaseResult original =
      chase::RunChase(&symbols, w.tgds, w.database, copt);
  chase::ChaseResult rewritten =
      chase::RunChase(&symbols, gs->tgds, gs->database, copt);

  EXPECT_EQ(original.Terminated(), rewritten.Terminated()) << w.name;
  if (original.Terminated()) {
    EXPECT_EQ(original.stats.max_depth, rewritten.stats.max_depth)
        << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GSimplePropertyTest,
                         ::testing::Range(1u, 25u));

}  // namespace
}  // namespace rewrite
}  // namespace nuchase
