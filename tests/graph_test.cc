#include <gtest/gtest.h>

#include "graph/dependency_graph.h"
#include "graph/predicate_graph.h"
#include "graph/weak_acyclicity.h"
#include "tgd/parser.h"

namespace nuchase {
namespace graph {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  tgd::TgdSet ParseRules(const std::string& text) {
    auto tgds = tgd::ParseTgdSet(&symbols_, text);
    EXPECT_TRUE(tgds.ok()) << tgds.status().ToString();
    return *tgds;
  }
  core::Database ParseFacts(const std::string& text) {
    auto db = tgd::ParseDatabase(&symbols_, text);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return *db;
  }
  core::SymbolTable symbols_;
};

TEST_F(GraphTest, EdgesOfSingleTgd) {
  // R(x,y) → ∃z R(y,z): normal (R,2)→(R,1); special (R,1)→(R,2) and
  // (R,2)→(R,2) (one per body position of the frontier variable... here
  // only y is frontier, at body position 2).
  tgd::TgdSet tgds = ParseRules("R(x, y) -> R(y, z).");
  DependencyGraph dg(tgds, symbols_);
  EXPECT_EQ(dg.num_nodes(), 2u);
  std::size_t normal = 0, special = 0;
  for (const auto& e : dg.edges()) {
    (e.special ? special : normal) += 1;
  }
  EXPECT_EQ(normal, 1u);
  EXPECT_EQ(special, 1u);
  EXPECT_TRUE(dg.HasSpecialCycle());
}

TEST_F(GraphTest, FullTgdHasNoSpecialEdges) {
  tgd::TgdSet tgds = ParseRules("R(x, y) -> S(y, x).");
  DependencyGraph dg(tgds, symbols_);
  for (const auto& e : dg.edges()) EXPECT_FALSE(e.special);
  EXPECT_FALSE(dg.HasSpecialCycle());
}

TEST_F(GraphTest, SpecialEdgeWithoutCycleIsHarmless) {
  tgd::TgdSet tgds = ParseRules("R(x) -> S(x, z).");
  DependencyGraph dg(tgds, symbols_);
  std::size_t special = 0;
  for (const auto& e : dg.edges()) special += e.special ? 1 : 0;
  EXPECT_EQ(special, 1u);
  EXPECT_FALSE(dg.HasSpecialCycle());
}

TEST_F(GraphTest, TwoRuleSpecialCycle) {
  // (S,1) feeds back into (R,1) and the existential closes the cycle.
  tgd::TgdSet tgds = ParseRules(
      "R(x) -> S(x, z).\n"
      "S(x, y) -> R(y).\n");
  DependencyGraph dg(tgds, symbols_);
  EXPECT_TRUE(dg.HasSpecialCycle());
}

TEST_F(GraphTest, PredicateGraphReachability) {
  tgd::TgdSet tgds = ParseRules(
      "A(x) -> B(x).\n"
      "B(x) -> C(x).\n"
      "D(x) -> D(x).\n");
  PredicateGraph pg(tgds);
  auto a = *symbols_.FindPredicate("A");
  auto c = *symbols_.FindPredicate("C");
  auto d = *symbols_.FindPredicate("D");
  EXPECT_TRUE(pg.Reaches(a, c));
  EXPECT_TRUE(pg.Reaches(a, a));  // reflexive
  EXPECT_FALSE(pg.Reaches(c, a));
  EXPECT_FALSE(pg.Reaches(a, d));

  auto fwd = pg.ForwardClosure({a});
  EXPECT_EQ(fwd.size(), 3u);
  auto bwd = pg.BackwardClosure({c});
  EXPECT_EQ(bwd.size(), 3u);
}

TEST_F(GraphTest, WeakAcyclicitySupportedCycle) {
  // The canonical non-terminating pair: D touches R, so the special cycle
  // is D-supported.
  tgd::TgdSet tgds = ParseRules("R(x, y) -> R(y, z).");
  core::Database db = ParseFacts("R(a, b).");
  auto wa = CheckWeakAcyclicity(tgds, db, symbols_);
  EXPECT_FALSE(wa.weakly_acyclic);
  EXPECT_FALSE(wa.special_cycle_positions.empty());
  EXPECT_FALSE(wa.supported_witnesses.empty());
}

TEST_F(GraphTest, WeakAcyclicityUnsupportedCycle) {
  // Same Σ plus an unrelated predicate; D only mentions the unrelated
  // predicate, so the cycle is not D-supported (Definition 6.1).
  tgd::TgdSet tgds = ParseRules(
      "R(x, y) -> R(y, z).\n"
      "Q(x) -> Q2(x).\n");
  core::Database db = ParseFacts("Q(a).");
  auto wa = CheckWeakAcyclicity(tgds, db, symbols_);
  EXPECT_TRUE(wa.weakly_acyclic);
  EXPECT_FALSE(wa.special_cycle_positions.empty());  // cycle exists...
  EXPECT_TRUE(wa.supported_witnesses.empty());       // ...unsupported
}

TEST_F(GraphTest, SupportViaReachability) {
  // D mentions only P, but P ⇝ R, which lies on the special cycle.
  tgd::TgdSet tgds = ParseRules(
      "P(x) -> R(x, x).\n"
      "R(x, y) -> R(y, z).\n");
  core::Database db = ParseFacts("P(a).");
  auto wa = CheckWeakAcyclicity(tgds, db, symbols_);
  EXPECT_FALSE(wa.weakly_acyclic);
}

TEST_F(GraphTest, EmptyDatabaseSupportsNothing) {
  tgd::TgdSet tgds = ParseRules("R(x, y) -> R(y, z).");
  core::Database empty;
  auto wa = CheckWeakAcyclicity(tgds, empty, symbols_);
  EXPECT_TRUE(wa.weakly_acyclic);
}

TEST_F(GraphTest, UniformWeakAcyclicity) {
  EXPECT_FALSE(
      IsUniformlyWeaklyAcyclic(ParseRules("R(x, y) -> R(y, z)."),
                               symbols_));
  EXPECT_TRUE(IsUniformlyWeaklyAcyclic(
      ParseRules("S(x, y) -> T(y, z)."), symbols_));
}

TEST_F(GraphTest, SupportPredicatesBackwardClosure) {
  tgd::TgdSet tgds = ParseRules(
      "P(x) -> R(x, x).\n"
      "R(x, y) -> R(y, z).\n"
      "R(x, y) -> Sink(x).\n");
  auto support = SupportPredicates(tgds, symbols_);
  // P and R support the cycle; Sink does not (it is downstream).
  EXPECT_TRUE(support.count(*symbols_.FindPredicate("P")));
  EXPECT_TRUE(support.count(*symbols_.FindPredicate("R")));
  EXPECT_FALSE(support.count(*symbols_.FindPredicate("Sink")));
}

TEST_F(GraphTest, NormalCycleAloneIsWeaklyAcyclic) {
  tgd::TgdSet tgds = ParseRules(
      "R(x, y) -> S(y, x).\n"
      "S(x, y) -> R(y, x).\n");
  core::Database db = ParseFacts("R(a, b).");
  auto wa = CheckWeakAcyclicity(tgds, db, symbols_);
  EXPECT_TRUE(wa.weakly_acyclic);
}

TEST_F(GraphTest, MultiHeadEdges) {
  // Frontier x feeds two head atoms; existential z appears in both.
  tgd::TgdSet tgds = ParseRules("R(x) -> S(x, z), T(z, x).");
  DependencyGraph dg(tgds, symbols_);
  std::size_t normal = 0, special = 0;
  for (const auto& e : dg.edges()) {
    (e.special ? special : normal) += 1;
  }
  // Normal: (R,1)→(S,1) and (R,1)→(T,2). Special: (R,1)→(S,2), (R,1)→(T,1).
  EXPECT_EQ(normal, 2u);
  EXPECT_EQ(special, 2u);
}

TEST_F(GraphTest, FindNode) {
  tgd::TgdSet tgds = ParseRules("R(x) -> S(x, z).");
  DependencyGraph dg(tgds, symbols_);
  DependencyGraph::NodeId id = 0;
  EXPECT_TRUE(
      dg.FindNode(core::Position(*symbols_.FindPredicate("S"), 1), &id));
  auto unknown = symbols_.InternPredicate("Zzz", 1);
  EXPECT_FALSE(dg.FindNode(core::Position(*unknown, 0), &id));
}

}  // namespace
}  // namespace graph
}  // namespace nuchase
