// E8 — Theorem 8.4: a family of guarded ontologies whose chase is
// unavoidably triple-exponential in the arity m and double-exponential
// in the number of predicates (through n):
//   |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^{2^n · (2^{2^m} − 1)}.
// The counter tower grows so fast that only m = 1 fits in memory; the
// point of the table is that the bound is met, and that each +1 on n
// doubles the exponent (strata count 2^n).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "util/table.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader("E8 bench_g_lower_bound (Theorem 8.4)",
                     "|chase(D_ell, Sigma_{n,m})| >= "
                     "ell * 2^(2^n * (2^(2^m) - 1)), met on the Node "
                     "relation");

  util::Table table("Theorem 8.4 family",
                    {"ell,n,m", "|chase|", "|Node|",
                     "bound ell*2^(2^n*(2^(2^m)-1))", "|Node|>=bound",
                     "maxdepth", "seconds"});
  struct P {
    std::uint64_t ell;
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 1, 1}, P{2, 1, 1}, P{4, 1, 1}, P{1, 2, 1},
                     P{2, 2, 1}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeGuardedLowerBound(&symbols, p.ell, p.n, p.m);
    bench::Stopwatch timer;
    chase::ChaseOptions options;
    options.max_atoms = 20'000'000;
    chase::ChaseResult result =
        chase::RunChase(&symbols, w.tgds, w.database, options);
    double bound = workload::GuardedLowerBoundValue(p.ell, p.n, p.m);
    auto node_pred = symbols.FindPredicate(
        "Node_" + std::to_string(p.n) + "_" + std::to_string(p.m));
    std::uint64_t nodes =
        node_pred.ok()
            ? result.instance.AtomsWithPredicate(*node_pred).size()
            : 0;
    table.AddRow({std::to_string(p.ell) + "," + std::to_string(p.n) +
                      "," + std::to_string(p.m),
                  std::to_string(result.instance.size()),
                  std::to_string(nodes), util::FormatCount(bound),
                  static_cast<double>(nodes) >= bound ? "yes" : "NO",
                  std::to_string(result.stats.max_depth),
                  timer.Formatted()});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
