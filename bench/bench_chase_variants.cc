// A1 (ablation) — the three chase flavours the introduction contrasts
// (via [6, 21]): the restricted chase materializes the least, the
// semi-oblivious chase is the paper's object of study, and the oblivious
// chase brackets it from above. The table reports materialized sizes and
// times on workloads where all three terminate, and a second table shows
// the strict termination hierarchy CT_obl ⊆ CT_so ⊆ CT_res on pairs
// that separate the levels.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "nuchase/nuchase.h"
#include "tgd/parser.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

chase::ChaseResult RunVariant(core::SymbolTable* symbols,
                              const tgd::TgdSet& tgds,
                              const core::Database& db,
                              chase::ChaseVariant variant,
                              std::uint64_t max_atoms) {
  chase::ChaseOptions options;
  options.variant = variant;
  options.max_atoms = max_atoms;
  return chase::RunChase(symbols, tgds, db, options);
}

void Sizes() {
  util::Table table(
      "materialized size and time per variant (same (D, Sigma))",
      {"workload", "|D|", "restricted", "semi-oblivious", "oblivious",
       "res(s)", "so(s)", "obl(s)"});

  // An Emp/Mgr ontology whose database already contains most witnesses:
  // the restricted chase barely fires, the oblivious one re-invents a
  // manager per employee.
  for (std::uint64_t size : {100u, 1000u, 10000u}) {
    core::SymbolTable symbols;
    auto tgds = tgd::ParseTgdSet(
        &symbols,
        "Emp(e, d) -> Dept(d). Emp(e, d) -> Mgr(d, m). "
        "Mgr(d, m) -> Emp(m, d).");
    if (!tgds.ok()) return;
    core::Database db;
    for (std::uint64_t i = 0; i < size; ++i) {
      (void)db.AddFact(&symbols, "Emp",
                       {"e" + std::to_string(i),
                        "d" + std::to_string(i % 10)});
      if (i % 10 == 0) {
        (void)db.AddFact(&symbols, "Mgr",
                         {"d" + std::to_string(i % 10),
                          "boss" + std::to_string(i % 10)});
      }
    }
    // Note the oblivious chase genuinely DIVERGES here: Mgr(d,m) →
    // Emp(m,d) keeps producing fresh homomorphisms for Emp(e,d) →
    // ∃m Mgr(d,m), whose oblivious null is keyed by e as well. The
    // semi-oblivious key (just d) closes the loop — the exact point of
    // Definition 3.1.
    std::string cells[3];
    double secs[3];
    chase::ChaseVariant variants[3] = {chase::ChaseVariant::kRestricted,
                                       chase::ChaseVariant::kSemiOblivious,
                                       chase::ChaseVariant::kOblivious};
    for (int i = 0; i < 3; ++i) {
      bench::Stopwatch timer;
      chase::ChaseResult r =
          RunVariant(&symbols, *tgds, db, variants[i], 500'000);
      secs[i] = timer.Seconds();
      cells[i] = r.Terminated() ? std::to_string(r.instance.size())
                                : "infinite";
    }
    table.AddRow({"emp-mgr", std::to_string(db.size()), cells[0],
                  cells[1], cells[2], bench::FormatSeconds(secs[0]),
                  bench::FormatSeconds(secs[1]),
                  bench::FormatSeconds(secs[2])});
  }

  // Random guarded workloads where all three terminate.
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    std::uint64_t sizes[3];
    double secs[3];
    chase::ChaseVariant variants[3] = {chase::ChaseVariant::kRestricted,
                                       chase::ChaseVariant::kSemiOblivious,
                                       chase::ChaseVariant::kOblivious};
    bool all_finite = true;
    for (int i = 0; i < 3; ++i) {
      bench::Stopwatch timer;
      chase::ChaseResult r =
          RunVariant(&symbols, w.tgds, w.database, variants[i], 200000);
      secs[i] = timer.Seconds();
      if (!r.Terminated()) all_finite = false;
      sizes[i] = r.instance.size();
    }
    if (!all_finite) continue;
    table.AddRow({"random-g-" + std::to_string(seed),
                  std::to_string(w.database.size()),
                  std::to_string(sizes[0]), std::to_string(sizes[1]),
                  std::to_string(sizes[2]), bench::FormatSeconds(secs[0]),
                  bench::FormatSeconds(secs[1]),
                  bench::FormatSeconds(secs[2])});
  }
  bench::PrintTable(table);
}

/// The delta-engine ablation crossed with the variants: every variant
/// must produce the same materialization under both engines (the
/// restricted one is the interesting case — its result depends on the
/// firing order, which the engine keeps canonical), with the semi-naive
/// engine probing far less on recursive rules.
void DeltaAblation() {
  util::Table table("delta engine ablation per variant (emp-mgr)",
                    {"variant", "delta", "atoms", "time(s)",
                     "join_probes", "delta_seeds", "same result"});
  chase::ChaseVariant variants[3] = {chase::ChaseVariant::kRestricted,
                                     chase::ChaseVariant::kSemiOblivious,
                                     chase::ChaseVariant::kOblivious};
  for (chase::ChaseVariant variant : variants) {
    std::string reference;
    for (bool use_delta : {true, false}) {
      // Fresh symbols per cell: null names are interned, so a shared
      // table would spoil the byte-identity check.
      core::SymbolTable symbols;
      auto tgds = tgd::ParseTgdSet(
          &symbols,
          "Emp(e, d) -> Dept(d). Emp(e, d) -> Mgr(d, m). "
          "Mgr(d, m) -> Emp(m, d).");
      if (!tgds.ok()) {
        std::fprintf(stderr, "bench_chase_variants: bad emp-mgr rules: %s\n",
                     tgds.status().ToString().c_str());
        std::exit(1);
      }
      core::Database db;
      for (std::uint64_t i = 0; i < 2000; ++i) {
        (void)db.AddFact(&symbols, "Emp",
                         {"e" + std::to_string(i),
                          "d" + std::to_string(i % 10)});
      }
      chase::ChaseOptions options;
      options.variant = variant;
      // Modest budget: the oblivious variant diverges on this workload
      // and the full-scan baseline is quadratic past the cutoff.
      options.max_atoms = 60'000;
      options.use_delta = use_delta;
      bench::Stopwatch timer;
      chase::ChaseResult r = chase::RunChase(&symbols, *tgds, db, options);
      double seconds = timer.Seconds();
      std::string sorted = r.instance.ToSortedString(symbols);
      if (use_delta) reference = sorted;
      table.AddRow({chase::ChaseVariantName(variant),
                    use_delta ? "on" : "off",
                    r.Terminated() ? std::to_string(r.instance.size())
                                   : "infinite",
                    bench::FormatSeconds(seconds),
                    std::to_string(r.stats.join_probes),
                    std::to_string(r.stats.delta_atoms_scanned),
                    sorted == reference ? "yes" : "NO"});
    }
  }
  bench::PrintTable(table);
}

void Hierarchy() {
  util::Table table(
      "termination hierarchy CT_obl <= CT_so <= CT_res (strict)",
      {"pair", "oblivious", "semi-oblivious", "restricted"});

  struct Case {
    const char* label;
    const char* program;
  };
  const Case cases[] = {
      // fr(σ) = ∅: oblivious loops through the null, semi-oblivious
      // reuses ⊥^z_{σ,∅} and stops.
      {"P(x)->Q(z); Q(y)->P(w)",
       "P(a). P(x) -> Q(z). Q(y) -> P(w)."},
      // Witness provided by a sibling rule: only restricted stops.
      {"R(x,y)->R(y,y); R(x,y)->R(y,z)",
       "R(a, b). R(x, y) -> R(y, y). R(x, y) -> R(y, z)."},
      // Plain non-termination: all three loop.
      {"R(x,y)->R(y,z)", "R(a, b). R(x, y) -> R(y, z)."},
      // Plain termination: all three stop.
      {"A(x,y)->B(y,z)", "A(a, b). A(x, y) -> B(y, z)."},
  };
  for (const Case& c : cases) {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols, c.program);
    if (!p.ok()) continue;
    std::string cells[3];
    chase::ChaseVariant variants[3] = {chase::ChaseVariant::kOblivious,
                                       chase::ChaseVariant::kSemiOblivious,
                                       chase::ChaseVariant::kRestricted};
    for (int i = 0; i < 3; ++i) {
      chase::ChaseResult r =
          RunVariant(&symbols, p->tgds, p->database, variants[i], 20000);
      cells[i] = r.Terminated()
                     ? "finite(" + std::to_string(r.instance.size()) + ")"
                     : "infinite";
    }
    table.AddRow({c.label, cells[0], cells[1], cells[2]});
  }
  bench::PrintTable(table);
}

/// The facade's parse-once / run-many split, measured: N chases of the
/// same program, either re-parsing (and re-classifying, re-planning) the
/// text for every run — the pre-facade CLI pattern — or parsing one
/// api::Program and running N cheap sessions against it. The chase
/// itself is identical, so the gap is pure front-half overhead.
void ProgramReuse() {
  util::Table table(
      "program reuse: re-parse per run vs parse-once + N sessions",
      {"workload", "|D|", "runs", "reparse(s)", "reuse(s)", "speedup",
       "same result"});

  struct Workload {
    const char* label;
    std::uint64_t facts;
  };
  for (const Workload& w : {Workload{"emp-mgr", 200},
                            Workload{"emp-mgr", 2000}}) {
    // The program text is re-built once; only parsing is measured.
    std::string text =
        "Emp(e, d) -> Dept(d). Emp(e, d) -> Mgr(d, m). "
        "Mgr(d, m) -> Emp(m, d).\n";
    for (std::uint64_t i = 0; i < w.facts; ++i) {
      text += "Emp(e" + std::to_string(i) + ", d" +
              std::to_string(i % 10) + ").\n";
    }
    const int kRuns = 25;

    // Arm A: the pre-facade pattern — parse, classify and join-plan the
    // text again for every single run.
    bench::Stopwatch reparse_timer;
    std::string reparse_sorted;
    bool reparse_ok = true;
    for (int i = 0; i < kRuns; ++i) {
      auto program = api::Program::Parse(text);
      if (!program.ok()) {
        reparse_ok = false;
        break;
      }
      auto run = api::Session(*program).Chase();
      if (!run.ok() || !run->Terminated()) {
        reparse_ok = false;
        break;
      }
      reparse_sorted = run->ToSortedString();
    }
    double reparse_seconds = reparse_timer.Seconds();

    // Arm B: parse once, then N sessions over the frozen artifact.
    bench::Stopwatch reuse_timer;
    std::string reuse_sorted;
    bool reuse_ok = true;
    auto program = api::Program::Parse(text);
    if (!program.ok()) {
      reuse_ok = false;
    } else {
      for (int i = 0; i < kRuns; ++i) {
        auto run = api::Session(*program).Chase();
        if (!run.ok() || !run->Terminated()) {
          reuse_ok = false;
          break;
        }
        reuse_sorted = run->ToSortedString();
      }
    }
    double reuse_seconds = reuse_timer.Seconds();

    if (!reparse_ok || !reuse_ok) {
      table.AddRow({w.label, std::to_string(w.facts),
                    std::to_string(kRuns), "error", "error", "-", "NO"});
      continue;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  reuse_seconds > 0 ? reparse_seconds / reuse_seconds
                                    : 0.0);
    table.AddRow({w.label, std::to_string(w.facts), std::to_string(kRuns),
                  bench::FormatSeconds(reparse_seconds),
                  bench::FormatSeconds(reuse_seconds), speedup,
                  reparse_sorted == reuse_sorted ? "yes" : "NO"});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::bench::PrintHeader(
      "A1 bench_chase_variants (ablation; cf. [6, 21] in Section 1)",
      "restricted <= semi-oblivious <= oblivious, in both materialized "
      "size and termination");
  nuchase::Sizes();
  nuchase::DeltaAblation();
  nuchase::Hierarchy();
  nuchase::ProgramReuse();
  return 0;
}
