// P8 — static analysis: runtime and rung coverage of the acyclicity
// ladder (WA → JA → MFA) plus the lint diagnostics engine. The
// showcase programs pin one certification per rung — including the
// strict-containment witnesses (JA-not-WA, MFA-not-JA) — and the
// seeded random families track ladder cost across the SL/L/G/general
// generator. Clock-free columns are the gates
// tools/check_bench_regression enforces on every machine, never
// skipped: each rung must certify at least one row (`rung` coverage),
// the MFA short-circuit must engage (`mfa_ran` = no whenever a cheaper
// rung certified), no row may ever report does-not-terminate (the
// ladder is sufficient-only), and the lint showcase must keep raising
// warnings — an analysis engine silently going quiet is invisible to
// wall-clock numbers.
#include <string>

#include "analysis/diagnostics.h"
#include "bench/bench_util.h"
#include "graph/reliance.h"
#include "termination/ladder.h"
#include "termination/naive_decider.h"
#include "tgd/parser.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

// Rung wa: full TGDs (datalog transitive closure) are trivially weakly
// acyclic — the cheapest rung certifies and MFA never runs.
constexpr char kWaShowcase[] =
    "E(a, b). E(b, c).\n"
    "E(x, y) -> T(x, y).\n"
    "E(x, y), T(y, z) -> T(x, z).\n";

// Rung ja: examples/programs/ja_ladder.tgd — D feeds the special cycle
// (not WA for this D), but Move(y) never reaches the positions that
// mint y, so joint acyclicity certifies.
constexpr char kJaShowcase[] =
    "P(a). R(a, b).\n"
    "P(x) -> Q(x, y).\n"
    "Q(x, y), R(y, w) -> P(y).\n";

// Rung mfa: examples/programs/mfa_ladder.tgd — JA rejects (the
// existential feeds its own movement set), but the critical-instance
// chase closes at depth 2, so MFA certifies.
constexpr char kMfaShowcase[] =
    "B(a). D(a, b).\n"
    "B(x) -> R(x, y).\n"
    "R(x, y), B(y), D(x, w) -> C(x).\n"
    "C(x), R(x, y) -> B(y).\n";

// No rung certifies the one-rule loop: the ladder must stay honest and
// answer unknown (it can never claim does-not-terminate).
constexpr char kDiverging[] =
    "R(a, b).\n"
    "R(x, y) -> R(y, z).\n";

// examples/programs/lint_showcase.tgd: raises every parsed-program
// diagnostic (6 warnings, 3 infos) — the row the lint gate pins.
constexpr char kLintShowcase[] =
    "Start(a). Orphan(b). Other(c). P(d). Q(d).\n"
    "Start(x) -> Log(y).\n"
    "Ghost(x) -> Start(x).\n"
    "Start(x), Other(w) -> Pair(x, w).\n"
    "Start(x) -> Log(y).\n"
    "P(x) -> E(x, y).\n"
    "Q(x) -> E(x, z).\n";

struct Program {
  core::SymbolTable symbols;
  tgd::TgdSet tgds;
  core::Database database;
};

Program Parse(const std::string& text) {
  Program p;
  auto parsed = tgd::ParseProgram(&p.symbols, text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_analysis: %s\n",
                 parsed.status().ToString().c_str());
    std::exit(1);
  }
  p.tgds = std::move(parsed->tgds);
  p.database = std::move(parsed->database);
  return p;
}

void AddLadderRow(util::Table* table, const std::string& name,
                  const std::string& seed, const Program& p) {
  bench::Stopwatch timer;
  termination::LadderResult r =
      termination::RunLadder(p.symbols, p.tgds, p.database);
  const double seconds = timer.Seconds();
  table->AddRow({name, seed, std::to_string(p.tgds.size()),
                 bench::FormatSeconds(seconds),
                 r.wa.weakly_acyclic ? "yes" : "no",
                 r.ja.jointly_acyclic ? "yes" : "no",
                 r.mfa_ran ? "yes" : "no",
                 r.rung.empty() ? "-" : r.rung,
                 std::string(termination::DecisionName(r.verdict))});
}

void AddLintRow(util::Table* table, const std::string& name,
                const Program& p) {
  bench::Stopwatch timer;
  graph::RelianceGraph reliances(p.tgds);
  std::vector<analysis::Diagnostic> findings =
      analysis::LintProgram(p.tgds, p.database, p.symbols, &reliances);
  const double seconds = timer.Seconds();
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const analysis::Diagnostic& d : findings) {
    if (d.severity == analysis::Severity::kWarning) ++warnings;
    if (d.severity == analysis::Severity::kInfo) ++infos;
  }
  table->AddRow({name, std::to_string(p.tgds.size()),
                 bench::FormatSeconds(seconds),
                 std::to_string(findings.size()),
                 std::to_string(warnings), std::to_string(infos)});
}

void Run() {
  bench::PrintHeader(
      "P8 bench_analysis (acyclicity ladder & lint diagnostics)",
      "the WA -> JA -> MFA ladder certifies strictly more general-TGD "
      "programs at each rung while short-circuiting the chase-backed "
      "MFA rung whenever a near-free rung suffices, and the lint "
      "diagnostics engine stays cheap next to any chase");

  util::Table ladder("acyclicity ladder",
                     {"workload", "seed", "rules", "ladder(s)", "wa",
                      "ja", "mfa_ran", "rung", "outcome"});
  {
    Program p = Parse(kWaShowcase);
    AddLadderRow(&ladder, "showcase-wa", "-", p);
  }
  {
    Program p = Parse(kJaShowcase);
    AddLadderRow(&ladder, "showcase-ja", "-", p);
  }
  {
    Program p = Parse(kMfaShowcase);
    AddLadderRow(&ladder, "showcase-mfa", "-", p);
  }
  {
    Program p = Parse(kDiverging);
    AddLadderRow(&ladder, "showcase-diverging", "-", p);
  }
  const struct {
    const char* name;
    tgd::TgdClass target;
  } families[] = {
      {"random-sl", tgd::TgdClass::kSimpleLinear},
      {"random-linear", tgd::TgdClass::kLinear},
      {"random-guarded", tgd::TgdClass::kGuarded},
      {"random-general", tgd::TgdClass::kGeneral},
  };
  for (const auto& family : families) {
    for (std::uint32_t seed = 1; seed <= 4; ++seed) {
      Program p;
      workload::RandomTgdOptions options;
      options.seed = seed;
      options.target = family.target;
      workload::Workload w =
          workload::MakeRandomWorkload(&p.symbols, options);
      p.tgds = std::move(w.tgds);
      p.database = std::move(w.database);
      AddLadderRow(&ladder, family.name, std::to_string(seed), p);
    }
  }
  bench::PrintTable(ladder);

  util::Table lint("lint diagnostics",
                   {"workload", "rules", "lint(s)", "findings",
                    "warnings", "infos"});
  {
    Program p = Parse(kLintShowcase);
    AddLintRow(&lint, "lint-showcase", p);
  }
  {
    Program p = Parse(kWaShowcase);
    AddLintRow(&lint, "showcase-wa", p);
  }
  {
    Program p = Parse(kJaShowcase);
    AddLintRow(&lint, "showcase-ja", p);
  }
  {
    Program p = Parse(kMfaShowcase);
    AddLintRow(&lint, "showcase-mfa", p);
  }
  bench::PrintTable(lint);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
