// bench_server — chase-as-a-service throughput and latency.
//
// Two experiments against an in-process nuchase_server on an ephemeral
// loopback port:
//
//   * "server load": closed-loop sweep over client counts. Each row
//     runs a fresh server (so cache and overlap counters are per-row),
//     N client threads each issuing the same transitive-closure program
//     with payloads on, and reports req/s, p50/p99 latency, the
//     server-side cache-hit count and the peak number of concurrently
//     executing chases (max_overlap). The "same result" column is the
//     wire-level determinism check: every payload across every client
//     must be byte-identical.
//
//   * "server overlap proof": the clock-free engagement gate. One
//     non-terminating chase is parked on the scheduler, a quick chase
//     is completed while it runs, then the parked one is cancelled —
//     max_overlap >= 2 is forced by construction, on any machine,
//     including a single-core CI container where throughput scaling
//     would prove nothing. tools/check_bench_regression requires this
//     row to say engaged=yes, so the bench cannot silently degrade
//     into serialized request handling.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/table.h"

namespace nuchase {
namespace {

constexpr unsigned kRequestsPerClient = 16;

std::string SweepProgram() {
  std::string text;
  for (int i = 0; i < 24; ++i) {
    text += "E(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
            ").\n";
  }
  text += "E(x, y) -> T(x, y).\n";
  text += "T(x, y), E(y, z) -> T(x, z).\n";
  return text;
}

/// One running server on an ephemeral port; torn down by Stop + join.
struct LiveServer {
  explicit LiveServer(const server::ServerOptions& options)
      : server(options) {
    auto bound = server::TcpListener::Bind(0);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind: %s\n",
                   bound.status().ToString().c_str());
      std::abort();
    }
    listener.emplace(std::move(*bound));
    port = listener->port();
    thread = std::thread([this] { listener->Run(&server); });
  }

  ~LiveServer() {
    listener->Stop();
    thread.join();
  }

  server::Server server;
  std::optional<server::TcpListener> listener;
  int port = 0;
  std::thread thread;
};

struct ClientRun {
  std::vector<double> latencies_ms;
  std::uint64_t errors = 0;
  std::string payload;
};

void RunClient(int port, unsigned client, const std::string& rules,
               ClientRun* out) {
  auto connected = server::Client::Connect(port);
  if (!connected.ok()) {
    out->errors += kRequestsPerClient;
    return;
  }
  for (unsigned r = 0; r < kRequestsPerClient; ++r) {
    server::ChaseRequest request;
    request.id = "c" + std::to_string(client) + "-r" + std::to_string(r);
    request.rules = rules;
    request.payload = true;
    bench::Stopwatch latency;
    auto outcome = connected->RunChase(request);
    const double ms = latency.Seconds() * 1e3;
    if (!outcome.ok() || !outcome->ok) {
      ++out->errors;
      continue;
    }
    out->latencies_ms.push_back(ms);
    if (out->payload.empty()) out->payload = outcome->result.payload;
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

void RunSweep() {
  bench::PrintHeader(
      "server load",
      "one shared scheduler multiplexes concurrent chase requests with "
      "a parse cache; results stay byte-identical under load");
  util::Table table("server load",
                    {"clients", "requests", "errors", "elapsed(s)",
                     "req/s", "p50(ms)", "p99(ms)", "cache_hits",
                     "max_overlap", "same result"});
  const std::string rules = SweepProgram();
  std::string reference_payload;
  for (unsigned clients : {1u, 2u, 4u, 8u}) {
    server::ServerOptions options;
    options.max_inflight = 4;
    options.default_threads = 1;
    LiveServer live(options);
    std::vector<ClientRun> runs(clients);
    std::vector<std::thread> threads;
    bench::Stopwatch elapsed;
    for (unsigned c = 0; c < clients; ++c) {
      threads.emplace_back(RunClient, live.port, c, std::cref(rules),
                           &runs[c]);
    }
    for (std::thread& t : threads) t.join();
    const double seconds = elapsed.Seconds();

    std::vector<double> latencies;
    std::uint64_t errors = 0;
    bool identical = true;
    for (const ClientRun& run : runs) {
      errors += run.errors;
      latencies.insert(latencies.end(), run.latencies_ms.begin(),
                       run.latencies_ms.end());
      if (!run.payload.empty()) {
        if (reference_payload.empty()) reference_payload = run.payload;
        if (run.payload != reference_payload) identical = false;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const server::StatsFrame stats = live.server.stats();
    const double rate =
        seconds > 0 ? static_cast<double>(latencies.size()) / seconds : 0;
    table.AddRow({std::to_string(clients),
                  std::to_string(clients * kRequestsPerClient),
                  std::to_string(errors), bench::FormatSeconds(seconds),
                  FormatMs(rate), FormatMs(Percentile(latencies, 0.50)),
                  FormatMs(Percentile(latencies, 0.99)),
                  std::to_string(stats.cache_hits),
                  std::to_string(stats.max_overlap),
                  identical ? "yes" : "NO"});
  }
  bench::PrintTable(table);
}

void RunOverlapProof() {
  bench::PrintHeader(
      "server overlap proof",
      "a quick request completes while a parked request is live, so "
      "admission genuinely overlaps chases (clock-free, any core "
      "count)");
  util::Table table("server overlap proof",
                    {"phase", "quick outcome", "parked terminal",
                     "max_overlap", "engaged"});

  server::ServerOptions options;
  options.max_inflight = 2;
  options.default_threads = 1;
  LiveServer live(options);

  auto parked_conn = server::Client::Connect(live.port);
  auto quick_conn = server::Client::Connect(live.port);
  if (!parked_conn.ok() || !quick_conn.ok()) {
    std::fprintf(stderr, "connect failed\n");
    std::abort();
  }

  // Park: an infinite null chain, one cheap atom per round, held live
  // until cancelled.
  server::ChaseRequest parked;
  parked.id = "parked";
  parked.rules = "E(a, b).\nE(x, y) -> E(y, z).\n";
  std::string quick_outcome = "send failed";
  std::string parked_terminal = "send failed";
  if (parked_conn->Send(server::SerializeRequest(parked)).ok()) {
    auto ack = parked_conn->ReadFrame();
    if (ack.ok() && ack->type == server::ResponseFrame::Type::kAck) {
      // While parked is chasing: complete a quick request end to end.
      server::ChaseRequest quick;
      quick.id = "quick";
      quick.rules = "P(a).\nP(x) -> Q(x).\n";
      auto outcome = quick_conn->RunChase(quick);
      quick_outcome = outcome.ok() && outcome->ok
                          ? outcome->result.outcome
                          : "error";
      // Unpark and read the typed terminal frame.
      parked_terminal = "no frame";
      if (parked_conn->Send(server::SerializeCancel(parked.id)).ok()) {
        auto terminal = parked_conn->ReadFrame();
        if (terminal.ok() &&
            terminal->type == server::ResponseFrame::Type::kError) {
          parked_terminal =
              server::ErrorCodeName(terminal->error.code);
        }
      }
    }
  }

  const server::StatsFrame stats = live.server.stats();
  const bool engaged = stats.max_overlap >= 2 &&
                       quick_outcome == "terminated" &&
                       parked_terminal == std::string("cancelled");
  table.AddRow({"parked+quick", quick_outcome, parked_terminal,
                std::to_string(stats.max_overlap),
                engaged ? "yes" : "NO"});
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::RunSweep();
  nuchase::RunOverlapProof();
  return 0;
}
