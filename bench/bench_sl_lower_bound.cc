// E2 — Theorem 6.5: a family of SL ontologies whose chase is
// unavoidably exponential in the arity m and the number of predicates
// n+1: |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · m^{n·m}.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "util/table.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader("E2 bench_sl_lower_bound (Theorem 6.5)",
                     "|chase(D_ell, Sigma_{n,m})| >= ell * m^(n*m), "
                     "met with equality on the R_n relation");

  util::Table table("Theorem 6.5 family",
                    {"ell,n,m", "|chase|", "|R_n|", "bound ell*m^(n*m)",
                     "|R_n|>=bound", "seconds"});
  struct P {
    std::uint64_t ell;
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 1, 2}, P{1, 2, 2}, P{1, 3, 2}, P{2, 2, 2},
                     P{4, 2, 2}, P{1, 1, 3}, P{1, 2, 3}, P{1, 1, 4},
                     P{8, 1, 3}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeSlLowerBound(&symbols, p.ell, p.n, p.m);
    bench::Stopwatch timer;
    chase::ChaseOptions options;
    options.max_atoms = 5'000'000;
    chase::ChaseResult result =
        chase::RunChase(&symbols, w.tgds, w.database, options);
    double bound = workload::SlLowerBoundValue(p.ell, p.n, p.m);
    auto rn = symbols.FindPredicate("R" + std::to_string(p.n) + "_" +
                                    std::to_string(p.n) + "_" +
                                    std::to_string(p.m));
    std::uint64_t rn_count =
        rn.ok() ? result.instance.AtomsWithPredicate(*rn).size() : 0;
    table.AddRow({std::to_string(p.ell) + "," + std::to_string(p.n) +
                      "," + std::to_string(p.m),
                  std::to_string(result.instance.size()),
                  std::to_string(rn_count), util::FormatCount(bound),
                  static_cast<double>(rn_count) >= bound ? "yes" : "NO",
                  timer.Formatted()});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
