// E1 — Proposition 4.5: the non-uniform chase admits no
// database-independent depth bound. For the family D_n,
// maxdepth(D_n, Σ) = n − 1 grows with the database.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "workload/depth_family.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader(
      "E1 bench_depth_family (Proposition 4.5)",
      "maxdepth(D_n, Σ) = n − 1 with |D_n| = n; no uniform bound exists");

  util::Table table("Prop 4.5 depth family",
                    {"n=|D_n|", "atoms(chase)", "maxdepth",
                     "paper(n-1)", "match", "join_probes",
                     "delta_seeds", "arena_bytes"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeDepthFamily(&symbols, n);
    chase::ChaseResult result =
        chase::RunChase(&symbols, w.tgds, w.database);
    table.AddRow({std::to_string(n),
                  std::to_string(result.instance.size()),
                  std::to_string(result.stats.max_depth),
                  std::to_string(n - 1),
                  result.stats.max_depth == n - 1 ? "yes" : "NO",
                  std::to_string(result.stats.join_probes),
                  std::to_string(result.stats.delta_atoms_scanned),
                  std::to_string(result.stats.arena_bytes)});
  }
  bench::PrintTable(table);

  util::Table inf("companion: same Σ, critical database (Σ ∉ CT)",
                  {"database", "outcome", "atoms@budget"});
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeDepthFamilyInfinite(&symbols);
  chase::ChaseOptions options;
  options.max_atoms = 2000;
  chase::ChaseResult result =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  inf.AddRow({"{P(a,a,a), R(a,a)}",
              chase::ChaseOutcomeName(result.outcome),
              std::to_string(result.instance.size())});
  bench::PrintTable(inf);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
