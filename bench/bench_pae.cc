// A4 — propositional atom entailment PAE(G), the problem Theorem 8.5
// uses (via the looping operator) to prove ChTrm(G) PTIME-hard in data
// complexity. Three independent routes must agree:
//   (1) the guarded type oracle (saturation; no chase),
//   (2) membership in the materialized chase, and
//   (3) the looping-operator reduction: R() entailed iff the looped
//       program does NOT terminate (decided syntactically).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "saturation/type_oracle.h"
#include "termination/looping.h"
#include "termination/syntactic_decider.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader(
      "A4 bench_pae (Theorem 8.5's hardness machinery)",
      "PAE(G) via saturation == via chase == via the looping-operator "
      "reduction to (non-)termination");

  util::Table table("PAE(G), three routes",
                    {"|D|", "entailed", "oracle(s)", "chase(s)",
                     "looping(s)", "all agree"});

  // A guarded "incident escalation" program: Alarm() fires iff some
  // chain of On/Feeds facts reaches a critical device.
  const char* rules =
      "On(x), Feeds(x, y) -> On(y).\n"
      "On(x), Critical(x) -> Alarm().\n";

  for (std::uint64_t size : {10u, 50u, 200u, 1000u}) {
    for (bool reachable : {false, true}) {
      core::SymbolTable symbols;
      auto tgds = tgd::ParseTgdSet(&symbols, rules);
      if (!tgds.ok()) return;
      core::Database db;
      // A feed chain d0 -> d1 -> ... ; d0 is on; the critical device is
      // on the chain iff `reachable`.
      for (std::uint64_t i = 0; i + 1 < size; ++i) {
        (void)db.AddFact(&symbols, "Feeds",
                         {"d" + std::to_string(i),
                          "d" + std::to_string(i + 1)});
      }
      (void)db.AddFact(&symbols, "On", {"d0"});
      (void)db.AddFact(&symbols, "Critical",
                       {reachable ? "d" + std::to_string(size / 2)
                                  : "offgrid"});
      auto alarm = symbols.InternPredicate("Alarm", 0);
      if (!alarm.ok()) return;

      // The saturation oracle evaluates the database as one world with
      // scan joins — built for the linearizer's ar(Σ)-sized canonical
      // worlds, it is quadratic+ on whole databases, so we skip it past
      // 200 facts and let the other two routes carry the sweep.
      bench::Stopwatch oracle_timer;
      bool oracle_ran = size <= 200;
      bool via_oracle = false;
      if (oracle_ran) {
        auto oracle = saturation::TypeOracle::Create(
            symbols, *tgds, saturation::TypeOracle::Options{});
        if (oracle.ok()) {
          auto e = oracle->EntailsPropositional(db, *alarm);
          if (e.ok()) via_oracle = *e;
        }
      }
      double oracle_s = oracle_timer.Seconds();

      bench::Stopwatch chase_timer;
      chase::ChaseResult r = chase::RunChase(&symbols, *tgds, db);
      bool via_chase = r.instance.Contains(core::Atom(*alarm, {}));
      double chase_s = chase_timer.Seconds();

      bench::Stopwatch loop_timer;
      bool via_looping = false;
      auto looped =
          termination::ApplyLoopingOperator(&symbols, *tgds, db, *alarm);
      if (looped.ok()) {
        auto d = termination::Decide(&symbols, looped->tgds,
                                     looped->database);
        if (d.ok()) {
          via_looping =
              d->decision == termination::Decision::kDoesNotTerminate;
        }
      }
      double loop_s = loop_timer.Seconds();

      bool agree = (!oracle_ran || via_oracle == via_chase) &&
                   via_chase == via_looping && via_chase == reachable;
      table.AddRow({std::to_string(db.size()),
                    via_chase ? "yes" : "no",
                    oracle_ran ? bench::FormatSeconds(oracle_s) : "-",
                    bench::FormatSeconds(chase_s),
                    bench::FormatSeconds(loop_s),
                    agree ? "yes" : "NO"});
    }
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
