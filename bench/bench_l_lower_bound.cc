// E5 — Theorem 7.6: a family of linear ontologies whose chase is
// unavoidably double-exponential in the arity:
// |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^{n·(2^m − 1)}.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader(
      "E5 bench_l_lower_bound (Theorem 7.6)",
      "|chase(D_ell, Sigma_{n,m})| >= ell * 2^(n*(2^m-1)); binary trees "
      "driven by an exponential counter");

  util::Table table("Theorem 7.6 family",
                    {"ell,n,m", "|chase|", "|R_n|",
                     "bound ell*2^(n(2^m-1))", "ok", "seconds"});
  struct P {
    std::uint64_t ell;
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 1, 1}, P{1, 2, 1}, P{1, 1, 2}, P{1, 2, 2},
                     P{2, 2, 2}, P{1, 1, 3}, P{1, 2, 3}, P{1, 1, 4},
                     P{4, 1, 3}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeLinearLowerBound(&symbols, p.ell, p.n, p.m);
    bench::Stopwatch timer;
    chase::ChaseOptions options;
    options.max_atoms = 5'000'000;
    chase::ChaseResult result =
        chase::RunChase(&symbols, w.tgds, w.database, options);
    double bound = workload::LinearLowerBoundValue(p.ell, p.n, p.m);
    auto rn = symbols.FindPredicate("R" + std::to_string(p.n) + "_" +
                                    std::to_string(p.n) + "_" +
                                    std::to_string(p.m));
    std::uint64_t rn_count =
        rn.ok() ? result.instance.AtomsWithPredicate(*rn).size() : 0;
    table.AddRow({std::to_string(p.ell) + "," + std::to_string(p.n) +
                      "," + std::to_string(p.m),
                  std::to_string(result.instance.size()),
                  std::to_string(rn_count), util::FormatCount(bound),
                  result.Terminated() &&
                          static_cast<double>(rn_count) >= bound
                      ? "yes"
                      : "NO",
                  timer.Formatted()});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
