// E13 — Appendix A: a fixed constant-free Σ★ such that chase(D_M, Σ★)
// is finite iff the deterministic machine M halts on the empty input.
// The table cross-checks the chase against a direct TM simulator: for
// halting machines both agree on halting (and the chase size grows with
// the running time); for looping machines the chase exhausts every atom
// budget we give it.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "workload/turing.h"

namespace nuchase {
namespace {

void AddRow(util::Table* table, const std::string& label,
            const workload::TuringMachine& tm,
            std::uint64_t atom_budget) {
  core::SymbolTable symbols;
  workload::Workload w = workload::MakeTuringWorkload(&symbols, tm, label);
  std::optional<std::uint64_t> steps = workload::SimulateTm(tm, 100000);

  bench::Stopwatch timer;
  chase::ChaseOptions options;
  options.max_atoms = atom_budget;
  chase::ChaseResult r =
      chase::RunChase(&symbols, w.tgds, w.database, options);

  bool agree = (steps.has_value() && r.Terminated()) ||
               (!steps.has_value() && !r.Terminated());
  table->AddRow(
      {label, std::to_string(w.database.size()),
       steps ? std::to_string(*steps) : "loops",
       r.Terminated() ? "finite" : "budget-hit",
       std::to_string(r.instance.size()), std::to_string(atom_budget),
       agree ? "yes" : "NO", timer.Formatted()});
}

void Run() {
  bench::PrintHeader(
      "E13 bench_turing (Appendix A / Proposition 4.2)",
      "chase(D_M, Sigma*) finite iff M halts on the empty input; "
      "Sigma* fixed, only D_M varies");

  util::Table table("Turing machines through the chase",
                    {"machine", "|D_M|", "TM steps", "chase", "atoms",
                     "budget", "agree", "seconds"});
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    AddRow(&table, "writer-" + std::to_string(k),
           workload::MakeHaltingTm(k), 2'000'000);
  }
  AddRow(&table, "zig-zag", workload::MakeZigZagTm(), 2'000'000);
  AddRow(&table, "right-walker", workload::MakeLoopingTm(), 300'000);
  AddRow(&table, "spinner", workload::MakeSpinningTm(), 300'000);
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
