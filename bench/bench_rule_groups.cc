// P7 — reliance-driven cross-rule scheduling: wall-clock and engagement
// telemetry for the collect-group scheduler on independent recursive
// rule families. The workload is F disjoint copies of a layered
// reachability family (per family f: layer graph C_f plus the recursive
// rule C_f(x,y), M_f(x) -> M_f(y)); no rule's head feeds another rule's
// body, so the whole Σ is one collect group and every multi-seed round
// lets the scheduler run all F rules' collects on the pool at once —
// rule-at-a-time parallelism would shard each family's W seeds alone.
// Every cell materializes the byte-identical instance with identical
// deterministic counters (join_probes, arena_bytes); only seconds and
// the engagement columns differ. `reliance_groups` (a pure function of
// Σ: 1 with the scheduler on, 0 ablated) and `cross_rule_rounds` are
// the clock-free proofs tools/check_bench_regression gates on: a
// reliances-on threads>=2 row with cross_rule_rounds=0 means the
// scheduler silently degraded to rule-at-a-time collects, which
// byte-identity alone can never reveal. A third, duplicate-heavy
// workload (dense transitive closure) stresses the run-scoped fired
// set instead: most candidate triggers it discovers are repeats, so
// the (rule, frontier) dedup table dominates the collect phase.
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

/// F disjoint layered families: nodes nf_<l>_<i>, complete bipartite
/// C_f edges between consecutive layers, the full first layer marked.
std::string MakeFamilies(int families, int layers, int width) {
  std::string text;
  for (int f = 0; f < families; ++f) {
    std::string cf = "C" + std::to_string(f);
    std::string mf = "M" + std::to_string(f);
    for (int l = 0; l + 1 < layers; ++l) {
      for (int i = 0; i < width; ++i) {
        for (int j = 0; j < width; ++j) {
          text += cf + "(n" + std::to_string(f) + "_" +
                  std::to_string(l) + "_" + std::to_string(i) + ", n" +
                  std::to_string(f) + "_" + std::to_string(l + 1) + "_" +
                  std::to_string(j) + ").\n";
        }
      }
    }
    for (int i = 0; i < width; ++i) {
      text += mf + "(n" + std::to_string(f) + "_0_" + std::to_string(i) +
              ").\n";
    }
    text += cf + "(x, y), " + mf + "(x) -> " + mf + "(y).\n";
  }
  return text;
}

/// F disjoint dense transitive closures: per family f, a DAG E_f over
/// `nodes` vertices with an edge to each of the next `window` vertices,
/// feeding a copy rule and a two-atom recursive closure rule:
///   E_f(x, y) -> T_f(x, y).
///   T_f(x, y), T_f(y, z) -> T_f(x, z).
/// Every derived pair (x, z) is rediscovered through every midpoint y
/// between x and z — and from both body positions of the closure rule —
/// so the collect phase floods the run-scoped fired set with duplicate
/// (rule, frontier) candidates. This is the workload where the flat
/// epoch-tagged fired table (vs. the former node-per-key sharded sets)
/// is the hot structure; the copy rule keeps the closure rule inside a
/// multi-rule collect group so the cross-rule engagement gate still has
/// something to measure.
std::string MakeDenseClosures(int families, int nodes, int window) {
  std::string text;
  for (int f = 0; f < families; ++f) {
    std::string ef = "E" + std::to_string(f);
    std::string tf = "T" + std::to_string(f);
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 1; j <= i + window && j < nodes; ++j) {
        text += ef + "(v" + std::to_string(f) + "_" + std::to_string(i) +
                ", v" + std::to_string(f) + "_" + std::to_string(j) +
                ").\n";
      }
    }
    text += ef + "(x, y) -> " + tf + "(x, y).\n";
    text += tf + "(x, y), " + tf + "(y, z) -> " + tf + "(x, z).\n";
  }
  return text;
}

struct Measurement {
  double seconds = 0;
  std::string sorted;
  chase::ChaseStats stats;
  std::uint64_t atoms = 0;
};

Measurement RunCell(const std::string& text, bool use_reliances,
                    std::uint32_t threads) {
  core::SymbolTable symbols;
  auto p = tgd::ParseProgram(&symbols, text);
  if (!p.ok()) {
    std::fprintf(stderr, "bench_rule_groups: %s\n",
                 p.status().ToString().c_str());
    std::exit(1);
  }
  chase::ChaseOptions options;
  options.use_reliances = use_reliances;
  options.num_threads = threads;
  bench::Stopwatch timer;
  chase::ChaseResult r =
      chase::RunChase(&symbols, p->tgds, p->database, options);
  Measurement m;
  m.seconds = timer.Seconds();
  m.sorted = r.instance.ToSortedString(symbols);
  m.stats = r.stats;
  m.atoms = r.instance.size();
  return m;
}

void Run() {
  bench::PrintHeader(
      "P7 bench_rule_groups (cross-rule collect scheduling)",
      "reliance collect groups let one round's trigger search span "
      "independent rules on the worker pool while the instance and "
      "every deterministic counter stay byte-identical to the "
      "rule-at-a-time schedule");

  util::Table table(
      "rule groups",
      {"workload", "reliances", "threads", "cores", "chase(s)",
       "speedup", "join_probes", "atoms", "arena_bytes",
       "reliance_groups", "cross_rule_rounds", "same result"});
  const unsigned cores = std::thread::hardware_concurrency();
  const struct {
    const char* name;
    std::string text;
  } workloads[] = {
      // Wide rounds: every round carries families x width M-seeds, the
      // shape where spanning rules beats sharding one rule's seeds.
      {"independent-families-wide", MakeFamilies(4, 48, 12)},
      // Narrow rounds: one seed per family per round, so rule-at-a-time
      // sharding has literally nothing to split — only the cross-rule
      // schedule keeps more than one worker busy.
      {"independent-families-narrow", MakeFamilies(6, 256, 1)},
      // Duplicate-heavy rounds: dense transitive closure rediscovers
      // every derived pair once per midpoint, so trigger dedup — the
      // run-scoped fired set — takes the bulk of the collect traffic.
      {"duplicate-heavy-closure", MakeDenseClosures(2, 72, 6)},
  };
  for (const auto& w : workloads) {
    const std::string& text = w.text;
    Measurement reference;
    const struct {
      bool use_reliances;
      std::uint32_t threads;
    } cells[] = {{false, 1}, {false, 4}, {true, 1}, {true, 2}, {true, 4}};
    for (const auto& cell : cells) {
      Measurement m = RunCell(text, cell.use_reliances, cell.threads);
      if (!cell.use_reliances && cell.threads == 1) reference = m;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2f",
                    m.seconds > 0 ? reference.seconds / m.seconds : 0.0);
      table.AddRow(
          {w.name, cell.use_reliances ? "on" : "off",
           std::to_string(cell.threads), std::to_string(cores),
           bench::FormatSeconds(m.seconds), speedup,
           std::to_string(m.stats.join_probes), std::to_string(m.atoms),
           std::to_string(m.stats.arena_bytes),
           std::to_string(m.stats.reliance_groups),
           std::to_string(m.stats.cross_rule_parallel_rounds),
           m.sorted == reference.sorted &&
                   m.stats.join_probes == reference.stats.join_probes &&
                   m.stats.delta_atoms_scanned ==
                       reference.stats.delta_atoms_scanned
               ? "yes"
               : "NO"});
    }
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
