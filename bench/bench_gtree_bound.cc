// E12 — Lemma 5.1: in the guarded chase forest of a valid derivation,
// every tree's level i holds at most ||Σ||^{2·ar(Σ)·(i+1)} atoms. The
// table chases guarded workloads with forest recording on, takes the
// worst (root, depth) level, and compares it against the bound — the
// measured occupancy is many orders of magnitude below it, which is
// exactly what makes Proposition 5.2's size bound loose but linear.
#include <algorithm>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "termination/bounds.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

void AddRow(util::Table* table, const std::string& label,
            core::SymbolTable* symbols, const tgd::TgdSet& tgds,
            const core::Database& db) {
  chase::ChaseOptions options;
  options.max_atoms = 500000;
  options.build_forest = true;
  chase::ChaseResult result = chase::RunChase(symbols, tgds, db, options);
  if (!result.Terminated()) {
    table->AddRow({label, "-", "-", "-", "-", "non-terminating"});
    return;
  }

  // Worst occupancy over all roots and depths, with its bound.
  std::uint64_t worst_count = 0;
  std::uint32_t worst_depth = 0;
  for (core::AtomIndex root : result.forest.roots()) {
    for (const auto& [depth, count] :
         result.forest.GtreeDepthHistogram(root)) {
      if (count > worst_count) {
        worst_count = count;
        worst_depth = depth;
      }
    }
  }
  double bound =
      termination::GtreeLevelBound(worst_depth, tgds, *symbols);
  bool ok = static_cast<double>(worst_count) <= bound;
  table->AddRow({label, std::to_string(result.instance.size()),
                 std::to_string(worst_depth),
                 std::to_string(worst_count), util::FormatCount(bound),
                 ok ? "yes" : "NO"});
}

void Run() {
  bench::PrintHeader(
      "E12 bench_gtree_bound (Lemma 5.1)",
      "per-depth guarded-forest levels obey |gtree_i| <= "
      "||Sigma||^(2*ar(Sigma)*(i+1))");

  util::Table table("guarded chase forest levels",
                    {"workload", "|chase|", "worst depth",
                     "|gtree_i| at worst depth", "bound", "holds"});

  {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols,
                               "G(a, b). H(b).\n"
                               "G(x, y), H(y) -> K(x, y, z).\n"
                               "K(x, y, z) -> H(z).\n"
                               "K(x, y, z) -> L(z, x).\n"
                               "L(z, x) -> M(z, w).\n");
    if (p.ok()) AddRow(&table, "hand-guarded", &symbols, p->tgds,
                       p->database);
  }
  {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeGuardedLowerBound(&symbols, 1, 1, 1);
    AddRow(&table, "thm8.4(1,1,1)", &symbols, w.tgds, w.database);
  }
  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeSlLowerBound(&symbols, 2, 2, 2);
    AddRow(&table, "thm6.5(2,2,2)", &symbols, w.tgds, w.database);
  }
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    AddRow(&table, "random-g-" + std::to_string(seed), &symbols, w.tgds,
           w.database);
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
