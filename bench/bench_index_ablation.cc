// A2 (ablation) — the two storage/engine design choices of the trigger
// search, crossed: the secondary (predicate, position, term) index
// ("VLog-style" layout) and the semi-naive delta engine (each round
// joins only through the previous round's delta, seeded via the
// per-predicate delta index with a join order planned from the delta
// atom). All four cells materialize byte-identical instances; only
// join_probes and seconds differ. The delta dimension is the
// order-of-magnitude fix on recursive workloads (datalog-tc, the
// Proposition 4.5 depth family), where the full scan re-derives every
// round's matches from the whole instance.
#include <string>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"

namespace nuchase {
namespace {

struct Cell {
  bool use_delta;
  bool use_position_index;
};

constexpr Cell kCells[] = {
    {true, true},
    {true, false},
    {false, true},
    {false, false},
};

/// Builds a fresh (symbols, Σ, D) for every cell — null names are
/// interned in the symbol table, so sharing one table across runs would
/// make byte-identical comparison impossible by construction.
struct Setup {
  core::SymbolTable symbols;
  tgd::TgdSet tgds;
  core::Database db;
};

template <typename MakeSetup>
void RunMatrix(const char* label, const MakeSetup& make_setup,
               util::Table* table) {
  std::string reference;
  double delta_indexed_s = 0;
  for (const Cell& cell : kCells) {
    Setup setup;
    make_setup(&setup);
    chase::ChaseOptions options;
    options.max_atoms = 5'000'000;
    options.use_delta = cell.use_delta;
    options.use_position_index = cell.use_position_index;
    bench::Stopwatch timer;
    chase::ChaseResult r =
        chase::RunChase(&setup.symbols, setup.tgds, setup.db, options);
    double seconds = timer.Seconds();

    std::string sorted = r.instance.ToSortedString(setup.symbols);
    if (cell.use_delta && cell.use_position_index) {
      reference = sorted;
      delta_indexed_s = seconds;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  delta_indexed_s > 0 ? seconds / delta_indexed_s : 0.0);
    table->AddRow(
        {label, std::to_string(setup.db.size()),
         std::to_string(r.instance.size()),
         cell.use_delta ? "on" : "off",
         cell.use_position_index ? "on" : "off",
         bench::FormatSeconds(seconds),
         std::to_string(r.stats.join_probes),
         std::to_string(r.stats.delta_atoms_scanned),
         std::to_string(r.stats.arena_bytes), speedup,
         sorted == reference ? "yes" : "NO"});
  }
}

void Run() {
  bench::PrintHeader(
      "A2 bench_index_ablation",
      "delta (semi-naive) x position-index ablation matrix; "
      "byte-identical output, different cost");

  util::Table table("delta x position-index ablation",
                    {"workload", "|D|", "atoms", "delta", "posindex",
                     "time(s)", "join_probes", "delta_seeds",
                     "arena_bytes", "vs delta+idx", "same result"});

  struct Scenario {
    const char* label;
    const char* rules;
  };
  const Scenario scenarios[] = {
      // Join-heavy guarded rule: Emp ⋈ Dept on d.
      {"emp-dept-join",
       "Emp(e, d), Dept(d) -> Mgr(d, m). Mgr(d, m) -> Dept(d)."},
      // Transitive closure: T grows, every round re-joins E ⋈ T.
      {"datalog-tc", "E(x, y) -> T(x, y). E(x, y), T(y, z) -> T(x, z)."},
  };

  for (const Scenario& s : scenarios) {
    for (std::uint64_t size : {100u, 400u, 1600u}) {
      // The naive x scan cell of datalog-tc is quadratic in rounds; cap
      // the input so the matrix stays minutes-free.
      if (std::string(s.label) == "datalog-tc" && size > 400) continue;
      auto make_setup = [&](Setup* setup) {
        auto tgds = tgd::ParseTgdSet(&setup->symbols, s.rules);
        if (!tgds.ok()) {
          std::fprintf(stderr, "bench_index_ablation: bad rules for %s: %s\n",
                       s.label, tgds.status().ToString().c_str());
          std::exit(1);
        }
        setup->tgds = *tgds;
        if (std::string(s.label) == "emp-dept-join") {
          for (std::uint64_t i = 0; i < size; ++i) {
            (void)setup->db.AddFact(&setup->symbols, "Emp",
                                    {"e" + std::to_string(i),
                                     "d" + std::to_string(i % 50)});
          }
          for (std::uint64_t d = 0; d < 50; ++d) {
            (void)setup->db.AddFact(&setup->symbols, "Dept",
                                    {"d" + std::to_string(d)});
          }
        } else {
          // A long path: recursion depth (and rounds) scale with it.
          for (std::uint64_t i = 0; i + 1 < size / 4; ++i) {
            (void)setup->db.AddFact(&setup->symbols, "E",
                                    {"v" + std::to_string(i),
                                     "v" + std::to_string(i + 1)});
          }
        }
      };
      RunMatrix(s.label, make_setup, &table);
    }
  }

  // The Proposition 4.5 depth family: maxdepth n-1, n rounds — the
  // deepest recursion the decider benches run, and the workload the
  // regression gate tracks.
  for (std::uint32_t n : {32u, 64u, 128u}) {
    auto make_setup = [&](Setup* setup) {
      workload::Workload w = workload::MakeDepthFamily(&setup->symbols, n);
      setup->tgds = std::move(w.tgds);
      setup->db = std::move(w.database);
    };
    RunMatrix(("depth-family-n" + std::to_string(n)).c_str(), make_setup,
              &table);
  }

  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
