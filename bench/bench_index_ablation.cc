// A2 (ablation) — the storage-layer design choice DESIGN.md calls out:
// the instance keeps a secondary (predicate, position, term) index so
// trigger search can seed joins from bound positions (the "VLog-style"
// layout). This bench chases the same workloads with the index enabled
// and disabled; results are identical, but the scan baseline degrades
// super-linearly on join-heavy guarded rules.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

void Run() {
  bench::PrintHeader(
      "A2 bench_index_ablation",
      "per-position index vs predicate-scan joins; identical output, "
      "different cost");

  util::Table table("position-index ablation",
                    {"workload", "|D|", "|chase|", "indexed(s)",
                     "scan(s)", "speedup", "same result"});

  struct Scenario {
    const char* label;
    const char* rules;
  };
  const Scenario scenarios[] = {
      // Join-heavy guarded rule: Emp ⋈ Dept on d.
      {"emp-dept-join",
       "Emp(e, d), Dept(d) -> Mgr(d, m). Mgr(d, m) -> Dept(d)."},
      // Transitive closure: T grows, every round re-joins E ⋈ T.
      {"datalog-tc", "E(x, y) -> T(x, y). E(x, y), T(y, z) -> T(x, z)."},
  };

  for (const Scenario& s : scenarios) {
    for (std::uint64_t size : {100u, 400u, 1600u}) {
      core::SymbolTable symbols;
      auto tgds = tgd::ParseTgdSet(&symbols, s.rules);
      if (!tgds.ok()) return;
      core::Database db;
      if (std::string(s.label) == "emp-dept-join") {
        for (std::uint64_t i = 0; i < size; ++i) {
          (void)db.AddFact(&symbols, "Emp",
                           {"e" + std::to_string(i),
                            "d" + std::to_string(i % 50)});
        }
        for (std::uint64_t d = 0; d < 50; ++d) {
          (void)db.AddFact(&symbols, "Dept", {"d" + std::to_string(d)});
        }
      } else {
        // A long path plus a few shortcuts: quadratic T.
        for (std::uint64_t i = 0; i + 1 < size / 4; ++i) {
          (void)db.AddFact(&symbols, "E",
                           {"v" + std::to_string(i),
                            "v" + std::to_string(i + 1)});
        }
      }

      chase::ChaseOptions indexed;
      indexed.max_atoms = 5'000'000;
      bench::Stopwatch t1;
      chase::ChaseResult r1 =
          chase::RunChase(&symbols, *tgds, db, indexed);
      double indexed_s = t1.Seconds();

      chase::ChaseOptions scan = indexed;
      scan.use_position_index = false;
      bench::Stopwatch t2;
      chase::ChaseResult r2 = chase::RunChase(&symbols, *tgds, db, scan);
      double scan_s = t2.Seconds();

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    indexed_s > 0 ? scan_s / indexed_s : 0.0);
      table.AddRow(
          {s.label, std::to_string(db.size()),
           std::to_string(r1.instance.size()),
           bench::FormatSeconds(indexed_s), bench::FormatSeconds(scan_s),
           speedup,
           r1.instance.size() == r2.instance.size() &&
                   r1.Terminated() == r2.Terminated()
               ? "yes"
               : "NO"});
    }
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
