#ifndef NUCHASE_BENCH_BENCH_UTIL_H_
#define NUCHASE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <errno.h>  // program_invocation_short_name
#endif

#include "util/table.h"

namespace nuchase {
namespace bench {

/// Wall-clock stopwatch for the decision-procedure comparisons.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  std::string Formatted() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", Seconds());
    return buf;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

/// One measured data point. `params` holds the experiment's independent
/// variables (workload name, |D|, seed, ...) as name/value pairs;
/// `seconds` and `atoms` the measurement; `outcome` the qualitative
/// result ("terminated", "timeout", a decider verdict, ...). Negative
/// `seconds` / zero `atoms` mean "not measured" and are omitted from
/// the JSON.
struct BenchRow {
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> params;
  double seconds = -1.0;
  std::uint64_t atoms = 0;
  std::string outcome;
};

/// Accumulates bench results and emits machine-readable
/// `BENCH_<name>.json` so every PR appends to the perf trajectory
/// instead of scrolling tables past.
///
/// Two feeding paths:
///  1. explicit — `Record(row)` from bench code;
///  2. implicit — `PrintHeader` / `PrintTable` below forward to the
///     global reporter, so the 17 existing benches produce JSON with no
///     source change: each printed table becomes one experiment whose
///     rows keep the column structure as params, with any "...(s)"
///     column promoted to `seconds` and any "atoms" column to `atoms`.
///
/// Output: on process exit the global reporter writes
/// `$NUCHASE_BENCH_JSON_DIR/BENCH_<bench>.json` when that variable is
/// set (this is what tools/run_benches does), or the exact path in
/// `$NUCHASE_BENCH_JSON` when that is set. With neither set nothing is
/// written and the benches behave exactly as before.
class BenchReporter {
 public:
  /// A standalone reporter (bench name defaults to the executable
  /// name). Bench code normally uses Global() so the atexit hook and
  /// the Print* helpers see the same instance.
  BenchReporter() : bench_name_(DefaultBenchName()) {}

  static BenchReporter& Global() {
    static BenchReporter* reporter = [] {
      auto* r = new BenchReporter();
      std::atexit(&BenchReporter::FlushGlobalToEnv);
      return r;
    }();
    return *reporter;
  }

  /// Overrides the bench name used in `BENCH_<name>.json` (defaults to
  /// the executable name).
  void SetBenchName(std::string name) { bench_name_ = std::move(name); }

  /// Records the bench-level headline claim (PrintHeader forwards
  /// here).
  void SetClaim(std::string claim) { claim_ = std::move(claim); }

  /// Starts a new experiment; rows recorded with an empty
  /// `BenchRow::experiment` land in the most recently begun one. The
  /// experiment entry itself is created lazily by the first row.
  void BeginExperiment(const std::string& name) {
    current_experiment_ = name;
  }

  void Record(BenchRow row) {
    if (row.experiment.empty()) row.experiment = current_experiment_;
    ExperimentFor(row.experiment).rows.push_back(std::move(row));
  }

  /// Captures a printed table: one row per table row, one param per
  /// column. Columns whose header ends in "(s)" become `seconds`; an
  /// "atoms" column becomes `atoms`; a "decision"/"outcome" column
  /// becomes `outcome`.
  void RecordTable(const util::Table& table) {
    BeginExperiment(table.title());
    const std::vector<std::string>& headers = table.headers();
    for (const std::vector<std::string>& cells : table.rows()) {
      BenchRow row;
      row.experiment = table.title();
      for (std::size_t i = 0; i < headers.size() && i < cells.size();
           ++i) {
        const std::string& h = headers[i];
        if (row.seconds < 0 && h.size() >= 3 &&
            h.compare(h.size() - 3, 3, "(s)") == 0) {
          // Unmeasured cells ("-", "") must not read as 0.0 s, and must
          // not block a later timing column from being promoted.
          const char* begin = cells[i].c_str();
          char* end = nullptr;
          double parsed = std::strtod(begin, &end);
          if (end != begin && parsed >= 0) row.seconds = parsed;
        } else if (row.atoms == 0 && h == "atoms") {
          row.atoms = std::strtoull(cells[i].c_str(), nullptr, 10);
        } else if (row.outcome.empty() &&
                   (h == "decision" || h == "outcome")) {
          row.outcome = cells[i];
        }
        row.params.emplace_back(h, cells[i]);
      }
      ExperimentFor(table.title()).rows.push_back(std::move(row));
    }
  }

  bool empty() const { return experiments_.empty(); }

  void WriteJson(std::ostream& os) const {
    os << "{\n";
    os << "  \"bench\": " << Quoted(bench_name_) << ",\n";
    os << "  \"claim\": " << Quoted(claim_) << ",\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"experiments\": [";
    for (std::size_t e = 0; e < experiments_.size(); ++e) {
      os << (e ? ",\n" : "\n");
      const Experiment& exp = experiments_[e];
      os << "    {\n      \"experiment\": " << Quoted(exp.name)
         << ",\n      \"rows\": [";
      for (std::size_t r = 0; r < exp.rows.size(); ++r) {
        os << (r ? ",\n" : "\n");
        WriteRow(os, exp.rows[r]);
      }
      os << (exp.rows.empty() ? "]" : "\n      ]") << "\n    }";
    }
    os << (experiments_.empty() ? "]" : "\n  ]") << "\n}\n";
  }

  bool WriteJsonFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    WriteJson(out);
    return out.good();
  }

  /// Writes BENCH_<name>.json as directed by the environment (see class
  /// comment). Returns false when the environment requests no output.
  bool FlushToEnv() const {
    if (empty()) return false;
    if (const char* path = std::getenv("NUCHASE_BENCH_JSON")) {
      return WriteJsonFile(path);
    }
    if (const char* dir = std::getenv("NUCHASE_BENCH_JSON_DIR")) {
      return WriteJsonFile(std::string(dir) + "/BENCH_" + bench_name_ +
                           ".json");
    }
    return false;
  }

 private:
  struct Experiment {
    std::string name;
    std::vector<BenchRow> rows;
  };

  static void FlushGlobalToEnv() { Global().FlushToEnv(); }

  static std::string DefaultBenchName() {
#if defined(__GLIBC__)
    if (program_invocation_short_name != nullptr &&
        *program_invocation_short_name != '\0') {
      return program_invocation_short_name;
    }
#endif
    return "bench";
  }

  Experiment& ExperimentFor(const std::string& name) {
    for (Experiment& e : experiments_) {
      if (e.name == name) return e;
    }
    experiments_.push_back(Experiment{name, {}});
    return experiments_.back();
  }

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static void WriteRow(std::ostream& os, const BenchRow& row) {
    os << "        {\"params\": {";
    for (std::size_t p = 0; p < row.params.size(); ++p) {
      os << (p ? ", " : "") << Quoted(row.params[p].first) << ": "
         << Quoted(row.params[p].second);
    }
    os << "}";
    if (row.seconds >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", row.seconds);
      os << ", \"seconds\": " << buf;
    }
    if (row.atoms != 0) os << ", \"atoms\": " << row.atoms;
    if (!row.outcome.empty()) {
      os << ", \"outcome\": " << Quoted(row.outcome);
    }
    os << "}";
  }

  std::string bench_name_;
  std::string claim_;
  std::string current_experiment_;
  std::vector<Experiment> experiments_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::cout << "\n### " << experiment << "\n";
  std::cout << "paper claim: " << claim << "\n\n";
  BenchReporter::Global().SetClaim(claim);
  BenchReporter::Global().BeginExperiment(experiment);
}

inline void PrintTable(const util::Table& table) {
  std::cout << table.ToString() << "\n";
  BenchReporter::Global().RecordTable(table);
}

}  // namespace bench
}  // namespace nuchase

#endif  // NUCHASE_BENCH_BENCH_UTIL_H_
