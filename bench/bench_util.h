#ifndef NUCHASE_BENCH_BENCH_UTIL_H_
#define NUCHASE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "util/table.h"

namespace nuchase {
namespace bench {

/// Wall-clock stopwatch for the decision-procedure comparisons.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  std::string Formatted() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", Seconds());
    return buf;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::cout << "\n### " << experiment << "\n";
  std::cout << "paper claim: " << claim << "\n\n";
}

inline void PrintTable(const util::Table& table) {
  std::cout << table.ToString() << "\n";
}

}  // namespace bench
}  // namespace nuchase

#endif  // NUCHASE_BENCH_BENCH_UTIL_H_
