// E6 — Proposition 7.3: simplification preserves the finiteness of the
// chase and the maximal term depth:
//   Σ ∈ CT_D  iff  simple(Σ) ∈ CT_simple(D), and
//   maxdepth(D, Σ) = maxdepth(simple(D), simple(Σ)).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "rewrite/simplify.h"
#include "tgd/parser.h"
#include "workload/depth_family.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

void AddRow(util::Table* table, const std::string& label,
            core::SymbolTable* symbols, const workload::Workload& w) {
  rewrite::Simplifier simplifier(symbols);
  auto simple_tgds = simplifier.SimplifyTgds(w.tgds);
  if (!simple_tgds.ok()) return;
  core::Database simple_db = simplifier.SimplifyDatabase(w.database);

  chase::ChaseOptions options;
  options.max_atoms = 100000;
  chase::ChaseResult original =
      chase::RunChase(symbols, w.tgds, w.database, options);
  chase::ChaseResult simplified =
      chase::RunChase(symbols, *simple_tgds, simple_db, options);

  bool fin_match = original.Terminated() == simplified.Terminated();
  bool depth_match = !original.Terminated() ||
                     original.stats.max_depth == simplified.stats.max_depth;
  table->AddRow(
      {label, std::to_string(w.tgds.size()),
       std::to_string(simple_tgds->size()),
       original.Terminated() ? "finite" : "infinite",
       simplified.Terminated() ? "finite" : "infinite",
       std::to_string(original.stats.max_depth),
       std::to_string(simplified.stats.max_depth),
       fin_match && depth_match ? "yes" : "NO"});
}

void Run() {
  bench::PrintHeader(
      "E6 bench_simplification (Proposition 7.3)",
      "simple(.) preserves chase finiteness and maxdepth for linear "
      "TGDs");

  util::Table table("simplification preservation",
                    {"workload", "|Sigma|", "|simple(Sigma)|", "chase",
                     "chase(simple)", "maxdepth", "maxdepth(simple)",
                     "preserved"});

  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeExample71(&symbols);
    AddRow(&table, "example-7.1", &symbols, w);
  }
  for (std::uint32_t m : {1u, 2u, 3u}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeLinearLowerBound(&symbols, 1, 1, m);
    AddRow(&table, "thm7.6(1,1," + std::to_string(m) + ")", &symbols, w);
  }
  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeInfinitePath(&symbols);
    AddRow(&table, "infinite-path", &symbols, w);
  }
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kLinear;
    workload::Workload w =
        workload::MakeRandomWorkload(&symbols, options);
    AddRow(&table, "random-l-" + std::to_string(seed), &symbols, w);
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
