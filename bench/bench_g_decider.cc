// E10 — Theorem 8.5: ChTrm(G) is 2EXPTIME-complete in general,
// EXPTIME-complete for bounded arity, and PTIME-complete in data
// complexity. The decider constructs gsimple(D) and gsimple(Σ) and runs
// the (NL ⊆ PTIME) ChTrm(SL) procedure on them. The tables contrast it
// with the naive chase-based decider: on growing databases with a fixed
// ontology both are polynomial, but the syntactic decider never
// materializes the chase; on ontologies whose chase explodes, the
// syntactic decider answers while the naive one times out.
#include "bench/bench_util.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

// Fixed guarded ontology for the data-complexity sweep. The Track cycle
// is only supported when some fact reaches the Track predicate.
const char* kOntology =
    "Emp(e, d), Dept(d) -> Mgr(d, m).\n"
    "Mgr(d, m) -> Emp(m, d).\n"
    "Emp(e, d) -> Dept(d).\n"
    "Track(x, y) -> Track(y, z).\n";

void DataComplexity() {
  util::Table table(
      "data complexity: fixed guarded Sigma, growing D",
      {"|D|", "poisoned", "gsimple(s)", "types", "naive(s)", "decision",
       "agree"});

  for (bool poisoned : {false, true}) {
    for (std::uint64_t size : {10u, 100u, 1000u}) {
      core::SymbolTable symbols;
      auto tgds = tgd::ParseTgdSet(&symbols, kOntology);
      if (!tgds.ok()) return;
      core::Database db;
      for (std::uint64_t i = 0; i < size; ++i) {
        (void)db.AddFact(&symbols, "Emp",
                         {"e" + std::to_string(i),
                          "d" + std::to_string(i % 7)});
      }
      if (poisoned) {
        (void)db.AddFact(&symbols, "Track", {"e0", "e1"});
      }

      bench::Stopwatch syn_timer;
      auto syn = termination::DecideGuarded(&symbols, *tgds, db);
      double syn_s = syn_timer.Seconds();
      if (!syn.ok()) continue;

      bench::Stopwatch naive_timer;
      termination::NaiveDecision naive = termination::DecideByChase(
          &symbols, *tgds, db, 500'000);
      double naive_s = naive_timer.Seconds();

      // The naive decider cannot certify guarded non-termination: f_G
      // overflows any usable budget, so it reports kUnknown after its
      // hard cap — exactly the gap Theorem 8.5's procedure closes.
      std::string agree =
          naive.decision == termination::Decision::kUnknown
              ? "n/a (naive budget)"
              : (naive.decision == syn->decision ? "yes" : "NO");
      table.AddRow({std::to_string(size), poisoned ? "yes" : "no",
                    bench::FormatSeconds(syn_s),
                    std::to_string(syn->lin_types),
                    bench::FormatSeconds(naive_s),
                    termination::DecisionName(syn->decision), agree});
    }
  }
  bench::PrintTable(table);
}

void CombinedComplexity() {
  util::Table table(
      "combined complexity: Theorem 8.4 family (chase is huge; the "
      "decider must not build it)",
      {"ell,n,m", "gsimple(s)", "types", "|gsimple(Sigma)|", "decision",
       "naive(s)", "naive decision"});
  struct P {
    std::uint64_t ell;
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 1, 1}, P{4, 1, 1}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeGuardedLowerBound(&symbols, p.ell, p.n, p.m);

    bench::Stopwatch syn_timer;
    rewrite::LinearizeOptions options;
    options.max_types = 100'000;
    auto syn = termination::DecideGuarded(&symbols, w.tgds, w.database,
                                          options);
    double syn_s = syn_timer.Seconds();

    bench::Stopwatch naive_timer;
    termination::NaiveDecision naive = termination::DecideByChase(
        &symbols, w.tgds, w.database, 500'000);
    double naive_s = naive_timer.Seconds();

    table.AddRow(
        {std::to_string(p.ell) + "," + std::to_string(p.n) + "," +
             std::to_string(p.m),
         bench::FormatSeconds(syn_s),
         syn.ok() ? std::to_string(syn->lin_types) : "-",
         syn.ok() ? std::to_string(syn->simple_tgds) : "-",
         syn.ok() ? termination::DecisionName(syn->decision)
                  : syn.status().ToString(),
         bench::FormatSeconds(naive_s),
         termination::DecisionName(naive.decision)});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::bench::PrintHeader(
      "E10 bench_g_decider (Theorem 8.5)",
      "ChTrm(G): 2EXPTIME-complete combined, PTIME-complete data; "
      "decided via gsimple(.) + ChTrm(SL)");
  nuchase::DataComplexity();
  nuchase::CombinedComplexity();
  return 0;
}
