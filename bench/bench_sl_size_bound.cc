// E3 — Theorem 6.4 + Lemma 6.2: for Σ ∈ SL, Σ ∈ CT_D iff Σ is
// D-weakly-acyclic; then |chase(D,Σ)| ≤ |D| · f_SL(Σ) and
// maxdepth(D,Σ) ≤ d_SL(Σ).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "termination/bounds.h"
#include "termination/syntactic_decider.h"
#include "workload/depth_family.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

void AddRow(util::Table* table, const std::string& label,
            core::SymbolTable* symbols, const workload::Workload& w) {
  auto decision =
      termination::DecideSimpleLinear(symbols, w.tgds, w.database);
  if (!decision.ok()) return;
  bool wa = decision->decision == termination::Decision::kTerminates;

  double depth_bound = termination::DepthBoundSL(w.tgds, *symbols);
  chase::ChaseOptions options;
  options.max_atoms = 2'000'000;
  // Lemma 6.2 makes the depth bound a termination certificate: cut the
  // chase as soon as it is exceeded instead of materializing millions of
  // atoms.
  options.max_depth = static_cast<std::uint32_t>(depth_bound);
  chase::ChaseResult result =
      chase::RunChase(symbols, w.tgds, w.database, options);
  double size_bound = static_cast<double>(w.database.size()) *
                      termination::SizeFactorSL(w.tgds, *symbols);
  bool ok = result.Terminated() == wa &&
            (!result.Terminated() ||
             (result.stats.max_depth <= depth_bound &&
              static_cast<double>(result.instance.size()) <= size_bound));
  table->AddRow({label, wa ? "WA" : "not-WA",
                 result.Terminated() ? "finite" : "infinite",
                 std::to_string(result.instance.size()),
                 util::FormatCount(size_bound),
                 std::to_string(result.stats.max_depth),
                 util::FormatCount(depth_bound), ok ? "yes" : "NO"});
}

void Run() {
  bench::PrintHeader(
      "E3 bench_sl_size_bound (Theorem 6.4, Lemma 6.2)",
      "WA(D) <=> finite; |chase| <= |D|*f_SL(Sigma); "
      "maxdepth <= d_SL(Sigma)");

  util::Table table("Theorem 6.4 characterization",
                    {"workload", "syntactic", "chase", "|chase|",
                     "|D|*f_SL", "maxdepth", "d_SL", "consistent"});

  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeSlLowerBound(&symbols, 2, 2, 2);
    AddRow(&table, "thm6.5(2,2,2)", &symbols, w);
  }
  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeSlLowerBound(&symbols, 1, 2, 3);
    AddRow(&table, "thm6.5(1,2,3)", &symbols, w);
  }
  {
    core::SymbolTable symbols;
    workload::Workload w = workload::MakeInfinitePath(&symbols);
    AddRow(&table, "infinite-path", &symbols, w);
  }
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kSimpleLinear;
    workload::Workload w =
        workload::MakeRandomWorkload(&symbols, options);
    AddRow(&table, "random-sl-" + std::to_string(seed), &symbols, w);
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
