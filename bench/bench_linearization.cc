// E9 — Proposition 8.1: linearization preserves the finiteness of the
// chase and the maximal term depth:
//   Σ ∈ CT_D  iff  lin(Σ) ∈ CT_lin(D), and
//   maxdepth(D, Σ) = maxdepth(lin(D), lin(Σ)).
// The table chases both sides of the equivalence on guarded workloads
// and also reports the size of the reachable lin(Σ) fragment (Σ-types).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "rewrite/linearize.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"
#include "workload/random_tgds.h"

namespace nuchase {
namespace {

void AddRow(util::Table* table, const std::string& label,
            core::SymbolTable* symbols, const workload::Workload& w) {
  rewrite::LinearizeOptions lin_options;
  auto lin = rewrite::Linearize(w.database, w.tgds, symbols, lin_options);
  if (!lin.ok()) {
    table->AddRow({label, std::to_string(w.tgds.size()), "-", "-", "-",
                   "-", "-", "-", "skipped: " + lin.status().ToString()});
    return;
  }

  chase::ChaseOptions options;
  options.max_atoms = 200000;
  chase::ChaseResult original =
      chase::RunChase(symbols, w.tgds, w.database, options);
  chase::ChaseResult linearized =
      chase::RunChase(symbols, lin->tgds, lin->database, options);

  bool fin_match = original.Terminated() == linearized.Terminated();
  bool depth_match =
      !original.Terminated() ||
      original.stats.max_depth == linearized.stats.max_depth;
  table->AddRow({label, std::to_string(w.tgds.size()),
                 std::to_string(lin->num_types),
                 std::to_string(lin->tgds.size()),
                 original.Terminated() ? "finite" : "infinite",
                 linearized.Terminated() ? "finite" : "infinite",
                 std::to_string(original.stats.max_depth),
                 std::to_string(linearized.stats.max_depth),
                 fin_match && depth_match ? "yes" : "NO"});
}

void Run() {
  bench::PrintHeader(
      "E9 bench_linearization (Proposition 8.1)",
      "lin(.) preserves chase finiteness and maxdepth for guarded TGDs");

  util::Table table("linearization preservation",
                    {"workload", "|Sigma|", "types", "|lin(Sigma)|",
                     "chase", "chase(lin)", "maxdepth", "maxdepth(lin)",
                     "preserved"});

  // Hand-written guarded pairs: one terminating, one not.
  {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols,
                               "G(a, b). H(b).\n"
                               "G(x, y), H(y) -> K(x, y, z).\n"
                               "K(x, y, z) -> H(z).\n");
    if (p.ok()) {
      AddRow(&table, "guarded-finite", &symbols,
             {"guarded-finite", p->tgds, p->database});
    }
  }
  {
    core::SymbolTable symbols;
    auto p = tgd::ParseProgram(&symbols,
                               "G(a, b). H(b).\n"
                               "G(x, y), H(y) -> K(x, y, z).\n"
                               "K(x, y, z) -> G(y, z), H(z).\n");
    if (p.ok()) {
      AddRow(&table, "guarded-infinite", &symbols,
             {"guarded-infinite", p->tgds, p->database});
    }
  }
  // The Theorem 8.4 counter (small slice: the lin fragment explodes fast).
  {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeGuardedLowerBound(&symbols, 1, 1, 1);
    AddRow(&table, "thm8.4(1,1,1)", &symbols, w);
  }
  // Random guarded workloads.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    core::SymbolTable symbols;
    workload::RandomTgdOptions options;
    options.seed = seed;
    options.target = tgd::TgdClass::kGuarded;
    workload::Workload w = workload::MakeRandomWorkload(&symbols, options);
    AddRow(&table, "random-g-" + std::to_string(seed), &symbols, w);
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
