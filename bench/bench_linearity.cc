// E11 — the headline size result (Theorems 6.4 / 7.5 / 8.3, item 2):
// whenever chase(D, Σ) is finite for Σ in SL / L / G, its size is at
// most |D| · f_C(Σ) — LINEAR in the database, with a constant depending
// only on the ontology. The table fixes one ontology per class, sweeps
// |D|, and reports the measured ratio |chase| / |D|, which must stay
// flat (and far below the worst-case factor f_C(Σ)).
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "termination/bounds.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

namespace nuchase {
namespace {

struct Scenario {
  const char* label;
  const char* rules;
  // Emits the i-th seed fact into the database.
  void (*seed)(core::SymbolTable*, core::Database*, std::uint64_t);
};

void SeedSl(core::SymbolTable* symbols, core::Database* db,
            std::uint64_t i) {
  (void)db->AddFact(symbols, "A",
                    {"c" + std::to_string(i), "d" + std::to_string(i)});
}

void SeedL(core::SymbolTable* symbols, core::Database* db,
           std::uint64_t i) {
  (void)db->AddFact(symbols, "R",
                    {"c" + std::to_string(i), "c" + std::to_string(i)});
}

void SeedG(core::SymbolTable* symbols, core::Database* db,
           std::uint64_t i) {
  (void)db->AddFact(symbols, "Emp",
                    {"e" + std::to_string(i),
                     "d" + std::to_string(i % 5)});
}

const Scenario kScenarios[] = {
    {"SL", "A(x, y) -> B(y, z). B(x, y) -> C(x). C(x) -> D(x, w).",
     SeedSl},
    {"L",
     "R(x, x) -> S(x, z). S(x, y) -> T(y, x). T(x, y) -> U(x).",
     SeedL},
    {"G",
     "Emp(e, d) -> Dept(d). Emp(e, d), Dept(d) -> Mgr(d, m). "
     "Mgr(d, m) -> Emp(m, d).",
     SeedG},
};

void Run() {
  bench::PrintHeader(
      "E11 bench_linearity (Theorems 6.4 / 7.5 / 8.3, item 2)",
      "|chase(D, Sigma)| <= |D| * f_C(Sigma): linear in |D| with an "
      "ontology-only constant");

  for (const Scenario& s : kScenarios) {
    util::Table table(
        std::string("class ") + s.label + ": " + s.rules,
        {"|D|", "|chase|", "ratio |chase|/|D|", "maxdepth",
         "d_C(Sigma)", "seconds"});
    for (std::uint64_t size : {10u, 100u, 1000u, 10000u, 100000u}) {
      core::SymbolTable symbols;
      auto tgds = tgd::ParseTgdSet(&symbols, s.rules);
      if (!tgds.ok()) {
        std::fprintf(stderr, "parse: %s\n",
                     tgds.status().ToString().c_str());
        return;
      }
      core::Database db;
      for (std::uint64_t i = 0; i < size; ++i) {
        s.seed(&symbols, &db, i);
      }
      bench::Stopwatch timer;
      chase::ChaseOptions options;
      options.max_atoms = 10'000'000;
      chase::ChaseResult result =
          chase::RunChase(&symbols, *tgds, db, options);
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.3f",
                    static_cast<double>(result.instance.size()) /
                        static_cast<double>(db.size()));
      table.AddRow(
          {std::to_string(db.size()),
           std::to_string(result.instance.size()), ratio,
           std::to_string(result.stats.max_depth),
           util::FormatCount(termination::DepthBound(
               tgd::Classify(*tgds), *tgds, symbols)),
           timer.Formatted()});
    }
    bench::PrintTable(table);
  }
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
