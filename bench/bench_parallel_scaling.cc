// P1 — within-round parallel trigger evaluation: wall-clock scaling of
// the worker-pool engine (ChaseOptions::num_threads) on the wide depth
// family, the recursive workload whose rounds are wide enough to shard.
// Every thread count materializes the byte-identical instance with the
// identical deterministic counters (join_probes, arena_bytes); only
// seconds differ. The `cores` column records what the machine can
// actually run in parallel — tools/check_bench_regression gates the
// speedup only on rows the hardware can honour (threads <= cores), so
// the bench is meaningful (and the gate quiet) on starved CI runners —
// and the `parallel_rounds` / `parallel_apply` / `parallel_commit`
// columns are the clock-free engagement proofs the gate checks
// everywhere: a threads>=2 row with any at 0 means the collect
// (respectively apply, per-segment commit) phase silently fell back
// to the sequential code, which byte-identity alone can never reveal. The insert-heavy workload
// (noise=1: minimal join work per seed) isolates the apply phase —
// null binding, candidate construction, sharded dedup — the way the
// wide family isolates collect.
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "workload/depth_family.h"

namespace nuchase {
namespace {

struct Measurement {
  double seconds = 0;
  std::string sorted;
  chase::ChaseStats stats;
  std::uint64_t atoms = 0;
};

/// One chase of the given workload at the given worker count, on a
/// fresh generation (nulls are interned in the symbol table, so cells
/// must not share one).
template <typename MakeWorkload>
Measurement RunCell(const MakeWorkload& make_workload,
                    std::uint32_t threads) {
  core::SymbolTable symbols;
  workload::Workload w = make_workload(&symbols);
  chase::ChaseOptions options;
  options.max_atoms = 5'000'000;
  options.num_threads = threads;
  bench::Stopwatch timer;
  chase::ChaseResult r =
      chase::RunChase(&symbols, w.tgds, w.database, options);
  Measurement m;
  m.seconds = timer.Seconds();
  m.sorted = r.instance.ToSortedString(symbols);
  m.stats = r.stats;
  m.atoms = r.instance.size();
  return m;
}

template <typename MakeWorkload>
void RunScaling(const std::string& workload_name,
                const MakeWorkload& make_workload, util::Table* table) {
  const unsigned cores = std::thread::hardware_concurrency();
  Measurement reference;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    Measurement m = RunCell(make_workload, threads);
    if (threads == 1) reference = m;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2f",
                  m.seconds > 0 ? reference.seconds / m.seconds : 0.0);
    table->AddRow({workload_name, std::to_string(threads),
                   std::to_string(cores), bench::FormatSeconds(m.seconds),
                   speedup, std::to_string(m.stats.join_probes),
                   std::to_string(m.atoms),
                   std::to_string(m.stats.arena_bytes),
                   std::to_string(m.stats.parallel_rounds),
                   std::to_string(m.stats.parallel_apply_batches),
                   std::to_string(m.stats.parallel_commit_batches),
                   m.sorted == reference.sorted &&
                           m.stats.join_probes ==
                               reference.stats.join_probes
                       ? "yes"
                       : "NO"});
  }
}

void Run() {
  bench::PrintHeader(
      "P1 bench_parallel_scaling (within-round parallelism)",
      "sharding each round's delta across N workers cuts wall-clock "
      "while keeping the instance and every deterministic counter "
      "byte-identical");

  util::Table table("parallel scaling",
                    {"workload", "threads", "cores", "chase(s)",
                     "speedup", "join_probes", "atoms", "arena_bytes",
                     "parallel_rounds", "parallel_apply",
                     "parallel_commit", "same result"});
  // The headline row family: wide rounds (width x payloads delta atoms
  // per round), per-seed join work `noise` deep, 80 recursive layers.
  // payloads >> noise keeps |D| (inserted serially inside the timed
  // run) small relative to the parallel collect work.
  RunScaling("depth-family-wide",
             [](core::SymbolTable* symbols) {
               return workload::MakeWideDepthFamily(
                   symbols, /*layers=*/80, /*width=*/32,
                   /*payloads=*/24, /*noise=*/16);
             },
             &table);
  // The insert-heavy complement: noise=1 strips the per-seed join work
  // to its minimum, so the run is dominated by the apply phase — null
  // binding, head-candidate construction and the sharded dedup probes.
  // This is the row that exercises the parallel apply stages (the
  // `parallel_apply` and `parallel_commit` columns prove the probe and
  // per-segment commit stages engaged) rather than the parallel
  // collect.
  RunScaling("insert-heavy",
             [](core::SymbolTable* symbols) {
               return workload::MakeWideDepthFamily(
                   symbols, /*layers=*/40, /*width=*/48,
                   /*payloads=*/64, /*noise=*/1);
             },
             &table);
  // The narrow chain of Proposition 4.5: one delta atom per round, so
  // there is nothing to shard — the honest lower bound of the design
  // (speedup ~1.0, never below the pool's bounded overhead).
  RunScaling("depth-family-narrow",
             [](core::SymbolTable* symbols) {
               return workload::MakeDepthFamily(symbols, 512);
             },
             &table);
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::Run();
  return 0;
}
