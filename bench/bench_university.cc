// A3 (realistic workload) — the OBDA story of Section 1 measured on
// LUBM-flavoured data: a fixed guarded ontology over registrar records.
// Materialization cost and size stay linear in the data (Theorem 8.3
// item 2 in practice), the syntactic decider's cost is polynomial in
// |D| alone (Theorem 8.5's PTIME data complexity; lin(D) computes one
// type per fact, which is quadratic-ish in our implementation), and a
// single dangerous fact flips the verdict.
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "termination/syntactic_decider.h"
#include "workload/university.h"

namespace nuchase {
namespace {

void Materialization() {
  util::Table table("materialization at scale (terminating ontology)",
                    {"students", "|D|", "|chase|", "ratio", "maxdepth",
                     "chase(s)", "decide(s)"});
  for (std::uint32_t students : {50u, 200u, 800u, 3200u}) {
    core::SymbolTable symbols;
    workload::UniversityOptions options;
    options.departments = 8;
    options.students_per_department = students / 8;
    workload::Workload w =
        workload::MakeUniversityWorkload(&symbols, options);

    bench::Stopwatch decide_timer;
    auto d = termination::Decide(&symbols, w.tgds, w.database);
    double decide_s = decide_timer.Seconds();
    if (!d.ok() || d->decision != termination::Decision::kTerminates) {
      continue;
    }

    bench::Stopwatch chase_timer;
    chase::ChaseResult r = chase::RunChase(&symbols, w.tgds, w.database);
    double chase_s = chase_timer.Seconds();
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  static_cast<double>(r.instance.size()) /
                      static_cast<double>(w.database.size()));
    table.AddRow({std::to_string(students),
                  std::to_string(w.database.size()),
                  std::to_string(r.instance.size()), ratio,
                  std::to_string(r.stats.max_depth),
                  bench::FormatSeconds(chase_s),
                  bench::FormatSeconds(decide_s)});
  }
  bench::PrintTable(table);
}

void NonUniformBoundary() {
  util::Table table(
      "the non-uniform boundary: review rule + k UnderReview facts",
      {"k", "decision", "decide(s)"});
  for (std::uint32_t k : {0u, 1u, 10u}) {
    core::SymbolTable symbols;
    workload::UniversityOptions options;
    options.include_review_rule = true;
    options.under_review = k;
    workload::Workload w =
        workload::MakeUniversityWorkload(&symbols, options);
    bench::Stopwatch timer;
    auto d = termination::Decide(&symbols, w.tgds, w.database);
    table.AddRow({std::to_string(k),
                  d.ok() ? termination::DecisionName(d->decision)
                         : d.status().ToString(),
                  timer.Formatted()});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::bench::PrintHeader(
      "A3 bench_university (Section 1's OBDA scenario on LUBM-style "
      "data)",
      "linear materialization, polynomial-data decision, one fact flips "
      "the verdict");
  nuchase::Materialization();
  nuchase::NonUniformBoundary();
  return 0;
}
