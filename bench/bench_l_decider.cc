// E7 — Theorem 7.7: ChTrm(L) is PSPACE-complete (NL for bounded arity)
// and in AC0 in data complexity; the naive procedure is 2EXPTIME. The
// tables compare the naive chase, the simplification+WA decider, and
// the precomputed-UCQ evaluation.
#include "bench/bench_util.h"
#include "query/evaluator.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

void CombinedComplexity() {
  util::Table table(
      "combined complexity: Theorem 7.6 family (ell=1)",
      {"n,m", "|chase|", "naive(s)", "simplify+WA(s)", "agree"});
  struct P {
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 1}, P{2, 1}, P{1, 2}, P{2, 2}, P{1, 3},
                     P{2, 3}, P{1, 4}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeLinearLowerBound(&symbols, 1, p.n, p.m);

    bench::Stopwatch naive_timer;
    termination::NaiveDecision naive = termination::DecideByChase(
        &symbols, w.tgds, w.database, 5'000'000);
    double naive_s = naive_timer.Seconds();

    auto syntactic =
        termination::DecideLinear(&symbols, w.tgds, w.database);
    if (!syntactic.ok()) continue;

    table.AddRow({std::to_string(p.n) + "," + std::to_string(p.m),
                  std::to_string(naive.atoms),
                  bench::FormatSeconds(naive_s),
                  bench::FormatSeconds(syntactic->seconds),
                  naive.decision == syntactic->decision ? "yes" : "NO"});
  }
  bench::PrintTable(table);
}

void DataComplexity() {
  util::Table table(
      "data complexity: fixed linear Sigma, growing D",
      {"|D|", "ucq-eval(s)", "simplify+WA(s)", "decision"});

  // Only the diagonal pattern S(x,x) feeds the cycle (Theorem 7.7's UCQ
  // uses repeated variables to express exactly that).
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols,
                               "S(x, x) -> S(z, z).\n"
                               "S(x, y) -> Seen(x).\n");
  if (!tgds.ok()) return;
  auto ucq = termination::BuildTerminationUcq(&symbols, *tgds);
  if (!ucq.ok()) return;

  for (bool diagonal : {false, true}) {
    for (std::uint64_t size : {1000u, 10000u, 100000u}) {
      core::Database db;
      for (std::uint64_t i = 0; i + 1 < size; ++i) {
        (void)db.AddFact(&symbols, "S",
                         {"u" + std::to_string(i),
                          "u" + std::to_string(i + 1)});
      }
      if (diagonal) {
        (void)db.AddFact(&symbols, "S", {"uX", "uX"});
      } else {
        (void)db.AddFact(&symbols, "S", {"uX", "uY"});
      }

      bench::Stopwatch ucq_timer;
      bool satisfied = query::Satisfies(db, *ucq);
      double ucq_s = ucq_timer.Seconds();

      bench::Stopwatch wa_timer;
      auto syntactic = termination::DecideLinear(&symbols, *tgds, db);
      double wa_s = wa_timer.Seconds();
      if (!syntactic.ok()) continue;

      table.AddRow({std::to_string(size) + (diagonal ? "+diag" : ""),
                    bench::FormatSeconds(ucq_s),
                    bench::FormatSeconds(wa_s),
                    satisfied ? "does-not-terminate" : "terminates"});
    }
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::bench::PrintHeader(
      "E7 bench_l_decider (Theorem 7.7)",
      "ChTrm(L): PSPACE-complete combined, AC0 data; naive chase is "
      "2EXPTIME-ish in the arity");
  nuchase::CombinedComplexity();
  nuchase::DataComplexity();
  return 0;
}
