// E4 + E14 — Theorem 6.6: ChTrm(SL) is NL-complete (combined) and in
// AC0 in data complexity. The naive chase-based procedure is EXPTIME;
// the tables show the crossover: CheckWA and the UCQ evaluation stay
// flat while the naive decider's cost tracks the (exponential) chase
// size.
#include "bench/bench_util.h"
#include "query/evaluator.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"
#include "tgd/parser.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace {

void CombinedComplexity() {
  util::Table table(
      "combined complexity: growing Sigma (Theorem 6.5 family, ell=1)",
      {"n,m", "|chase|", "naive(s)", "checkwa(s)", "agree"});
  struct P {
    std::uint32_t n, m;
  };
  for (const P& p : {P{1, 2}, P{2, 2}, P{3, 2}, P{1, 3}, P{2, 3},
                     P{1, 4}, P{2, 4}}) {
    core::SymbolTable symbols;
    workload::Workload w =
        workload::MakeSlLowerBound(&symbols, 1, p.n, p.m);

    bench::Stopwatch naive_timer;
    termination::NaiveDecision naive = termination::DecideByChase(
        &symbols, w.tgds, w.database, 5'000'000);
    double naive_s = naive_timer.Seconds();

    bench::Stopwatch wa_timer;
    auto syntactic =
        termination::DecideSimpleLinear(&symbols, w.tgds, w.database);
    double wa_s = wa_timer.Seconds();
    if (!syntactic.ok()) continue;

    table.AddRow({std::to_string(p.n) + "," + std::to_string(p.m),
                  std::to_string(naive.atoms),
                  bench::FormatSeconds(naive_s),
                  bench::FormatSeconds(wa_s),
                  naive.decision == syntactic->decision ? "yes" : "NO"});
  }
  bench::PrintTable(table);
}

void DataComplexity() {
  util::Table table(
      "data complexity: fixed Sigma, growing D (UCQ precomputed once)",
      {"|D|", "ucq-eval(s)", "checkwa(s)", "naive(s)", "decision",
       "all agree"});

  // Fixed SL ontology with one supported cycle; databases either feed it
  // or not.
  core::SymbolTable symbols;
  auto tgds = tgd::ParseTgdSet(&symbols,
                               "Follows(x, y) -> Follows(y, z).\n"
                               "Likes(x, y) -> Seen(y).\n");
  if (!tgds.ok()) return;
  auto ucq = termination::BuildTerminationUcq(&symbols, *tgds);
  if (!ucq.ok()) return;

  for (std::uint64_t size : {100u, 1000u, 10000u, 100000u}) {
    core::Database db;
    // Mostly harmless Likes-facts plus one Follows-fact (supports the
    // cycle).
    for (std::uint64_t i = 0; i + 1 < size; ++i) {
      (void)db.AddFact(&symbols, "Likes",
                       {"u" + std::to_string(i),
                        "u" + std::to_string(i + 1)});
    }
    (void)db.AddFact(&symbols, "Follows", {"u0", "u1"});

    bench::Stopwatch ucq_timer;
    bool satisfied = query::Satisfies(db, *ucq);
    double ucq_s = ucq_timer.Seconds();

    bench::Stopwatch wa_timer;
    auto syntactic =
        termination::DecideSimpleLinear(&symbols, *tgds, db);
    double wa_s = wa_timer.Seconds();

    bench::Stopwatch naive_timer;
    termination::NaiveDecision naive =
        termination::DecideByChase(&symbols, *tgds, db, 5'000'000);
    double naive_s = naive_timer.Seconds();

    if (!syntactic.ok()) continue;
    termination::Decision ucq_decision =
        satisfied ? termination::Decision::kDoesNotTerminate
                  : termination::Decision::kTerminates;
    bool agree = ucq_decision == syntactic->decision &&
                 ucq_decision == naive.decision;
    table.AddRow(
        {std::to_string(size), bench::FormatSeconds(ucq_s),
         bench::FormatSeconds(wa_s), bench::FormatSeconds(naive_s),
         termination::DecisionName(ucq_decision), agree ? "yes" : "NO"});
  }
  bench::PrintTable(table);
}

}  // namespace
}  // namespace nuchase

int main() {
  nuchase::bench::PrintHeader(
      "E4/E14 bench_sl_decider (Theorem 6.6)",
      "ChTrm(SL): NL-complete combined, AC0 data; naive chase is "
      "EXPTIME-ish in ||Sigma||");
  nuchase::CombinedComplexity();
  nuchase::DataComplexity();
  return 0;
}
