// OBDA materialization advisor — the Section 1 use case, on the facade.
//
// Ontology-based data access wants to answer queries over a database D
// *enriched* by an ontology Sigma. The cheapest strategy is
// materialization: replace D by chase(D, Sigma) and use a plain RDBMS.
// That is only sound when the chase terminates, and only affordable when
// its size is predictable. This example shows the advisor making both
// calls for a medical-records ontology, non-uniformly: the same ontology
// is accepted for one hospital's data and rejected for another's.
//
//   ./build/examples/obda_advisor
#include <cstdio>
#include <iostream>

#include "nuchase/nuchase.h"
#include "query/certain.h"

using namespace nuchase;

namespace {

// A guarded ontology in the EL style the paper's introduction cites:
// findings imply examinations, examinations have responsible physicians,
// physicians are staff, and a staffed assignment yields a consult (the
// one multi-atom, guarded rule). The chain Finding -> Exam -> ... never
// re-enters Finding, so the chase terminates on data that stays in the
// lower strata. One rule makes the ontology dangerous: a follow-up
// of an exam is again an exam *of a new patient episode* — applied to a
// database that contains follow-up seeds, it spins forever.
const char* kOntology =
    "Finding(p, f) -> Exam(p, e), About(e, f).\n"
    "Exam(p, e) -> Physician(e, d).\n"
    "Physician(e, d) -> Staff(d).\n"
    "Exam(p, e) -> Assigned(p, e, d).\n"
    "Assigned(p, e, d), Staff(d) -> Consult(p, d).\n"
    "FollowUp(e) -> Episode(e, p2), FollowUp(p2).\n";

void Report(const char* hospital,
            const util::StatusOr<api::AdviseResult>& result) {
  std::cout << "--- " << hospital << " ---\n";
  if (!result.ok()) {
    std::cout << "advisor error: " << result.status().ToString() << "\n";
    return;
  }
  const termination::AdvisorReport& report = result->report();
  std::cout << "class " << tgd::TgdClassName(report.tgd_class)
            << ", decision " << termination::DecisionName(report.decision)
            << " via " << report.method << "\n";
  std::printf("guaranteed |chase| <= %.4g, maxdepth <= %.4g\n",
              report.size_bound, report.depth_bound);
  if (result->has_materialization()) {
    const chase::ChaseResult& m = *report.materialization;
    std::cout << "materialized " << m.instance.size() << " atoms (maxdepth "
              << m.stats.max_depth << ") -> safe to hand to an RDBMS\n";
  } else {
    std::cout << "no materialization: fall back to query rewriting\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // Hospital A's extract mentions findings only: the dangerous FollowUp
  // predicate never receives data, so the chase terminates. This is
  // exactly the non-uniform phenomenon: Sigma alone is *not* uniformly
  // terminating, yet Sigma in CT_D for this D.
  {
    auto program = api::Program::Parse(
        std::string(kOntology) + "Finding(ann, fracture).\n"
                                 "Finding(bea, asthma).\n"
                                 "Finding(carl, fracture).\n");
    if (!program.ok()) {
      std::cerr << program.status().ToString() << "\n";
      return 1;
    }
    api::Session session(*program);
    Report("Hospital A (findings only)", session.Advise());

    // The payoff: ontological query answering over the materialization.
    // "Which patients certainly have an examination?" — no Exam fact is
    // stored; all three answers are inferred. The query machinery
    // interns variables, so it runs on a session-private copy of the
    // program's frozen table.
    core::SymbolTable symbols = program->symbols();
    core::Term patient = symbols.InternVariable("qp");
    core::Term exam = symbols.InternVariable("qe");
    auto exam_pred = program->FindPredicate("Exam");
    if (exam_pred.ok()) {
      query::AnswerQuery q{{core::Atom(*exam_pred, {patient, exam})},
                           {patient}};
      auto answers = query::CertainAnswers(&symbols, program->tgds(),
                                           program->database(), q);
      if (answers.ok()) {
        std::cout << "certain answers to " << q.ToString(symbols) << ": ";
        for (const auto& tuple : *answers) {
          std::cout << symbols.TermToString(tuple[0]) << " ";
        }
        std::cout << "\n\n";
      }
    }
  }

  // Hospital B's extract seeds FollowUp: the chase diverges, and the
  // advisor proves it syntactically (gsimple(Sigma) has a
  // gsimple(D)-supported special cycle) without chasing at all.
  {
    auto program = api::Program::Parse(
        std::string(kOntology) + "Finding(dora, flu).\n"
                                 "FollowUp(visit1).\n");
    if (!program.ok()) {
      std::cerr << program.status().ToString() << "\n";
      return 1;
    }
    Report("Hospital B (has follow-up seeds)",
           api::Session(*program).Advise());
  }
  return 0;
}
