// A Turing machine inside the chase — Appendix A's undecidability gadget.
//
// ChTrm(TGD) is undecidable even in data complexity: there is one FIXED
// constant-free set of TGDs Sigma* such that, with D_M encoding a
// deterministic machine M's transition table and initial configuration,
// chase(D_M, Sigma*) is finite iff M halts on the empty input
// (Proposition 4.2). This example materializes the construction: it runs
// machines both directly and through the chase, and shows the two
// agreeing step for step. Each machine's (D_M, Sigma*) pair becomes an
// api::Program built from the workload generator's parts.
//
//   ./build/examples/turing_chase
#include <cstdio>
#include <iostream>

#include "nuchase/nuchase.h"
#include "tgd/classify.h"
#include "workload/turing.h"

using namespace nuchase;

namespace {

void RunMachine(const char* label, const workload::TuringMachine& tm,
                std::uint64_t atom_budget) {
  core::SymbolTable symbols;
  workload::Workload w =
      workload::MakeTuringWorkload(&symbols, tm, label);
  // Freeze the generated workload into an immutable Program.
  auto program = api::Program::Create(std::move(symbols), std::move(w.tgds),
                                      std::move(w.database));
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return;
  }

  std::optional<std::uint64_t> steps = workload::SimulateTm(tm, 10'000);
  std::cout << "--- " << label << " ---\n";
  std::cout << "direct simulation: "
            << (steps ? "halts after " + std::to_string(*steps) + " steps"
                      : "still running after 10000 steps")
            << "\n";

  api::Session session(
      *program, api::SessionOptions().set_max_atoms(atom_budget));
  auto r = session.Chase();
  if (!r.ok()) {
    std::cerr << "chase error: " << r.status().ToString() << "\n";
    return;
  }
  std::cout << "chase(D_M, Sigma*): "
            << chase::ChaseOutcomeName(r->outcome()) << " with "
            << r->instance().size() << " atoms (|D_M| = "
            << program->fact_count() << ", budget " << atom_budget << ")\n";
  if (steps && r->Terminated()) {
    std::cout << "  -> agreement: halting machine, finite chase\n";
  } else if (!steps && !r->Terminated()) {
    std::cout << "  -> agreement: looping machine, chase exceeds any "
                 "budget\n";
  } else {
    std::cout << "  -> MISMATCH (budget too small?)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  core::SymbolTable symbols;
  tgd::TgdSet sigma_star = workload::MakeTuringTgds(&symbols);
  std::cout << "Sigma* is a fixed set of " << sigma_star.size()
            << " constant-free TGDs (class "
            << tgd::TgdClassName(tgd::Classify(sigma_star))
            << " -- far from guarded, as Proposition 4.2 requires):\n"
            << sigma_star.ToString(symbols) << "\n";

  RunMachine("writer-3 (writes 3 marks, halts)",
             workload::MakeHaltingTm(3), 200'000);
  RunMachine("writer-6 (writes 6 marks, halts)",
             workload::MakeHaltingTm(6), 400'000);
  RunMachine("zig-zag (halts after revisiting)",
             workload::MakeZigZagTm(), 200'000);
  RunMachine("right-walker (never halts)",
             workload::MakeLoopingTm(), 100'000);
  RunMachine("spinner (never halts)",
             workload::MakeSpinningTm(), 100'000);

  std::cout << "Because one fixed Sigma* separates halting from looping\n"
               "machines through the *database alone*, no computable\n"
               "function of D can bound |chase(D, Sigma*)| (Prop. 4.2) --\n"
               "the guarded classes' |D|-linear bounds are a real\n"
               "structural property, not a generic fact about TGDs.\n";
  return 0;
}
