// Data exchange with the semi-oblivious chase, on the facade.
//
// The chase was repurposed by Fagin et al. [14] to compute *universal
// solutions* for data-exchange settings: given a source database and
// source-to-target TGDs, chase the source and the result embeds
// homomorphically into every valid target instance. Weak-acyclicity is
// the classic uniform guarantee; this example contrasts it with the
// paper's non-uniform check, which certifies individual source instances
// even when the mapping is not uniformly terminating.
//
//   ./build/examples/data_exchange
#include <iostream>

#include "graph/weak_acyclicity.h"
#include "nuchase/nuchase.h"

using namespace nuchase;

int main() {
  // Source schema: Route(from, to), Hub(city).
  // Target schema: Flight(from, to, carrier), Serves(carrier, city).
  // The last mapping rule is recursive on the target: every partner city
  // has a further partner — this makes the mapping NOT uniformly
  // weakly-acyclic (the Partner self-cycle goes through an existential).
  const char* mapping_text =
      "Route(x, y) -> Flight(x, y, c), Serves(c, x).\n"
      "Hub(x), Route(x, y) -> Serves(c, x).\n"
      "Partner(u, v) -> Partner(v, w).\n";

  const char* source_text =
      "Route(edi, lhr).\n"
      "Route(lhr, jfk).\n"
      "Hub(lhr).\n";

  auto program =
      api::Program::Parse(std::string(mapping_text) + source_text);
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }

  // Uniform check (Fagin et al.): rejected — there is a special cycle.
  bool uniform = graph::IsUniformlyWeaklyAcyclic(program->tgds(),
                                                 program->symbols());
  std::cout << "uniformly weakly-acyclic: " << (uniform ? "yes" : "no")
            << "  (classic data-exchange tools would refuse this mapping)\n";

  // Non-uniform check (Definition 6.1): this source never touches
  // Partner, so the special cycle is not D-supported and the chase is
  // guaranteed finite for THIS source.
  graph::WeakAcyclicityResult wa = graph::CheckWeakAcyclicity(
      program->tgds(), program->database(), program->symbols());
  std::cout << "weakly-acyclic w.r.t. this source: "
            << (wa.weakly_acyclic ? "yes" : "no") << "\n\n";

  // Compute the universal solution through a session; the invented
  // witnesses (labelled nulls) live in the run, not in the program.
  auto solution = api::Session(*program).Chase();
  if (!solution.ok()) {
    std::cerr << "chase error: " << solution.status().ToString() << "\n";
    return 1;
  }
  std::cout << "universal solution (" << solution->instance().size()
            << " atoms, outcome "
            << chase::ChaseOutcomeName(solution->outcome()) << "):\n"
            << solution->ToSortedString() << "\n";

  // A poisoned source: one Partner fact supports the special cycle, and
  // the same mapping must now be rejected — before wasting any chase
  // work. (The paper's point: termination is a property of the *pair*
  // (D, Sigma).)
  auto poisoned = api::Program::Parse(std::string(mapping_text) +
                                      source_text + "Partner(lhr, ams).\n");
  if (!poisoned.ok()) {
    std::cerr << poisoned.status().ToString() << "\n";
    return 1;
  }
  graph::WeakAcyclicityResult wa2 = graph::CheckWeakAcyclicity(
      poisoned->tgds(), poisoned->database(), poisoned->symbols());
  std::cout << "with Partner(lhr, ams) added, weakly-acyclic: "
            << (wa2.weakly_acyclic ? "yes" : "no")
            << " -> reject materialization, no chase attempted\n";
  return 0;
}
