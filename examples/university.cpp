// University OBDA at scale — a realistic end-to-end walkthrough.
//
// A registrar database stores raw Reg(student, course, dept) records and
// staff lists; an EL-style guarded ontology derives enrollment, advising
// and teaching roles, inventing witnesses (advisors, taught courses)
// where the data is incomplete. The walkthrough: check termination
// syntactically, materialize, answer certain-answer queries, and show
// the same ontology rejected the moment the thesis-review rule meets a
// database that feeds it.
//
//   ./build/examples/university
#include <cstdio>
#include <iostream>

#include "chase/chase.h"
#include "query/certain.h"
#include "termination/advisor.h"
#include "workload/university.h"

using namespace nuchase;

int main() {
  // --- A mid-size university ------------------------------------------
  core::SymbolTable symbols;
  workload::UniversityOptions options;
  options.departments = 6;
  options.professors_per_department = 8;
  options.students_per_department = 120;
  options.courses_per_department = 12;
  workload::Workload uni =
      workload::MakeUniversityWorkload(&symbols, options);

  std::cout << "ontology: " << uni.tgds.size() << " guarded TGDs; data: "
            << uni.database.size() << " facts\n";

  auto report = termination::Advise(&symbols, uni.tgds, uni.database);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << "advisor: " << termination::DecisionName(report->decision)
            << " via " << report->method << "\n";
  if (!report->materialization.has_value()) return 1;
  const chase::ChaseResult& m = *report->materialization;
  std::printf("materialized %zu atoms from %zu facts (x%.2f), "
              "maxdepth %u\n\n",
              m.instance.size(), uni.database.size(),
              static_cast<double>(m.instance.size()) /
                  static_cast<double>(uni.database.size()),
              m.stats.max_depth);

  // --- Certain answers over the enriched data --------------------------
  // "Which students certainly have an advisor?" — HasAdvisor is never
  // stored; it follows from Student via an invented advisor.
  {
    core::Term s = symbols.InternVariable("qs");
    auto has_advisor = symbols.FindPredicate("HasAdvisor");
    query::AnswerQuery q{{core::Atom(*has_advisor, {s})}, {s}};
    auto answers =
        query::CertainAnswers(&symbols, uni.tgds, uni.database, q);
    if (answers.ok()) {
      std::cout << "students with a (certain) advisor: "
                << answers->size() << "\n";
    }
  }
  // "Which courses are certainly taught by someone?" — mixes stored
  // teaching with invented witnesses for enrolled-but-unstaffed courses.
  {
    core::Term c = symbols.InternVariable("qc");
    core::Term p = symbols.InternVariable("qp");
    auto taught_by = symbols.FindPredicate("TaughtBy");
    query::AnswerQuery q{{core::Atom(*taught_by, {c, p})}, {c}};
    auto answers =
        query::CertainAnswers(&symbols, uni.tgds, uni.database, q);
    if (answers.ok()) {
      std::cout << "courses certainly taught by someone: "
                << answers->size() << "\n\n";
    }
  }

  // --- The non-uniform boundary ----------------------------------------
  // Add the thesis-review rule. With no UnderReview facts the SAME
  // ontology still terminates on this data; with one seed it must be
  // rejected — and the advisor proves it without chasing.
  for (std::uint32_t seeds : {0u, 1u}) {
    core::SymbolTable symbols2;
    workload::UniversityOptions risky = options;
    risky.include_review_rule = true;
    risky.under_review = seeds;
    workload::Workload w =
        workload::MakeUniversityWorkload(&symbols2, risky);
    termination::AdvisorOptions aopt;
    aopt.materialize = false;
    auto r = termination::Advise(&symbols2, w.tgds, w.database, aopt);
    std::cout << "with review rule, " << seeds
              << " UnderReview fact(s): "
              << (r.ok() ? termination::DecisionName(r->decision)
                         : r.status().ToString())
              << "\n";
  }
  return 0;
}
