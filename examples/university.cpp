// University OBDA at scale — a realistic end-to-end walkthrough.
//
// A registrar database stores raw Reg(student, course, dept) records and
// staff lists; an EL-style guarded ontology derives enrollment, advising
// and teaching roles, inventing witnesses (advisors, taught courses)
// where the data is incomplete. The walkthrough: freeze the generated
// workload into an api::Program, check termination syntactically,
// materialize, answer certain-answer queries, and show the same
// ontology rejected the moment the thesis-review rule meets a database
// that feeds it.
//
//   ./build/examples/university
#include <cstdio>
#include <iostream>

#include "nuchase/nuchase.h"
#include "query/certain.h"
#include "workload/university.h"

using namespace nuchase;

int main() {
  // --- A mid-size university ------------------------------------------
  core::SymbolTable build_symbols;
  workload::UniversityOptions options;
  options.departments = 6;
  options.professors_per_department = 8;
  options.students_per_department = 120;
  options.courses_per_department = 12;
  workload::Workload uni =
      workload::MakeUniversityWorkload(&build_symbols, options);
  auto program = api::Program::Create(
      std::move(build_symbols), std::move(uni.tgds), std::move(uni.database));
  if (!program.ok()) {
    std::cerr << program.status().ToString() << "\n";
    return 1;
  }

  std::cout << "ontology: " << program->rule_count()
            << " guarded TGDs; data: " << program->fact_count()
            << " facts\n";

  auto advice = api::Session(*program).Advise();
  if (!advice.ok()) {
    std::cerr << advice.status().ToString() << "\n";
    return 1;
  }
  std::cout << "advisor: "
            << termination::DecisionName(advice->decision()) << " via "
            << advice->report().method << "\n";
  if (!advice->has_materialization()) return 1;
  const chase::ChaseResult& m = *advice->report().materialization;
  std::printf("materialized %zu atoms from %zu facts (x%.2f), "
              "maxdepth %u\n\n",
              m.instance.size(), program->fact_count(),
              static_cast<double>(m.instance.size()) /
                  static_cast<double>(program->fact_count()),
              m.stats.max_depth);

  // --- Certain answers over the enriched data --------------------------
  // The query layer interns variables, so it runs against a private copy
  // of the program's frozen table.
  core::SymbolTable symbols = program->symbols();
  // "Which students certainly have an advisor?" — HasAdvisor is never
  // stored; it follows from Student via an invented advisor.
  {
    core::Term s = symbols.InternVariable("qs");
    auto has_advisor = program->FindPredicate("HasAdvisor");
    query::AnswerQuery q{{core::Atom(*has_advisor, {s})}, {s}};
    auto answers = query::CertainAnswers(&symbols, program->tgds(),
                                         program->database(), q);
    if (answers.ok()) {
      std::cout << "students with a (certain) advisor: "
                << answers->size() << "\n";
    }
  }
  // "Which courses are certainly taught by someone?" — mixes stored
  // teaching with invented witnesses for enrolled-but-unstaffed courses.
  {
    core::Term c = symbols.InternVariable("qc");
    core::Term p = symbols.InternVariable("qp");
    auto taught_by = program->FindPredicate("TaughtBy");
    query::AnswerQuery q{{core::Atom(*taught_by, {c, p})}, {c}};
    auto answers = query::CertainAnswers(&symbols, program->tgds(),
                                         program->database(), q);
    if (answers.ok()) {
      std::cout << "courses certainly taught by someone: "
                << answers->size() << "\n\n";
    }
  }

  // --- The non-uniform boundary ----------------------------------------
  // Add the thesis-review rule. With no UnderReview facts the SAME
  // ontology still terminates on this data; with one seed it must be
  // rejected — and the advisor proves it without chasing.
  for (std::uint32_t seeds : {0u, 1u}) {
    core::SymbolTable symbols2;
    workload::UniversityOptions risky = options;
    risky.include_review_rule = true;
    risky.under_review = seeds;
    workload::Workload w =
        workload::MakeUniversityWorkload(&symbols2, risky);
    auto risky_program = api::Program::Create(
        std::move(symbols2), std::move(w.tgds), std::move(w.database));
    if (!risky_program.ok()) {
      std::cerr << risky_program.status().ToString() << "\n";
      return 1;
    }
    auto r = api::Session(*risky_program,
                          api::SessionOptions().set_materialize(false))
                 .Advise();
    std::cout << "with review rule, " << seeds
              << " UnderReview fact(s): "
              << (r.ok() ? termination::DecisionName(r->decision())
                         : r.status().ToString())
              << "\n";
  }
  return 0;
}
