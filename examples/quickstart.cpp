// Quickstart: parse a program (facts + TGDs) once into an immutable
// api::Program, then run decisions and chases through cheap
// api::Session handles — the facade's parse-once / run-many split.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "nuchase/nuchase.h"
#include "tgd/classify.h"

using namespace nuchase;

namespace {

// Observability: the chase reports round/fire progress to any
// api::ChaseObserver; this one prints one line per breadth-first round.
class PrintingObserver : public api::ChaseObserver {
 public:
  void OnRound(const api::RoundProgress& p) override {
    std::printf("  round %llu: %zu atoms, %zu delta seeds\n",
                static_cast<unsigned long long>(p.round), p.atoms,
                p.delta_atoms);
  }
};

}  // namespace

int main() {
  // A tiny ontology: every employee works in a department, every
  // department has a manager, and managers are employees of the same
  // department. Guarded, and (for this database) terminating.
  const char* program_text =
      "% facts\n"
      "Emp(alice, sales).\n"
      "Emp(bob, eng).\n"
      "% rules: head variables absent from the body are existential\n"
      "Emp(x, d) -> Dept(d).\n"
      "Dept(d) -> Mgr(d, m).\n"
      "Mgr(d, m) -> Emp(m, d).\n";

  // Parse + validate + classify + join-plan, exactly once.
  auto program = api::Program::Parse(program_text);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Sigma has " << program->rule_count() << " TGDs; class "
            << tgd::TgdClassName(program->tgd_class()) << "; |D| = "
            << program->fact_count() << "\n\n";

  // 1. Decide termination syntactically (Theorems 6.4 / 7.5 / 8.3):
  //    no chase needed, worst-case-optimal complexity.
  api::Session session(*program);
  auto decision = session.Decide();
  if (!decision.ok()) {
    std::cerr << "decider error: " << decision.status().ToString() << "\n";
    return 1;
  }
  std::cout << "ChTrm decision: "
            << termination::DecisionName(decision->decision) << " (class "
            << tgd::TgdClassName(decision->tgd_class) << ", via "
            << decision->method << ")\n";

  // 2. The paper's guarantees, precomputed by the Program: maxdepth <=
  //    d_C(Sigma) and |chase(D,Sigma)| <= |D| * f_C(Sigma) whenever the
  //    chase is finite.
  std::printf("guarantees: maxdepth <= %.0f, |chase| <= %zu * %.3g\n\n",
              program->depth_bound(), program->fact_count(),
              program->size_factor());

  // 3. Materialize chase(D, Sigma), watching the rounds go by, and
  //    print it. The run's fresh nulls live in the session's private
  //    overlay, so the shared Program stays frozen.
  PrintingObserver observer;
  api::Session observed(*program,
                        api::SessionOptions().set_observer(&observer));
  auto run = observed.Chase();
  if (!run.ok()) {
    std::cerr << "chase error: " << run.status().ToString() << "\n";
    return 1;
  }
  std::cout << "chase outcome: " << chase::ChaseOutcomeName(run->outcome())
            << "; " << run->instance().size() << " atoms; maxdepth "
            << run->stats().max_depth << "; " << run->stats().triggers_fired
            << " triggers fired\n\n";
  std::cout << run->ToSortedString() << "\n";

  // 4. A non-terminating variant: drop the guardedness of the cycle.
  //    Parsing it is a fresh Program; the first one is untouched.
  auto looping = api::Program::Parse("R(a, b). R(x, y) -> R(y, z).");
  if (!looping.ok()) {
    std::cerr << "parse error: " << looping.status().ToString() << "\n";
    return 1;
  }
  auto d2 = api::Session(*looping).Decide();
  if (!d2.ok()) {
    std::cerr << "decider error: " << d2.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Section 3's R(x,y) -> \xE2\x88\x83z R(y,z) over {R(a,b)}: "
            << termination::DecisionName(d2->decision) << "\n";
  return 0;
}
