// Quickstart: parse a program (facts + TGDs), ask whether its
// semi-oblivious chase terminates, run the chase, and inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "chase/chase.h"
#include "termination/bounds.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "tgd/parser.h"

using namespace nuchase;

int main() {
  core::SymbolTable symbols;

  // A tiny ontology: every employee works in a department, every
  // department has a manager, and managers are employees of the same
  // department. Guarded, and (for this database) terminating.
  const char* program_text =
      "% facts\n"
      "Emp(alice, sales).\n"
      "Emp(bob, eng).\n"
      "% rules: head variables absent from the body are existential\n"
      "Emp(x, d) -> Dept(d).\n"
      "Dept(d) -> Mgr(d, m).\n"
      "Mgr(d, m) -> Emp(m, d).\n";

  auto program = tgd::ParseProgram(&symbols, program_text);
  if (!program.ok()) {
    std::cerr << "parse error: " << program.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Sigma has " << program->tgds.size() << " TGDs; class "
            << tgd::TgdClassName(tgd::Classify(program->tgds)) << "; |D| = "
            << program->database.size() << "\n\n";

  // 1. Decide termination syntactically (Theorems 6.4 / 7.5 / 8.3):
  //    no chase needed, worst-case-optimal complexity.
  auto decision =
      termination::Decide(&symbols, program->tgds, program->database);
  if (!decision.ok()) {
    std::cerr << "decider error: " << decision.status().ToString() << "\n";
    return 1;
  }
  std::cout << "ChTrm decision: "
            << termination::DecisionName(decision->decision) << " (via class "
            << tgd::TgdClassName(decision->used_class) << ")\n";

  // 2. The paper's guarantees: maxdepth <= d_C(Sigma) and
  //    |chase(D,Sigma)| <= |D| * f_C(Sigma) whenever the chase is finite.
  tgd::TgdClass clazz = tgd::Classify(program->tgds);
  std::printf("guarantees: maxdepth <= %.0f, |chase| <= %zu * %.3g\n\n",
              termination::DepthBound(clazz, program->tgds, symbols),
              program->database.size(),
              termination::SizeFactor(clazz, program->tgds, symbols));

  // 3. Materialize chase(D, Sigma) and print it.
  chase::ChaseResult result =
      chase::RunChase(&symbols, program->tgds, program->database);
  std::cout << "chase outcome: " << chase::ChaseOutcomeName(result.outcome)
            << "; " << result.instance.size() << " atoms; maxdepth "
            << result.stats.max_depth << "; " << result.stats.triggers_fired
            << " triggers fired\n\n";
  std::cout << result.instance.ToSortedString(symbols) << "\n";

  // 4. A non-terminating variant: drop the guardedness of the cycle.
  core::SymbolTable symbols2;
  auto looping = tgd::ParseProgram(
      &symbols2, "R(a, b). R(x, y) -> R(y, z).");
  auto d2 = termination::Decide(&symbols2, looping->tgds,
                                looping->database);
  std::cout << "Section 3's R(x,y) -> \xE2\x88\x83z R(y,z) over {R(a,b)}: "
            << termination::DecisionName(d2->decision) << "\n";
  return 0;
}
