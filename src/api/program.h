#ifndef NUCHASE_API_PROGRAM_H_
#define NUCHASE_API_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "chase/chase.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "graph/reliance.h"
#include "termination/ladder.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace api {

/// The content hash Program::Parse stamps on its artifact: FNV-1a over
/// the exact text bytes, finalized through util::Mix64. Exposed so a
/// cache can hash a submission before deciding whether to parse it —
/// ContentHash(text) == Program::Parse(text)->content_hash() always.
std::uint64_t ContentHash(const std::string& text);

/// An immutable, analyzed program artifact — the parse-once half of the
/// facade's parse-once / run-many split.
///
/// Program::Parse runs the whole front half of the pipeline exactly
/// once: parse the rule text, validate the TGDs, classify Σ (SL/L/G/TGD),
/// compute the paper's d_C / f_C bounds, and plan the semi-naive join
/// orders for every rule. The result is a value-semantic handle over a
/// shared, frozen analysis: copying a Program is a pointer copy, and a
/// `const Program` is safe to share across any number of threads — every
/// chase run allocates its fresh nulls in a private core::SymbolOverlay
/// instead of mutating the program's symbol table.
///
/// Execution happens through api::Session, which borrows a Program and
/// adds the per-run knobs (variant, budgets, deadline, observer).
class Program {
 public:
  /// Parses, validates, classifies and join-plans a program in the rule
  /// language of tgd::ParseProgram ("R(a, b).  R(x, y) -> S(y, z)...").
  /// Facts mention constants only; rules mention variables only.
  /// Fails with InvalidArgument on malformed input or inconsistent
  /// predicate arities.
  static util::StatusOr<Program> Parse(const std::string& text);

  /// Builds a Program from already-constructed parts (e.g. a workload
  /// generator's output), taking ownership. `symbols` must be the table
  /// the TGDs and facts were interned against. Fails with
  /// InvalidArgument when the parts are inconsistent (a predicate id out
  /// of range of the table).
  static util::StatusOr<Program> Create(core::SymbolTable symbols,
                                        tgd::TgdSet tgds,
                                        core::Database database);

  /// The frozen symbol table the program was analyzed against. Shared —
  /// never mutate it; take a copy (SymbolTable is value-semantic) for
  /// machinery that interns new symbols, or layer a core::SymbolOverlay
  /// over it for chase runs.
  const core::SymbolTable& symbols() const { return a_->symbols; }

  const tgd::TgdSet& tgds() const { return a_->tgds; }
  const core::Database& database() const { return a_->database; }

  /// The most specific paper class containing Σ (computed at parse).
  tgd::TgdClass tgd_class() const { return a_->tgd_class; }

  /// Semi-naive join plans for every TGD (computed at parse; shared by
  /// all sessions).
  const chase::JoinPlanSet& join_plans() const { return a_->plans; }

  /// The reliance graph over Σ (computed at parse; shared by all
  /// sessions): positive and restraint reliances plus the ordered
  /// collect-group partition the chase schedules rounds by.
  const graph::RelianceGraph& reliances() const { return *a_->reliances; }

  /// d_C(Σ) (Section 5); +inf when Σ is not guarded.
  double depth_bound() const { return a_->depth_bound; }
  /// f_C(Σ), so |chase(D,Σ)| ≤ |D|·f_C(Σ); +inf when unusable.
  double size_factor() const { return a_->size_factor; }

  /// Parse-time lint findings over (D, Σ) (analysis::LintProgram):
  /// deterministic, catalog-ID then rule order, shared by all sessions.
  const std::vector<analysis::Diagnostic>& diagnostics() const {
    return a_->diagnostics;
  }

  /// The acyclicity ladder (WA → JA → MFA) over the program, run with
  /// default budgets on first request and memoized in the frozen
  /// analysis — every Session and every copy of this Program shares the
  /// one run. Thread-safe; the MFA rung chases the critical instance
  /// D_Σ, never the program's own database.
  const termination::LadderResult& ladder() const;

  /// The class-optimal syntactic ChTrm decision (SL/L/G: the paper's
  /// exact procedures with default budgets; general: the ladder,
  /// reusing ladder()'s memoized run), likewise computed at most once
  /// per Program. Non-OK when the guarded pipeline exhausts its default
  /// linearization budget; sessions with a non-default budget bypass
  /// this cache.
  const util::StatusOr<termination::SyntacticDecision>& syntactic() const;

  std::size_t rule_count() const { return a_->tgds.size(); }
  std::size_t fact_count() const { return a_->database.size(); }

  /// 64-bit content hash of the program text: for Parse, FNV-1a over
  /// the exact input bytes (finalized through util::Mix64); for Create,
  /// over the canonical tgd::ProgramToString rendering. Two Programs
  /// parsed from byte-identical text always agree, which is what lets a
  /// serving cache (server::ProgramCache) key parsed artifacts by hash
  /// and share one frozen Program across every request that submitted
  /// the same rules — hash equality is a fast-path filter, not an
  /// identity proof, so cache lookups must still compare the text.
  std::uint64_t content_hash() const { return a_->content_hash; }

  /// How many live handles (Programs, Sessions via their Program copy,
  /// ChaseRuns, cache entries) share this frozen analysis right now —
  /// the reuse-audit counter: a parse-once cache is working when
  /// repeated submissions raise this instead of the parse count.
  long shared_use_count() const { return a_.use_count(); }

  /// Looks up a predicate by name (NotFound when absent) — the read-only
  /// lookup callers need to build queries against the program's schema.
  util::StatusOr<core::PredicateId> FindPredicate(
      const std::string& name) const {
    return a_->symbols.FindPredicate(name);
  }

 private:
  struct Analysis {
    core::SymbolTable symbols;
    tgd::TgdSet tgds;
    core::Database database;
    tgd::TgdClass tgd_class = tgd::TgdClass::kGeneral;
    chase::JoinPlanSet plans;
    std::unique_ptr<const graph::RelianceGraph> reliances;
    double depth_bound = 0;
    double size_factor = 0;
    std::uint64_t content_hash = 0;
    std::vector<analysis::Diagnostic> diagnostics;

    // Memoized heavy artifacts: computed at most once per Program, on
    // first request, under call_once — mutation through the const
    // handle is confined to these fields and is thread-safe.
    mutable std::once_flag ladder_once;
    mutable termination::LadderResult ladder;
    mutable std::once_flag syntactic_once;
    mutable std::unique_ptr<
        const util::StatusOr<termination::SyntacticDecision>>
        syntactic;
  };

  explicit Program(std::shared_ptr<const Analysis> analysis)
      : a_(std::move(analysis)) {}

  static util::StatusOr<Program> Analyze(std::shared_ptr<Analysis> a);

  std::shared_ptr<const Analysis> a_;
};

}  // namespace api
}  // namespace nuchase

#endif  // NUCHASE_API_PROGRAM_H_
