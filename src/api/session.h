#ifndef NUCHASE_API_SESSION_H_
#define NUCHASE_API_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "api/program.h"
#include "chase/chase.h"
#include "chase/observer.h"
#include "core/symbol_table.h"
#include "termination/advisor.h"
#include "termination/ladder.h"
#include "termination/naive_decider.h"
#include "util/status.h"

namespace nuchase {
namespace api {

/// Per-session knobs, builder-style: every setter returns *this, so a
/// session is configured inline —
///
///   api::Session session(program, api::SessionOptions()
///                            .set_variant(chase::ChaseVariant::kRestricted)
///                            .set_max_rounds(100)
///                            .set_deadline_ms(5000));
struct SessionOptions {
  /// Which chase procedure Chase() runs.
  chase::ChaseVariant variant = chase::ChaseVariant::kSemiOblivious;
  /// Atom budget for Chase() and for Advise()'s materialization; the
  /// library-wide default comes from chase::ChaseOptions.
  std::uint64_t max_atoms = chase::ChaseOptions{}.max_atoms;
  /// If nonzero, Chase() stops (kDepthLimit) past this null depth.
  std::uint32_t max_depth = 0;
  /// If nonzero, Chase() stops (kRoundLimit) after this many rounds.
  std::uint64_t max_rounds = 0;
  /// If nonzero, every run stops (kCancelled) after this wall-clock
  /// budget in milliseconds.
  std::uint64_t deadline_ms = 0;
  /// Engine ablation switches (results identical; cost differs).
  bool use_delta = true;
  bool use_position_index = true;
  /// Reliance-based cross-rule round scheduling (results identical; the
  /// switch only changes which rules may share a parallel collect phase
  /// — see chase::ChaseOptions::use_reliances). Forwarded, with the
  /// program's parse-time reliance graph, to every chase the session
  /// runs.
  bool use_reliances = true;
  /// Restraint-guided within-group firing order for the restricted
  /// chase. Opt-in and NOT identity-preserving: the result is still a
  /// deterministic, thread-invariant restricted-chase result, but a
  /// different (often faster-terminating) one than Σ-order. Ignored
  /// unless use_reliances is on and the variant is kRestricted; see
  /// chase::ChaseOptions::restraint_order.
  bool restraint_order = false;
  /// Worker count for the within-round parallel trigger engine,
  /// forwarded to every chase this session runs (Chase(), Decide()'s
  /// bounded-chase fallback, Advise()'s materialization). 1 = the
  /// sequential engine, 0 = one worker per hardware thread, N = exactly
  /// N workers; left unset it is sequential unless the NUCHASE_THREADS
  /// environment variable raises it. Results are byte-identical for
  /// every value — the knob trades wall-clock for cores, nothing else;
  /// see chase::ChaseOptions::num_threads for the engine contract.
  std::uint32_t num_threads = chase::kNumThreadsDefault;
  /// Log2 of the instance's extent size in terms, forwarded to every
  /// chase this session runs. 0 (the default) keeps the engine's
  /// built-in geometry. Observationally invisible — bytes, sorted
  /// renderings and arena_bytes are identical for every value; the knob
  /// trades allocation granularity for memory headroom, nothing else;
  /// see chase::ChaseOptions::extent_log2 for the engine contract.
  std::uint32_t extent_log2 = 0;
  /// Record the guarded chase forest (Section 5) during Chase().
  bool build_forest = false;
  /// Advise(): materialize chase(D,Σ) when the decision is kTerminates.
  bool materialize = true;
  /// Advise()/Decide(): budget for guarded linearization.
  std::uint64_t max_types = 100000;
  /// Observation hooks, called synchronously from the run's thread. Not
  /// owned; must outlive every run of the session.
  chase::ChaseObserver* observer = nullptr;
  /// Cooperative cancellation, pollable from other threads. Not owned.
  const chase::CancelToken* cancel = nullptr;

  SessionOptions& set_variant(chase::ChaseVariant v) {
    variant = v;
    return *this;
  }
  SessionOptions& set_max_atoms(std::uint64_t n) {
    max_atoms = n;
    return *this;
  }
  SessionOptions& set_max_depth(std::uint32_t n) {
    max_depth = n;
    return *this;
  }
  SessionOptions& set_max_rounds(std::uint64_t n) {
    max_rounds = n;
    return *this;
  }
  SessionOptions& set_deadline_ms(std::uint64_t ms) {
    deadline_ms = ms;
    return *this;
  }
  SessionOptions& set_use_delta(bool on) {
    use_delta = on;
    return *this;
  }
  SessionOptions& set_use_position_index(bool on) {
    use_position_index = on;
    return *this;
  }
  SessionOptions& set_use_reliances(bool on) {
    use_reliances = on;
    return *this;
  }
  SessionOptions& set_restraint_order(bool on) {
    restraint_order = on;
    return *this;
  }
  SessionOptions& set_num_threads(std::uint32_t n) {
    num_threads = n;
    return *this;
  }
  SessionOptions& set_extent_log2(std::uint32_t log2) {
    extent_log2 = log2;
    return *this;
  }
  SessionOptions& set_build_forest(bool on) {
    build_forest = on;
    return *this;
  }
  SessionOptions& set_materialize(bool on) {
    materialize = on;
    return *this;
  }
  SessionOptions& set_max_types(std::uint64_t n) {
    max_types = n;
    return *this;
  }
  SessionOptions& set_observer(chase::ChaseObserver* o) {
    observer = o;
    return *this;
  }
  SessionOptions& set_cancel(const chase::CancelToken* token) {
    cancel = token;
    return *this;
  }
};

/// The result of one Session::Chase() run: the chase result plus the
/// per-run symbol overlay its nulls live in, and a borrowed copy of the
/// Program keeping the shared base alive. Render through ToSortedString
/// (or pass symbols() wherever a core::SymbolScope is accepted) — the
/// program's own table does not know this run's nulls.
class ChaseRun {
 public:
  chase::ChaseOutcome outcome() const { return result_.outcome; }
  bool Terminated() const { return result_.Terminated(); }
  const chase::ChaseResult& result() const { return result_; }
  const core::Instance& instance() const { return result_.instance; }
  const chase::ChaseStats& stats() const { return result_.stats; }
  const chase::Forest& forest() const { return result_.forest; }

  /// The run's symbol scope: the program's frozen table plus this run's
  /// nulls.
  const core::SymbolScope& symbols() const { return overlay_; }

  /// Stable sorted rendering of the materialized instance —
  /// byte-identical across sessions, threads and engine ablations.
  std::string ToSortedString() const {
    return result_.instance.ToSortedString(overlay_);
  }

 private:
  friend class Session;
  explicit ChaseRun(Program program)
      : program_(std::move(program)), overlay_(program_.symbols()) {}

  Program program_;
  core::SymbolOverlay overlay_;
  chase::ChaseResult result_;
};

/// The static-analysis report of Session::Analyze(): the lint findings
/// and the acyclicity-ladder/syntactic verdict, with provenance. Fully
/// static — the only chase involved is the MFA rung's critical-instance
/// chase, never a chase of the program's database.
struct AnalyzeResult {
  tgd::TgdClass tgd_class = tgd::TgdClass::kGeneral;
  /// Parse-time lint findings (catalog-ID then rule order).
  std::vector<analysis::Diagnostic> diagnostics;
  /// The memoized ladder run (meaningful witnesses for every rung).
  termination::LadderResult ladder;
  /// The static ChTrm verdict: exact for SL/L/G (the class deciders
  /// never answer kUnknown), sufficient-only for general Σ (kUnknown
  /// when no rung certifies — never kDoesNotTerminate).
  termination::Decision decision = termination::Decision::kUnknown;
  /// "weak-acyclicity", "simplification+WA",
  /// "linearization+simplification+WA", or "ladder:wa" / "ladder:ja" /
  /// "ladder:mfa"; empty when the verdict is kUnknown.
  std::string method;
};

/// Schema- and class-level analysis of the program (no chase involved).
struct ClassifyResult {
  tgd::TgdClass tgd_class = tgd::TgdClass::kGeneral;
  std::size_t num_tgds = 0;
  std::size_t num_schema_predicates = 0;
  std::uint32_t max_arity = 0;
  std::uint64_t norm = 0;  ///< ||Σ||.
  std::size_t num_facts = 0;
  /// d_C(Σ) / f_C(Σ); meaningful only when has_bounds (Σ guarded).
  bool has_bounds = false;
  double depth_bound = 0;
  double size_factor = 0;
};

/// How Session::Decide should decide ChTrm(D, Σ).
enum class DecideMethod {
  /// Class-optimal dispatch: the syntactic decider for SL/L/G, the
  /// bounded chase for general TGDs (the advisor's policy).
  kAuto,
  /// The data-complexity UCQ Q_Σ (Theorems 6.6 / 7.7; SL/L only —
  /// FailedPrecondition otherwise).
  kUcq,
  /// The naive bounded-chase procedure of Section 3.
  kBoundedChase,
};

/// A ChTrm verdict with its provenance.
struct DecideResult {
  termination::Decision decision = termination::Decision::kUnknown;
  tgd::TgdClass tgd_class = tgd::TgdClass::kGeneral;
  /// Which procedure decided ("weak-acyclicity", "simplification+WA",
  /// "linearization+simplification+WA", "ladder:wa" / "ladder:ja" /
  /// "ladder:mfa", "bounded-chase", "ucq").
  std::string method;
  /// Bounded chase only: atoms materialized and maxdepth observed.
  std::uint64_t atoms = 0;
  std::uint32_t max_depth = 0;
};

/// The advisor's report plus the symbol scope its (optional)
/// materialization was built in.
class AdviseResult {
 public:
  const termination::AdvisorReport& report() const { return report_; }
  termination::Decision decision() const { return report_.decision; }
  bool has_materialization() const {
    return report_.materialization.has_value();
  }
  /// The session-private symbol table the advisor ran against (the
  /// program's table plus rewriting symbols and materialization nulls).
  const core::SymbolTable& symbols() const { return symbols_; }
  /// Sorted rendering of the materialization; empty when absent.
  std::string MaterializationToSortedString() const {
    if (!report_.materialization.has_value()) return std::string();
    return report_.materialization->instance.ToSortedString(symbols_);
  }

 private:
  friend class Session;
  AdviseResult() = default;

  termination::AdvisorReport report_;
  core::SymbolTable symbols_;
};

/// A cheap execution handle over a shared Program: the run-many half of
/// the facade. Sessions never mutate the Program — Chase() allocates the
/// run's nulls in a private core::SymbolOverlay, and Decide()/Advise()
/// copy the frozen table into session-private scratch for the rewriting
/// machinery — so any number of sessions over one `const Program` can
/// run concurrently, producing byte-identical results for identical
/// options.
class Session {
 public:
  explicit Session(Program program, SessionOptions options = {})
      : program_(std::move(program)), options_(options) {}

  const Program& program() const { return program_; }
  const SessionOptions& options() const { return options_; }

  /// Materializes (a budgeted prefix of) chase(D, Σ) with the session's
  /// variant, budgets, deadline, observer and cancel token. A run
  /// stopped by a budget is not an error: inspect ChaseRun::outcome().
  /// Fails with InvalidArgument on unusable options (max_atoms == 0).
  util::StatusOr<ChaseRun> Chase() const;

  /// Class, schema quantities and paper bounds — no chase involved.
  util::StatusOr<ClassifyResult> Classify() const;

  /// Static analysis only: the program's lint diagnostics plus the
  /// strongest purely static ChTrm verdict (class decider or ladder
  /// rung), without ever chasing D. Both halves are memoized in the
  /// shared Program, so repeated calls — and subsequent Decide/Advise
  /// calls — recompute nothing. Non-OK only when the guarded pipeline
  /// exhausts its linearization budget (ResourceExhausted).
  util::StatusOr<AnalyzeResult> Analyze() const;

  /// Decides ChTrm(D, Σ). kAuto never fails on valid inputs; kUcq fails
  /// (FailedPrecondition) when Σ is not linear; budget exhaustion inside
  /// the guarded pipeline surfaces as ResourceExhausted.
  util::StatusOr<DecideResult> Decide(
      DecideMethod method = DecideMethod::kAuto) const;

  /// The Section 1 materialization advisor: decide, and (when
  /// options().materialize and the chase terminates) materialize.
  util::StatusOr<AdviseResult> Advise() const;

 private:
  chase::ChaseOptions MakeChaseOptions() const;

  Program program_;
  SessionOptions options_;
};

}  // namespace api
}  // namespace nuchase

#endif  // NUCHASE_API_SESSION_H_
