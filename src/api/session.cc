#include "api/session.h"

#include <utility>

#include "termination/syntactic_decider.h"
#include "termination/ucq_decider.h"

namespace nuchase {
namespace api {

chase::ChaseOptions Session::MakeChaseOptions() const {
  chase::ChaseOptions copt;
  copt.variant = options_.variant;
  copt.max_atoms = options_.max_atoms;
  copt.max_depth = options_.max_depth;
  copt.max_rounds = options_.max_rounds;
  copt.build_forest = options_.build_forest;
  copt.use_delta = options_.use_delta;
  copt.use_position_index = options_.use_position_index;
  copt.num_threads = options_.num_threads;
  copt.extent_log2 = options_.extent_log2;
  copt.deadline_ms = options_.deadline_ms;
  copt.cancel = options_.cancel;
  copt.observer = options_.observer;
  copt.plans = &program_.join_plans();
  copt.use_reliances = options_.use_reliances;
  copt.restraint_order = options_.restraint_order;
  copt.reliances = &program_.reliances();
  return copt;
}

util::StatusOr<ChaseRun> Session::Chase() const {
  if (options_.max_atoms == 0) {
    return util::Status::InvalidArgument(
        "SessionOptions::max_atoms must be positive (every chase run is "
        "bounded by at least the atom budget)");
  }
  ChaseRun run(program_);
  run.result_ = chase::RunChase(&run.overlay_, program_.tgds(),
                                program_.database(), MakeChaseOptions());
  if (run.result_.outcome == chase::ChaseOutcome::kResourceExhausted) {
    // Budget outcomes (atom/depth/round/cancel) are useful prefixes and
    // not errors; exhausting Term's null id space is — propagate it.
    return util::Status::ResourceExhausted(
        "chase exhausted the labelled-null id space (2^30 nulls per "
        "run)");
  }
  return run;
}

util::StatusOr<ClassifyResult> Session::Classify() const {
  ClassifyResult out;
  out.tgd_class = program_.tgd_class();
  out.num_tgds = program_.rule_count();
  out.num_schema_predicates = program_.tgds().SchemaPredicates().size();
  out.max_arity = program_.tgds().MaxArity(program_.symbols());
  out.norm = program_.tgds().Norm(program_.symbols());
  out.num_facts = program_.fact_count();
  out.has_bounds = out.tgd_class != tgd::TgdClass::kGeneral;
  out.depth_bound = program_.depth_bound();
  out.size_factor = program_.size_factor();
  return out;
}

namespace {

// Points the advisor at the Program's memoized analysis artifacts: the
// ladder run for general Σ, the class decision for SL/L/G. The
// syntactic cache holds a default-budget run, so it is bypassed when
// the session raised or lowered max_types.
void BorrowProgramCaches(const Program& program, std::uint64_t max_types,
                         termination::AdvisorOptions* aopt) {
  if (program.tgd_class() == tgd::TgdClass::kGeneral) {
    aopt->ladder = &program.ladder();
    return;
  }
  if (max_types != SessionOptions{}.max_types) return;
  const auto& syntactic = program.syntactic();
  if (syntactic.ok()) aopt->syntactic = &*syntactic;
}

}  // namespace

util::StatusOr<AnalyzeResult> Session::Analyze() const {
  AnalyzeResult out;
  out.tgd_class = program_.tgd_class();
  out.diagnostics = program_.diagnostics();
  out.ladder = program_.ladder();

  if (out.tgd_class == tgd::TgdClass::kGeneral) {
    out.decision = out.ladder.verdict;
    if (out.decision == termination::Decision::kTerminates) {
      out.method = "ladder:" + out.ladder.rung;
    }
    return out;
  }
  const auto& syntactic = program_.syntactic();
  if (!syntactic.ok()) return syntactic.status();
  out.decision = syntactic->decision;
  switch (out.tgd_class) {
    case tgd::TgdClass::kSimpleLinear:
      out.method = "weak-acyclicity";
      break;
    case tgd::TgdClass::kLinear:
      out.method = "simplification+WA";
      break;
    default:
      out.method = "linearization+simplification+WA";
      break;
  }
  return out;
}

util::StatusOr<DecideResult> Session::Decide(DecideMethod method) const {
  DecideResult out;
  out.tgd_class = program_.tgd_class();

  // The deciders rewrite Σ (simplification, linearization) and so intern
  // fresh symbols: give them a session-private copy of the frozen table.
  core::SymbolTable scratch = program_.symbols();

  switch (method) {
    case DecideMethod::kUcq: {
      auto decision = termination::DecideByUcq(&scratch, program_.tgds(),
                                               program_.database());
      if (!decision.ok()) return decision.status();
      out.decision = *decision;
      out.method = "ucq";
      return out;
    }
    case DecideMethod::kBoundedChase: {
      // DecideByChase reads only the engine switches and hooks from its
      // `engine` parameter and owns the decision-relevant fields, so the
      // full chase-option set is safe to hand over.
      termination::NaiveDecision naive = termination::DecideByChase(
          &scratch, program_.tgds(), program_.database(),
          options_.max_atoms, MakeChaseOptions());
      out.decision = naive.decision;
      out.method = "bounded-chase";
      out.atoms = naive.atoms;
      out.max_depth = naive.max_depth;
      return out;
    }
    case DecideMethod::kAuto: {
      termination::AdvisorOptions aopt;
      aopt.materialize = false;
      aopt.max_types = options_.max_types;
      aopt.max_atoms = options_.max_atoms;
      aopt.use_delta = options_.use_delta;
      aopt.use_position_index = options_.use_position_index;
      aopt.num_threads = options_.num_threads;
      aopt.extent_log2 = options_.extent_log2;
      aopt.deadline_ms = options_.deadline_ms;
      aopt.cancel = options_.cancel;
      aopt.observer = options_.observer;
      aopt.plans = &program_.join_plans();
      aopt.use_reliances = options_.use_reliances;
      aopt.reliances = &program_.reliances();
      BorrowProgramCaches(program_, options_.max_types, &aopt);
      auto report = termination::Advise(&scratch, program_.tgds(),
                                        program_.database(), aopt);
      if (!report.ok()) return report.status();
      out.decision = report->decision;
      out.method = report->method;
      return out;
    }
  }
  return util::Status::Internal("unreachable: unknown DecideMethod");
}

util::StatusOr<AdviseResult> Session::Advise() const {
  AdviseResult out;
  out.symbols_ = program_.symbols();

  termination::AdvisorOptions aopt;
  aopt.materialize = options_.materialize;
  aopt.max_types = options_.max_types;
  aopt.max_atoms = options_.max_atoms;
  aopt.use_delta = options_.use_delta;
  aopt.use_position_index = options_.use_position_index;
  aopt.num_threads = options_.num_threads;
  aopt.extent_log2 = options_.extent_log2;
  aopt.deadline_ms = options_.deadline_ms;
  aopt.cancel = options_.cancel;
  aopt.observer = options_.observer;
  aopt.plans = &program_.join_plans();
  aopt.use_reliances = options_.use_reliances;
  aopt.reliances = &program_.reliances();
  BorrowProgramCaches(program_, options_.max_types, &aopt);

  auto report = termination::Advise(&out.symbols_, program_.tgds(),
                                    program_.database(), aopt);
  if (!report.ok()) return report.status();
  out.report_ = std::move(*report);
  return out;
}

}  // namespace api
}  // namespace nuchase
