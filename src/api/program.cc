#include "api/program.h"

#include <memory>
#include <utility>

#include "termination/bounds.h"
#include "tgd/parser.h"
#include "tgd/printer.h"
#include "util/hash.h"

namespace nuchase {
namespace api {

// FNV-1a over the program bytes, finalized through Mix64 so the low
// bits (a power-of-two cache indexes by them) carry the whole text.
std::uint64_t ContentHash(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return util::Mix64(h);
}

util::StatusOr<Program> Program::Parse(const std::string& text) {
  auto analysis = std::make_shared<Analysis>();
  auto parsed = tgd::ParseProgram(&analysis->symbols, text);
  if (!parsed.ok()) return parsed.status();
  analysis->tgds = std::move(parsed->tgds);
  analysis->database = std::move(parsed->database);
  analysis->content_hash = ContentHash(text);
  return Analyze(std::move(analysis));
}

util::StatusOr<Program> Program::Create(core::SymbolTable symbols,
                                        tgd::TgdSet tgds,
                                        core::Database database) {
  auto analysis = std::make_shared<Analysis>();
  analysis->symbols = std::move(symbols);
  analysis->tgds = std::move(tgds);
  analysis->database = std::move(database);

  // The parts were built elsewhere: check every predicate id resolves in
  // the table before freezing the artifact.
  const std::uint32_t num_predicates = analysis->symbols.num_predicates();
  auto check_atoms = [&](const std::vector<core::Atom>& atoms) {
    for (const core::Atom& atom : atoms) {
      if (atom.predicate >= num_predicates) return false;
    }
    return true;
  };
  if (!check_atoms(analysis->database.facts())) {
    return util::Status::InvalidArgument(
        "database fact references a predicate missing from the symbol "
        "table");
  }
  for (const tgd::Tgd& rule : analysis->tgds.tgds()) {
    if (!check_atoms(rule.body()) || !check_atoms(rule.head())) {
      return util::Status::InvalidArgument(
          "TGD references a predicate missing from the symbol table");
    }
  }
  // No source text exists for assembled parts: hash the canonical
  // rendering, so two Creates of equal programs still agree.
  analysis->content_hash = ContentHash(tgd::ProgramToString(
      analysis->tgds, analysis->database, analysis->symbols));
  return Analyze(std::move(analysis));
}

util::StatusOr<Program> Program::Analyze(std::shared_ptr<Analysis> a) {
  // The rule cap keeps every downstream rule index (join plans, the
  // reliance graph's node ids, the chase's scheduling loops) inside
  // tgd::RuleIndex. Rejecting here, before any analysis runs, is the
  // facade half of the contract documented on tgd::kMaxRules; the
  // standalone chase entry point enforces its own half with
  // kResourceExhausted.
  if (a->tgds.size() > tgd::kMaxRules) {
    return util::Status::InvalidArgument(
        "program exceeds the rule cap (" +
        std::to_string(a->tgds.size()) + " rules > tgd::kMaxRules = " +
        std::to_string(tgd::kMaxRules) + ")");
  }
  a->tgd_class = tgd::Classify(a->tgds);
  a->depth_bound =
      termination::DepthBound(a->tgd_class, a->tgds, a->symbols);
  a->size_factor =
      termination::SizeFactor(a->tgd_class, a->tgds, a->symbols);
  a->plans = chase::PlanJoins(a->tgds);
  a->reliances = std::make_unique<const graph::RelianceGraph>(a->tgds);
  a->diagnostics = analysis::LintProgram(a->tgds, a->database, a->symbols,
                                         a->reliances.get());
  return Program(std::move(a));
}

const termination::LadderResult& Program::ladder() const {
  const Analysis* a = a_.get();
  std::call_once(a->ladder_once, [a] {
    a->ladder = termination::RunLadder(a->symbols, a->tgds, a->database);
  });
  return a->ladder;
}

const util::StatusOr<termination::SyntacticDecision>& Program::syntactic()
    const {
  const Analysis* a = a_.get();
  std::call_once(a->syntactic_once, [this, a] {
    // The deciders intern rewriting symbols: hand them scratch. For
    // general Σ the decision IS the ladder — reuse the memoized run
    // instead of chasing the critical instance a second time.
    core::SymbolTable scratch = a->symbols;
    auto decision =
        a->tgd_class == tgd::TgdClass::kGeneral
            ? termination::DecideGeneral(&scratch, a->tgds, a->database,
                                         {}, &ladder())
            : termination::Decide(&scratch, a->tgds, a->database);
    a->syntactic = std::make_unique<
        const util::StatusOr<termination::SyntacticDecision>>(
        std::move(decision));
  });
  return *a->syntactic;
}

}  // namespace api
}  // namespace nuchase
