#ifndef NUCHASE_QUERY_CERTAIN_H_
#define NUCHASE_QUERY_CERTAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/symbol_table.h"
#include "core/term.h"
#include "query/ucq.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace query {

/// A conjunctive query with answer (free) variables:
///   q(x̄) :- α₁, ..., α_k.
/// Every answer variable must occur in some atom; the remaining
/// variables are existentially quantified.
struct AnswerQuery {
  std::vector<core::Atom> atoms;
  std::vector<core::Term> answer_variables;

  std::string ToString(const core::SymbolTable& symbols) const;
};

struct CertainAnswersOptions {
  /// Budget for the materialization chase.
  std::uint64_t max_atoms = 1'000'000;
};

/// The certain answers of q over (D, Σ): the tuples t̄ over dom(D) such
/// that t̄ ∈ q(M) for EVERY model M of D and Σ. This is the ontological
/// query answering problem of Section 1.
///
/// Because chase(D, Σ) is a universal model, the certain answers are
/// exactly the null-free answers of q over the chase — which is why
/// non-uniform chase termination matters: whenever Σ ∈ CT_D the whole
/// problem reduces to one materialization plus plain query evaluation.
/// Fails with ResourceExhausted when the chase does not terminate
/// within the budget (callers should consult termination::Decide first).
///
/// Answers are returned sorted and duplicate-free, each tuple listing
/// the images of `answer_variables` in order.
util::StatusOr<std::vector<std::vector<core::Term>>> CertainAnswers(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, const AnswerQuery& query,
    const CertainAnswersOptions& options = {});

}  // namespace query
}  // namespace nuchase

#endif  // NUCHASE_QUERY_CERTAIN_H_
