#ifndef NUCHASE_QUERY_UCQ_H_
#define NUCHASE_QUERY_UCQ_H_

#include <string>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"

namespace nuchase {
namespace query {

/// A Boolean conjunctive query ∃x̄ (α₁ ∧ ... ∧ α_k): a conjunction of
/// atoms whose variables are all existentially quantified. Repeated
/// variables express equality constraints (this is how the UCQ of
/// Theorem 7.7 encodes the patterns of simple(Σ)); constants are allowed
/// and must match exactly.
struct ConjunctiveQuery {
  std::vector<core::Atom> atoms;

  std::string ToString(const core::SymbolTable& symbols) const;
};

/// A Boolean union of conjunctive queries (UCQ): satisfied iff some
/// disjunct is satisfied. The data-complexity deciders of Theorems 6.6
/// and 7.7 reduce ChTrm to UCQ evaluation over D.
struct UnionOfConjunctiveQueries {
  std::vector<ConjunctiveQuery> disjuncts;

  std::string ToString(const core::SymbolTable& symbols) const;
};

}  // namespace query
}  // namespace nuchase

#endif  // NUCHASE_QUERY_UCQ_H_
