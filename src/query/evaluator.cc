#include "query/evaluator.h"

#include "chase/trigger.h"

namespace nuchase {
namespace query {

using chase::HomomorphismFinder;
using chase::Substitution;

bool Satisfies(const core::Instance& instance, const ConjunctiveQuery& cq) {
  bool found = false;
  HomomorphismFinder finder(instance);
  finder.Enumerate(cq.atoms, [&](const Substitution&) {
    found = true;
    return false;  // stop at the first witness
  });
  return found;
}

bool Satisfies(const core::Instance& instance,
               const UnionOfConjunctiveQueries& ucq) {
  for (const ConjunctiveQuery& cq : ucq.disjuncts) {
    if (Satisfies(instance, cq)) return true;
  }
  return false;
}

bool Satisfies(const core::Database& db,
               const UnionOfConjunctiveQueries& ucq) {
  core::Instance instance = db.ToInstance();
  return Satisfies(instance, ucq);
}

bool Satisfies(const core::Instance& instance, const tgd::Tgd& rule) {
  bool ok = true;
  HomomorphismFinder finder(instance);
  finder.Enumerate(rule.body(), [&](const Substitution& h) {
    // Keep only the frontier bindings; the head must be matchable with
    // some extension h' ⊇ h|fr(σ).
    Substitution frontier_binding;
    for (core::Term v : rule.frontier()) frontier_binding.emplace(v, h.at(v));
    bool extended = false;
    finder.Enumerate(rule.head(), frontier_binding, -1, 0,
                     [&](const Substitution&) {
                       extended = true;
                       return false;
                     });
    if (!extended) {
      ok = false;
      return false;  // found a violated trigger; stop
    }
    return true;
  });
  return ok;
}

bool Satisfies(const core::Instance& instance, const tgd::TgdSet& tgds) {
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!Satisfies(instance, rule)) return false;
  }
  return true;
}

}  // namespace query
}  // namespace nuchase
