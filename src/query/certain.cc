#include "query/certain.h"

#include <algorithm>
#include <set>

#include "chase/chase.h"
#include "chase/trigger.h"

namespace nuchase {
namespace query {

std::string AnswerQuery::ToString(const core::SymbolTable& symbols) const {
  std::string out = "?(";
  for (std::size_t i = 0; i < answer_variables.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.TermToString(answer_variables[i]);
  }
  out += ") :- ";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString(symbols);
  }
  return out;
}

util::StatusOr<std::vector<std::vector<core::Term>>> CertainAnswers(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, const AnswerQuery& query,
    const CertainAnswersOptions& options) {
  // Validate: every answer variable occurs in the query body.
  for (core::Term v : query.answer_variables) {
    bool found = false;
    for (const core::Atom& atom : query.atoms) {
      for (core::Term t : atom.args) {
        if (t == v) found = true;
      }
    }
    if (!found) {
      return util::Status::InvalidArgument(
          "answer variable does not occur in the query body");
    }
  }

  chase::ChaseOptions copt;
  copt.max_atoms = options.max_atoms;
  chase::ChaseResult result = chase::RunChase(symbols, tgds, db, copt);
  if (!result.Terminated()) {
    return util::Status::ResourceExhausted(
        "chase did not terminate within the atom budget; certain answers "
        "via materialization need Sigma in CT_D (run termination::Decide "
        "first)");
  }

  // Evaluate q over the universal model; keep null-free projections.
  std::set<std::vector<core::Term>> answers;
  chase::HomomorphismFinder finder(result.instance);
  finder.Enumerate(query.atoms, [&](const chase::Substitution& h) {
    std::vector<core::Term> tuple;
    tuple.reserve(query.answer_variables.size());
    for (core::Term v : query.answer_variables) {
      auto it = h.find(v);
      if (it == h.end() || !it->second.IsConstant()) return true;
      tuple.push_back(it->second);
    }
    answers.insert(std::move(tuple));
    return true;
  });

  return std::vector<std::vector<core::Term>>(answers.begin(),
                                              answers.end());
}

}  // namespace query
}  // namespace nuchase
