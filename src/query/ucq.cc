#include "query/ucq.h"

namespace nuchase {
namespace query {

std::string ConjunctiveQuery::ToString(
    const core::SymbolTable& symbols) const {
  std::string out = "Ans() <- ";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString(symbols);
  }
  return out;
}

std::string UnionOfConjunctiveQueries::ToString(
    const core::SymbolTable& symbols) const {
  std::string out;
  for (const ConjunctiveQuery& cq : disjuncts) {
    out += cq.ToString(symbols);
    out += '\n';
  }
  return out;
}

}  // namespace query
}  // namespace nuchase
