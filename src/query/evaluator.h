#ifndef NUCHASE_QUERY_EVALUATOR_H_
#define NUCHASE_QUERY_EVALUATOR_H_

#include "core/database.h"
#include "core/instance.h"
#include "query/ucq.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace query {

/// Boolean CQ evaluation: is there a homomorphism from the query atoms
/// into the instance?
bool Satisfies(const core::Instance& instance, const ConjunctiveQuery& cq);

/// Boolean UCQ evaluation (some disjunct holds).
bool Satisfies(const core::Instance& instance,
               const UnionOfConjunctiveQueries& ucq);

/// UCQ evaluation directly over a database (the AC0 data-complexity
/// procedure of Theorems 6.6 / 7.7 evaluates Q_Σ over D).
bool Satisfies(const core::Database& db,
               const UnionOfConjunctiveQueries& ucq);

/// I |= σ (Section 2): every homomorphism from body(σ) to I extends to a
/// homomorphism of head(σ). Used by tests to verify that a terminated
/// chase result is a model.
bool Satisfies(const core::Instance& instance, const tgd::Tgd& rule);

/// I |= Σ.
bool Satisfies(const core::Instance& instance, const tgd::TgdSet& tgds);

}  // namespace query
}  // namespace nuchase

#endif  // NUCHASE_QUERY_EVALUATOR_H_
