#include "termination/syntactic_decider.h"

#include <chrono>

#include "graph/weak_acyclicity.h"
#include "rewrite/simplify.h"

namespace nuchase {
namespace termination {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::atomic<std::uint64_t>& DeciderInvocationsForTest() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

util::StatusOr<SyntacticDecision> DecideSimpleLinear(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db) {
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!rule.IsSimpleLinear()) {
      return util::Status::FailedPrecondition(
          "DecideSimpleLinear requires Σ ∈ SL");
    }
  }
  auto start = Clock::now();
  DeciderInvocationsForTest().fetch_add(1, std::memory_order_relaxed);
  SyntacticDecision out;
  out.used_class = tgd::TgdClass::kSimpleLinear;
  graph::WeakAcyclicityResult wa =
      graph::CheckWeakAcyclicity(tgds, db, *symbols);
  out.decision = wa.weakly_acyclic ? Decision::kTerminates
                                   : Decision::kDoesNotTerminate;
  out.seconds = Seconds(start);
  return out;
}

util::StatusOr<SyntacticDecision> DecideLinear(core::SymbolTable* symbols,
                                               const tgd::TgdSet& tgds,
                                               const core::Database& db) {
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!rule.IsLinear()) {
      return util::Status::FailedPrecondition(
          "DecideLinear requires Σ ∈ L");
    }
  }
  auto start = Clock::now();
  DeciderInvocationsForTest().fetch_add(1, std::memory_order_relaxed);
  rewrite::Simplifier simplifier(symbols);
  auto simple_tgds = simplifier.SimplifyTgds(tgds);
  if (!simple_tgds.ok()) return simple_tgds.status();
  core::Database simple_db = simplifier.SimplifyDatabase(db);

  SyntacticDecision out;
  out.used_class = tgd::TgdClass::kLinear;
  out.simple_tgds = simple_tgds->size();
  graph::WeakAcyclicityResult wa =
      graph::CheckWeakAcyclicity(*simple_tgds, simple_db, *symbols);
  out.decision = wa.weakly_acyclic ? Decision::kTerminates
                                   : Decision::kDoesNotTerminate;
  out.seconds = Seconds(start);
  return out;
}

util::StatusOr<SyntacticDecision> DecideGuarded(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, const rewrite::LinearizeOptions& options) {
  auto start = Clock::now();
  DeciderInvocationsForTest().fetch_add(1, std::memory_order_relaxed);
  auto gsimple = rewrite::GSimplify(db, tgds, symbols, options);
  if (!gsimple.ok()) return gsimple.status();

  SyntacticDecision out;
  out.used_class = tgd::TgdClass::kGuarded;
  out.simple_tgds = gsimple->tgds.size();
  out.lin_types = gsimple->num_types;
  out.lin_tgds = gsimple->num_linear_tgds;
  graph::WeakAcyclicityResult wa = graph::CheckWeakAcyclicity(
      gsimple->tgds, gsimple->database, *symbols);
  out.decision = wa.weakly_acyclic ? Decision::kTerminates
                                   : Decision::kDoesNotTerminate;
  out.seconds = Seconds(start);
  return out;
}

util::StatusOr<SyntacticDecision> DecideGeneral(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, const LadderOptions& options,
    const LadderResult* precomputed) {
  auto start = Clock::now();
  SyntacticDecision out;
  out.used_class = tgd::TgdClass::kGeneral;
  LadderResult local;
  if (precomputed == nullptr) {
    DeciderInvocationsForTest().fetch_add(1, std::memory_order_relaxed);
    local = RunLadder(*symbols, tgds, db, options);
    precomputed = &local;
  }
  out.decision = precomputed->verdict;
  out.ladder_rung = precomputed->rung;
  out.seconds = Seconds(start);
  return out;
}

util::StatusOr<SyntacticDecision> Decide(core::SymbolTable* symbols,
                                         const tgd::TgdSet& tgds,
                                         const core::Database& db) {
  switch (tgd::Classify(tgds)) {
    case tgd::TgdClass::kSimpleLinear:
      return DecideSimpleLinear(symbols, tgds, db);
    case tgd::TgdClass::kLinear:
      return DecideLinear(symbols, tgds, db);
    case tgd::TgdClass::kGuarded:
      return DecideGuarded(symbols, tgds, db);
    case tgd::TgdClass::kGeneral:
      return DecideGeneral(symbols, tgds, db);
  }
  return util::Status::Internal("unreachable");
}

}  // namespace termination
}  // namespace nuchase
