#ifndef NUCHASE_TERMINATION_ADVISOR_H_
#define NUCHASE_TERMINATION_ADVISOR_H_

#include <optional>
#include <string>

#include "chase/chase.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "termination/ladder.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace termination {

/// High-level report of the materialization advisor: the OBDA use case of
/// Section 1. Given (D, Σ), decide whether materialization (running the
/// chase to completion) is possible, and optionally do it.
struct AdvisorReport {
  tgd::TgdClass tgd_class = tgd::TgdClass::kGeneral;
  Decision decision = Decision::kUnknown;
  /// Which procedure produced the decision ("weak-acyclicity",
  /// "simplification+WA", "linearization+simplification+WA",
  /// "ladder:wa" / "ladder:ja" / "ladder:mfa", "bounded-chase").
  std::string method;
  /// The paper's guarantee |chase(D,Σ)| ≤ |D|·f_C(Σ) (inf when unusable).
  double size_bound = 0;
  /// Depth bound d_C(Σ).
  double depth_bound = 0;
  /// Present when materialization was requested and the chase terminates.
  std::optional<chase::ChaseResult> materialization;
};

struct AdvisorOptions {
  /// Run the chase and attach the materialization when Σ ∈ CT_D.
  bool materialize = true;
  /// Budget for guarded linearization and for the materialization chase.
  std::uint64_t max_types = 100000;
  std::uint64_t max_atoms = 10'000'000;
  /// Chase-engine switches, forwarded to every chase the advisor runs
  /// (the bounded-chase fallback and the materialization). See
  /// chase::ChaseOptions.
  bool use_delta = true;
  bool use_position_index = true;
  /// Worker count for the parallel trigger engine, forwarded likewise
  /// (see chase::ChaseOptions::num_threads: 1 = sequential, 0 = one
  /// worker per hardware thread, default = sequential unless
  /// NUCHASE_THREADS raises it).
  std::uint32_t num_threads = chase::kNumThreadsDefault;
  /// Extent geometry for the materializing chases, forwarded likewise
  /// (see chase::ChaseOptions::extent_log2; 0 = engine default;
  /// observationally invisible either way).
  std::uint32_t extent_log2 = 0;
  /// Interruption and observation hooks, likewise forwarded to every
  /// chase the advisor runs. A cancelled materialization surfaces as
  /// ResourceExhausted. None are owned; all must outlive the call.
  std::uint64_t deadline_ms = 0;
  const chase::CancelToken* cancel = nullptr;
  chase::ChaseObserver* observer = nullptr;
  /// Optional precomputed join plans for Σ (chase::PlanJoins).
  const chase::JoinPlanSet* plans = nullptr;
  /// Reliance-based cross-rule round scheduling, forwarded to every
  /// chase the advisor runs (results identical either way; see
  /// chase::ChaseOptions::use_reliances).
  bool use_reliances = true;
  /// Optional precomputed reliance graph for Σ (ignored by chases over
  /// rewritten rule sets, which build their own).
  const graph::RelianceGraph* reliances = nullptr;
  /// Optional precomputed analysis artifacts from a frozen
  /// api::Program (borrowed; must outlive the call): the acyclicity-
  /// ladder run consulted for general Σ before any bounded-chase
  /// fallback, and the memoized class decision for SL/L/G. Either may
  /// be null; the advisor then computes what it needs. `syntactic` is
  /// only honoured when its used_class matches Classify(Σ).
  const LadderResult* ladder = nullptr;
  const SyntacticDecision* syntactic = nullptr;
};

/// Classifies Σ, picks the worst-case-optimal syntactic decider for its
/// class (falling back to the bounded chase for non-guarded sets, where
/// ChTrm is undecidable in general), and optionally materializes
/// chase(D, Σ).
util::StatusOr<AdvisorReport> Advise(core::SymbolTable* symbols,
                                     const tgd::TgdSet& tgds,
                                     const core::Database& db,
                                     const AdvisorOptions& options = {});

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_ADVISOR_H_
