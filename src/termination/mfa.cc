#include "termination/mfa.h"

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "termination/uniform.h"

namespace nuchase {
namespace termination {

namespace {

using core::Term;

/// Where a null came from: the rule and existential ordinal that minted
/// it, and the deepest labelled null among its trigger's frontier images
/// (its provenance parent; absent for depth-1 nulls).
struct NullOrigin {
  tgd::RuleIndex rule = 0;
  std::uint32_t ordinal = 0;
  Term parent;
  bool has_parent = false;
};

/// Records, off the engine's serial null-binding stream, enough
/// provenance to reconstruct the deepest-parent chain of the breaching
/// null when the depth tripwire fires.
class ProvenanceObserver final : public chase::ChaseObserver {
 public:
  explicit ProvenanceObserver(const core::SymbolScope* scope)
      : scope_(scope) {}

  void OnNullsBound(std::uint32_t tgd_index, const Term* nulls,
                    std::size_t num_nulls, const Term* frontier,
                    std::size_t num_frontier) override {
    Term parent;
    bool has_parent = false;
    std::uint32_t parent_depth = 0;
    for (std::size_t i = 0; i < num_frontier; ++i) {
      if (!frontier[i].IsNull()) continue;
      const std::uint32_t d = scope_->depth(frontier[i]);
      if (!has_parent || d > parent_depth) {
        has_parent = true;
        parent_depth = d;
        parent = frontier[i];
      }
    }
    for (std::size_t i = 0; i < num_nulls; ++i) {
      // Nulls are functional in (rule, frontier images), so a re-found
      // null re-reports the same origin; first write wins either way.
      origins_.emplace(
          nulls[i], NullOrigin{tgd_index, static_cast<std::uint32_t>(i),
                               parent, has_parent});
      const std::uint32_t d = scope_->depth(nulls[i]);
      if (!has_deepest_ || d > deepest_depth_) {
        has_deepest_ = true;
        deepest_depth_ = d;
        deepest_ = nulls[i];
      }
    }
  }

  bool has_deepest() const { return has_deepest_; }
  Term deepest() const { return deepest_; }
  const NullOrigin* origin(Term null) const {
    auto it = origins_.find(null);
    return it == origins_.end() ? nullptr : &it->second;
  }

 private:
  const core::SymbolScope* scope_;
  std::unordered_map<Term, NullOrigin> origins_;
  Term deepest_;
  std::uint32_t deepest_depth_ = 0;
  bool has_deepest_ = false;
};

}  // namespace

const char* MfaStatusName(MfaStatus status) {
  switch (status) {
    case MfaStatus::kAcyclic: return "acyclic";
    case MfaStatus::kCyclic: return "cyclic";
    case MfaStatus::kBudget: return "budget";
  }
  return "?";
}

MfaResult CheckMfa(const core::SymbolTable& symbols, const tgd::TgdSet& tgds,
                   const MfaOptions& options) {
  MfaResult out;
  core::SymbolTable scratch = symbols;
  auto critical = MakeCriticalDatabase(&scratch, tgds);
  if (!critical.ok()) return out;  // id space exhausted: kBudget.

  std::size_t total_existentials = 0;
  for (const tgd::Tgd& rule : tgds.tgds()) {
    total_existentials += rule.existential().size();
  }
  const std::uint32_t depth_limit =
      options.max_depth != 0
          ? options.max_depth
          : static_cast<std::uint32_t>(total_existentials) + 2;

  ProvenanceObserver provenance(&scratch);
  chase::ChaseOptions copt;
  copt.variant = chase::ChaseVariant::kSemiOblivious;
  copt.max_atoms = options.max_atoms;
  copt.max_depth = depth_limit;
  copt.num_threads = options.num_threads;
  copt.observer = &provenance;
  chase::ChaseResult run = chase::RunChase(&scratch, tgds, *critical, copt);

  out.critical_atoms = run.instance.size();
  out.max_depth_seen = run.stats.max_depth;
  if (run.outcome == chase::ChaseOutcome::kTerminated) {
    out.status = MfaStatus::kAcyclic;
    return out;
  }
  if (run.outcome != chase::ChaseOutcome::kDepthLimit) return out;

  // Depth tripwire: walk the deepest-parent chain from the breaching
  // null, labelling each link (rule, existential ordinal), until a label
  // repeats — the self-fed null term. With the auto depth limit the
  // chain is longer than the label alphabet, so a repeat is guaranteed;
  // a caller-chosen shallow limit may breach without one (kBudget).
  if (!provenance.has_deepest()) return out;
  std::vector<std::pair<tgd::RuleIndex, std::uint32_t>> labels;
  Term at = provenance.deepest();
  out.witness_null = scratch.TermToString(at);
  while (true) {
    const NullOrigin* origin = provenance.origin(at);
    if (origin == nullptr) break;
    const std::pair<tgd::RuleIndex, std::uint32_t> label(origin->rule,
                                                         origin->ordinal);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == label) {
        // Cycle: steps i..end of the walk so far, breach side first.
        for (std::size_t j = i; j < labels.size(); ++j) {
          const tgd::Tgd& rule = tgds.tgd(labels[j].first);
          out.cycle.push_back(MfaCycleStep{
              labels[j].first, rule.existential()[labels[j].second]});
        }
        out.status = MfaStatus::kCyclic;
        return out;
      }
    }
    labels.push_back(label);
    if (!origin->has_parent) break;
    at = origin->parent;
  }
  return out;
}

}  // namespace termination
}  // namespace nuchase
