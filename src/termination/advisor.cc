#include "termination/advisor.h"

#include "termination/bounds.h"
#include "termination/syntactic_decider.h"

namespace nuchase {
namespace termination {

util::StatusOr<AdvisorReport> Advise(core::SymbolTable* symbols,
                                     const tgd::TgdSet& tgds,
                                     const core::Database& db,
                                     const AdvisorOptions& options) {
  AdvisorReport report;
  report.tgd_class = tgd::Classify(tgds);
  report.depth_bound = DepthBound(report.tgd_class, tgds, *symbols);
  report.size_bound = static_cast<double>(db.size()) *
                      SizeFactor(report.tgd_class, tgds, *symbols);

  if (report.tgd_class == tgd::TgdClass::kGeneral) {
    // Undecidable in general (Proposition 4.2). First the acyclicity
    // ladder (WA → JA → MFA): a certifying rung skips the bounded chase
    // entirely — the static-analysis fast path. Only when no rung
    // certifies does the advisor fall back to chasing D itself, where
    // only termination within budget is a certificate.
    LadderResult local_ladder;
    const LadderResult* ladder = options.ladder;
    if (ladder == nullptr) {
      LadderOptions lopt;
      lopt.mfa.num_threads = options.num_threads;
      local_ladder = RunLadder(*symbols, tgds, db, lopt);
      ladder = &local_ladder;
    }
    if (ladder->verdict == Decision::kTerminates) {
      report.decision = Decision::kTerminates;
      report.method = "ladder:" + ladder->rung;
    } else {
      chase::ChaseOptions engine;
      engine.use_delta = options.use_delta;
      engine.use_position_index = options.use_position_index;
      engine.num_threads = options.num_threads;
      engine.extent_log2 = options.extent_log2;
      engine.deadline_ms = options.deadline_ms;
      engine.cancel = options.cancel;
      engine.observer = options.observer;
      engine.plans = options.plans;
      engine.use_reliances = options.use_reliances;
      engine.reliances = options.reliances;
      NaiveDecision naive =
          DecideByChase(symbols, tgds, db, options.max_atoms, engine);
      report.decision = naive.decision;
      report.method = "bounded-chase";
    }
  } else {
    Decision decision;
    if (options.syntactic != nullptr &&
        options.syntactic->used_class == report.tgd_class) {
      decision = options.syntactic->decision;
    } else {
      rewrite::LinearizeOptions lin_options;
      lin_options.max_types = options.max_types;
      util::StatusOr<SyntacticDecision> syn =
          report.tgd_class == tgd::TgdClass::kGuarded
              ? DecideGuarded(symbols, tgds, db, lin_options)
              : Decide(symbols, tgds, db);
      if (!syn.ok()) return syn.status();
      decision = syn->decision;
    }
    report.decision = decision;
    switch (report.tgd_class) {
      case tgd::TgdClass::kSimpleLinear:
        report.method = "weak-acyclicity";
        break;
      case tgd::TgdClass::kLinear:
        report.method = "simplification+WA";
        break;
      default:
        report.method = "linearization+simplification+WA";
        break;
    }
  }

  if (options.materialize && report.decision == Decision::kTerminates) {
    chase::ChaseOptions chase_options;
    chase_options.max_atoms = options.max_atoms;
    chase_options.use_delta = options.use_delta;
    chase_options.use_position_index = options.use_position_index;
    chase_options.num_threads = options.num_threads;
    chase_options.extent_log2 = options.extent_log2;
    chase_options.deadline_ms = options.deadline_ms;
    chase_options.cancel = options.cancel;
    chase_options.observer = options.observer;
    chase_options.plans = options.plans;
    chase_options.use_reliances = options.use_reliances;
    chase_options.reliances = options.reliances;
    chase::ChaseResult result =
        chase::RunChase(symbols, tgds, db, chase_options);
    if (result.outcome == chase::ChaseOutcome::kCancelled) {
      return util::Status::ResourceExhausted(
          "materialization cancelled (CancelToken fired or deadline "
          "elapsed) before completing");
    }
    if (!result.Terminated()) {
      return util::Status::ResourceExhausted(
          "decider certified termination but the materialization budget "
          "was exceeded; raise AdvisorOptions::max_atoms");
    }
    report.materialization = std::move(result);
  }
  return report;
}

}  // namespace termination
}  // namespace nuchase
