#include "termination/uniform.h"

#include <vector>

namespace nuchase {
namespace termination {

util::StatusOr<core::Database> MakeCriticalDatabase(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const std::string& constant) {
  core::Database db;
  auto c = symbols->InternConstant(constant);
  if (!c.ok()) return c.status();
  for (core::PredicateId pred : tgds.SchemaPredicates()) {
    std::vector<core::Term> args(symbols->arity(pred), *c);
    util::Status st = db.AddFact(core::Atom(pred, std::move(args)));
    (void)st;  // cannot fail: all arguments are constants
  }
  return db;
}

util::StatusOr<SyntacticDecision> DecideUniform(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds) {
  auto critical = MakeCriticalDatabase(symbols, tgds);
  if (!critical.ok()) return critical.status();
  return Decide(symbols, tgds, *critical);
}

}  // namespace termination
}  // namespace nuchase
