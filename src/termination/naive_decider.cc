#include "termination/naive_decider.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "termination/bounds.h"

namespace nuchase {
namespace termination {

const char* DecisionName(Decision d) {
  switch (d) {
    case Decision::kTerminates:
      return "terminates";
    case Decision::kDoesNotTerminate:
      return "does-not-terminate";
    case Decision::kUnknown:
      return "unknown";
  }
  return "?";
}

NaiveDecision DecideByChase(core::SymbolTable* symbols,
                            const tgd::TgdSet& tgds,
                            const core::Database& db,
                            std::uint64_t hard_atom_cap,
                            const chase::ChaseOptions& engine) {
  NaiveDecision out;
  tgd::TgdClass clazz = tgd::Classify(tgds);
  out.depth_bound = DepthBound(clazz, tgds, *symbols);
  out.size_bound =
      static_cast<double>(db.size()) * SizeFactor(clazz, tgds, *symbols);

  // Engine switches (and the interruption hooks — token, deadline,
  // observer, shared plans) are caller-configurable; the
  // decision-relevant fields below (variant, budgets) belong to the
  // procedure.
  chase::ChaseOptions options;
  options.use_delta = engine.use_delta;
  options.use_position_index = engine.use_position_index;
  options.num_threads = engine.num_threads;
  options.extent_log2 = engine.extent_log2;
  options.deadline_ms = engine.deadline_ms;
  options.cancel = engine.cancel;
  options.observer = engine.observer;
  options.plans = engine.plans;
  options.use_reliances = engine.use_reliances;
  options.reliances = engine.reliances;
  options.variant = chase::ChaseVariant::kSemiOblivious;
  // Depth budget: exceeding d_C(Σ) certifies non-termination
  // (Lemmas 6.2 / 7.4 / 8.2 via Theorems 6.4 / 7.5 / 8.3).
  bool depth_budget_exact = false;
  if (std::isfinite(out.depth_bound) &&
      out.depth_bound < static_cast<double>(
                            std::numeric_limits<std::uint32_t>::max())) {
    options.max_depth = static_cast<std::uint32_t>(out.depth_bound);
    depth_budget_exact = true;
  }
  // Atom budget: exceeding |D|·f_C(Σ) certifies non-termination
  // (items (2) of the same theorems).
  bool atom_budget_exact = false;
  options.max_atoms = hard_atom_cap;
  if (std::isfinite(out.size_bound) &&
      out.size_bound < static_cast<double>(hard_atom_cap)) {
    options.max_atoms = static_cast<std::uint64_t>(out.size_bound);
    atom_budget_exact = true;
  }

  auto start = std::chrono::steady_clock::now();
  chase::ChaseResult result = chase::RunChase(symbols, tgds, db, options);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out.outcome = result.outcome;
  out.atoms = result.instance.size();
  out.max_depth = result.stats.max_depth;

  switch (result.outcome) {
    case chase::ChaseOutcome::kTerminated:
      out.decision = Decision::kTerminates;
      break;
    case chase::ChaseOutcome::kDepthLimit:
      out.decision = depth_budget_exact ? Decision::kDoesNotTerminate
                                        : Decision::kUnknown;
      break;
    case chase::ChaseOutcome::kAtomLimit:
      out.decision = atom_budget_exact ? Decision::kDoesNotTerminate
                                       : Decision::kUnknown;
      break;
    case chase::ChaseOutcome::kRoundLimit:
      out.decision = Decision::kUnknown;
      break;
    case chase::ChaseOutcome::kCancelled:
      // An interrupted run certifies nothing in either direction.
      out.decision = Decision::kUnknown;
      break;
    case chase::ChaseOutcome::kResourceExhausted:
      // Ran out of null ids before any budget: certifies nothing.
      out.decision = Decision::kUnknown;
      break;
  }
  return out;
}

}  // namespace termination
}  // namespace nuchase
