#include "termination/bounds.h"

#include <cmath>
#include <limits>

namespace nuchase {
namespace termination {

namespace {

double SchemaSize(const tgd::TgdSet& tgds) {
  return static_cast<double>(tgds.SchemaPredicates().size());
}

double Arity(const tgd::TgdSet& tgds, const core::SymbolTable& symbols) {
  return static_cast<double>(tgds.MaxArity(symbols));
}

}  // namespace

double DepthBoundSL(const tgd::TgdSet& tgds,
                    const core::SymbolTable& symbols) {
  return SchemaSize(tgds) * Arity(tgds, symbols);
}

double DepthBoundL(const tgd::TgdSet& tgds,
                   const core::SymbolTable& symbols) {
  double ar = Arity(tgds, symbols);
  return SchemaSize(tgds) * std::pow(ar, ar + 1);
}

double DepthBoundG(const tgd::TgdSet& tgds,
                   const core::SymbolTable& symbols) {
  double ar = Arity(tgds, symbols);
  double sch = SchemaSize(tgds);
  return sch * std::pow(ar, 2 * ar + 1) *
         std::exp2(sch * std::pow(ar, ar));
}

double DepthBound(tgd::TgdClass clazz, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols) {
  switch (clazz) {
    case tgd::TgdClass::kSimpleLinear:
      return DepthBoundSL(tgds, symbols);
    case tgd::TgdClass::kLinear:
      return DepthBoundL(tgds, symbols);
    case tgd::TgdClass::kGuarded:
      return DepthBoundG(tgds, symbols);
    case tgd::TgdClass::kGeneral:
      return std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

double SizeFactor(double depth, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols) {
  double norm = static_cast<double>(tgds.Norm(symbols));
  double ar = Arity(tgds, symbols);
  return (depth + 1) * std::pow(norm, 2 * ar * (depth + 1));
}

double SizeFactorSL(const tgd::TgdSet& tgds,
                    const core::SymbolTable& symbols) {
  return SizeFactor(DepthBoundSL(tgds, symbols), tgds, symbols);
}

double SizeFactorL(const tgd::TgdSet& tgds,
                   const core::SymbolTable& symbols) {
  return SizeFactor(DepthBoundL(tgds, symbols), tgds, symbols);
}

double SizeFactorG(const tgd::TgdSet& tgds,
                   const core::SymbolTable& symbols) {
  return SizeFactor(DepthBoundG(tgds, symbols), tgds, symbols);
}

double SizeFactor(tgd::TgdClass clazz, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols) {
  return SizeFactor(DepthBound(clazz, tgds, symbols), tgds, symbols);
}

double GtreeLevelBound(std::uint32_t depth, const tgd::TgdSet& tgds,
                       const core::SymbolTable& symbols) {
  double norm = static_cast<double>(tgds.Norm(symbols));
  double ar = static_cast<double>(tgds.MaxArity(symbols));
  return std::pow(norm, 2 * ar * (depth + 1));
}

}  // namespace termination
}  // namespace nuchase
