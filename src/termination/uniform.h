#ifndef NUCHASE_TERMINATION_UNIFORM_H_
#define NUCHASE_TERMINATION_UNIFORM_H_

#include "core/database.h"
#include "core/symbol_table.h"
#include "termination/naive_decider.h"
#include "termination/syntactic_decider.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace termination {

/// The critical database D_Σ of [8] (used by the paper's hardness
/// arguments, Section 6): every atom that can be formed from the
/// predicates of sch(Σ) and one fixed constant,
///   D_Σ = { R(c, ..., c) | R ∈ sch(Σ) }.
///
/// For the semi-oblivious chase, termination on D_Σ is equivalent to
/// termination on EVERY database (Marnette [23]): any database maps
/// homomorphically onto D_Σ, and semi-oblivious derivations transfer
/// along homomorphisms. This turns the uniform problem into one
/// non-uniform instance.
/// Fails (kResourceExhausted, propagated from the symbol table) only if
/// the constant id space is already exhausted.
util::StatusOr<core::Database> MakeCriticalDatabase(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const std::string& constant = "crit");

/// Uniform semi-oblivious chase termination: is Σ ∈ CT (i.e. Σ ∈ CT_D
/// for every database D)? Decided as ChTrm(D_Σ, Σ) via the
/// class-appropriate syntactic procedure — exact for SL/L/G; for
/// non-guarded sets (undecidable, Proposition 4.2) the acyclicity
/// ladder applies and kUnknown means "no rung certifies".
util::StatusOr<SyntacticDecision> DecideUniform(core::SymbolTable* symbols,
                                                const tgd::TgdSet& tgds);

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_UNIFORM_H_
