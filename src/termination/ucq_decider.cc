#include "termination/ucq_decider.h"

#include <string>
#include <unordered_set>

#include "graph/weak_acyclicity.h"
#include "query/evaluator.h"
#include "rewrite/simplify.h"
#include "tgd/classify.h"

namespace nuchase {
namespace termination {

namespace {

/// Disjunct ∃x̄ R(x_{ℓ1}, ..., x_{ℓn}) for original predicate R and
/// equality pattern ℓ̄ (for SL the pattern is the identity).
query::ConjunctiveQuery MakeDisjunct(core::SymbolTable* symbols,
                                     core::PredicateId pred,
                                     const std::vector<std::uint32_t>&
                                         pattern) {
  query::ConjunctiveQuery cq;
  std::vector<core::Term> args;
  args.reserve(pattern.size());
  for (std::uint32_t id : pattern) {
    args.push_back(symbols->InternVariable(
        "Xq_" + symbols->predicate_name(pred) + "_" + std::to_string(id)));
  }
  cq.atoms.emplace_back(pred, std::move(args));
  return cq;
}

}  // namespace

util::StatusOr<query::UnionOfConjunctiveQueries> BuildTerminationUcq(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds) {
  query::UnionOfConjunctiveQueries ucq;
  tgd::TgdClass clazz = tgd::Classify(tgds);

  if (clazz == tgd::TgdClass::kSimpleLinear) {
    // Theorem 6.6: P_Σ directly over sch(Σ).
    for (core::PredicateId pred :
         graph::SupportPredicates(tgds, *symbols)) {
      std::vector<std::uint32_t> identity;
      for (std::uint32_t i = 1; i <= symbols->arity(pred); ++i) {
        identity.push_back(i);
      }
      ucq.disjuncts.push_back(MakeDisjunct(symbols, pred, identity));
    }
    return ucq;
  }

  if (clazz == tgd::TgdClass::kLinear) {
    // Theorem 7.7: P_simple(Σ), translated back through the simplifier's
    // origin registry into (predicate, pattern) pairs.
    rewrite::Simplifier simplifier(symbols);
    auto simple_tgds = simplifier.SimplifyTgds(tgds);
    if (!simple_tgds.ok()) return simple_tgds.status();
    for (core::PredicateId simplified :
         graph::SupportPredicates(*simple_tgds, *symbols)) {
      core::PredicateId original = core::kInvalidPredicate;
      std::vector<std::uint32_t> pattern;
      if (!simplifier.Origin(simplified, &original, &pattern)) {
        // A predicate of simple(Σ) not minted by this simplifier cannot
        // occur; defensive skip.
        continue;
      }
      ucq.disjuncts.push_back(MakeDisjunct(symbols, original, pattern));
    }
    return ucq;
  }

  return util::Status::FailedPrecondition(
      "the UCQ-based data-complexity decider applies to SL and L only");
}

util::StatusOr<Decision> DecideByUcq(core::SymbolTable* symbols,
                                     const tgd::TgdSet& tgds,
                                     const core::Database& db) {
  auto ucq = BuildTerminationUcq(symbols, tgds);
  if (!ucq.ok()) return ucq.status();
  return query::Satisfies(db, *ucq) ? Decision::kDoesNotTerminate
                                    : Decision::kTerminates;
}

}  // namespace termination
}  // namespace nuchase
