#ifndef NUCHASE_TERMINATION_SYNTACTIC_DECIDER_H_
#define NUCHASE_TERMINATION_SYNTACTIC_DECIDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/database.h"
#include "core/symbol_table.h"
#include "rewrite/linearize.h"
#include "termination/ladder.h"
#include "termination/naive_decider.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace termination {

/// Outcome of a syntactic (characterization-based) ChTrm decision.
struct SyntacticDecision {
  Decision decision = Decision::kUnknown;
  /// Class whose characterization was applied.
  tgd::TgdClass used_class = tgd::TgdClass::kGeneral;
  /// Pipeline stage sizes (0 when the stage was not needed):
  std::uint64_t simple_tgds = 0;  ///< |simple(Σ)| or |gsimple(Σ)|.
  std::uint64_t lin_types = 0;    ///< Σ-types generated (guarded only).
  std::uint64_t lin_tgds = 0;     ///< |lin(Σ)| fragment (guarded only).
  /// DecideGeneral only: the acyclicity-ladder rung that certified
  /// ("wa" / "ja" / "mfa"); empty for the exact class procedures and
  /// for kUnknown.
  std::string ladder_rung;
  /// Wall time in seconds.
  double seconds = 0;
};

/// ChTrm(SL) (Theorem 6.4): Σ ∈ CT_D iff Σ is D-weakly-acyclic. Fails
/// (FailedPrecondition) if Σ is not simple linear.
util::StatusOr<SyntacticDecision> DecideSimpleLinear(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db);

/// ChTrm(L) (Theorem 7.5): Σ ∈ CT_D iff simple(Σ) is
/// simple(D)-weakly-acyclic. Fails if Σ is not linear.
util::StatusOr<SyntacticDecision> DecideLinear(core::SymbolTable* symbols,
                                               const tgd::TgdSet& tgds,
                                               const core::Database& db);

/// ChTrm(G) (Theorem 8.3): Σ ∈ CT_D iff gsimple(Σ) is
/// gsimple(D)-weakly-acyclic. Fails if Σ is not guarded, or with
/// ResourceExhausted when the type budget is hit.
util::StatusOr<SyntacticDecision> DecideGuarded(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db,
    const rewrite::LinearizeOptions& options = {});

/// ChTrm for arbitrary TGDs via the acyclicity ladder (WA → JA → MFA,
/// termination/ladder.h): kTerminates with the certifying rung in
/// SyntacticDecision::ladder_rung when some rung proves Σ ∈ CT_D,
/// kUnknown otherwise — never kDoesNotTerminate, since ChTrm(TGD) is
/// undecidable (Proposition 4.2) and every rung is merely sufficient.
/// `precomputed` (borrowed) short-circuits to a caller-cached ladder
/// run, the frozen-Program cache path.
util::StatusOr<SyntacticDecision> DecideGeneral(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, const LadderOptions& options = {},
    const LadderResult* precomputed = nullptr);

/// Dispatches on Classify(Σ): SL → DecideSimpleLinear, L → DecideLinear,
/// G → DecideGuarded, and — since the ladder landed — general TGDs to
/// DecideGeneral's sufficient conditions (kUnknown when no rung
/// certifies; the exact procedures of the three classes never return
/// kUnknown).
util::StatusOr<SyntacticDecision> Decide(core::SymbolTable* symbols,
                                         const tgd::TgdSet& tgds,
                                         const core::Database& db);

/// Test hook: count of syntactic-decision computations (the bodies of
/// the four Decide* procedures) since process start. The facade caching
/// test pins that repeated Session::Decide/Advise calls over one frozen
/// Program recompute nothing.
std::atomic<std::uint64_t>& DeciderInvocationsForTest();

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_SYNTACTIC_DECIDER_H_
