#include "termination/looping.h"

namespace nuchase {
namespace termination {

util::StatusOr<LoopedProgram> ApplyLoopingOperator(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, core::PredicateId goal,
    const std::string& loop_predicate) {
  if (symbols->arity(goal) != 0) {
    return util::Status::InvalidArgument(
        "the looping operator's goal must be a 0-ary predicate");
  }
  for (core::PredicateId pred : tgds.SchemaPredicates()) {
    if (symbols->predicate_name(pred) == loop_predicate) {
      return util::Status::InvalidArgument(
          "loop predicate '" + loop_predicate + "' already occurs in "
          "sch(Sigma); pick a fresh name");
    }
  }
  auto loop = symbols->InternPredicate(loop_predicate, 2);
  if (!loop.ok()) return loop.status();

  LoopedProgram out;
  for (const tgd::Tgd& rule : tgds.tgds()) {
    out.tgds.Add(rule);
  }
  // R(), Loop(x, y) → ∃z Loop(y, z). Guard: Loop(x, y).
  core::Term x = symbols->InternVariable("loop__x");
  core::Term y = symbols->InternVariable("loop__y");
  core::Term z = symbols->InternVariable("loop__z");
  auto rule = tgd::Tgd::Create(
      {core::Atom(goal, {}), core::Atom(*loop, {x, y})},
      {core::Atom(*loop, {y, z})});
  if (!rule.ok()) return rule.status();
  out.tgds.Add(std::move(*rule));

  for (const core::Atom& fact : db.facts()) {
    NUCHASE_RETURN_IF_ERROR(out.database.AddFact(fact));
  }
  NUCHASE_RETURN_IF_ERROR(
      out.database.AddFact(symbols, loop_predicate,
                           {"loop__c0", "loop__c1"}));
  return out;
}

}  // namespace termination
}  // namespace nuchase
