#ifndef NUCHASE_TERMINATION_NAIVE_DECIDER_H_
#define NUCHASE_TERMINATION_NAIVE_DECIDER_H_

#include <cstdint>

#include "chase/chase.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace termination {

/// Three-valued answer of a ChTrm decider.
enum class Decision {
  kTerminates,        ///< Σ ∈ CT_D.
  kDoesNotTerminate,  ///< Σ ∉ CT_D.
  kUnknown,           ///< A practical budget was hit before a certificate.
};

const char* DecisionName(Decision d);

/// Outcome of the naive decision procedure together with the run's
/// certificates and budgets.
struct NaiveDecision {
  Decision decision = Decision::kUnknown;
  chase::ChaseOutcome outcome = chase::ChaseOutcome::kTerminated;
  /// Atoms materialized before stopping.
  std::uint64_t atoms = 0;
  /// maxdepth observed.
  std::uint32_t max_depth = 0;
  /// The class-specific depth bound d_C(Σ) used (inf if unusable).
  double depth_bound = 0;
  /// The size bound |D|·f_C(Σ) (inf if unusable).
  double size_bound = 0;
  /// Wall time of the chase, in seconds.
  double seconds = 0;
};

/// The naive ChTrm procedure sketched in Section 3 (and made worst-case
/// tight by items (2) of Theorems 6.4 / 7.5 / 8.3): chase D w.r.t. Σ and
///   - accept when the chase terminates;
///   - reject when a term of depth > d_C(Σ) appears (Lemmas 6.2/7.4/8.2:
///     finite chase implies maxdepth ≤ d_C(Σ)) or when the instance
///     exceeds |D|·f_C(Σ) atoms;
///   - report kUnknown when only the hard practical cap stopped the run
///     (possible for guarded sets, whose bounds overflow quickly).
/// `engine` carries the chase-engine switches (use_delta,
/// use_position_index) into the bounded runs; the decision-relevant
/// fields (variant, budgets) are owned by the procedure and overridden.
NaiveDecision DecideByChase(core::SymbolTable* symbols,
                            const tgd::TgdSet& tgds,
                            const core::Database& db,
                            std::uint64_t hard_atom_cap = 10'000'000,
                            const chase::ChaseOptions& engine = {});

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_NAIVE_DECIDER_H_
