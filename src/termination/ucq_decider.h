#ifndef NUCHASE_TERMINATION_UCQ_DECIDER_H_
#define NUCHASE_TERMINATION_UCQ_DECIDER_H_

#include "core/database.h"
#include "core/symbol_table.h"
#include "query/ucq.h"
#include "termination/naive_decider.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace termination {

/// Builds the UCQ Q_Σ of Theorem 6.6 (Σ ∈ SL) or Theorem 7.7 (Σ ∈ L),
/// which depends only on Σ: Σ is not D-weakly-acyclic (resp. simple(Σ)
/// not simple(D)-weakly-acyclic) iff D satisfies Q_Σ. The AC0
/// data-complexity procedure is: precompute Q_Σ, then evaluate it over D.
///
/// For SL, Q_Σ has a disjunct ∃x̄ R(x̄) per R ∈ P_Σ. For L, the disjunct
/// for the simplified predicate R_ℓ̄ is R(x_ℓ1, ..., x_ℓn) — repeated
/// variables encode the equality pattern (Appendix E).
util::StatusOr<query::UnionOfConjunctiveQueries> BuildTerminationUcq(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds);

/// The data-complexity decision: Σ ∈ CT_D iff D does not satisfy Q_Σ.
/// (Evaluate a prebuilt Q_Σ with query::Satisfies to amortize the
/// Σ-dependent construction across databases.)
util::StatusOr<Decision> DecideByUcq(core::SymbolTable* symbols,
                                     const tgd::TgdSet& tgds,
                                     const core::Database& db);

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_UCQ_DECIDER_H_
