#ifndef NUCHASE_TERMINATION_LOOPING_H_
#define NUCHASE_TERMINATION_LOOPING_H_

#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace termination {

/// Output of the looping operator.
struct LoopedProgram {
  tgd::TgdSet tgds;
  core::Database database;
};

/// The looping operator of [8] (used by the paper for the
/// PTIME-hardness of ChTrm(G) in data complexity, Theorem 8.5): given
/// (D, Σ) and a 0-ary goal predicate R, produce (D', Σ') with
///   Σ' = Σ ∪ { R(), Loop(x, y) → ∃z Loop(y, z) },
///   D' = D ∪ { Loop(c₀, c₁) },
/// so that
///   R() ∈ chase(D, Σ)   iff   Σ' ∉ CT_{D'}.
/// The added rule is guarded (Loop(x, y) guards both variables; R()
/// adds none), so Σ ∈ G implies Σ' ∈ G: propositional atom entailment
/// reduces to the COMPLEMENT of non-uniform chase termination within
/// the guarded class. `loop_predicate` names the fresh binary predicate
/// (must not occur in sch(Σ)).
///
/// Fails (InvalidArgument) if `goal` is not 0-ary or the loop predicate
/// already occurs in Σ.
util::StatusOr<LoopedProgram> ApplyLoopingOperator(
    core::SymbolTable* symbols, const tgd::TgdSet& tgds,
    const core::Database& db, core::PredicateId goal,
    const std::string& loop_predicate = "Loop__");

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_LOOPING_H_
