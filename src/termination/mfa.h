#ifndef NUCHASE_TERMINATION_MFA_H_
#define NUCHASE_TERMINATION_MFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace termination {

/// How the MFA-style critical-instance check ended.
enum class MfaStatus {
  /// The semi-oblivious chase of the critical database terminated within
  /// budget: Σ ∈ CT uniformly (Marnette — SO-termination on D_Σ implies
  /// termination on every database).
  kAcyclic,
  /// The null-depth tripwire fired and the deepest null's provenance
  /// chain passes one (rule, existential) twice: a self-fed null term,
  /// the machine-readable witness that the acyclicity test failed.
  /// Says nothing about non-termination — only that this rung cannot
  /// certify Σ.
  kCyclic,
  /// A budget other than the depth tripwire stopped the chase (atom
  /// budget, null-id space, cancellation): inconclusive.
  kBudget,
};

const char* MfaStatusName(MfaStatus status);

/// One step of the self-fed-null witness: a null minted for existential
/// variable `variable` of rule `rule` along the deepest provenance chain.
struct MfaCycleStep {
  tgd::RuleIndex rule = 0;
  core::Term variable;
};

struct MfaResult {
  MfaStatus status = MfaStatus::kBudget;
  /// Atoms the critical-instance chase materialized before stopping.
  std::uint64_t critical_atoms = 0;
  /// Deepest null depth observed (= the tripwire's breach depth when
  /// kCyclic).
  std::uint32_t max_depth_seen = 0;
  /// kCyclic witness: the (rule, existential) cycle along the breaching
  /// null's deepest-parent chain, innermost repeat first. Empty
  /// otherwise.
  std::vector<MfaCycleStep> cycle;
  /// kCyclic: the breaching null rendered against the check's private
  /// scope (e.g. "_:n17"), for diagnostics.
  std::string witness_null;
};

struct MfaOptions {
  /// Atom budget of the critical-instance chase.
  std::uint64_t max_atoms = 100000;
  /// Null-depth tripwire; 0 = auto: (total existential variables of Σ)
  /// + 2. Any limit ≥ that total pigeonhole-guarantees a self-fed
  /// witness on a breach, since the deepest-parent chain steps down one
  /// depth level per null and each level is labelled by one of the
  /// |existentials| (rule, variable) pairs.
  std::uint32_t max_depth = 0;
  /// Worker count for the chase (results byte-identical either way).
  std::uint32_t num_threads = chase::kNumThreadsDefault;
};

/// The MFA rung of the acyclicity ladder: chases the critical database
/// D_Σ (termination/uniform.h) with the semi-oblivious engine and a
/// null-depth tripwire. kAcyclic is an exact certificate of uniform
/// termination; kCyclic/kBudget are inconclusive, with kCyclic carrying
/// the self-fed-null witness. Works on a private copy of `symbols`.
MfaResult CheckMfa(const core::SymbolTable& symbols, const tgd::TgdSet& tgds,
                   const MfaOptions& options = {});

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_MFA_H_
