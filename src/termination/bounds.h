#ifndef NUCHASE_TERMINATION_BOUNDS_H_
#define NUCHASE_TERMINATION_BOUNDS_H_

#include "core/symbol_table.h"
#include "tgd/classify.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace termination {

/// The database-independent depth bounds d_C(Σ) of Section 5:
///   d_SL(Σ) = |sch(Σ)| · ar(Σ)
///   d_L(Σ)  = |sch(Σ)| · ar(Σ)^(ar(Σ)+1)
///   d_G(Σ)  = |sch(Σ)| · ar(Σ)^(2·ar(Σ)+1) · 2^(|sch(Σ)|·ar(Σ)^ar(Σ))
/// Values can overflow any integer type for guarded sets; doubles
/// saturate to +inf, which callers treat as "no usable budget".
double DepthBoundSL(const tgd::TgdSet& tgds,
                    const core::SymbolTable& symbols);
double DepthBoundL(const tgd::TgdSet& tgds, const core::SymbolTable& symbols);
double DepthBoundG(const tgd::TgdSet& tgds, const core::SymbolTable& symbols);

/// d_C(Σ) for the given class (kGeneral has no bound: returns +inf).
double DepthBound(tgd::TgdClass clazz, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols);

/// The generic size bound of Proposition 5.2 with depth d:
///   (d+1) · ||Σ||^(2·ar(Σ)·(d+1)),
/// so that |chase(D,Σ)| ≤ |D| · SizeFactor(...). With d = d_C(Σ) this is
/// the f_C(Σ) of Theorems 6.4 / 7.5 / 8.3.
double SizeFactor(double depth, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols);

/// f_C(Σ) = SizeFactor(d_C(Σ), Σ).
double SizeFactorSL(const tgd::TgdSet& tgds,
                    const core::SymbolTable& symbols);
double SizeFactorL(const tgd::TgdSet& tgds, const core::SymbolTable& symbols);
double SizeFactorG(const tgd::TgdSet& tgds, const core::SymbolTable& symbols);
double SizeFactor(tgd::TgdClass clazz, const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols);

/// Lemma 5.1's per-depth tree bound ||Σ||^(2·ar(Σ)·(i+1)).
double GtreeLevelBound(std::uint32_t depth, const tgd::TgdSet& tgds,
                       const core::SymbolTable& symbols);

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_BOUNDS_H_
