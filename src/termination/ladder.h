#ifndef NUCHASE_TERMINATION_LADDER_H_
#define NUCHASE_TERMINATION_LADDER_H_

#include <string>

#include "core/database.h"
#include "core/symbol_table.h"
#include "graph/joint_acyclicity.h"
#include "graph/weak_acyclicity.h"
#include "termination/mfa.h"
#include "termination/naive_decider.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace termination {

struct LadderOptions {
  /// Budgets of the MFA rung's critical-instance chase.
  MfaOptions mfa;
  /// Skip the MFA rung (the only one that chases) — the cheap mode for
  /// callers that must never run a chase at all; Session::Analyze and
  /// the deciders run the full ladder.
  bool run_mfa = true;
};

/// The acyclicity ladder: WA (D-relative) → JA → MFA, cheapest rung
/// first, each rung carrying its machine-readable witness. Every rung is
/// a *sufficient* condition for semi-oblivious termination on D — WA
/// relative to the given database, JA and MFA uniformly — so the ladder
/// verdict is kTerminates or kUnknown, never kDoesNotTerminate.
struct LadderResult {
  /// Rung 1: D-relative weak acyclicity (witness: supported special-
  /// cycle positions).
  graph::WeakAcyclicityResult wa;
  /// Whether Σ is weakly acyclic for EVERY database (the uniform claim
  /// JA subsumes).
  bool uniformly_weakly_acyclic = false;
  /// Rung 2: joint acyclicity (witness: existential-variable cycle).
  graph::JointAcyclicityResult ja;
  /// Rung 3: MFA via the critical-instance chase (witness: self-fed
  /// null). Only meaningful when mfa_ran.
  bool mfa_ran = false;
  MfaResult mfa;
  /// kTerminates when some rung certifies Σ, else kUnknown.
  Decision verdict = Decision::kUnknown;
  /// The certifying rung: "wa", "ja", "mfa"; empty when kUnknown.
  std::string rung;
};

/// Runs the ladder bottom-up, short-circuiting the chase-backed MFA rung
/// when a cheaper rung already certifies (WA and JA are always computed
/// — both are near-free and the diagnostics surface their witnesses).
LadderResult RunLadder(const core::SymbolTable& symbols,
                       const tgd::TgdSet& tgds, const core::Database& db,
                       const LadderOptions& options = {});

}  // namespace termination
}  // namespace nuchase

#endif  // NUCHASE_TERMINATION_LADDER_H_
