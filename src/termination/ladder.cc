#include "termination/ladder.h"

namespace nuchase {
namespace termination {

LadderResult RunLadder(const core::SymbolTable& symbols,
                       const tgd::TgdSet& tgds, const core::Database& db,
                       const LadderOptions& options) {
  LadderResult out;
  out.wa = graph::CheckWeakAcyclicity(tgds, db, symbols);
  out.uniformly_weakly_acyclic = out.wa.special_cycle_positions.empty();
  if (out.wa.weakly_acyclic) {
    out.verdict = Decision::kTerminates;
    out.rung = "wa";
  }
  out.ja = graph::CheckJointAcyclicity(tgds, symbols);
  if (out.verdict == Decision::kUnknown && out.ja.jointly_acyclic) {
    out.verdict = Decision::kTerminates;
    out.rung = "ja";
  }
  if (out.verdict == Decision::kUnknown && options.run_mfa) {
    out.mfa_ran = true;
    out.mfa = CheckMfa(symbols, tgds, options.mfa);
    if (out.mfa.status == MfaStatus::kAcyclic) {
      out.verdict = Decision::kTerminates;
      out.rung = "mfa";
    }
  }
  return out;
}

}  // namespace termination
}  // namespace nuchase
