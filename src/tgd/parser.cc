#include "tgd/parser.h"

#include <cctype>
#include <vector>

namespace nuchase {
namespace tgd {
namespace {

using core::Atom;
using core::Term;
using util::Status;
using util::StatusOr;

enum class TokKind { kIdent, kLParen, kRParen, kComma, kArrow, kDot, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '(') {
        out.push_back({TokKind::kLParen, "(", line_});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, ")", line_});
        ++pos_;
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ",", line_});
        ++pos_;
      } else if (c == '.') {
        out.push_back({TokKind::kDot, ".", line_});
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '>') {
        out.push_back({TokKind::kArrow, "->", line_});
        pos_ += 2;
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '[' ) {
        // Identifiers: alphanumerics plus _ ' [ ] | { } so that generated
        // predicate names like "R[1,2,1]" round-trip. Brackets must
        // balance; commas inside brackets belong to the identifier.
        std::size_t start = pos_;
        int bracket_depth = 0;
        while (pos_ < text_.size()) {
          char d = text_[pos_];
          if (d == '[' || d == '{') {
            ++bracket_depth;
          } else if (d == ']' || d == '}') {
            --bracket_depth;
          } else if (bracket_depth > 0) {
            // anything except a newline is allowed inside brackets
            if (d == '\n') break;
          } else if (!(std::isalnum(static_cast<unsigned char>(d)) ||
                       d == '_' || d == '\'')) {
            break;
          }
          ++pos_;
        }
        out.push_back({TokKind::kIdent, text_.substr(start, pos_ - start),
                       line_});
      } else {
        return Status::InvalidArgument("line " + std::to_string(line_) +
                                       ": unexpected character '" +
                                       std::string(1, c) + "'");
      }
    }
    out.push_back({TokKind::kEnd, "", line_});
    return out;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(core::SymbolTable* symbols, std::vector<Token> tokens)
      : symbols_(symbols), tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseAll() {
    Program program;
    while (Peek().kind != TokKind::kEnd) {
      NUCHASE_RETURN_IF_ERROR(ParseStatement(&program));
    }
    return program;
  }

 private:
  Status ParseStatement(Program* program) {
    // Parse a comma-separated atom list; decide fact vs rule at '->'/'.'.
    std::vector<RawAtom> first;
    NUCHASE_RETURN_IF_ERROR(ParseAtomList(&first));
    if (Peek().kind == TokKind::kArrow) {
      Advance();
      std::vector<RawAtom> second;
      NUCHASE_RETURN_IF_ERROR(ParseAtomList(&second));
      NUCHASE_RETURN_IF_ERROR(Expect(TokKind::kDot));
      auto body = MaterializeAtoms(first, /*as_variables=*/true);
      if (!body.ok()) return body.status();
      auto head = MaterializeAtoms(second, /*as_variables=*/true);
      if (!head.ok()) return head.status();
      auto rule = Tgd::Create(std::move(*body), std::move(*head));
      if (!rule.ok()) return rule.status();
      program->tgds.Add(std::move(*rule));
      return Status::OK();
    }
    NUCHASE_RETURN_IF_ERROR(Expect(TokKind::kDot));
    auto facts = MaterializeAtoms(first, /*as_variables=*/false);
    if (!facts.ok()) return facts.status();
    for (Atom& f : *facts) {
      NUCHASE_RETURN_IF_ERROR(program->database.AddFact(std::move(f)));
    }
    return Status::OK();
  }

  struct RawAtom {
    std::string predicate;
    std::vector<std::string> args;
    std::size_t line;
  };

  Status ParseAtomList(std::vector<RawAtom>* out) {
    while (true) {
      RawAtom atom;
      NUCHASE_RETURN_IF_ERROR(ParseAtom(&atom));
      out->push_back(std::move(atom));
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Status ParseAtom(RawAtom* out) {
    const Token& name = Peek();
    if (name.kind != TokKind::kIdent) {
      return SyntaxError("expected predicate name");
    }
    out->predicate = name.text;
    out->line = name.line;
    Advance();
    NUCHASE_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    if (Peek().kind == TokKind::kRParen) {  // 0-ary atom "R()"
      Advance();
      return Status::OK();
    }
    while (true) {
      const Token& arg = Peek();
      if (arg.kind != TokKind::kIdent) {
        return SyntaxError("expected term");
      }
      out->args.push_back(arg.text);
      Advance();
      if (Peek().kind == TokKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return Expect(TokKind::kRParen);
  }

  StatusOr<std::vector<Atom>> MaterializeAtoms(
      const std::vector<RawAtom>& raw, bool as_variables) {
    std::vector<Atom> out;
    out.reserve(raw.size());
    for (const RawAtom& r : raw) {
      auto pred = symbols_->InternPredicate(
          r.predicate, static_cast<std::uint32_t>(r.args.size()));
      if (!pred.ok()) {
        return Status::InvalidArgument("line " + std::to_string(r.line) +
                                       ": " + pred.status().message());
      }
      std::vector<Term> args;
      args.reserve(r.args.size());
      for (const std::string& a : r.args) {
        if (as_variables) {
          args.push_back(symbols_->InternVariable(a));
        } else {
          auto constant = symbols_->InternConstant(a);
          if (!constant.ok()) return constant.status();
          args.push_back(*constant);
        }
      }
      out.emplace_back(*pred, std::move(args));
    }
    return out;
  }

  const Token& Peek() const { return tokens_[cursor_]; }
  void Advance() { ++cursor_; }

  Status Expect(TokKind kind) {
    if (Peek().kind != kind) {
      const char* what = kind == TokKind::kDot      ? "'.'"
                         : kind == TokKind::kLParen ? "'('"
                         : kind == TokKind::kRParen ? "')'"
                                                    : "token";
      return SyntaxError(std::string("expected ") + what);
    }
    Advance();
    return Status::OK();
  }

  Status SyntaxError(const std::string& what) const {
    return Status::InvalidArgument(
        "line " + std::to_string(Peek().line) + ": " + what + " (got '" +
        (Peek().kind == TokKind::kEnd ? "<end>" : Peek().text) + "')");
  }

  core::SymbolTable* symbols_;
  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;
};

}  // namespace

StatusOr<Program> ParseProgram(core::SymbolTable* symbols,
                               const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(symbols, std::move(*tokens));
  return parser.ParseAll();
}

StatusOr<Tgd> ParseTgd(core::SymbolTable* symbols, const std::string& text) {
  std::string padded = text;
  // Allow omitting the trailing dot for single-rule convenience.
  bool has_dot = false;
  for (auto it = padded.rbegin(); it != padded.rend(); ++it) {
    if (std::isspace(static_cast<unsigned char>(*it))) continue;
    has_dot = (*it == '.');
    break;
  }
  if (!has_dot) padded += " .";
  auto program = ParseProgram(symbols, padded);
  if (!program.ok()) return program.status();
  if (program->tgds.size() != 1 || !program->database.empty()) {
    return util::Status::InvalidArgument("expected exactly one TGD");
  }
  return program->tgds.tgd(0);
}

StatusOr<TgdSet> ParseTgdSet(core::SymbolTable* symbols,
                             const std::string& text) {
  auto program = ParseProgram(symbols, text);
  if (!program.ok()) return program.status();
  if (!program->database.empty()) {
    return util::Status::InvalidArgument(
        "expected only TGDs, found facts");
  }
  return std::move(program->tgds);
}

StatusOr<core::Database> ParseDatabase(core::SymbolTable* symbols,
                                       const std::string& text) {
  auto program = ParseProgram(symbols, text);
  if (!program.ok()) return program.status();
  if (program->tgds.size() != 0) {
    return util::Status::InvalidArgument(
        "expected only facts, found TGDs");
  }
  return std::move(program->database);
}

}  // namespace tgd
}  // namespace nuchase
