#include "tgd/tgd.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "core/schema.h"

namespace nuchase {
namespace tgd {

using core::Atom;
using core::Term;

util::StatusOr<Tgd> Tgd::Create(std::vector<Atom> body,
                                std::vector<Atom> head) {
  if (body.empty()) {
    return util::Status::InvalidArgument("TGD body must be non-empty");
  }
  if (head.empty()) {
    return util::Status::InvalidArgument("TGD head must be non-empty");
  }
  for (const auto* part : {&body, &head}) {
    for (const Atom& a : *part) {
      for (Term t : a.args) {
        if (!t.IsVariable()) {
          return util::Status::InvalidArgument(
              "TGDs are constant-free: every argument must be a variable");
        }
      }
    }
  }

  Tgd out;
  std::set<Term> body_vars = core::VariablesOf(body);
  std::set<Term> head_vars = core::VariablesOf(head);

  out.body_variables_.assign(body_vars.begin(), body_vars.end());
  for (Term v : head_vars) {
    if (body_vars.count(v)) {
      out.frontier_.push_back(v);
    } else {
      out.existential_.push_back(v);
    }
  }

  // Leftmost body atom containing all body variables, if any.
  out.guard_index_ = -1;
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::set<Term> atom_vars = core::VariablesOf(body[i]);
    if (std::includes(atom_vars.begin(), atom_vars.end(), body_vars.begin(),
                      body_vars.end())) {
      out.guard_index_ = static_cast<int>(i);
      break;
    }
  }

  out.body_ = std::move(body);
  out.head_ = std::move(head);
  return out;
}

bool Tgd::IsFrontier(Term v) const {
  return std::binary_search(frontier_.begin(), frontier_.end(), v);
}

bool Tgd::IsExistential(Term v) const {
  return std::binary_search(existential_.begin(), existential_.end(), v);
}

bool Tgd::IsSimpleLinear() const {
  if (!IsLinear()) return false;
  const Atom& atom = body_[0];
  std::unordered_set<Term> seen;
  for (Term t : atom.args) {
    if (!seen.insert(t).second) return false;
  }
  return true;
}

std::string Tgd::ToString(const core::SymbolTable& symbols) const {
  std::string out;
  for (std::size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ", ";
    out += body_[i].ToString(symbols);
  }
  out += " -> ";
  for (std::size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i].ToString(symbols);
  }
  out += " .";
  return out;
}

std::vector<core::PredicateId> TgdSet::SchemaPredicates() const {
  std::set<core::PredicateId> preds;
  for (const Tgd& t : tgds_) {
    for (const Atom& a : t.body()) preds.insert(a.predicate);
    for (const Atom& a : t.head()) preds.insert(a.predicate);
  }
  return {preds.begin(), preds.end()};
}

std::uint32_t TgdSet::MaxArity(const core::SymbolTable& symbols) const {
  std::uint32_t ar = 0;
  for (core::PredicateId p : SchemaPredicates()) {
    ar = std::max(ar, symbols.arity(p));
  }
  return ar;
}

std::uint64_t TgdSet::NumAtoms() const {
  std::set<Atom> atoms;
  for (const Tgd& t : tgds_) {
    for (const Atom& a : t.body()) atoms.insert(a);
    for (const Atom& a : t.head()) atoms.insert(a);
  }
  return atoms.size();
}

std::uint64_t TgdSet::Norm(const core::SymbolTable& symbols) const {
  return NumAtoms() * SchemaPredicates().size() * MaxArity(symbols);
}

std::string TgdSet::ToString(const core::SymbolTable& symbols) const {
  std::string out;
  for (const Tgd& t : tgds_) {
    out += t.ToString(symbols);
    out += '\n';
  }
  return out;
}

}  // namespace tgd
}  // namespace nuchase
