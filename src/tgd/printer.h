#ifndef NUCHASE_TGD_PRINTER_H_
#define NUCHASE_TGD_PRINTER_H_

#include <string>

#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace tgd {

/// Renders a database as parse-able fact statements (sorted).
std::string DatabaseToProgram(const core::Database& db,
                              const core::SymbolTable& symbols);

/// Renders Σ and D as one program the parser accepts back (round-trip).
std::string ProgramToString(const TgdSet& tgds, const core::Database& db,
                            const core::SymbolTable& symbols);

}  // namespace tgd
}  // namespace nuchase

#endif  // NUCHASE_TGD_PRINTER_H_
