#ifndef NUCHASE_TGD_CLASSIFY_H_
#define NUCHASE_TGD_CLASSIFY_H_

#include <string>

#include "tgd/tgd.h"

namespace nuchase {
namespace tgd {

/// The classes of TGD sets studied in the paper: SL ⊊ L ⊊ G ⊊ TGD
/// (Section 2, "Guardedness").
enum class TgdClass {
  kSimpleLinear,  ///< SL: one body atom, no repeated body variable.
  kLinear,        ///< L: one body atom.
  kGuarded,       ///< G: some body atom guards all body variables.
  kGeneral,       ///< Arbitrary TGDs.
};

/// Human-readable class name ("SL", "L", "G", "TGD").
const char* TgdClassName(TgdClass c);

/// The most specific class containing the given TGD.
TgdClass Classify(const Tgd& tgd);

/// The most specific class containing every TGD of the set (the class of
/// Σ). The empty set classifies as SL.
TgdClass Classify(const TgdSet& tgds);

/// True iff class `a` is contained in class `b` (e.g. SL ⊆ G).
bool ClassContainedIn(TgdClass a, TgdClass b);

}  // namespace tgd
}  // namespace nuchase

#endif  // NUCHASE_TGD_CLASSIFY_H_
