#include "tgd/classify.h"

namespace nuchase {
namespace tgd {

const char* TgdClassName(TgdClass c) {
  switch (c) {
    case TgdClass::kSimpleLinear:
      return "SL";
    case TgdClass::kLinear:
      return "L";
    case TgdClass::kGuarded:
      return "G";
    case TgdClass::kGeneral:
      return "TGD";
  }
  return "?";
}

TgdClass Classify(const Tgd& tgd) {
  if (tgd.IsSimpleLinear()) return TgdClass::kSimpleLinear;
  if (tgd.IsLinear()) return TgdClass::kLinear;
  if (tgd.IsGuarded()) return TgdClass::kGuarded;
  return TgdClass::kGeneral;
}

TgdClass Classify(const TgdSet& tgds) {
  TgdClass out = TgdClass::kSimpleLinear;
  for (const Tgd& t : tgds.tgds()) {
    TgdClass c = Classify(t);
    if (!ClassContainedIn(c, out)) out = c;
  }
  return out;
}

bool ClassContainedIn(TgdClass a, TgdClass b) {
  return static_cast<int>(a) <= static_cast<int>(b);
}

}  // namespace tgd
}  // namespace nuchase
