#include "tgd/printer.h"

#include <algorithm>
#include <vector>

namespace nuchase {
namespace tgd {

std::string DatabaseToProgram(const core::Database& db,
                              const core::SymbolTable& symbols) {
  std::vector<std::string> lines;
  lines.reserve(db.size());
  for (const core::Atom& f : db.facts()) {
    lines.push_back(f.ToString(symbols) + ".");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string ProgramToString(const TgdSet& tgds, const core::Database& db,
                            const core::SymbolTable& symbols) {
  std::string out = "% database\n";
  out += DatabaseToProgram(db, symbols);
  out += "% rules\n";
  out += tgds.ToString(symbols);
  return out;
}

}  // namespace tgd
}  // namespace nuchase
