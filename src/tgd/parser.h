#ifndef NUCHASE_TGD_PARSER_H_
#define NUCHASE_TGD_PARSER_H_

#include <string>

#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace tgd {

/// A parsed program: a set of TGDs Σ and a database D.
struct Program {
  TgdSet tgds;
  core::Database database;
};

/// Parses the rule language used by the examples and tests:
///
///   % comment (also '#')
///   R(a, b).                      % a fact: identifiers are constants
///   R(x, y) -> R(y, z).           % a TGD: identifiers are variables;
///                                 %   head-only variables (z) are
///                                 %   existentially quantified
///   R(x, y), P(x, z, v) -> P(y, w, z).
///
/// Statements end with '.'. Facts mention constants only; rules mention
/// variables only (TGDs are constant-free, Section 2). Predicate arities
/// are inferred on first use and must stay consistent.
util::StatusOr<Program> ParseProgram(core::SymbolTable* symbols,
                                     const std::string& text);

/// Parses a single TGD (without the trailing '.', which is optional here).
util::StatusOr<Tgd> ParseTgd(core::SymbolTable* symbols,
                             const std::string& text);

/// Parses a program expected to contain only TGDs.
util::StatusOr<TgdSet> ParseTgdSet(core::SymbolTable* symbols,
                                   const std::string& text);

/// Parses a program expected to contain only facts.
util::StatusOr<core::Database> ParseDatabase(core::SymbolTable* symbols,
                                             const std::string& text);

}  // namespace tgd
}  // namespace nuchase

#endif  // NUCHASE_TGD_PARSER_H_
