#ifndef NUCHASE_TGD_TGD_H_
#define NUCHASE_TGD_TGD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/status.h"

namespace nuchase {
namespace tgd {

/// The one rule-index type: positions into a TgdSet, node ids of the
/// graph::RelianceGraph, and the tgd_index the chase engine packs into
/// its 32-bit trigger dedup keys are all this. Loops over Σ compare a
/// RuleIndex against a RuleIndex (never a raw size_t), which is what
/// kMaxRules exists to license: a TgdSet past the cap is rejected up
/// front (api::Program with InvalidArgument at analysis, chase::RunChase
/// with kResourceExhausted), so every in-engine narrowing cast is exact.
using RuleIndex = std::uint32_t;

/// Largest admissible |Σ|. Far above any real program (the guarded
/// linearization budget tops out at 100k rules) while keeping RuleIndex
/// arithmetic trivially overflow-free.
inline constexpr std::size_t kMaxRules = std::size_t{1} << 18;

/// A tuple-generating dependency (TGD, Section 2):
///   φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)
/// Body and head are non-empty conjunctions of constant-free atoms. The
/// frontier fr(σ) is the set of variables occurring in both body and head;
/// head variables outside the frontier are existentially quantified.
class Tgd {
 public:
  /// Validates and builds a TGD. Fails if body or head is empty, any
  /// argument is not a variable, or the head is disconnected from the rest
  /// in a malformed way (head variables are fine: non-body head variables
  /// are existential by definition).
  static util::StatusOr<Tgd> Create(std::vector<core::Atom> body,
                                    std::vector<core::Atom> head);

  const std::vector<core::Atom>& body() const { return body_; }
  const std::vector<core::Atom>& head() const { return head_; }

  /// fr(σ): variables occurring in both body and head (sorted).
  const std::vector<core::Term>& frontier() const { return frontier_; }
  /// Existentially quantified variables: head variables not in the body
  /// (sorted).
  const std::vector<core::Term>& existential() const { return existential_; }
  /// All body variables (sorted).
  const std::vector<core::Term>& body_variables() const {
    return body_variables_;
  }

  bool IsFrontier(core::Term v) const;
  bool IsExistential(core::Term v) const;

  /// Index into body() of the leftmost atom containing all body variables,
  /// or -1 if the TGD is not guarded (Section 2, "Guardedness").
  int guard_index() const { return guard_index_; }
  bool IsGuarded() const { return guard_index_ >= 0; }
  /// guard(σ). Must only be called when IsGuarded().
  const core::Atom& guard() const { return body_[guard_index_]; }

  /// True iff the body consists of a single atom.
  bool IsLinear() const { return body_.size() == 1; }
  /// True iff linear and no variable occurs twice in the body atom.
  bool IsSimpleLinear() const;

  /// Renders "R(x, y) -> S(y, z) ." with the given symbol table.
  std::string ToString(const core::SymbolTable& symbols) const;

 private:
  Tgd() = default;

  std::vector<core::Atom> body_;
  std::vector<core::Atom> head_;
  std::vector<core::Term> frontier_;
  std::vector<core::Term> existential_;
  std::vector<core::Term> body_variables_;
  int guard_index_ = -1;
};

/// A finite set Σ of TGDs together with the derived schema quantities the
/// paper uses: sch(Σ), ar(Σ), atoms(Σ) and ||Σ|| = |atoms(Σ)|·|sch(Σ)|·ar(Σ).
class TgdSet {
 public:
  TgdSet() = default;

  void Add(Tgd tgd) { tgds_.push_back(std::move(tgd)); }

  const std::vector<Tgd>& tgds() const { return tgds_; }
  std::size_t size() const { return tgds_.size(); }
  bool empty() const { return tgds_.empty(); }
  const Tgd& tgd(std::size_t i) const { return tgds_[i]; }

  /// sch(Σ): predicates occurring in the TGDs (sorted, deduplicated).
  std::vector<core::PredicateId> SchemaPredicates() const;

  /// ar(Σ): maximum arity over sch(Σ); 0 for the empty set.
  std::uint32_t MaxArity(const core::SymbolTable& symbols) const;

  /// |atoms(Σ)|: number of distinct atoms occurring in the TGDs.
  std::uint64_t NumAtoms() const;

  /// ||Σ|| = |atoms(Σ)| · |sch(Σ)| · ar(Σ).
  std::uint64_t Norm(const core::SymbolTable& symbols) const;

  /// Multi-line rendering of all TGDs.
  std::string ToString(const core::SymbolTable& symbols) const;

 private:
  std::vector<Tgd> tgds_;
};

}  // namespace tgd
}  // namespace nuchase

#endif  // NUCHASE_TGD_TGD_H_
