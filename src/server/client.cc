#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nuchase {
namespace server {

util::StatusOr<Client> Client::Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("connect 127.0.0.1:" +
                                  std::to_string(port) + ": " + message);
  }
  // Request lines are small; without TCP_NODELAY closed-loop clients
  // stall ~40ms per request on Nagle + delayed ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_) {
  other.fd_ = -1;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status Client::Send(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return util::Status::Internal(std::string("send: ") +
                                    std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status::OK();
}

util::StatusOr<ResponseFrame> Client::ReadFrame() {
  std::string line;
  while (true) {
    while (pos_ < buffer_.size()) {
      const char c = buffer_[pos_++];
      if (c == '\n') return ParseResponse(line);
      line.push_back(c);
    }
    buffer_.clear();
    pos_ = 0;
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return util::Status::NotFound("connection closed by server");
    }
    buffer_.assign(chunk, static_cast<std::size_t>(n));
  }
}

util::StatusOr<Client::ChaseOutcome> Client::RunChase(
    const ChaseRequest& request) {
  NUCHASE_RETURN_IF_ERROR(Send(SerializeRequest(request)));
  ChaseOutcome outcome;
  while (true) {
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    switch (frame->type) {
      case ResponseFrame::Type::kAck:
        if (frame->ack.id != request.id) {
          return util::Status::InvalidArgument("ack for foreign id '" +
                                               frame->ack.id + "'");
        }
        outcome.acked = true;
        break;
      case ResponseFrame::Type::kEvent:
        if (frame->event.id != request.id) {
          return util::Status::InvalidArgument("event for foreign id '" +
                                               frame->event.id + "'");
        }
        ++outcome.events;
        break;
      case ResponseFrame::Type::kResult:
        if (frame->result.id != request.id) {
          return util::Status::InvalidArgument("result for foreign id '" +
                                               frame->result.id + "'");
        }
        outcome.ok = true;
        outcome.result = frame->result;
        return outcome;
      case ResponseFrame::Type::kError:
        if (!frame->error.id.empty() && frame->error.id != request.id) {
          return util::Status::InvalidArgument("error for foreign id '" +
                                               frame->error.id + "'");
        }
        outcome.ok = false;
        outcome.error = frame->error;
        return outcome;
      default:
        return util::Status::InvalidArgument(
            "unexpected frame while waiting for a chase result");
    }
  }
}

util::StatusOr<StatsFrame> Client::Stats() {
  NUCHASE_RETURN_IF_ERROR(Send(SerializeStatsRequest()));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != ResponseFrame::Type::kStats) {
    return util::Status::InvalidArgument(
        "expected a stats frame in answer to a stats request");
  }
  return frame->stats;
}

}  // namespace server
}  // namespace nuchase
