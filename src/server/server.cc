#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "api/session.h"
#include "chase/observer.h"

namespace nuchase {
namespace server {

// --- StreamTransport ---

StreamTransport::StreamTransport(std::istream* in, std::ostream* out,
                                 std::size_t max_line_bytes)
    : in_(in), out_(out), max_line_bytes_(max_line_bytes) {}

FrameTransport::ReadResult StreamTransport::ReadLine(std::string* line) {
  line->clear();
  // Byte-at-a-time with the cap enforced as we go, so an adversarial
  // line costs max_line_bytes of memory, not its own length.
  while (true) {
    const int c = in_->get();
    if (c == std::char_traits<char>::eof()) {
      return line->empty() ? ReadResult::kEof : ReadResult::kOk;
    }
    if (c == '\n') return ReadResult::kOk;
    if (line->size() >= max_line_bytes_) {
      while (true) {
        const int skipped = in_->get();
        if (skipped == std::char_traits<char>::eof() || skipped == '\n') {
          return ReadResult::kOversized;
        }
      }
    }
    line->push_back(static_cast<char>(c));
  }
}

bool StreamTransport::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mu_);
  (*out_) << line << '\n';
  out_->flush();
  return out_->good();
}

namespace {

// FrameTransport over a connected socket. Reads are buffered on the
// (single) reader thread; writes hold a mutex and ride MSG_NOSIGNAL so
// a vanished client surfaces as a dropped frame, never a SIGPIPE.
class FdTransport : public FrameTransport {
 public:
  FdTransport(int fd, std::size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  ReadResult ReadLine(std::string* line) override {
    line->clear();
    bool skipping = false;
    while (true) {
      while (pos_ < buffer_.size()) {
        const char c = buffer_[pos_++];
        if (c == '\n') {
          if (skipping) return ReadResult::kOversized;
          return ReadResult::kOk;
        }
        if (skipping) continue;
        if (line->size() >= max_line_bytes_) {
          skipping = true;
          line->clear();
          continue;
        }
        line->push_back(c);
      }
      buffer_.clear();
      pos_ = 0;
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) {
        if (skipping) return ReadResult::kOversized;
        return line->empty() ? ReadResult::kEof : ReadResult::kOk;
      }
      buffer_.assign(chunk, static_cast<std::size_t>(n));
    }
  }

  bool WriteLine(const std::string& line) override {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (dead_) return false;
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        // Peer is gone: later frames of in-flight chases are dropped by
        // contract (their results have no reader).
        dead_ = true;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::mutex write_mu_;
  bool dead_ = false;
};

}  // namespace

// --- Server ---

using Clock = std::chrono::steady_clock;

/// A chase request between admission and its terminal frame. Shared by
/// the reader thread (cancel frames, the drain loop) and the scheduler
/// worker running the chase.
struct Server::LiveRequest {
  ChaseRequest request;
  chase::CancelToken token;
  std::atomic<bool> client_cancelled{false};
  Clock::time_point deadline{};  ///< Meaningful iff request.deadline_ms.
  /// Set (under Connection::mu) once the ack frame is on the wire; the
  /// worker waits for it so a request's ack always precedes its events.
  bool admitted = false;
};

/// Per-connection state: the transport plus the registry of live
/// requests, which doubles as the drain barrier Serve() waits on.
struct Server::Connection {
  FrameTransport* transport = nullptr;
  std::mutex mu;
  std::condition_variable cv;  ///< Signals admission and completion.
  std::unordered_map<std::string, std::shared_ptr<LiveRequest>> live;
};

namespace {

/// Streams round-progress event frames for one chase. OnRound runs
/// synchronously on the chasing worker; WriteLine is thread-safe and
/// drops frames once the peer is gone, so no extra guarding is needed.
class EventStreamer : public chase::ChaseObserver {
 public:
  EventStreamer(FrameTransport* transport, std::string id)
      : transport_(transport), id_(std::move(id)) {}

  void OnRound(const chase::RoundProgress& progress) override {
    EventFrame frame;
    frame.id = id_;
    frame.round = progress.round;
    frame.atoms = progress.atoms;
    frame.delta_atoms = progress.delta_atoms;
    frame.triggers_fired = progress.triggers_fired;
    transport_->WriteLine(Serialize(frame));
  }

 private:
  FrameTransport* transport_;
  std::string id_;
};

void WriteError(FrameTransport* transport, const std::string& id,
                ErrorCode code, const std::string& message) {
  ErrorFrame frame;
  frame.id = id;
  frame.code = code;
  frame.message = message;
  transport->WriteLine(Serialize(frame));
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_size),
      scheduler_([&options] {
        RequestScheduler::Options s;
        s.max_inflight = options.max_inflight;
        s.max_queue = options.max_queue;
        return s;
      }()) {}

Server::~Server() { scheduler_.Shutdown(); }

void Server::Serve(FrameTransport* transport) {
  Connection conn;
  conn.transport = transport;

  std::string line;
  while (true) {
    const FrameTransport::ReadResult read = transport->ReadLine(&line);
    if (read == FrameTransport::ReadResult::kEof) break;
    if (read == FrameTransport::ReadResult::kOversized) {
      WriteError(transport, "", ErrorCode::kOversizedFrame,
                 "line exceeds " + std::to_string(options_.max_line_bytes) +
                     " bytes");
      continue;
    }
    if (line.empty()) continue;  // Blank lines between frames are fine.

    RequestParse parsed = ParseRequest(line);
    if (!parsed.ok) {
      WriteError(transport, parsed.id, parsed.code, parsed.message);
      continue;
    }
    switch (parsed.frame.type) {
      case RequestFrame::Type::kPing:
        transport->WriteLine(Serialize(PongFrame{}));
        break;
      case RequestFrame::Type::kStats:
        transport->WriteLine(Serialize(stats()));
        break;
      case RequestFrame::Type::kCancel: {
        std::shared_ptr<LiveRequest> live;
        {
          std::lock_guard<std::mutex> lock(conn.mu);
          auto it = conn.live.find(parsed.frame.cancel.id);
          if (it != conn.live.end()) live = it->second;
        }
        if (live == nullptr) {
          WriteError(transport, parsed.frame.cancel.id,
                     ErrorCode::kUnknownId,
                     "no live request with this id");
          break;
        }
        // No frame of its own: the chase answers with its terminal
        // `cancelled` error.
        live->client_cancelled.store(true, std::memory_order_relaxed);
        live->token.Cancel();
        break;
      }
      case RequestFrame::Type::kChase:
        HandleChase(&conn, parsed.frame.chase);
        break;
    }
  }

  // Orderly drain: every admitted request still owes its terminal
  // frame; wait for the registry (the drain barrier) to empty.
  std::unique_lock<std::mutex> lock(conn.mu);
  conn.cv.wait(lock, [&conn] { return conn.live.empty(); });
}

void Server::ServeStream(std::istream& in, std::ostream& out) {
  StreamTransport transport(&in, &out, options_.max_line_bytes);
  Serve(&transport);
}

void Server::HandleChase(Connection* conn, const ChaseRequest& request) {
  auto live = std::make_shared<LiveRequest>();
  live->request = request;
  if (request.deadline_ms > 0) {
    live->deadline =
        Clock::now() + std::chrono::milliseconds(request.deadline_ms);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->live.emplace(request.id, live).second) {
      WriteError(conn->transport, request.id, ErrorCode::kDuplicateId,
                 "a live request with this id already exists");
      return;
    }
  }

  const bool admitted = scheduler_.Submit(
      [this, conn, live](unsigned worker) { RunChaseTask(conn, live, worker); });
  if (!admitted) {
    {
      // Notify under the lock: the moment the registry empties, Serve()
      // may return and destroy the Connection, so the cv must not be
      // touched after the lock is dropped.
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->live.erase(request.id);
      conn->cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++rejected_overload_;
    }
    WriteError(conn->transport, request.id, ErrorCode::kOverloaded,
               "request queue is full (max-queue = " +
                   std::to_string(options_.max_queue) + ")");
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  conn->transport->WriteLine(Serialize(AckFrame{request.id}));
  {
    // Notify under the lock (see the overload path above): once the
    // worker proceeds it may finish and empty the registry at any time.
    std::lock_guard<std::mutex> lock(conn->mu);
    live->admitted = true;
    conn->cv.notify_all();
  }
}

void Server::RunChaseTask(Connection* conn,
                          std::shared_ptr<LiveRequest> live,
                          unsigned worker) {
  (void)worker;
  const ChaseRequest& request = live->request;
  FrameTransport* transport = conn->transport;

  // The ack is written by the reader right after admission; hold the
  // worker here until it is on the wire so this request's frames are
  // ordered ack -> events -> terminal even when the queue was empty.
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv.wait(lock, [&live] { return live->admitted; });
  }

  // Queue time counts against the deadline: a request that waited its
  // whole budget out is answered without chasing at all.
  std::uint64_t remaining_ms = 0;
  if (request.deadline_ms > 0) {
    const auto now = Clock::now();
    if (now >= live->deadline) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++deadline_exceeded_;
      }
      WriteError(transport, request.id, ErrorCode::kDeadlineExceeded,
                 "deadline elapsed while queued");
      FinishRequest(conn, request.id);
      return;
    }
    remaining_ms = static_cast<std::uint64_t>(std::max<std::int64_t>(
        1, std::chrono::duration_cast<std::chrono::milliseconds>(
               live->deadline - now)
               .count()));
  }
  if (live->client_cancelled.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++cancelled_;
    }
    WriteError(transport, request.id, ErrorCode::kCancelled,
               "cancelled while queued");
    FinishRequest(conn, request.id);
    return;
  }

  auto lookup = cache_.GetOrParse(request.rules);
  if (!lookup.ok()) {
    WriteError(transport, request.id, ErrorCode::kInvalidProgram,
               lookup.status().message());
    FinishRequest(conn, request.id);
    return;
  }

  api::SessionOptions options;
  options.set_variant(request.variant)
      .set_max_depth(request.max_depth)
      .set_max_rounds(request.max_rounds)
      .set_deadline_ms(remaining_ms)
      .set_cancel(&live->token);
  if (request.max_atoms > 0) options.set_max_atoms(request.max_atoms);
  // An unset `threads` takes the server's --threads flag, never the
  // NUCHASE_THREADS environment: both branches set an explicit count,
  // and explicit counts beat the environment by the engine contract.
  options.set_num_threads(request.num_threads == chase::kNumThreadsDefault
                              ? options_.default_threads
                              : request.num_threads);
  EventStreamer streamer(transport, request.id);
  if (request.events) options.set_observer(&streamer);

  api::Session session(lookup->program, options);
  auto run = session.Chase();
  if (!run.ok()) {
    ErrorCode code = ErrorCode::kInternal;
    if (run.status().code() == util::StatusCode::kResourceExhausted) {
      code = ErrorCode::kResourceExhausted;
    } else if (run.status().code() == util::StatusCode::kInvalidArgument) {
      code = ErrorCode::kInvalidOptions;
    }
    WriteError(transport, request.id, code, run.status().message());
    FinishRequest(conn, request.id);
    return;
  }

  if (run->outcome() == chase::ChaseOutcome::kCancelled) {
    // The engine reports one outcome for both abort sources; the server
    // knows which applied — a cancel frame arrived, or it set the
    // deadline itself.
    const bool by_client =
        live->client_cancelled.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (by_client) {
        ++cancelled_;
      } else {
        ++deadline_exceeded_;
      }
    }
    WriteError(transport, request.id,
               by_client ? ErrorCode::kCancelled
                         : ErrorCode::kDeadlineExceeded,
               by_client ? "cancelled mid-chase" : "deadline exceeded");
    FinishRequest(conn, request.id);
    return;
  }

  ResultFrame result;
  result.id = request.id;
  result.outcome = chase::ChaseOutcomeName(run->outcome());
  result.cached = lookup->hit;
  result.atoms = run->instance().size();
  result.rounds = run->stats().rounds;
  result.triggers_fired = run->stats().triggers_fired;
  result.max_depth = run->stats().max_depth;
  result.arena_bytes = run->stats().arena_bytes;
  if (request.payload) {
    result.has_payload = true;
    result.payload = run->ToSortedString();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
  }
  transport->WriteLine(Serialize(result));
  FinishRequest(conn, request.id);
}

void Server::FinishRequest(Connection* conn, const std::string& id) {
  // Notify under the lock: erasing the last entry releases Serve()'s
  // drain wait, after which the Connection (cv included) is gone.
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->live.erase(id);
  conn->cv.notify_all();
}

StatsFrame Server::stats() const {
  StatsFrame out;
  const ProgramCache::Stats cache = cache_.stats();
  out.programs_parsed = cache.parses;
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_entries = cache.entries;
  const RequestScheduler::Stats sched = scheduler_.stats();
  out.max_overlap = sched.max_overlap;
  out.inflight = sched.inflight;
  out.queued = sched.queued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.accepted = accepted_;
    out.completed = completed_;
    out.rejected_overload = rejected_overload_;
    out.cancelled = cancelled_;
    out.deadline_exceeded = deadline_exceeded_;
  }
  return out;
}

// --- TcpListener ---

util::StatusOr<TcpListener> TcpListener::Bind(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Status::InvalidArgument("bind 127.0.0.1:" +
                                         std::to_string(port) + ": " +
                                         message);
  }
  if (::listen(fd, 128) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("listen: " + message);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("getsockname: " + message);
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpListener::Run(Server* server) {
  std::vector<std::thread> connections;
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Stop() shut the listening socket down.
    }
    // Without TCP_NODELAY the ack/result (or event/result) write pairs
    // trip over Nagle + delayed ACK and every request eats a ~40ms
    // stall.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections.emplace_back([server, fd] {
      FdTransport transport(fd, server->options().max_line_bytes);
      server->Serve(&transport);
      ::close(fd);
    });
  }
  for (std::thread& connection : connections) connection.join();
}

void TcpListener::Stop() { ::shutdown(fd_, SHUT_RDWR); }

}  // namespace server
}  // namespace nuchase
