#include "server/protocol.h"

#include <initializer_list>

#include "server/json.h"

namespace nuchase {
namespace server {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kUnknownField: return "unknown-field";
    case ErrorCode::kOversizedFrame: return "oversized-frame";
    case ErrorCode::kInvalidProgram: return "invalid-program";
    case ErrorCode::kInvalidOptions: return "invalid-options";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDuplicateId: return "duplicate-id";
    case ErrorCode::kUnknownId: return "unknown-id";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

namespace {

RequestParse Reject(ErrorCode code, std::string message, std::string id) {
  RequestParse out;
  out.ok = false;
  out.code = code;
  out.message = std::move(message);
  out.id = std::move(id);
  return out;
}

/// Reads a string member into `*out`; false (with a rejection filled
/// into `*reject`) when present with a non-string value.
bool ReadString(const JsonValue& frame, const char* key, std::string* out,
                const std::string& id, RequestParse* reject) {
  const JsonValue* v = frame.Find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *reject = Reject(ErrorCode::kMalformedFrame,
                     std::string("'") + key + "' must be a string", id);
    return false;
  }
  *out = v->string();
  return true;
}

bool ReadNumber(const JsonValue& frame, const char* key,
                std::uint64_t max, std::uint64_t* out,
                const std::string& id, RequestParse* reject) {
  const JsonValue* v = frame.Find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number() > max) {
    *reject = Reject(ErrorCode::kInvalidOptions,
                     std::string("'") + key +
                         "' must be an unsigned integer at most " +
                         std::to_string(max),
                     id);
    return false;
  }
  *out = v->number();
  return true;
}

bool ReadBool(const JsonValue& frame, const char* key, bool* out,
              const std::string& id, RequestParse* reject) {
  const JsonValue* v = frame.Find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    *reject = Reject(ErrorCode::kInvalidOptions,
                     std::string("'") + key + "' must be a boolean", id);
    return false;
  }
  *out = v->bool_value();
  return true;
}

/// Every member must be in `allowed` (unknown fields are a typed
/// rejection, so a typo'd option can never be silently ignored).
bool CheckFields(const JsonValue& frame,
                 std::initializer_list<const char*> allowed,
                 const std::string& id, RequestParse* reject) {
  for (const auto& member : frame.object()) {
    bool known = false;
    for (const char* name : allowed) {
      if (member.first == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      *reject = Reject(ErrorCode::kUnknownField,
                       "unknown field '" + member.first + "'", id);
      return false;
    }
  }
  return true;
}

}  // namespace

RequestParse ParseRequest(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    return Reject(ErrorCode::kMalformedFrame, parsed.status().message(),
                  "");
  }
  if (!parsed->is_object()) {
    return Reject(ErrorCode::kMalformedFrame, "frame must be an object",
                  "");
  }
  // Recover the id first so every later rejection can carry it.
  std::string id;
  const JsonValue* id_value = parsed->Find("id");
  if (id_value != nullptr && id_value->is_string()) id = id_value->string();

  const JsonValue* type = parsed->Find("type");
  if (type == nullptr || !type->is_string()) {
    return Reject(ErrorCode::kMalformedFrame,
                  "frame needs a string 'type'", id);
  }

  RequestParse out;
  RequestFrame& frame = out.frame;
  if (type->string() == "chase") {
    frame.type = RequestFrame::Type::kChase;
    ChaseRequest& req = frame.chase;
    if (!CheckFields(*parsed,
                     {"type", "id", "rules", "variant", "max_atoms",
                      "max_depth", "max_rounds", "deadline_ms", "threads",
                      "payload", "events"},
                     id, &out)) {
      return out;
    }
    if (!ReadString(*parsed, "id", &req.id, id, &out) ||
        !ReadString(*parsed, "rules", &req.rules, id, &out)) {
      return out;
    }
    if (req.id.empty()) {
      return Reject(ErrorCode::kMalformedFrame,
                    "chase needs a non-empty string 'id'", id);
    }
    if (req.rules.empty()) {
      return Reject(ErrorCode::kMalformedFrame,
                    "chase needs a non-empty string 'rules'", id);
    }
    std::string variant;
    if (!ReadString(*parsed, "variant", &variant, id, &out)) return out;
    if (variant == "" || variant == "semi-oblivious") {
      req.variant = chase::ChaseVariant::kSemiOblivious;
    } else if (variant == "oblivious") {
      req.variant = chase::ChaseVariant::kOblivious;
    } else if (variant == "restricted") {
      req.variant = chase::ChaseVariant::kRestricted;
    } else {
      return Reject(ErrorCode::kInvalidOptions,
                    "unknown variant '" + variant + "'", id);
    }
    std::uint64_t n = 0;
    if (!ReadNumber(*parsed, "max_atoms", 0xffffffffffffffffULL,
                    &req.max_atoms, id, &out)) {
      return out;
    }
    n = 0;
    if (!ReadNumber(*parsed, "max_depth", 0xffffffffULL, &n, id, &out)) {
      return out;
    }
    req.max_depth = static_cast<std::uint32_t>(n);
    if (!ReadNumber(*parsed, "max_rounds", 0xffffffffffffffffULL,
                    &req.max_rounds, id, &out) ||
        !ReadNumber(*parsed, "deadline_ms", 0xffffffffffffffffULL,
                    &req.deadline_ms, id, &out)) {
      return out;
    }
    n = req.num_threads;
    if (!ReadNumber(*parsed, "threads", 256, &n, id, &out)) return out;
    req.num_threads = static_cast<std::uint32_t>(n);
    if (!ReadBool(*parsed, "payload", &req.payload, id, &out) ||
        !ReadBool(*parsed, "events", &req.events, id, &out)) {
      return out;
    }
    out.ok = true;
    out.id = req.id;
    return out;
  }
  if (type->string() == "cancel") {
    frame.type = RequestFrame::Type::kCancel;
    if (!CheckFields(*parsed, {"type", "id"}, id, &out)) return out;
    if (!ReadString(*parsed, "id", &frame.cancel.id, id, &out)) return out;
    if (frame.cancel.id.empty()) {
      return Reject(ErrorCode::kMalformedFrame,
                    "cancel needs a non-empty string 'id'", id);
    }
    out.ok = true;
    out.id = frame.cancel.id;
    return out;
  }
  if (type->string() == "stats") {
    frame.type = RequestFrame::Type::kStats;
    if (!CheckFields(*parsed, {"type"}, id, &out)) return out;
    out.ok = true;
    return out;
  }
  if (type->string() == "ping") {
    frame.type = RequestFrame::Type::kPing;
    if (!CheckFields(*parsed, {"type"}, id, &out)) return out;
    out.ok = true;
    return out;
  }
  return Reject(ErrorCode::kUnknownType,
                "unknown frame type '" + type->string() + "'", id);
}

namespace {

void AppendMember(std::string* out, const char* key,
                  const std::string& value, bool* first) {
  *out += *first ? "{" : ",";
  *first = false;
  AppendJsonString(out, key);
  *out += ":";
  AppendJsonString(out, value);
}

void AppendMember(std::string* out, const char* key, std::uint64_t value,
                  bool* first) {
  *out += *first ? "{" : ",";
  *first = false;
  AppendJsonString(out, key);
  *out += ":";
  *out += std::to_string(value);
}

void AppendMember(std::string* out, const char* key, bool value,
                  bool* first) {
  *out += *first ? "{" : ",";
  *first = false;
  AppendJsonString(out, key);
  *out += value ? ":true" : ":false";
}

}  // namespace

std::string SerializeRequest(const ChaseRequest& request) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("chase"), &first);
  AppendMember(&out, "id", request.id, &first);
  AppendMember(&out, "rules", request.rules, &first);
  if (request.variant != chase::ChaseVariant::kSemiOblivious) {
    AppendMember(&out, "variant",
                 std::string(chase::ChaseVariantName(request.variant)),
                 &first);
  }
  if (request.max_atoms) {
    AppendMember(&out, "max_atoms", request.max_atoms, &first);
  }
  if (request.max_depth) {
    AppendMember(&out, "max_depth",
                 static_cast<std::uint64_t>(request.max_depth), &first);
  }
  if (request.max_rounds) {
    AppendMember(&out, "max_rounds", request.max_rounds, &first);
  }
  if (request.deadline_ms) {
    AppendMember(&out, "deadline_ms", request.deadline_ms, &first);
  }
  if (request.num_threads != chase::kNumThreadsDefault) {
    AppendMember(&out, "threads",
                 static_cast<std::uint64_t>(request.num_threads), &first);
  }
  if (request.payload) AppendMember(&out, "payload", true, &first);
  if (request.events) AppendMember(&out, "events", true, &first);
  out += "}";
  return out;
}

std::string SerializeCancel(const std::string& id) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("cancel"), &first);
  AppendMember(&out, "id", id, &first);
  out += "}";
  return out;
}

std::string SerializeStatsRequest() { return "{\"type\":\"stats\"}"; }

std::string SerializePing() { return "{\"type\":\"ping\"}"; }

std::string Serialize(const AckFrame& frame) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("ack"), &first);
  AppendMember(&out, "id", frame.id, &first);
  out += "}";
  return out;
}

std::string Serialize(const EventFrame& frame) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("event"), &first);
  AppendMember(&out, "id", frame.id, &first);
  AppendMember(&out, "round", frame.round, &first);
  AppendMember(&out, "atoms", frame.atoms, &first);
  AppendMember(&out, "delta_atoms", frame.delta_atoms, &first);
  AppendMember(&out, "triggers_fired", frame.triggers_fired, &first);
  out += "}";
  return out;
}

std::string Serialize(const ResultFrame& frame) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("result"), &first);
  AppendMember(&out, "id", frame.id, &first);
  AppendMember(&out, "outcome", frame.outcome, &first);
  AppendMember(&out, "cached", frame.cached, &first);
  AppendMember(&out, "atoms", frame.atoms, &first);
  AppendMember(&out, "rounds", frame.rounds, &first);
  AppendMember(&out, "triggers_fired", frame.triggers_fired, &first);
  AppendMember(&out, "max_depth",
               static_cast<std::uint64_t>(frame.max_depth), &first);
  AppendMember(&out, "arena_bytes", frame.arena_bytes, &first);
  if (frame.has_payload) {
    AppendMember(&out, "payload", frame.payload, &first);
  }
  out += "}";
  return out;
}

std::string Serialize(const ErrorFrame& frame) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("error"), &first);
  if (!frame.id.empty()) AppendMember(&out, "id", frame.id, &first);
  AppendMember(&out, "code", std::string(ErrorCodeName(frame.code)),
               &first);
  if (!frame.message.empty()) {
    AppendMember(&out, "message", frame.message, &first);
  }
  out += "}";
  return out;
}

std::string Serialize(const StatsFrame& frame) {
  std::string out;
  bool first = true;
  AppendMember(&out, "type", std::string("stats"), &first);
  AppendMember(&out, "programs_parsed", frame.programs_parsed, &first);
  AppendMember(&out, "cache_hits", frame.cache_hits, &first);
  AppendMember(&out, "cache_misses", frame.cache_misses, &first);
  AppendMember(&out, "cache_evictions", frame.cache_evictions, &first);
  AppendMember(&out, "cache_entries", frame.cache_entries, &first);
  AppendMember(&out, "accepted", frame.accepted, &first);
  AppendMember(&out, "completed", frame.completed, &first);
  AppendMember(&out, "rejected_overload", frame.rejected_overload,
               &first);
  AppendMember(&out, "cancelled", frame.cancelled, &first);
  AppendMember(&out, "deadline_exceeded", frame.deadline_exceeded,
               &first);
  AppendMember(&out, "max_overlap", frame.max_overlap, &first);
  AppendMember(&out, "inflight", frame.inflight, &first);
  AppendMember(&out, "queued", frame.queued, &first);
  out += "}";
  return out;
}

std::string Serialize(const PongFrame&) { return "{\"type\":\"pong\"}"; }

namespace {

util::Status ResponseError(const std::string& what) {
  return util::Status::InvalidArgument("response frame: " + what);
}

std::uint64_t NumberOr(const JsonValue& frame, const char* key,
                       std::uint64_t fallback) {
  const JsonValue* v = frame.Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string StringOr(const JsonValue& frame, const char* key) {
  const JsonValue* v = frame.Find(key);
  return v != nullptr && v->is_string() ? v->string() : std::string();
}

bool BoolOr(const JsonValue& frame, const char* key, bool fallback) {
  const JsonValue* v = frame.Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

}  // namespace

util::StatusOr<ResponseFrame> ParseResponse(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) return ResponseError("not an object");
  const JsonValue* type = parsed->Find("type");
  if (type == nullptr || !type->is_string()) {
    return ResponseError("missing string 'type'");
  }

  ResponseFrame out;
  if (type->string() == "ack") {
    out.type = ResponseFrame::Type::kAck;
    out.ack.id = StringOr(*parsed, "id");
    return out;
  }
  if (type->string() == "event") {
    out.type = ResponseFrame::Type::kEvent;
    out.event.id = StringOr(*parsed, "id");
    out.event.round = NumberOr(*parsed, "round", 0);
    out.event.atoms = NumberOr(*parsed, "atoms", 0);
    out.event.delta_atoms = NumberOr(*parsed, "delta_atoms", 0);
    out.event.triggers_fired = NumberOr(*parsed, "triggers_fired", 0);
    return out;
  }
  if (type->string() == "result") {
    out.type = ResponseFrame::Type::kResult;
    out.result.id = StringOr(*parsed, "id");
    out.result.outcome = StringOr(*parsed, "outcome");
    out.result.cached = BoolOr(*parsed, "cached", false);
    out.result.atoms = NumberOr(*parsed, "atoms", 0);
    out.result.rounds = NumberOr(*parsed, "rounds", 0);
    out.result.triggers_fired = NumberOr(*parsed, "triggers_fired", 0);
    out.result.max_depth = static_cast<std::uint32_t>(
        NumberOr(*parsed, "max_depth", 0));
    out.result.arena_bytes = NumberOr(*parsed, "arena_bytes", 0);
    const JsonValue* payload = parsed->Find("payload");
    if (payload != nullptr && payload->is_string()) {
      out.result.has_payload = true;
      out.result.payload = payload->string();
    }
    return out;
  }
  if (type->string() == "error") {
    out.type = ResponseFrame::Type::kError;
    out.error.id = StringOr(*parsed, "id");
    out.error.message = StringOr(*parsed, "message");
    std::string code = StringOr(*parsed, "code");
    bool known = false;
    for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
      if (code == ErrorCodeName(static_cast<ErrorCode>(c))) {
        out.error.code = static_cast<ErrorCode>(c);
        known = true;
        break;
      }
    }
    if (!known) return ResponseError("unknown error code '" + code + "'");
    return out;
  }
  if (type->string() == "pong") {
    out.type = ResponseFrame::Type::kPong;
    return out;
  }
  if (type->string() == "stats") {
    out.type = ResponseFrame::Type::kStats;
    StatsFrame& s = out.stats;
    s.programs_parsed = NumberOr(*parsed, "programs_parsed", 0);
    s.cache_hits = NumberOr(*parsed, "cache_hits", 0);
    s.cache_misses = NumberOr(*parsed, "cache_misses", 0);
    s.cache_evictions = NumberOr(*parsed, "cache_evictions", 0);
    s.cache_entries = NumberOr(*parsed, "cache_entries", 0);
    s.accepted = NumberOr(*parsed, "accepted", 0);
    s.completed = NumberOr(*parsed, "completed", 0);
    s.rejected_overload = NumberOr(*parsed, "rejected_overload", 0);
    s.cancelled = NumberOr(*parsed, "cancelled", 0);
    s.deadline_exceeded = NumberOr(*parsed, "deadline_exceeded", 0);
    s.max_overlap = NumberOr(*parsed, "max_overlap", 0);
    s.inflight = NumberOr(*parsed, "inflight", 0);
    s.queued = NumberOr(*parsed, "queued", 0);
    return out;
  }
  return ResponseError("unknown type '" + type->string() + "'");
}

const std::vector<FrameSpec>& FrameCatalog() {
  static const std::vector<FrameSpec>* catalog = new std::vector<FrameSpec>{
      {"request", "chase", "run a chase of the submitted program"},
      {"request", "cancel", "abort a live request by id"},
      {"request", "stats", "snapshot the server counters"},
      {"request", "ping", "liveness probe"},
      {"response", "ack", "chase request admitted"},
      {"response", "event", "round progress of a running chase"},
      {"response", "result", "terminal success frame of a chase"},
      {"response", "error", "typed rejection or abort"},
      {"response", "stats", "server counter snapshot"},
      {"response", "pong", "answer to ping"},
      {"error-code", "malformed-frame",
       "not valid frame JSON / missing required field"},
      {"error-code", "unknown-type", "type names no request frame"},
      {"error-code", "unknown-field",
       "a member no frame of this type defines"},
      {"error-code", "oversized-frame",
       "line longer than the server's line cap"},
      {"error-code", "invalid-program",
       "rule text failed api::Program::Parse"},
      {"error-code", "invalid-options",
       "option field with an unusable value"},
      {"error-code", "overloaded", "admission control: queue full"},
      {"error-code", "duplicate-id", "a live request reuses this id"},
      {"error-code", "unknown-id", "cancel names no live request"},
      {"error-code", "cancelled", "aborted by a cancel frame"},
      {"error-code", "deadline-exceeded",
       "the per-request deadline elapsed"},
      {"error-code", "resource-exhausted",
       "the chase exhausted a hard id space"},
      {"error-code", "internal", "server bug; never expected"},
  };
  return *catalog;
}

}  // namespace server
}  // namespace nuchase
