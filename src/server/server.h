#ifndef NUCHASE_SERVER_SERVER_H_
#define NUCHASE_SERVER_SERVER_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "server/program_cache.h"
#include "server/protocol.h"
#include "server/scheduler.h"
#include "util/status.h"

namespace nuchase {
namespace server {

/// Server-wide knobs, mapped 1:1 from nuchase_server's flags.
struct ServerOptions {
  /// Requests chasing concurrently (= the shared pool's workers).
  unsigned max_inflight = 4;
  /// Requests waiting beyond that before admission rejects (overloaded).
  std::size_t max_queue = 64;
  /// Parsed programs the LRU cache retains.
  std::size_t cache_size = 64;
  /// Chase worker threads for requests that leave `threads` unset.
  /// Follows chase::ChaseOptions::num_threads semantics (1 = sequential,
  /// 0 = hardware concurrency, N = exactly N) except that the engine's
  /// NUCHASE_THREADS environment override never applies — a daemon's
  /// behavior must come from its flags, not its inherited environment.
  std::uint32_t default_threads = 1;
  /// Longest accepted request line in bytes; longer lines are answered
  /// with an `oversized-frame` error and skipped (connection survives).
  std::size_t max_line_bytes = 1 << 20;
};

/// One client connection's framing: newline-delimited lines in, lines
/// out. ReadLine is called from the connection's reader thread only;
/// WriteLine must be thread-safe (the reader answers rejections while
/// scheduler workers stream events and results for earlier requests)
/// and must swallow transport failure — once the peer is gone the
/// remaining frames of an in-flight chase have nowhere to go, and
/// dropping them is the contract.
class FrameTransport {
 public:
  enum class ReadResult {
    kOk,         ///< `*line` holds the next line (newline stripped).
    kEof,        ///< Orderly end of input; no line.
    kOversized,  ///< Line exceeded the cap and was skipped; no line.
  };

  virtual ~FrameTransport() = default;
  virtual ReadResult ReadLine(std::string* line) = 0;
  /// False when the peer is unreachable (the frame was dropped).
  virtual bool WriteLine(const std::string& line) = 0;
};

/// FrameTransport over std::istream/std::ostream — the `--stdio` mode
/// and the hermetic harness the integration tests drive ServeStream
/// through (a stringstream in, a stringstream out, no sockets).
class StreamTransport : public FrameTransport {
 public:
  StreamTransport(std::istream* in, std::ostream* out,
                  std::size_t max_line_bytes);

  ReadResult ReadLine(std::string* line) override;
  bool WriteLine(const std::string& line) override;

 private:
  std::istream* in_;
  std::ostream* out_;
  std::size_t max_line_bytes_;
  std::mutex write_mu_;
};

/// The chase-as-a-service daemon core: one shared parse cache and one
/// admission-controlled scheduler, serving any number of connections.
///
/// Each connection gets a reader loop (Serve) that parses frames,
/// answers rejections, admits chase requests into the scheduler and
/// returns once the input reaches EOF *and* every chase the connection
/// admitted has written its terminal frame — an orderly shutdown drains
/// rather than cancels, so a client that closes its write half still
/// collects every result it was promised (and the `--stdio` test
/// harness can feed a whole script and read a complete transcript).
///
/// Wire contract per chase request: exactly one terminal frame (result
/// or error), preceded by an ack when admitted, with event frames in
/// between when requested. Rejected lines get an error frame and never
/// kill the connection.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one connection to drain (see class comment). Blocking; call
  /// from the connection's own thread. Safe to call from many threads
  /// at once — connections share the cache and scheduler.
  void Serve(FrameTransport* transport);

  /// Serve() over a StreamTransport — the `--stdio` entry point.
  void ServeStream(std::istream& in, std::ostream& out);

  /// The counter snapshot a `stats` request answers with.
  StatsFrame stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Connection;
  struct LiveRequest;

  void HandleChase(Connection* conn, const ChaseRequest& request);
  void RunChaseTask(Connection* conn, std::shared_ptr<LiveRequest> live,
                    unsigned worker);
  void FinishRequest(Connection* conn, const std::string& id);

  ServerOptions options_;
  ProgramCache cache_;
  RequestScheduler scheduler_;

  mutable std::mutex mu_;
  std::uint64_t accepted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
};

/// A listening TCP socket on 127.0.0.1 and its accept loop — the
/// daemon's front door. Bind(0) picks an ephemeral port (the smoke
/// test's hermetic mode: nuchase_server prints the chosen port and
/// nuchase_loadgen parses it). Run() serves until Stop(), spawning one
/// reader thread per accepted connection; Stop() is callable from a
/// signal handler (it only calls shutdown(2) on the listening fd).
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral).
  static util::StatusOr<TcpListener> Bind(int port);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// The bound port (the chosen one when Bind was given 0).
  int port() const { return port_; }

  /// Accepts and serves connections until Stop(); joins every
  /// connection thread before returning.
  void Run(Server* server);

  /// Wakes Run()'s accept loop; async-signal-safe.
  void Stop();

 private:
  TcpListener() = default;

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_SERVER_H_
