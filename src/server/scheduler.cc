#include "server/scheduler.h"

#include <algorithm>
#include <utility>

namespace nuchase {
namespace server {

RequestScheduler::RequestScheduler(const Options& options)
    : max_queue_(options.max_queue),
      pool_(std::max(1u, options.max_inflight)) {
  // The pool is fork/join — Run() from one thread at a time — so a
  // dedicated dispatcher enters one Run() region for the scheduler's
  // whole lifetime and the workers inside it become the request loop.
  // Spawned last: WorkerLoop must only ever see a finished object.
  dispatcher_ = std::thread([this] {
    pool_.Run([this](unsigned w) { WorkerLoop(w); });
  });
}

RequestScheduler::~RequestScheduler() { Shutdown(); }

bool RequestScheduler::Submit(std::function<void(unsigned)> task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_ || queue_.size() >= max_queue_) {
    ++stats_.rejected;
    return false;
  }
  queue_.push_back(std::move(task));
  ++stats_.submitted;
  stats_.queued = queue_.size();
  lock.unlock();
  work_cv_.notify_one();
  return true;
}

void RequestScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void RequestScheduler::WorkerLoop(unsigned worker) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) break;  // shutdown_ and nothing left to honor
    std::function<void(unsigned)> task = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.inflight;
    stats_.queued = queue_.size();
    stats_.max_overlap = std::max(stats_.max_overlap, stats_.inflight);
    lock.unlock();
    task(worker);
    lock.lock();
    --stats_.inflight;
    ++stats_.completed;
  }
}

RequestScheduler::Stats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace server
}  // namespace nuchase
