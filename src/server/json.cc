#include "server/json.h"

#include <cctype>
#include <cstdio>

namespace nuchase {
namespace server {

namespace {

/// Nesting cap: a frame is one object with one level of options inside,
/// so 32 is an order of magnitude of headroom while keeping the
/// recursive-descent parser's stack use bounded on adversarial input
/// ("[[[[[..." would otherwise recurse once per byte).
constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  util::StatusOr<JsonValue> Parse() {
    SkipSpace();
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after the JSON value");
    }
    return value;
  }

 private:
  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        "json offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  util::StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null")) return Error("bad literal");
        return JsonValue::Null();
      case 't':
        if (!Literal("true")) return Error("bad literal");
        return JsonValue::Bool(true);
      case 'f':
        if (!Literal("false")) return Error("bad literal");
        return JsonValue::Bool(false);
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(c == '-' || c == '+' || c == '.'
                         ? "numbers are unsigned base-10 integers only"
                         : "unexpected character");
    }
  }

  util::StatusOr<JsonValue> ParseNumber() {
    std::uint64_t n = 0;
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (n > (0xffffffffffffffffULL - digit) / 10) {
        return Error("integer overflows 64 bits");
      }
      n = n * 10 + digit;
      ++pos_;
    }
    if (pos_ > start + 1 && text_[start] == '0') {
      return Error("leading zero");
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return Error("numbers are unsigned base-10 integers only");
    }
    return JsonValue::Number(n);
  }

  util::StatusOr<JsonValue> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return JsonValue::String(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The protocol's own serializer only emits \u00XX for control
          // bytes; decode the BMP in UTF-8 so foreign producers work.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  util::StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue out = JsonValue::MakeArray();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipSpace();
      auto element = ParseValue(depth + 1);
      if (!element.ok()) return element.status();
      out.mutable_array()->push_back(std::move(*element));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return out;
      if (c != ',') return Error("expected ',' or ']'");
    }
  }

  util::StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue out = JsonValue::MakeObject();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a member name");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (out.Find(key->string()) != nullptr) {
        return Error("duplicate member '" + key->string() + "'");
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Error("expected ':'");
      }
      SkipSpace();
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      out.mutable_object()->emplace_back(key->string(),
                                         std::move(*value));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return out;
      if (c != ',') return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonValue::Serialize() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out = std::to_string(number_);
      break;
    case Kind::kString:
      AppendJsonString(&out, string_);
      break;
    case Kind::kArray: {
      out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ",";
        out += array_[i].Serialize();
      }
      out += "]";
      break;
    }
    case Kind::kObject: {
      out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ",";
        AppendJsonString(&out, object_[i].first);
        out += ":";
        out += object_[i].second.Serialize();
      }
      out += "}";
      break;
    }
  }
  return out;
}

}  // namespace server
}  // namespace nuchase
