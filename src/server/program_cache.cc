#include "server/program_cache.h"

#include <algorithm>
#include <utility>

namespace nuchase {
namespace server {

ProgramCache::ProgramCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

util::StatusOr<ProgramCache::Lookup> ProgramCache::GetOrParse(
    const std::string& rules) {
  const std::uint64_t hash = api::ContentHash(rules);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(hash);
    if (it != index_.end() && it->second->text == rules) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return Lookup{it->second->program, true};
    }
    ++stats_.misses;
  }

  // Parse outside the lock: a large program must not serialize every
  // other worker's cache hit behind it.
  auto program = api::Program::Parse(rules);
  if (!program.ok()) return program.status();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.parses;
  auto it = index_.find(hash);
  if (it != index_.end() && it->second->text == rules) {
    // A concurrent miss beat us to the insert; serve the incumbent so
    // every request for this text shares one frozen artifact.
    lru_.splice(lru_.begin(), lru_, it->second);
    return Lookup{it->second->program, false};
  }
  if (it != index_.end()) {
    // Same 64-bit hash, different text: the old entry loses its index
    // slot (one hash, one slot); drop it outright.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.evictions;
  }
  lru_.push_front(Entry{hash, rules, *program});
  index_[hash] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return Lookup{std::move(*program), false};
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace server
}  // namespace nuchase
