#ifndef NUCHASE_SERVER_PROGRAM_CACHE_H_
#define NUCHASE_SERVER_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/program.h"
#include "util/status.h"

namespace nuchase {
namespace server {

/// An LRU cache of parsed api::Programs keyed by the content hash of
/// their rule text — the parse-once half of the serving story: the
/// first request carrying a given program pays Program::Parse (parse,
/// validate, classify, join-plan, reliance graph, lint), every
/// subsequent request with byte-identical text gets the frozen shared
/// artifact back for the price of a hash and a text compare.
///
/// Hash equality is a filter, not an identity proof: every hit compares
/// the stored text byte for byte, so a 64-bit collision degrades to a
/// miss instead of serving the wrong program. Parse failures are never
/// cached — malformed text is rejected per request (errors are cheap to
/// re-derive and must not occupy capacity).
///
/// Thread-safe: GetOrParse may be called from any number of scheduler
/// workers at once. Concurrent first submissions of the same text may
/// both parse (the parse runs outside the lock so a slow program cannot
/// serialize the whole server behind the cache mutex); the first insert
/// wins and the loser's artifact is dropped — correctness is unaffected
/// because Programs parsed from identical text are interchangeable.
class ProgramCache {
 public:
  /// A cache holding at most `capacity` parsed programs (>= 1).
  explicit ProgramCache(std::size_t capacity);

  struct Lookup {
    api::Program program;
    bool hit = false;  ///< Served from the cache (no parse happened).
  };

  /// The cached program for `rules`, parsing and inserting on miss.
  /// Non-OK exactly when api::Program::Parse rejects the text.
  util::StatusOr<Lookup> GetOrParse(const std::string& rules);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t parses = 0;  ///< Successful parses (misses that stuck).
    std::size_t entries = 0;
  };

  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string text;
    api::Program program;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used; eviction pops the back.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_PROGRAM_CACHE_H_
