#ifndef NUCHASE_SERVER_CLIENT_H_
#define NUCHASE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace nuchase {
namespace server {

/// A blocking protocol client over one TCP connection to a
/// nuchase_server — the consumer half the load generator, the server
/// bench and the smoke test share, so "how a well-behaved client reads
/// the wire" is written down exactly once. Single-threaded: one Client
/// per driving thread.
class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static util::StatusOr<Client> Connect(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one already-serialized frame line.
  util::Status Send(const std::string& line);

  /// Reads and parses the next response frame. InvalidArgument on a
  /// line that is not a well-formed response frame (a protocol error —
  /// the harnesses count these and demand zero); NotFound on EOF.
  util::StatusOr<ResponseFrame> ReadFrame();

  /// One closed-loop chase: sends the request and reads frames until
  /// its terminal frame arrives. Event and ack frames for this id are
  /// counted and absorbed; any frame for another id is a protocol error
  /// (this helper is for one-request-at-a-time clients).
  struct ChaseOutcome {
    bool ok = false;      ///< Terminal frame was a result, not an error.
    ResultFrame result;   ///< Meaningful when ok.
    ErrorFrame error;     ///< Meaningful when !ok.
    bool acked = false;
    std::uint64_t events = 0;
  };
  util::StatusOr<ChaseOutcome> RunChase(const ChaseRequest& request);

  /// Sends a stats request and reads the stats frame.
  util::StatusOr<StatsFrame> Stats();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_CLIENT_H_
