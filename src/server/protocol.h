#ifndef NUCHASE_SERVER_PROTOCOL_H_
#define NUCHASE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "util/status.h"

namespace nuchase {
namespace server {

/// The nuchase_server wire protocol: newline-delimited JSON, one frame
/// per line, every frame an object whose `type` member names its kind.
/// Requests flow client -> server, responses server -> client; the
/// server may interleave responses of different requests (frames carry
/// the request `id` they belong to). The full frame and error-code
/// catalog below is mirrored section for section by docs/server.md —
/// tests/server_frames_in_docs.cmake fails the suite when they drift —
/// and is append-only, like the analysis diagnostic catalog.

/// Typed rejection/abort codes carried by error frames. Order is the
/// catalog order `--list-frames` prints; append only.
enum class ErrorCode {
  kMalformedFrame,     ///< Not valid frame JSON / missing required field.
  kUnknownType,        ///< `type` names no request frame.
  kUnknownField,       ///< A member no frame of this type defines.
  kOversizedFrame,     ///< Line longer than the server's line cap.
  kInvalidProgram,     ///< Rule text failed api::Program::Parse.
  kInvalidOptions,     ///< Option field with an unusable value.
  kOverloaded,         ///< Admission control: the request queue is full.
  kDuplicateId,        ///< A live request with this id already exists.
  kUnknownId,          ///< cancel names no live request.
  kCancelled,          ///< Aborted by a cancel frame.
  kDeadlineExceeded,   ///< The per-request deadline elapsed.
  kResourceExhausted,  ///< The chase exhausted a hard id space.
  kInternal,           ///< Server bug; never expected on the wire.
};

/// Stable wire name ("malformed-frame", "overloaded", ...).
const char* ErrorCodeName(ErrorCode code);

/// --- Request frames (client -> server) ---

/// `chase`: run a chase of the submitted program. Budget fields left at
/// 0 mean "server default"; `threads` follows SessionOptions semantics
/// except that its absence (kNumThreadsDefault) defers to the server's
/// --threads flag rather than the environment.
struct ChaseRequest {
  std::string id;     ///< Client-chosen correlation id; required.
  std::string rules;  ///< Program text (rules + facts); required.
  chase::ChaseVariant variant = chase::ChaseVariant::kSemiOblivious;
  std::uint64_t max_atoms = 0;
  std::uint32_t max_depth = 0;
  std::uint64_t max_rounds = 0;
  std::uint64_t deadline_ms = 0;
  std::uint32_t num_threads = chase::kNumThreadsDefault;
  bool payload = false;  ///< Include the sorted instance in the result.
  bool events = false;   ///< Stream per-round event frames.
};

/// `cancel`: abort a live (queued or running) request by id.
struct CancelRequest {
  std::string id;
};

/// `stats`: snapshot the server counters. `ping`: liveness probe.
struct RequestFrame {
  enum class Type { kChase, kCancel, kStats, kPing };
  Type type = Type::kPing;
  ChaseRequest chase;
  CancelRequest cancel;
};

/// The outcome of parsing one request line: either a frame, or the
/// typed error frame the server must answer with (the connection always
/// survives a rejected line). `id` is recovered from the line when
/// possible so the error can be correlated.
struct RequestParse {
  bool ok = false;
  RequestFrame frame;
  ErrorCode code = ErrorCode::kMalformedFrame;
  std::string message;
  std::string id;
};

RequestParse ParseRequest(const std::string& line);

std::string SerializeRequest(const ChaseRequest& request);
std::string SerializeCancel(const std::string& id);
std::string SerializeStatsRequest();
std::string SerializePing();

/// --- Response frames (server -> client) ---

/// `ack`: the chase request was admitted (queued or started).
struct AckFrame {
  std::string id;
};

/// `event`: round progress of a running chase (mirrors
/// chase::RoundProgress), streamed before the result when the request
/// set `events`.
struct EventFrame {
  std::string id;
  std::uint64_t round = 0;
  std::uint64_t atoms = 0;
  std::uint64_t delta_atoms = 0;
  std::uint64_t triggers_fired = 0;
};

/// `result`: terminal success frame of a chase request. Every field is
/// engine-deterministic (byte-identical across thread counts and
/// concurrent load); timing lives client-side on purpose.
struct ResultFrame {
  std::string id;
  std::string outcome;  ///< chase::ChaseOutcomeName of the run.
  bool cached = false;  ///< Program came from the parse cache.
  std::uint64_t atoms = 0;
  std::uint64_t rounds = 0;
  std::uint64_t triggers_fired = 0;
  std::uint32_t max_depth = 0;
  std::uint64_t arena_bytes = 0;
  bool has_payload = false;
  std::string payload;  ///< Sorted instance rendering when requested.
};

/// `error`: terminal failure frame (or rejection of an unparseable
/// line, with an empty id when none could be recovered).
struct ErrorFrame {
  std::string id;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// `stats`: server counter snapshot.
struct StatsFrame {
  std::uint64_t programs_parsed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t max_overlap = 0;  ///< Peak concurrently-running chases.
  std::uint64_t inflight = 0;
  std::uint64_t queued = 0;
};

/// `pong`: answer to ping.
struct PongFrame {};

std::string Serialize(const AckFrame& frame);
std::string Serialize(const EventFrame& frame);
std::string Serialize(const ResultFrame& frame);
std::string Serialize(const ErrorFrame& frame);
std::string Serialize(const StatsFrame& frame);
std::string Serialize(const PongFrame& frame);

/// A parsed response frame (the client half of the protocol:
/// nuchase_loadgen and the test suites consume these).
struct ResponseFrame {
  enum class Type { kAck, kEvent, kResult, kError, kStats, kPong };
  Type type = Type::kPong;
  AckFrame ack;
  EventFrame event;
  ResultFrame result;
  ErrorFrame error;
  StatsFrame stats;
};

util::StatusOr<ResponseFrame> ParseResponse(const std::string& line);

/// One catalog row of `--list-frames`: kind is "request", "response" or
/// "error-code"; name the stable wire name.
struct FrameSpec {
  const char* kind;
  const char* name;
  const char* summary;
};

/// The full wire catalog, in documentation order (requests, responses,
/// error codes). Append-only; docs/server.md mirrors it one section or
/// table row per entry.
const std::vector<FrameSpec>& FrameCatalog();

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_PROTOCOL_H_
