#ifndef NUCHASE_SERVER_JSON_H_
#define NUCHASE_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nuchase {
namespace server {

/// A parsed JSON value — the wire representation of every protocol
/// frame (one JSON object per newline-delimited line).
///
/// The grammar is deliberately a strict subset of JSON: numbers are
/// unsigned base-10 integers only (the protocol never carries floats,
/// signs or exponents, and every budget field is a count), objects keep
/// their key order (serde round-trips byte-identically), and the parser
/// enforces a nesting-depth cap so adversarial input cannot exhaust the
/// reader thread's stack. Everything else — escapes, whitespace,
/// null/true/false, arrays — is standard.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Ordered key/value members; duplicate keys are a parse error.
  using Object = std::vector<std::pair<std::string, JsonValue>>;
  using Array = std::vector<JsonValue>;

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(std::uint64_t n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue MakeArray() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool bool_value() const { return bool_; }
  std::uint64_t number() const { return number_; }
  const std::string& string() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }
  Array* mutable_array() { return &array_; }
  Object* mutable_object() { return &object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& member : object_) {
      if (member.first == key) return &member.second;
    }
    return nullptr;
  }

  /// Serializes back to one line (no newline). Objects and arrays keep
  /// insertion order, so Parse(Serialize(v)) == v member for member.
  std::string Serialize() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses exactly one JSON value spanning the whole input: leading and
/// trailing whitespace is fine, trailing garbage is not. Errors are
/// InvalidArgument with a byte offset ("json offset 12: ...").
util::StatusOr<JsonValue> ParseJson(const std::string& text);

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string* out, const std::string& s);

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_JSON_H_
