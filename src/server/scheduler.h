#ifndef NUCHASE_SERVER_SCHEDULER_H_
#define NUCHASE_SERVER_SCHEDULER_H_

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "util/thread_pool.h"

namespace nuchase {
namespace server {

/// Multiplexes M queued requests over one shared util::ThreadPool with
/// admission control — the serving layer's backpressure valve.
///
/// util::ThreadPool is a fork/join primitive (one Run() region at a
/// time, workers parked between regions), so the scheduler pins it open:
/// a private dispatcher thread enters a single long-lived Run() region
/// whose workers loop pulling whole requests off the queue until
/// shutdown. Each worker owns one request end to end (the chase inside
/// may spin up its own inner pool when the request asked for
/// per-request threads); request-level concurrency is exactly
/// `max_inflight` — the pool's worker count.
///
/// Admission is synchronous and happens on the caller's (reader)
/// thread: Submit() either enqueues and returns true, or — when
/// `max_queue` requests are already waiting — refuses and returns
/// false, which the server answers with a typed `overloaded` frame.
/// Running requests do not count against the queue bound, so at most
/// max_inflight + max_queue requests are admitted at once.
///
/// Telemetry: `max_overlap` records the peak number of requests
/// executing simultaneously — the clock-free engagement proof (in the
/// spirit of ChaseStats::parallel_rounds) that concurrent requests
/// actually overlapped on the pool rather than degrading to a serial
/// queue; bench_server's gate in tools/check_bench_regression reads it
/// through the stats frame and is never skipped.
class RequestScheduler {
 public:
  struct Options {
    unsigned max_inflight = 4;    ///< Pool workers = concurrent requests.
    std::size_t max_queue = 64;   ///< Waiting requests before overload.
  };

  explicit RequestScheduler(const Options& options);

  /// Drains and joins (Shutdown).
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Queues `task` for execution on some pool worker. False when the
  /// queue is full (or the scheduler is shutting down) — the caller
  /// owns the overload rejection. The task runs exactly once, with its
  /// worker index; it must not throw.
  bool Submit(std::function<void(unsigned)> task);

  /// Stops admission, runs every already-queued task to completion,
  /// and joins the workers. Idempotent. Queued tasks are executed, not
  /// dropped: every admitted request was promised a terminal frame.
  void Shutdown();

  unsigned workers() const { return pool_.workers(); }

  struct Stats {
    std::uint64_t submitted = 0;   ///< Admitted tasks.
    std::uint64_t rejected = 0;    ///< Refused at admission (queue full).
    std::uint64_t completed = 0;
    std::uint64_t max_overlap = 0; ///< Peak concurrently-running tasks.
    std::uint64_t inflight = 0;    ///< Currently running.
    std::uint64_t queued = 0;      ///< Currently waiting.
  };

  Stats stats() const;

 private:
  void WorkerLoop(unsigned worker);

  std::size_t max_queue_;
  util::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void(unsigned)>> queue_;
  bool shutdown_ = false;
  Stats stats_;

  /// Joined by Shutdown; spawned last in the constructor so the worker
  /// loop only ever sees fully-constructed state.
  std::thread dispatcher_;
};

}  // namespace server
}  // namespace nuchase

#endif  // NUCHASE_SERVER_SCHEDULER_H_
