#include "saturation/type_oracle.h"

#include <algorithm>

namespace nuchase {
namespace saturation {

using core::Atom;
using core::Term;
using util::Status;
using util::StatusOr;

StatusOr<TypeOracle> TypeOracle::Create(const core::SymbolTable& symbols,
                                        const tgd::TgdSet& tgds,
                                        const Options& options) {
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!rule.IsGuarded()) {
      return Status::FailedPrecondition(
          "TypeOracle requires a guarded TGD set");
    }
  }
  return TypeOracle(symbols, tgds, options);
}

Status TypeOracle::CheckBudget() const {
  if (memo_.size() > options_.max_worlds) {
    return Status::ResourceExhausted(
        "type oracle world budget exceeded (" +
        std::to_string(options_.max_worlds) + ")");
  }
  if (total_atoms_ > options_.max_total_atoms) {
    return Status::ResourceExhausted("type oracle atom budget exceeded");
  }
  return Status::OK();
}

void TypeOracle::EnumerateHoms(
    const std::vector<Atom>& body, const CAtomSet& world,
    const std::function<void(
        const std::unordered_map<Term, std::uint32_t>&)>& cb) const {
  // Candidates per body atom, by predicate.
  std::vector<std::vector<const CAtom*>> candidates(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    for (const CAtom& a : world) {
      if (a.predicate == body[i].predicate) candidates[i].push_back(&a);
    }
    if (candidates[i].empty()) return;
  }

  std::unordered_map<Term, std::uint32_t> h;
  // Match body atoms left-to-right (the guard is typically leftmost and
  // binds everything; worlds are small, so no further ordering is needed).
  std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (i == body.size()) {
      cb(h);
      return;
    }
    const Atom& pattern = body[i];
    for (const CAtom* fact : candidates[i]) {
      std::vector<Term> bound;
      bool ok = true;
      for (std::size_t p = 0; p < pattern.args.size(); ++p) {
        Term v = pattern.args[p];
        auto it = h.find(v);
        if (it == h.end()) {
          h.emplace(v, fact->args[p]);
          bound.push_back(v);
        } else if (it->second != fact->args[p]) {
          ok = false;
          break;
        }
      }
      if (ok) recurse(i + 1);
      for (Term v : bound) h.erase(v);
    }
  };
  recurse(0);
}

StatusOr<bool> TypeOracle::OnePass(const CKey& key, std::uint32_t depth) {
  CAtomSet& S = memo_[key];
  CAtomSet additions;

  for (std::size_t ti = 0; ti < tgds_.size(); ++ti) {
    const tgd::Tgd& rule = tgds_.tgd(ti);

    // Snapshot the homomorphisms first: Eval() on child worlds must not
    // run while we iterate S.
    std::vector<std::unordered_map<Term, std::uint32_t>> homs;
    EnumerateHoms(rule.body(), S,
                  [&](const std::unordered_map<Term, std::uint32_t>& h) {
                    homs.push_back(h);
                  });

    for (const auto& h : homs) {
      if (rule.existential().empty()) {
        for (const Atom& head_atom : rule.head()) {
          CAtom derived;
          derived.predicate = head_atom.predicate;
          derived.args.reserve(head_atom.args.size());
          for (Term v : head_atom.args) derived.args.push_back(h.at(v));
          if (!S.count(derived)) additions.insert(std::move(derived));
        }
        continue;
      }

      // Child world: instantiated head atoms (existentials get fresh
      // integers above the world's term range) plus the current atoms
      // over the frontier images.
      std::unordered_map<Term, std::uint32_t> extended = h;
      std::uint32_t next_fresh = key.num_terms + 1;
      for (Term z : rule.existential()) extended.emplace(z, next_fresh++);

      std::unordered_set<std::uint32_t> frontier_images;
      for (Term x : rule.frontier()) frontier_images.insert(h.at(x));

      CAtomSet world;
      for (const Atom& head_atom : rule.head()) {
        CAtom derived;
        derived.predicate = head_atom.predicate;
        derived.args.reserve(head_atom.args.size());
        for (Term v : head_atom.args) derived.args.push_back(extended.at(v));
        world.insert(std::move(derived));
      }
      for (const CAtom& beta : S) {
        bool visible = true;
        for (std::uint32_t t : beta.args) {
          if (!frontier_images.count(t)) {
            visible = false;
            break;
          }
        }
        if (visible) world.insert(beta);
      }

      Canonicalized canon = Canonicalize(world);
      NUCHASE_RETURN_IF_ERROR(Eval(canon.key, depth + 1));

      const CAtomSet& child_result = memo_.at(canon.key);
      for (const CAtom& atom : child_result) {
        CAtom translated = atom;
        bool has_fresh = false;
        for (std::uint32_t& t : translated.args) {
          std::uint32_t original = canon.new_to_old[t - 1];
          if (original > key.num_terms) {  // a fresh (existential) term
            has_fresh = true;
            break;
          }
          t = original;
        }
        if (has_fresh) continue;
        if (!S.count(translated)) additions.insert(std::move(translated));
      }
    }
  }

  if (additions.empty()) return false;
  for (const CAtom& a : additions) {
    S.insert(a);
    ++total_atoms_;
  }
  NUCHASE_RETURN_IF_ERROR(CheckBudget());
  return true;
}

Status TypeOracle::Eval(const CKey& key, std::uint32_t depth) {
  if (depth > options_.max_recursion) {
    return Status::ResourceExhausted("type oracle recursion too deep");
  }
  auto it = memo_.find(key);
  if (it == memo_.end()) {
    memo_.emplace(key, CAtomSet(key.atoms.begin(), key.atoms.end()));
    total_atoms_ += key.atoms.size();
    NUCHASE_RETURN_IF_ERROR(CheckBudget());
  }
  if (in_progress_.count(key)) return Status::OK();

  in_progress_.insert(key);
  while (true) {
    StatusOr<bool> changed = OnePass(key, depth);
    if (!changed.ok()) {
      in_progress_.erase(key);
      return changed.status();
    }
    if (!*changed) break;
    global_changed_ = true;
  }
  in_progress_.erase(key);
  return Status::OK();
}

StatusOr<CAtomSet> TypeOracle::CompleteCanonical(const CAtomSet& world) {
  Canonicalized canon = Canonicalize(world);
  do {
    global_changed_ = false;
    NUCHASE_RETURN_IF_ERROR(Eval(canon.key, 0));
  } while (global_changed_);

  CAtomSet out;
  for (const CAtom& atom : memo_.at(canon.key)) {
    CAtom translated = atom;
    for (std::uint32_t& t : translated.args) t = canon.new_to_old[t - 1];
    out.insert(std::move(translated));
  }
  return out;
}

StatusOr<std::vector<Atom>> TypeOracle::Complete(
    const std::vector<Atom>& atoms) {
  // Map terms to local integers (by ascending bit pattern: deterministic).
  std::vector<Term> terms;
  for (const Atom& a : atoms) {
    for (Term t : a.args) {
      if (t.IsVariable()) {
        return Status::InvalidArgument(
            "Complete() expects ground atoms (constants/nulls)");
      }
      terms.push_back(t);
    }
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::unordered_map<Term, std::uint32_t> to_int;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    to_int.emplace(terms[i], static_cast<std::uint32_t>(i + 1));
  }

  CAtomSet world;
  for (const Atom& a : atoms) {
    CAtom c;
    c.predicate = a.predicate;
    c.args.reserve(a.args.size());
    for (Term t : a.args) c.args.push_back(to_int.at(t));
    world.insert(std::move(c));
  }

  auto completed = CompleteCanonical(world);
  if (!completed.ok()) return completed.status();

  std::vector<Atom> out;
  out.reserve(completed->size());
  for (const CAtom& c : *completed) {
    Atom a;
    a.predicate = c.predicate;
    a.args.reserve(c.args.size());
    for (std::uint32_t t : c.args) a.args.push_back(terms[t - 1]);
    out.push_back(std::move(a));
  }
  return out;
}

StatusOr<bool> TypeOracle::EntailsPropositional(const core::Database& db,
                                                core::PredicateId pred) {
  auto completed = Complete(db.facts());
  if (!completed.ok()) return completed.status();
  for (const Atom& a : *completed) {
    if (a.predicate == pred && a.args.empty()) return true;
  }
  return false;
}

}  // namespace saturation
}  // namespace nuchase
