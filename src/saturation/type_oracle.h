#ifndef NUCHASE_SATURATION_TYPE_ORACLE_H_
#define NUCHASE_SATURATION_TYPE_ORACLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "saturation/canonical.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace saturation {

/// Guarded saturation: computes complete(I, Σ) — the atoms over dom(I)
/// that belong to chase(I, Σ) — for a guarded set Σ (Appendix E,
/// "Auxiliary Notions"). This is the substrate of the linearization of
/// Section 8 (computing types and their completions) and also yields a
/// decider for propositional atom entailment PAE(G).
///
/// Algorithm: a memoized monotone fixpoint over canonical worlds (the
/// recursion behind Lemma 6 of [19]). For a world W:
///   1. every trigger (σ, h) on W whose head atoms use only frontier
///      variables contributes those atoms directly, and
///   2. every trigger with existential variables spawns a child world —
///      the instantiated head atoms plus the current atoms of W over the
///      frontier images — whose own completion, restricted to non-fresh
///      terms, flows back into W.
/// Memo entries grow monotonically inside finite lattices (all worlds
/// except the root have at most ar(Σ) + #existentials terms), so the
/// global fixpoint terminates; budgets bound the exponential type space.
class TypeOracle {
 public:
  struct Options {
    /// Maximum number of memoized worlds before ResourceExhausted.
    std::uint64_t max_worlds = 200000;
    /// Maximum total atoms across all memo entries.
    std::uint64_t max_total_atoms = 5'000'000;
    /// Maximum recursion depth through child worlds.
    std::uint32_t max_recursion = 4096;
  };

  /// Fails (FailedPrecondition) if Σ is not guarded.
  static util::StatusOr<TypeOracle> Create(const core::SymbolTable& symbols,
                                           const tgd::TgdSet& tgds,
                                           const Options& options);

  /// complete(I, Σ) for an instance given as atoms over constants/nulls
  /// (no variables). The result contains the input atoms.
  util::StatusOr<std::vector<core::Atom>> Complete(
      const std::vector<core::Atom>& atoms);

  /// complete(·) over canonical worlds (used by the linearizer, whose
  /// Σ-types already live in integer-term form). The returned set is in
  /// the *canonical* numbering of `world` — callers translate via the
  /// Canonicalized mapping they obtained.
  util::StatusOr<CAtomSet> CompleteCanonical(const CAtomSet& world);

  /// PAE (Theorem 8.5): is the 0-ary atom `pred`() in chase(D, Σ)?
  util::StatusOr<bool> EntailsPropositional(const core::Database& db,
                                            core::PredicateId pred);

  std::size_t memo_size() const { return memo_.size(); }

 private:
  TypeOracle(const core::SymbolTable& symbols, const tgd::TgdSet& tgds,
             const Options& options)
      : symbols_(symbols), tgds_(tgds), options_(options) {}

  /// Evaluates the world to a local fixpoint using current memo values for
  /// children; sets global_changed_ when any memo entry grows.
  util::Status Eval(const CKey& key, std::uint32_t depth);

  /// One pass over all triggers of the world; returns whether S grew.
  util::StatusOr<bool> OnePass(const CKey& key, std::uint32_t depth);

  /// Enumerates homomorphisms of `body` into `world` (atoms indexed by
  /// predicate); h maps variables to local integers.
  void EnumerateHoms(
      const std::vector<core::Atom>& body, const CAtomSet& world,
      const std::function<void(
          const std::unordered_map<core::Term, std::uint32_t>&)>& cb) const;

  util::Status CheckBudget() const;

  const core::SymbolTable& symbols_;
  const tgd::TgdSet& tgds_;
  Options options_;

  std::unordered_map<CKey, CAtomSet, CKeyHash> memo_;
  std::unordered_set<CKey, CKeyHash> in_progress_;
  bool global_changed_ = false;
  std::uint64_t total_atoms_ = 0;
};

}  // namespace saturation
}  // namespace nuchase

#endif  // NUCHASE_SATURATION_TYPE_ORACLE_H_
