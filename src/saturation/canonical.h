#ifndef NUCHASE_SATURATION_CANONICAL_H_
#define NUCHASE_SATURATION_CANONICAL_H_

#include <cstdint>
#include <set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/hash.h"

namespace nuchase {
namespace saturation {

/// An atom over small-integer local terms (1-based), the working currency
/// of the type oracle and of Σ-types (Appendix E). Integer terms play the
/// role of the canonical constants 1, 2, ... in the paper's Σ-type
/// definition.
struct CAtom {
  core::PredicateId predicate = core::kInvalidPredicate;
  std::vector<std::uint32_t> args;

  CAtom() = default;
  CAtom(core::PredicateId pred, std::vector<std::uint32_t> arguments)
      : predicate(pred), args(std::move(arguments)) {}

  bool operator==(const CAtom& o) const {
    return predicate == o.predicate && args == o.args;
  }
  bool operator<(const CAtom& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return args < o.args;
  }

  std::string ToString(const core::SymbolTable& symbols) const;
};

struct CAtomHash {
  std::size_t operator()(const CAtom& a) const {
    std::size_t seed = std::hash<std::uint32_t>{}(a.predicate);
    return util::HashRange(a.args.begin(), a.args.end(), seed);
  }
};

/// A set of CAtoms with deterministic iteration order.
using CAtomSet = std::set<CAtom>;

/// A canonical instance: the memoization key of the type oracle. Atoms
/// are sorted and local terms are renamed 1..k by the canonicalization
/// below, so any two instances with the same canonical form are equal as
/// keyed worlds.
struct CKey {
  std::vector<CAtom> atoms;  // sorted, deduplicated
  std::uint32_t num_terms = 0;

  bool operator==(const CKey& o) const {
    return num_terms == o.num_terms && atoms == o.atoms;
  }
};

struct CKeyHash {
  std::size_t operator()(const CKey& k) const {
    std::size_t seed = std::hash<std::uint32_t>{}(k.num_terms);
    for (const CAtom& a : k.atoms) {
      util::HashCombine(&seed, CAtomHash{}(a));
    }
    return seed;
  }
};

/// Result of canonicalizing a set of atoms over arbitrary local integers:
/// the canonical key plus the inverse renaming (new_to_old[i] is the
/// original integer of canonical term i+1).
struct Canonicalized {
  CKey key;
  std::vector<std::uint32_t> new_to_old;
};

/// Renames the integers used in `atoms` to 1..k in ascending order of the
/// original integers, sorts, and deduplicates. Deterministic; any
/// deterministic renaming onto 1..k suffices for the oracle's memoization
/// to terminate (the key space over ≤ k terms is finite).
Canonicalized Canonicalize(const CAtomSet& atoms);

}  // namespace saturation
}  // namespace nuchase

#endif  // NUCHASE_SATURATION_CANONICAL_H_
