#include "saturation/canonical.h"

#include <algorithm>
#include <unordered_map>

namespace nuchase {
namespace saturation {

std::string CAtom::ToString(const core::SymbolTable& symbols) const {
  std::string out = symbols.predicate_name(predicate);
  out += '(';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(args[i]);
  }
  out += ')';
  return out;
}

Canonicalized Canonicalize(const CAtomSet& atoms) {
  std::vector<std::uint32_t> used;
  for (const CAtom& a : atoms) {
    used.insert(used.end(), a.args.begin(), a.args.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());

  std::unordered_map<std::uint32_t, std::uint32_t> old_to_new;
  for (std::size_t i = 0; i < used.size(); ++i) {
    old_to_new.emplace(used[i], static_cast<std::uint32_t>(i + 1));
  }

  Canonicalized out;
  out.new_to_old = used;
  out.key.num_terms = static_cast<std::uint32_t>(used.size());
  for (const CAtom& a : atoms) {
    CAtom renamed = a;
    for (std::uint32_t& t : renamed.args) t = old_to_new.at(t);
    out.key.atoms.push_back(std::move(renamed));
  }
  std::sort(out.key.atoms.begin(), out.key.atoms.end());
  out.key.atoms.erase(
      std::unique(out.key.atoms.begin(), out.key.atoms.end()),
      out.key.atoms.end());
  return out;
}

}  // namespace saturation
}  // namespace nuchase
