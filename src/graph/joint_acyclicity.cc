#include "graph/joint_acyclicity.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/schema.h"

namespace nuchase {
namespace graph {

namespace {

using core::Position;
using core::PositionHash;
using core::Term;
using tgd::RuleIndex;
using tgd::Tgd;

/// Fixed-universe bitset over the dense position ids.
class PositionSet {
 public:
  explicit PositionSet(std::size_t universe)
      : words_((universe + 63) / 64, 0) {}

  void Add(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool Contains(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  /// this ⊇ other, for others represented as sparse id lists.
  bool ContainsAll(const std::vector<std::uint32_t>& ids) const {
    for (std::uint32_t i : ids) {
      if (!Contains(i)) return false;
    }
    return true;
  }
  /// this |= ids; returns true when any bit was new.
  bool AddAll(const std::vector<std::uint32_t>& ids) {
    bool grew = false;
    for (std::uint32_t i : ids) {
      if (!Contains(i)) {
        Add(i);
        grew = true;
      }
    }
    return grew;
  }
  std::size_t Count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Dense ids for the positions of sch(Σ), in sorted Position order so
/// every derived artifact (move sizes, witness order) is deterministic.
class PositionIndex {
 public:
  explicit PositionIndex(const tgd::TgdSet& tgds,
                         const core::SymbolTable& symbols) {
    std::vector<Position> all =
        core::AllPositions(tgds.SchemaPredicates(), symbols);
    ids_.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      ids_.emplace(all[i], static_cast<std::uint32_t>(i));
    }
  }

  std::size_t size() const { return ids_.size(); }
  std::uint32_t id(const Position& p) const { return ids_.at(p); }

 private:
  std::unordered_map<Position, std::uint32_t, PositionHash> ids_;
};

/// Sorted-unique dense ids of the positions where `var` occurs in
/// `atoms`.
std::vector<std::uint32_t> PositionsIn(const std::vector<core::Atom>& atoms,
                                       Term var,
                                       const PositionIndex& index) {
  std::vector<std::uint32_t> out;
  for (const core::Atom& atom : atoms) {
    for (const Position& p : core::PositionsOfTerm(atom, var)) {
      out.push_back(index.id(p));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

JointAcyclicityResult CheckJointAcyclicity(
    const tgd::TgdSet& tgds, const core::SymbolTable& symbols) {
  JointAcyclicityResult result;
  const PositionIndex index(tgds, symbols);

  // Nodes: every existential variable, in (rule, existential-order)
  // order. Per-node Pos_H(z); per (rule, frontier var): Pos_B(x) and
  // Pos_H(x), the currency of both the Move fixpoint and the edges.
  std::vector<JaVariable> nodes;
  std::vector<std::vector<std::uint32_t>> node_head_pos;
  struct FrontierVar {
    RuleIndex rule;
    std::vector<std::uint32_t> body_pos;
    std::vector<std::uint32_t> head_pos;
  };
  std::vector<FrontierVar> frontier_vars;
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    const Tgd& rule = tgds.tgd(r);
    for (Term z : rule.existential()) {
      nodes.push_back(JaVariable{r, z});
      node_head_pos.push_back(PositionsIn(rule.head(), z, index));
    }
    for (Term x : rule.frontier()) {
      frontier_vars.push_back(FrontierVar{
          r, PositionsIn(rule.body(), x, index),
          PositionsIn(rule.head(), x, index)});
    }
  }
  if (nodes.empty()) return result;  // No nulls are ever minted.

  // Move(z) fixpoint per node, then the dependency edges read off it.
  std::vector<std::vector<std::uint32_t>> edges(nodes.size());
  result.move_sizes.reserve(nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    PositionSet move(index.size());
    move.AddAll(node_head_pos[n]);
    bool grew = true;
    while (grew) {
      grew = false;
      for (const FrontierVar& x : frontier_vars) {
        if (move.ContainsAll(x.body_pos)) {
          grew = move.AddAll(x.head_pos) || grew;
        }
      }
    }
    result.move_sizes.push_back(move.Count());
    // Edge n → m for every existential of a rule whose frontier has a
    // variable fed entirely from Move(n).
    std::vector<bool> rule_fed(tgds.size(), false);
    for (const FrontierVar& x : frontier_vars) {
      if (!rule_fed[x.rule] && move.ContainsAll(x.body_pos)) {
        rule_fed[x.rule] = true;
      }
    }
    for (std::size_t m = 0; m < nodes.size(); ++m) {
      if (rule_fed[nodes[m].rule]) {
        edges[n].push_back(static_cast<std::uint32_t>(m));
      }
    }
  }

  // Iterative colored DFS in node order; the first back edge yields the
  // witness cycle off the DFS stack.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(nodes.size(), kWhite);
  std::vector<std::uint32_t> stack;       // gray path
  std::vector<std::size_t> next_edge;     // per stack entry
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (color[root] != kWhite) continue;
    stack.assign(1, static_cast<std::uint32_t>(root));
    next_edge.assign(1, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (next_edge.back() == edges[n].size()) {
        color[n] = kBlack;
        stack.pop_back();
        next_edge.pop_back();
        continue;
      }
      const std::uint32_t m = edges[n][next_edge.back()++];
      if (color[m] == kGray) {
        // Cycle: the stack suffix from m's occurrence through n.
        result.jointly_acyclic = false;
        std::size_t start = stack.size();
        while (start > 0 && stack[start - 1] != m) --start;
        for (std::size_t i = start > 0 ? start - 1 : 0; i < stack.size();
             ++i) {
          result.cycle.push_back(nodes[stack[i]]);
        }
        return result;
      }
      if (color[m] == kWhite) {
        color[m] = kGray;
        stack.push_back(m);
        next_edge.push_back(0);
      }
    }
  }
  return result;
}

}  // namespace graph
}  // namespace nuchase
