#ifndef NUCHASE_GRAPH_JOINT_ACYCLICITY_H_
#define NUCHASE_GRAPH_JOINT_ACYCLICITY_H_

#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {

/// One existential variable z of one rule σ — a node of the joint-
/// acyclicity dependency graph, and one step of its cycle witness.
struct JaVariable {
  tgd::RuleIndex rule = 0;
  core::Term variable;  ///< z, a variable of tgds.tgd(rule).existential().

  bool operator==(const JaVariable& o) const {
    return rule == o.rule && variable == o.variable;
  }
};

/// Result of the joint-acyclicity check (Krötzsch & Rudolph, IJCAI'11),
/// the ladder rung between weak acyclicity and MFA. JA is a *uniform*
/// sufficient condition: a jointly acyclic Σ has a terminating
/// semi-oblivious chase on every database.
struct JointAcyclicityResult {
  bool jointly_acyclic = true;
  /// Witness when !jointly_acyclic: a cycle of the existential-variable
  /// dependency graph, in edge order (the last entry has an edge back to
  /// the first). Deterministic: the DFS visits variables in (rule,
  /// existential-order) order. Empty iff jointly_acyclic.
  std::vector<JaVariable> cycle;
  /// |Move(z)| per existential variable, in (rule, existential-order)
  /// order — the machine-readable sizes of the fixpoint sets the edges
  /// were read off (diagnostics and the lint JSON surface them).
  std::vector<std::size_t> move_sizes;
};

/// Decides whether Σ is jointly acyclic.
///
/// For each existential variable z, Move(z) is the least set of positions
/// with Pos_H(z) ⊆ Move(z) that is closed under body-to-head transfer:
/// for every rule σ' and frontier variable x of σ' with
/// Pos_B(x) ⊆ Move(z), also Pos_H(x) ⊆ Move(z). The dependency graph has
/// an edge z → z' (z' existential in σ') iff some frontier variable x of
/// σ' has ∅ ≠ Pos_B(x) ⊆ Move(z): a null minted for z can then feed a
/// trigger that mints a null for z'. Σ is jointly acyclic iff this graph
/// is acyclic. JA strictly subsumes uniform weak acyclicity.
JointAcyclicityResult CheckJointAcyclicity(const tgd::TgdSet& tgds,
                                           const core::SymbolTable& symbols);

}  // namespace graph
}  // namespace nuchase

#endif  // NUCHASE_GRAPH_JOINT_ACYCLICITY_H_
