#ifndef NUCHASE_GRAPH_WEAK_ACYCLICITY_H_
#define NUCHASE_GRAPH_WEAK_ACYCLICITY_H_

#include <unordered_set>
#include <vector>

#include "core/database.h"
#include "core/schema.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {

/// Result of the non-uniform weak-acyclicity check (Definition 6.1),
/// including the witness data CheckWA (Algorithm 1) would guess.
struct WeakAcyclicityResult {
  /// True iff Σ is D-weakly-acyclic: no D-supported cycle in dg(Σ) goes
  /// through a special edge.
  bool weakly_acyclic = true;
  /// Positions that are sources of special edges lying on cycles
  /// (regardless of D-support). Non-empty iff Σ is not *uniformly*
  /// weakly-acyclic.
  std::vector<core::Position> special_cycle_positions;
  /// The subset of special_cycle_positions whose predicate is pg-reachable
  /// from a predicate of D, i.e. the witnesses that the cycle is
  /// D-supported. Non-empty iff !weakly_acyclic.
  std::vector<core::Position> supported_witnesses;
};

/// Decides whether Σ is D-weakly-acyclic (Definition 6.1).
///
/// A cycle through a special edge (u, v) exists iff v reaches u in dg(Σ)
/// (same SCC), and every node on such a cycle is predicate-reachable from
/// every other node on it (each dg-edge induces a pg-edge), so the cycle
/// is D-supported iff pred(u) lies in the forward pg-closure of the
/// database predicates. This realizes both reachability checks of
/// Algorithm 1 deterministically.
WeakAcyclicityResult CheckWeakAcyclicity(const tgd::TgdSet& tgds,
                                         const core::Database& db,
                                         const core::SymbolTable& symbols);

/// Variant taking the database's predicate set directly (used when the
/// caller has simple(D) / gsimple(D) predicates without materializing the
/// facts).
WeakAcyclicityResult CheckWeakAcyclicity(
    const tgd::TgdSet& tgds,
    const std::unordered_set<core::PredicateId>& db_predicates,
    const core::SymbolTable& symbols);

/// Uniform weak-acyclicity (Fagin et al. [14]): no cycle through a
/// special edge at all. Equivalent to D-weak-acyclicity for the critical
/// database containing every predicate.
bool IsUniformlyWeaklyAcyclic(const tgd::TgdSet& tgds,
                              const core::SymbolTable& symbols);

/// The predicate set P_Σ of Theorem 6.6's UCQ construction: all R in
/// sch(Σ) such that some position (P, i) lies on a cycle with a special
/// edge and R ⇝_Σ P. Σ is not D-weakly-acyclic iff D contains a fact
/// whose predicate is in P_Σ.
std::unordered_set<core::PredicateId> SupportPredicates(
    const tgd::TgdSet& tgds, const core::SymbolTable& symbols);

}  // namespace graph
}  // namespace nuchase

#endif  // NUCHASE_GRAPH_WEAK_ACYCLICITY_H_
