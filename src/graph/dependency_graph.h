#ifndef NUCHASE_GRAPH_DEPENDENCY_GRAPH_H_
#define NUCHASE_GRAPH_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/schema.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {

/// The dependency graph dg(Σ) (Section 6): nodes are the predicate
/// positions of sch(Σ); for every TGD σ, frontier variable x and body
/// position π of x, there is a normal edge to every position of x in every
/// head atom, and a special edge to every position of every existentially
/// quantified variable in every head atom.
class DependencyGraph {
 public:
  /// Dense node handle (index into nodes()).
  using NodeId = std::uint32_t;

  struct Edge {
    NodeId from;
    NodeId to;
    bool special;
  };

  /// Builds dg(Σ).
  DependencyGraph(const tgd::TgdSet& tgds,
                  const core::SymbolTable& symbols);

  const std::vector<core::Position>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Node handle of a position; returns false if the position is not a
  /// node (predicate not in sch(Σ)).
  bool FindNode(const core::Position& pos, NodeId* id) const;

  const core::Position& position(NodeId id) const { return nodes_[id]; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Outgoing edges of a node.
  const std::vector<Edge>& OutEdges(NodeId id) const {
    return adjacency_[id];
  }

  /// Strongly connected component id per node (Tarjan). Two nodes are on a
  /// common cycle iff they share an SCC.
  const std::vector<std::uint32_t>& SccIds() const { return scc_; }

  /// Nodes u such that some special edge (u, v) lies on a cycle, i.e. u
  /// and v are in the same SCC. These are exactly the positions through
  /// which a cycle with a special edge passes as the special edge's
  /// source.
  std::vector<NodeId> SpecialCycleSources() const;

  /// True iff dg(Σ) has any cycle containing a special edge (uniform
  /// weak-acyclicity fails iff true; Fagin et al. [14]).
  bool HasSpecialCycle() const {
    return !SpecialCycleSources().empty();
  }

 private:
  void ComputeSccs();

  std::vector<core::Position> nodes_;
  std::unordered_map<core::Position, NodeId, core::PositionHash> node_ids_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::uint32_t> scc_;
};

}  // namespace graph
}  // namespace nuchase

#endif  // NUCHASE_GRAPH_DEPENDENCY_GRAPH_H_
