#ifndef NUCHASE_GRAPH_PREDICATE_GRAPH_H_
#define NUCHASE_GRAPH_PREDICATE_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/symbol_table.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {

/// The predicate graph pg(Σ) (Appendix E): nodes are the predicates of
/// sch(Σ), with an edge (R, P) iff some TGD has R in its body and P in its
/// head. The reachability relation ⇝_Σ of Section 6 is the reflexive-
/// transitive closure of this graph (R →_Σ P includes R = P).
class PredicateGraph {
 public:
  explicit PredicateGraph(const tgd::TgdSet& tgds);

  /// Successors of a predicate (empty if none).
  const std::vector<core::PredicateId>& Successors(
      core::PredicateId pred) const;

  /// R ⇝_Σ P: reflexive-transitive reachability.
  bool Reaches(core::PredicateId from, core::PredicateId to) const;

  /// Forward closure of a set of predicates (includes the seeds:
  /// reachability is reflexive).
  std::unordered_set<core::PredicateId> ForwardClosure(
      const std::unordered_set<core::PredicateId>& seeds) const;

  /// Backward closure: all R with R ⇝_Σ P for some P in `seeds`.
  std::unordered_set<core::PredicateId> BackwardClosure(
      const std::unordered_set<core::PredicateId>& seeds) const;

 private:
  std::unordered_map<core::PredicateId, std::vector<core::PredicateId>>
      successors_;
  std::unordered_map<core::PredicateId, std::vector<core::PredicateId>>
      predecessors_;
  static const std::vector<core::PredicateId> kEmpty;
};

}  // namespace graph
}  // namespace nuchase

#endif  // NUCHASE_GRAPH_PREDICATE_GRAPH_H_
