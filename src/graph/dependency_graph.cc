#include "graph/dependency_graph.h"

#include <algorithm>
#include <stack>

namespace nuchase {
namespace graph {

using core::Position;
using core::Term;

DependencyGraph::DependencyGraph(const tgd::TgdSet& tgds,
                                 const core::SymbolTable& symbols) {
  // Nodes: pos(sch(Σ)).
  for (core::PredicateId pred : tgds.SchemaPredicates()) {
    for (std::uint32_t i = 0; i < symbols.arity(pred); ++i) {
      Position pos(pred, i);
      node_ids_.emplace(pos, static_cast<NodeId>(nodes_.size()));
      nodes_.push_back(pos);
    }
  }
  adjacency_.resize(nodes_.size());

  auto add_edge = [&](const Position& from, const Position& to,
                      bool special) {
    NodeId f = node_ids_.at(from);
    NodeId t = node_ids_.at(to);
    Edge e{f, t, special};
    edges_.push_back(e);
    adjacency_[f].push_back(e);
  };

  for (const tgd::Tgd& rule : tgds.tgds()) {
    for (Term x : rule.frontier()) {
      // Positions of x in the body.
      for (const core::Atom& body_atom : rule.body()) {
        for (const Position& pi : core::PositionsOfTerm(body_atom, x)) {
          for (const core::Atom& head_atom : rule.head()) {
            // Normal edges: to every position of x in the head atom.
            for (const Position& pj :
                 core::PositionsOfTerm(head_atom, x)) {
              add_edge(pi, pj, /*special=*/false);
            }
            // Special edges: to every position of every existential
            // variable in the head atom.
            for (Term z : rule.existential()) {
              for (const Position& pj :
                   core::PositionsOfTerm(head_atom, z)) {
                add_edge(pi, pj, /*special=*/true);
              }
            }
          }
        }
      }
    }
  }

  ComputeSccs();
}

bool DependencyGraph::FindNode(const Position& pos, NodeId* id) const {
  auto it = node_ids_.find(pos);
  if (it == node_ids_.end()) return false;
  *id = it->second;
  return true;
}

void DependencyGraph::ComputeSccs() {
  // Iterative Tarjan SCC.
  const std::uint32_t kUnvisited = 0xffffffffu;
  std::size_t n = nodes_.size();
  scc_.assign(n, kUnvisited);
  std::vector<std::uint32_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0, next_scc = 0;

  struct Frame {
    NodeId node;
    std::size_t edge_cursor;
  };

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      NodeId u = frame.node;
      if (frame.edge_cursor < adjacency_[u].size()) {
        NodeId v = adjacency_[u][frame.edge_cursor++].to;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_[w] = next_scc;
            if (w == u) break;
          }
          ++next_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
}

std::vector<DependencyGraph::NodeId>
DependencyGraph::SpecialCycleSources() const {
  std::vector<NodeId> out;
  for (const Edge& e : edges_) {
    if (!e.special) continue;
    if (scc_[e.from] == scc_[e.to]) out.push_back(e.from);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace graph
}  // namespace nuchase
