#ifndef NUCHASE_GRAPH_RELIANCE_H_
#define NUCHASE_GRAPH_RELIANCE_H_

#include <cstdint>
#include <vector>

#include "core/atom.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {

/// Rule-pair reliance analysis over Σ (VLog's positive / restraint
/// reliances, computed once per program at api::Program analysis time).
/// Nodes are rules (ids = tgd::RuleIndex, TgdSet order); two edge
/// relations are exposed at two granularities:
///
///   Positive(r, s)  — r's head can FEED s's body: some head atom of r
///       position-unifies with some body atom of s, treating r's
///       existential variables as fresh pairwise-distinct nulls (a
///       frontier image can never equal a null minted by the very firing
///       that produced the atom). If false, applying r can never create
///       a new trigger of s.
///   Feeds(r, s)     — the predicate-level overapproximation of
///       Positive: head predicates of r ∩ body predicates of s ≠ ∅.
///   Restrains(r, s) — r's head can SATISFY s's head: some head atom of
///       r position-unifies with some head atom of s (r's existentials
///       fresh-distinct as above; s's frontier variables must map to
///       non-null entries, since a trigger's frontier images predate any
///       null the round mints). If true, firing r before s may make s's
///       trigger restricted-inactive — the lever behind the restricted
///       variant's restraint-guided firing order.
///
/// The cross-rule scheduler consumes two derived artifacts. CollectGroups
/// partitions Σ, in Σ-order, into maximal contiguous groups with no
/// FORWARD Feeds edge inside a group (r < s in one group ⇒ ¬Feeds(r, s)):
/// collecting every member against the group-start instance then applying
/// in Σ-order is indistinguishable from the sequential interleaving —
/// not just in the trigger sets (Positive would suffice for that) but in
/// the per-predicate candidate lists every join probe walks, which is
/// what keeps ChaseStats::join_probes identical with reliances on or
/// off. Backward edges and self-loops are harmless: under either
/// schedule rule r's collect precedes every apply of the rules ≥ r it
/// could feed. RestraintOrder orders one group's applies restrainers-
/// first (Σ-order tiebreak) for the restricted variant's opt-in
/// restraint-guided mode.
///
/// SccIds exposes the condensation of the Feeds graph (computed through
/// its rule–predicate bipartite expansion, so construction stays linear
/// in ||Σ|| even when predicates are shared by thousands of rules): a
/// multi-rule component is a mutually recursive rule cluster, the
/// structural ceiling on how finely any Σ-respecting scheduler can
/// stratify. The graph borrows the TgdSet; it must outlive this object.
class RelianceGraph {
 public:
  using NodeId = tgd::RuleIndex;

  explicit RelianceGraph(const tgd::TgdSet& tgds);

  tgd::RuleIndex num_rules() const {
    return static_cast<tgd::RuleIndex>(tgds_->size());
  }

  /// Refined positive reliance r → s (position unification).
  bool Positive(NodeId r, NodeId s) const;
  /// Predicate-level positive overapproximation r → s.
  bool Feeds(NodeId r, NodeId s) const;
  /// Restraint reliance r → s (r's head can satisfy s's head).
  bool Restrains(NodeId r, NodeId s) const;

  /// Condensation of the Feeds graph: component id per rule, densely
  /// renumbered by first appearance in Σ-order.
  const std::vector<std::uint32_t>& SccIds() const { return scc_; }
  std::uint32_t num_sccs() const { return num_sccs_; }

  /// The ordered Σ-interval partition the collect scheduler runs (see
  /// the class comment for the invariant it maintains).
  const std::vector<std::vector<tgd::RuleIndex>>& CollectGroups() const {
    return groups_;
  }

  /// Restraint-guided apply order for one collect group: a permutation
  /// of `group` placing, greedily in Σ-order, every rule none of whose
  /// unplaced peers one-way-restrains it (restrainers first; mutual or
  /// cyclic restraints fall back to Σ-order).
  std::vector<tgd::RuleIndex> RestraintOrder(
      const std::vector<tgd::RuleIndex>& group) const;

 private:
  const tgd::TgdSet* tgds_;
  /// Sorted-unique predicate summaries per rule, the currency of Feeds
  /// and the greedy grouping.
  std::vector<std::vector<core::PredicateId>> body_preds_;
  std::vector<std::vector<core::PredicateId>> head_preds_;
  std::vector<std::uint32_t> scc_;
  std::uint32_t num_sccs_ = 0;
  std::vector<std::vector<tgd::RuleIndex>> groups_;
};

}  // namespace graph
}  // namespace nuchase

#endif  // NUCHASE_GRAPH_RELIANCE_H_
