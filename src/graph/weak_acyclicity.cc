#include "graph/weak_acyclicity.h"

#include "graph/dependency_graph.h"
#include "graph/predicate_graph.h"

namespace nuchase {
namespace graph {

WeakAcyclicityResult CheckWeakAcyclicity(
    const tgd::TgdSet& tgds,
    const std::unordered_set<core::PredicateId>& db_predicates,
    const core::SymbolTable& symbols) {
  WeakAcyclicityResult result;
  DependencyGraph dg(tgds, symbols);
  std::vector<DependencyGraph::NodeId> sources = dg.SpecialCycleSources();
  if (sources.empty()) return result;  // not even a special cycle

  for (DependencyGraph::NodeId id : sources) {
    result.special_cycle_positions.push_back(dg.position(id));
  }

  PredicateGraph pg(tgds);
  std::unordered_set<core::PredicateId> reachable =
      pg.ForwardClosure(db_predicates);
  for (const core::Position& pos : result.special_cycle_positions) {
    if (reachable.count(pos.predicate)) {
      result.supported_witnesses.push_back(pos);
    }
  }
  result.weakly_acyclic = result.supported_witnesses.empty();
  return result;
}

WeakAcyclicityResult CheckWeakAcyclicity(const tgd::TgdSet& tgds,
                                         const core::Database& db,
                                         const core::SymbolTable& symbols) {
  return CheckWeakAcyclicity(tgds, db.Predicates(), symbols);
}

bool IsUniformlyWeaklyAcyclic(const tgd::TgdSet& tgds,
                              const core::SymbolTable& symbols) {
  DependencyGraph dg(tgds, symbols);
  return !dg.HasSpecialCycle();
}

std::unordered_set<core::PredicateId> SupportPredicates(
    const tgd::TgdSet& tgds, const core::SymbolTable& symbols) {
  DependencyGraph dg(tgds, symbols);
  std::unordered_set<core::PredicateId> cycle_preds;
  for (DependencyGraph::NodeId id : dg.SpecialCycleSources()) {
    cycle_preds.insert(dg.position(id).predicate);
  }
  PredicateGraph pg(tgds);
  return pg.BackwardClosure(cycle_preds);
}

}  // namespace graph
}  // namespace nuchase
