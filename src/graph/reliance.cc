#include "graph/reliance.h"

#include <algorithm>
#include <unordered_map>

namespace nuchase {
namespace graph {

namespace {

using core::Atom;
using core::PredicateId;
using core::Term;
using tgd::RuleIndex;
using tgd::Tgd;

std::vector<PredicateId> SortedUniquePredicates(
    const std::vector<Atom>& atoms) {
  std::vector<PredicateId> preds;
  preds.reserve(atoms.size());
  for (const Atom& atom : atoms) preds.push_back(atom.predicate);
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

bool Intersect(const std::vector<PredicateId>& a,
               const std::vector<PredicateId>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Can an instantiation of `produced` (a head atom of rule r: frontier
/// images arbitrary pre-existing terms, existential images fresh
/// pairwise-distinct nulls) be an atom that `pattern` (an atom of rule
/// s) matches? The check is per distinct pattern variable: the produced
/// entries at that variable's positions must be co-unifiable — at most
/// one distinct existential among them, and never an existential
/// alongside a frontier entry (a firing's frontier images predate the
/// nulls it mints, so they can never be equal; freshness also makes the
/// inequality permanent, which keeps the refinement sound across
/// rounds). With `pattern_frontier_blocks_nulls` (the restraint
/// direction, where `pattern` is a head atom of s) a pattern variable
/// that is FRONTIER in s must not map to an existential entry at all:
/// s's frontier images exist before r's firing this round ever runs.
bool AtomPairUnifies(const Tgd& r, const Atom& produced, const Tgd& s,
                     const Atom& pattern,
                     bool pattern_frontier_blocks_nulls) {
  if (produced.predicate != pattern.predicate) return false;
  if (produced.args.size() != pattern.args.size()) return false;
  const std::size_t arity = pattern.args.size();
  for (std::size_t i = 0; i < arity; ++i) {
    Term v = pattern.args[i];
    bool seen_existential = false;
    bool seen_frontier = false;
    Term existential = Term();
    bool first_position = true;
    for (std::size_t j = 0; j < arity; ++j) {
      if (pattern.args[j] != v) continue;
      if (j < i) {
        first_position = false;  // this variable was checked at j
        break;
      }
      Term entry = produced.args[j];
      if (r.IsExistential(entry)) {
        if (seen_frontier) return false;
        if (seen_existential && entry != existential) return false;
        if (pattern_frontier_blocks_nulls && s.IsFrontier(v)) {
          return false;
        }
        seen_existential = true;
        existential = entry;
      } else {
        if (seen_existential) return false;
        seen_frontier = true;
      }
    }
    if (!first_position) continue;
  }
  return true;
}

}  // namespace

RelianceGraph::RelianceGraph(const tgd::TgdSet& tgds) : tgds_(&tgds) {
  const RuleIndex n = num_rules();
  body_preds_.reserve(n);
  head_preds_.reserve(n);
  for (RuleIndex ti = 0; ti < n; ++ti) {
    body_preds_.push_back(SortedUniquePredicates(tgds.tgd(ti).body()));
    head_preds_.push_back(SortedUniquePredicates(tgds.tgd(ti).head()));
  }

  // --- Condensation of the Feeds graph, through its rule–predicate
  // bipartite expansion: rule r → (head predicate p) → every rule with p
  // in its body. A path between two rules in the expansion exists iff a
  // Feeds path exists, and the expansion has O(||Σ||) edges where the
  // Feeds graph itself can be quadratic (every rule pair sharing one hub
  // predicate). Tarjan runs iteratively — linearized rule sets reach
  // 100k rules, deeper than any recursion budget.
  std::unordered_map<PredicateId, std::uint32_t> pred_slot;
  auto slot_of = [&](PredicateId p) {
    auto [it, fresh] =
        pred_slot.emplace(p, static_cast<std::uint32_t>(pred_slot.size()));
    (void)fresh;
    return it->second;
  };
  std::vector<std::vector<std::uint32_t>> consumers;  // pred slot → rules
  std::vector<std::vector<std::uint32_t>> producers;  // rule → pred slots
  producers.resize(n);
  for (RuleIndex ti = 0; ti < n; ++ti) {
    for (PredicateId p : body_preds_[ti]) {
      std::uint32_t slot = slot_of(p);
      if (slot >= consumers.size()) consumers.resize(slot + 1);
      consumers[slot].push_back(ti);
    }
    for (PredicateId p : head_preds_[ti]) {
      std::uint32_t slot = slot_of(p);
      if (slot >= consumers.size()) consumers.resize(slot + 1);
      producers[ti].push_back(slot);
    }
  }
  const std::uint32_t num_nodes =
      n + static_cast<std::uint32_t>(consumers.size());
  auto successors = [&](std::uint32_t v) -> const std::vector<std::uint32_t>& {
    static const std::vector<std::uint32_t> empty;
    (void)empty;
    return v < n ? producers[v] : consumers[v - n];
  };
  // Successor ids of predicate nodes are rule ids directly; successor
  // ids of rule nodes are predicate slots and need the +n offset.
  auto successor_id = [&](std::uint32_t v, std::uint32_t raw) {
    return v < n ? raw + n : raw;
  };

  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(num_nodes, kUnvisited);
  std::vector<std::uint32_t> lowlink(num_nodes, 0);
  std::vector<std::uint32_t> component(num_nodes, kUnvisited);
  std::vector<bool> on_stack(num_nodes, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_component = 0;
  struct Frame {
    std::uint32_t node;
    std::uint32_t child;
  };
  std::vector<Frame> frames;
  for (std::uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<std::uint32_t>& succ = successors(frame.node);
      if (frame.child < succ.size()) {
        std::uint32_t w = successor_id(frame.node, succ[frame.child]);
        ++frame.child;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[w]);
        }
        continue;
      }
      std::uint32_t v = frame.node;
      if (lowlink[v] == index[v]) {
        while (true) {
          std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component[w] = next_component;
          if (w == v) break;
        }
        ++next_component;
      }
      frames.pop_back();
      if (!frames.empty()) {
        Frame& parent = frames.back();
        lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[v]);
      }
    }
  }
  // Project onto rules, renumbered densely by first appearance in
  // Σ-order (a stable id scheme tests can pin).
  scc_.assign(n, 0);
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  for (RuleIndex ti = 0; ti < n; ++ti) {
    auto [it, fresh] = dense.emplace(
        component[ti], static_cast<std::uint32_t>(dense.size()));
    (void)fresh;
    scc_[ti] = it->second;
  }
  num_sccs_ = static_cast<std::uint32_t>(dense.size());

  // --- Greedy Σ-interval grouping: extend the open group while the next
  // rule's body shares no predicate with any group member's head (no
  // forward Feeds edge into it; the candidate's own head joins the
  // blocking set only after the rule is admitted, so self-recursion
  // never splits a group).
  std::vector<PredicateId> open_heads;
  std::vector<RuleIndex> open_group;
  auto flush = [&]() {
    if (!open_group.empty()) groups_.push_back(std::move(open_group));
    open_group.clear();
    open_heads.clear();
  };
  for (RuleIndex ti = 0; ti < n; ++ti) {
    if (!open_group.empty() && Intersect(open_heads, body_preds_[ti])) {
      flush();
    }
    open_group.push_back(ti);
    std::vector<PredicateId> merged;
    merged.reserve(open_heads.size() + head_preds_[ti].size());
    std::merge(open_heads.begin(), open_heads.end(),
               head_preds_[ti].begin(), head_preds_[ti].end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    open_heads = std::move(merged);
  }
  flush();
}

bool RelianceGraph::Feeds(NodeId r, NodeId s) const {
  return Intersect(head_preds_[r], body_preds_[s]);
}

bool RelianceGraph::Positive(NodeId r, NodeId s) const {
  const Tgd& rule_r = tgds_->tgd(r);
  const Tgd& rule_s = tgds_->tgd(s);
  for (const Atom& produced : rule_r.head()) {
    for (const Atom& pattern : rule_s.body()) {
      if (AtomPairUnifies(rule_r, produced, rule_s, pattern,
                          /*pattern_frontier_blocks_nulls=*/false)) {
        return true;
      }
    }
  }
  return false;
}

bool RelianceGraph::Restrains(NodeId r, NodeId s) const {
  const Tgd& rule_r = tgds_->tgd(r);
  const Tgd& rule_s = tgds_->tgd(s);
  for (const Atom& produced : rule_r.head()) {
    for (const Atom& pattern : rule_s.head()) {
      if (AtomPairUnifies(rule_r, produced, rule_s, pattern,
                          /*pattern_frontier_blocks_nulls=*/true)) {
        return true;
      }
    }
  }
  return false;
}

std::vector<RuleIndex> RelianceGraph::RestraintOrder(
    const std::vector<RuleIndex>& group) const {
  const std::size_t k = group.size();
  std::vector<RuleIndex> order;
  order.reserve(k);
  if (k <= 1) return group;
  // Memoized one-way restraint matrix: restrains[i][j] ⇔ group[i]
  // one-way-restrains group[j] (mutual restraints cancel — neither
  // forces an order, and treating them as edges would deadlock the
  // greedy pick into its cycle fallback for no benefit).
  std::vector<std::vector<bool>> one_way(k, std::vector<bool>(k, false));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      one_way[i][j] = Restrains(group[i], group[j]) &&
                      !Restrains(group[j], group[i]);
    }
  }
  std::vector<bool> placed(k, false);
  for (std::size_t picked = 0; picked < k; ++picked) {
    std::size_t choice = k;
    for (std::size_t j = 0; j < k && choice == k; ++j) {
      if (placed[j]) continue;
      bool restrained = false;
      for (std::size_t i = 0; i < k && !restrained; ++i) {
        restrained = !placed[i] && one_way[i][j];
      }
      if (!restrained) choice = j;
    }
    if (choice == k) {  // restraint cycle: fall back to Σ-order
      for (std::size_t j = 0; j < k; ++j) {
        if (!placed[j]) {
          choice = j;
          break;
        }
      }
    }
    placed[choice] = true;
    order.push_back(group[choice]);
  }
  return order;
}

}  // namespace graph
}  // namespace nuchase
