#include "graph/predicate_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace nuchase {
namespace graph {

const std::vector<core::PredicateId> PredicateGraph::kEmpty;

PredicateGraph::PredicateGraph(const tgd::TgdSet& tgds) {
  std::set<std::pair<core::PredicateId, core::PredicateId>> edges;
  for (const tgd::Tgd& rule : tgds.tgds()) {
    for (const core::Atom& b : rule.body()) {
      for (const core::Atom& h : rule.head()) {
        edges.emplace(b.predicate, h.predicate);
      }
    }
  }
  for (const auto& [from, to] : edges) {
    successors_[from].push_back(to);
    predecessors_[to].push_back(from);
  }
}

const std::vector<core::PredicateId>& PredicateGraph::Successors(
    core::PredicateId pred) const {
  auto it = successors_.find(pred);
  return it == successors_.end() ? kEmpty : it->second;
}

bool PredicateGraph::Reaches(core::PredicateId from,
                             core::PredicateId to) const {
  if (from == to) return true;
  std::unordered_set<core::PredicateId> seen{from};
  std::deque<core::PredicateId> queue{from};
  while (!queue.empty()) {
    core::PredicateId u = queue.front();
    queue.pop_front();
    for (core::PredicateId v : Successors(u)) {
      if (v == to) return true;
      if (seen.insert(v).second) queue.push_back(v);
    }
  }
  return false;
}

std::unordered_set<core::PredicateId> PredicateGraph::ForwardClosure(
    const std::unordered_set<core::PredicateId>& seeds) const {
  std::unordered_set<core::PredicateId> seen = seeds;
  std::deque<core::PredicateId> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    core::PredicateId u = queue.front();
    queue.pop_front();
    for (core::PredicateId v : Successors(u)) {
      if (seen.insert(v).second) queue.push_back(v);
    }
  }
  return seen;
}

std::unordered_set<core::PredicateId> PredicateGraph::BackwardClosure(
    const std::unordered_set<core::PredicateId>& seeds) const {
  std::unordered_set<core::PredicateId> seen = seeds;
  std::deque<core::PredicateId> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    core::PredicateId u = queue.front();
    queue.pop_front();
    auto it = predecessors_.find(u);
    if (it == predecessors_.end()) continue;
    for (core::PredicateId v : it->second) {
      if (seen.insert(v).second) queue.push_back(v);
    }
  }
  return seen;
}

}  // namespace graph
}  // namespace nuchase
