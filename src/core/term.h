#ifndef NUCHASE_CORE_TERM_H_
#define NUCHASE_CORE_TERM_H_

#include <cstdint>

namespace nuchase {
namespace core {

/// Kind of a term (Section 2 of the paper: constants C, labelled nulls N,
/// variables V are pairwise disjoint countably infinite sets).
enum class TermKind : std::uint32_t {
  kConstant = 0,
  kNull = 1,
  kVariable = 2,
};

/// A term handle: 2 tag bits (TermKind) + 30 index bits into the respective
/// store of the owning Context. Value-semantic, cheap to copy and hash.
class Term {
 public:
  Term() : bits_(0) {}
  Term(TermKind kind, std::uint32_t index)
      : bits_((static_cast<std::uint32_t>(kind) << kIndexBits) | index) {}

  TermKind kind() const {
    return static_cast<TermKind>(bits_ >> kIndexBits);
  }
  std::uint32_t index() const { return bits_ & kIndexMask; }

  bool IsConstant() const { return kind() == TermKind::kConstant; }
  bool IsNull() const { return kind() == TermKind::kNull; }
  bool IsVariable() const { return kind() == TermKind::kVariable; }

  /// Raw 32-bit encoding; stable within one Context, usable as a hash/map
  /// key.
  std::uint32_t bits() const { return bits_; }
  static Term FromBits(std::uint32_t bits) {
    Term t;
    t.bits_ = bits;
    return t;
  }

  bool operator==(const Term& o) const { return bits_ == o.bits_; }
  bool operator!=(const Term& o) const { return bits_ != o.bits_; }
  bool operator<(const Term& o) const { return bits_ < o.bits_; }

  static constexpr std::uint32_t kIndexBits = 30;
  static constexpr std::uint32_t kIndexMask = (1u << kIndexBits) - 1;

 private:
  std::uint32_t bits_;
};

}  // namespace core
}  // namespace nuchase

namespace std {
template <>
struct hash<nuchase::core::Term> {
  size_t operator()(const nuchase::core::Term& t) const {
    return std::hash<uint32_t>{}(t.bits());
  }
};
}  // namespace std

#endif  // NUCHASE_CORE_TERM_H_
