#ifndef NUCHASE_CORE_ATOM_H_
#define NUCHASE_CORE_ATOM_H_

#include <cstdint>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"
#include "util/hash.h"

namespace nuchase {
namespace core {

/// A non-owning view of a contiguous run of terms (the argument tuple of
/// one atom). Value-semantic and trivially copyable; the pointed-at
/// storage must outlive the span. This is the currency of the columnar
/// storage layer: probes, inserts and joins hand tuples around as spans,
/// never as owning vectors.
class TermSpan {
 public:
  TermSpan() : data_(nullptr), size_(0) {}
  TermSpan(const Term* data, std::uint32_t size)
      : data_(data), size_(size) {}
  explicit TermSpan(const std::vector<Term>& v)
      : data_(v.data()), size_(static_cast<std::uint32_t>(v.size())) {}

  const Term* data() const { return data_; }
  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Term operator[](std::uint32_t i) const { return data_[i]; }
  const Term* begin() const { return data_; }
  const Term* end() const { return data_ + size_; }

  bool operator==(const TermSpan& o) const {
    if (size_ != o.size_) return false;
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (data_[i] != o.data_[i]) return false;
    }
    return true;
  }
  bool operator!=(const TermSpan& o) const { return !(*this == o); }

  std::vector<Term> ToVector() const {
    return std::vector<Term>(begin(), end());
  }

 private:
  const Term* data_;
  std::uint32_t size_;
};

/// Hash of a (predicate, tuple) pair. The single hash recipe shared by
/// the arena-probing dedup index of core::Instance and every caller that
/// needs a tuple key — hashing a materialized Atom and hashing its span
/// agree by construction. Every word passes through a full 64-bit mixer
/// (splitmix64 finalizer): the open-addressing table indexes by the LOW
/// bits of this value, so — unlike unordered_map's prime-modulo
/// buckets — weak bits would turn directly into probe-chain clustering.
inline std::size_t TupleHash(PredicateId predicate, TermSpan terms) {
  std::uint64_t seed = util::Mix64(predicate);
  for (Term t : terms) {
    seed = util::Mix64(seed ^ t.bits());
  }
  return static_cast<std::size_t>(seed);
}

/// An atom R(t1,...,tn): a predicate applied to a tuple of terms
/// (Section 2). This owning form is the working currency of *formulas* —
/// TGD bodies and heads, query atoms, database facts — where tuples are
/// small, long-lived and carry variables. Chase instances do NOT store
/// Atoms: they keep all tuples in a flat arena (core::Instance) and hand
/// out AtomView handles.
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(PredicateId pred, std::vector<Term> arguments)
      : predicate(pred), args(std::move(arguments)) {}

  std::uint32_t arity() const {
    return static_cast<std::uint32_t>(args.size());
  }

  /// The argument tuple as a span (valid while `args` is not mutated).
  TermSpan terms() const { return TermSpan(args); }

  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }
  bool operator<(const Atom& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return args < o.args;
  }

  /// True iff every argument is a constant (i.e. the atom is a fact).
  bool IsFact() const {
    for (Term t : args) {
      if (!t.IsConstant()) return false;
    }
    return true;
  }

  /// Renders the atom with the given symbol table, e.g. "R(a, _:n3)".
  std::string ToString(const SymbolScope& symbols) const;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    return TupleHash(a.predicate, a.terms());
  }
};

/// A stable, cheap handle to one atom of an Instance: its predicate plus
/// the offset of its argument tuple in the instance's term arena. Offsets
/// are assigned at insertion and never move, so an AtomRef stays valid
/// for the lifetime of the instance regardless of later growth. The
/// predicate's (fixed) arity rides along in otherwise-padding bytes so
/// resolving a ref to its tuple is a single 16-byte load — the join
/// kernel probes millions of refs; a second dependent lookup per probe
/// is measurable.
struct AtomRef {
  std::uint64_t offset = 0;
  PredicateId predicate = kInvalidPredicate;
  std::uint32_t arity = 0;

  AtomRef() = default;
  AtomRef(PredicateId pred, std::uint64_t off, std::uint32_t n)
      : offset(off), predicate(pred), arity(n) {}
};

/// A non-owning view of one stored atom: predicate + argument tuple read
/// directly out of the owning instance's arena. Views resolve the arena
/// through the vector object (not a raw buffer pointer), so inserting
/// into the instance — which may reallocate the arena — does NOT
/// invalidate previously obtained views; only destroying or moving the
/// owning Instance does.
class AtomView {
 public:
  AtomView() : arena_(nullptr) {}
  AtomView(const std::vector<Term>* arena, PredicateId predicate,
           std::uint64_t offset, std::uint32_t arity)
      : arena_(arena), offset_(offset), predicate_(predicate),
        arity_(arity) {}

  PredicateId predicate() const { return predicate_; }
  std::uint32_t arity() const { return arity_; }
  Term arg(std::uint32_t i) const { return (*arena_)[offset_ + i]; }

  /// The argument tuple as a raw span. Unlike the view itself, the span
  /// points straight into the arena buffer and is invalidated by the
  /// next insert into the owning instance — resolve it late, use it
  /// immediately (the join kernel's pattern).
  TermSpan terms() const {
    return TermSpan(arena_->data() + offset_, arity_);
  }

  /// True iff every argument is a constant.
  bool IsFact() const {
    for (std::uint32_t i = 0; i < arity_; ++i) {
      if (!arg(i).IsConstant()) return false;
    }
    return true;
  }

  /// Materializes an owning Atom (copying the tuple out of the arena).
  Atom ToAtom() const { return Atom(predicate_, terms().ToVector()); }

  /// Renders the atom with the given symbol table, e.g. "R(a, _:n3)".
  std::string ToString(const SymbolScope& symbols) const;

 private:
  const std::vector<Term>* arena_;
  std::uint64_t offset_ = 0;
  PredicateId predicate_ = kInvalidPredicate;
  std::uint32_t arity_ = 0;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_ATOM_H_
