#ifndef NUCHASE_CORE_ATOM_H_
#define NUCHASE_CORE_ATOM_H_

#include <cstdint>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"
#include "util/hash.h"

namespace nuchase {
namespace core {

/// A non-owning view of a contiguous run of terms (the argument tuple of
/// one atom). Value-semantic and trivially copyable; the pointed-at
/// storage must outlive the span. This is the currency of the columnar
/// storage layer: probes, inserts and joins hand tuples around as spans,
/// never as owning vectors.
class TermSpan {
 public:
  TermSpan() : data_(nullptr), size_(0) {}
  TermSpan(const Term* data, std::uint32_t size)
      : data_(data), size_(size) {}
  explicit TermSpan(const std::vector<Term>& v)
      : data_(v.data()), size_(static_cast<std::uint32_t>(v.size())) {}

  const Term* data() const { return data_; }
  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Term operator[](std::uint32_t i) const { return data_[i]; }
  const Term* begin() const { return data_; }
  const Term* end() const { return data_ + size_; }

  bool operator==(const TermSpan& o) const {
    if (size_ != o.size_) return false;
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (data_[i] != o.data_[i]) return false;
    }
    return true;
  }
  bool operator!=(const TermSpan& o) const { return !(*this == o); }

  std::vector<Term> ToVector() const {
    return std::vector<Term>(begin(), end());
  }

 private:
  const Term* data_;
  std::uint32_t size_;
};

/// Hash of a (predicate, tuple) pair. The single hash recipe shared by
/// the arena-probing dedup index of core::Instance and every caller that
/// needs a tuple key — hashing a materialized Atom and hashing its span
/// agree by construction. Every word passes through a full 64-bit mixer
/// (splitmix64 finalizer): the open-addressing table indexes by the LOW
/// bits of this value, so — unlike unordered_map's prime-modulo
/// buckets — weak bits would turn directly into probe-chain clustering.
inline std::size_t TupleHash(PredicateId predicate, TermSpan terms) {
  std::uint64_t seed = util::Mix64(predicate);
  for (Term t : terms) {
    seed = util::Mix64(seed ^ t.bits());
  }
  return static_cast<std::size_t>(seed);
}

/// An atom R(t1,...,tn): a predicate applied to a tuple of terms
/// (Section 2). This owning form is the working currency of *formulas* —
/// TGD bodies and heads, query atoms, database facts — where tuples are
/// small, long-lived and carry variables. Chase instances do NOT store
/// Atoms: they keep all tuples in a flat arena (core::Instance) and hand
/// out AtomView handles.
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(PredicateId pred, std::vector<Term> arguments)
      : predicate(pred), args(std::move(arguments)) {}

  std::uint32_t arity() const {
    return static_cast<std::uint32_t>(args.size());
  }

  /// The argument tuple as a span (valid while `args` is not mutated).
  TermSpan terms() const { return TermSpan(args); }

  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }
  bool operator<(const Atom& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return args < o.args;
  }

  /// True iff every argument is a constant (i.e. the atom is a fact).
  bool IsFact() const {
    for (Term t : args) {
      if (!t.IsConstant()) return false;
    }
    return true;
  }

  /// Renders the atom with the given symbol table, e.g. "R(a, _:n3)".
  std::string ToString(const SymbolScope& symbols) const;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    return TupleHash(a.predicate, a.terms());
  }
};

/// A stable, cheap handle to one atom of an Instance: its predicate plus
/// the offset of its argument tuple *within that predicate's segment* —
/// storage is partitioned by predicate, and the instance's directory of
/// AtomRefs (indexed by global AtomIndex, assigned in insertion order
/// across all predicates) is the global-index indirection that ties the
/// partition back together; it is append-only and its entries never
/// change. Each segment's arena is a sequence of fixed-size extents and
/// tuples never straddle an extent boundary, so the local offset
/// decomposes as (offset >> extent_log2, offset & extent_mask) — extent
/// index plus slot — and the extent blocks themselves never move or
/// reallocate: an AtomRef (and any pointer derived from it) stays valid
/// for the lifetime of the instance regardless of later growth. The
/// predicate's (fixed) arity rides along in otherwise-padding bytes so
/// resolving a ref to its tuple costs one 16-byte load plus one
/// segment/extent-table load — the join kernel probes millions of refs;
/// further dependent lookups per probe are measurable.
struct AtomRef {
  std::uint64_t offset = 0;
  PredicateId predicate = kInvalidPredicate;
  std::uint32_t arity = 0;

  AtomRef() = default;
  AtomRef(PredicateId pred, std::uint64_t off, std::uint32_t n)
      : offset(off), predicate(pred), arity(n) {}
};

/// A non-owning view of one stored atom: predicate + argument tuple read
/// directly out of the owning instance's arena. The view holds a raw
/// pointer into the tuple's extent block; extents never move or
/// reallocate, so inserting into the instance does NOT invalidate
/// previously obtained views — and neither does moving the owning
/// Instance (the blocks travel with it). Only destroying the instance
/// (or moving-from it and destroying the destination) does.
class AtomView {
 public:
  AtomView() : tuple_(nullptr) {}
  AtomView(const Term* tuple, PredicateId predicate, std::uint32_t arity)
      : tuple_(tuple), predicate_(predicate), arity_(arity) {}

  PredicateId predicate() const { return predicate_; }
  std::uint32_t arity() const { return arity_; }
  Term arg(std::uint32_t i) const { return tuple_[i]; }

  /// The argument tuple as a raw span, pointing straight into the
  /// tuple's extent block. Like the view itself, the span survives
  /// later inserts into the owning instance (extents are immobile).
  TermSpan terms() const { return TermSpan(tuple_, arity_); }

  /// True iff every argument is a constant.
  bool IsFact() const {
    for (std::uint32_t i = 0; i < arity_; ++i) {
      if (!arg(i).IsConstant()) return false;
    }
    return true;
  }

  /// Materializes an owning Atom (copying the tuple out of the arena).
  Atom ToAtom() const { return Atom(predicate_, terms().ToVector()); }

  /// Renders the atom with the given symbol table, e.g. "R(a, _:n3)".
  std::string ToString(const SymbolScope& symbols) const;

 private:
  const Term* tuple_;
  PredicateId predicate_ = kInvalidPredicate;
  std::uint32_t arity_ = 0;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_ATOM_H_
