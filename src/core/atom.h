#ifndef NUCHASE_CORE_ATOM_H_
#define NUCHASE_CORE_ATOM_H_

#include <cstdint>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"
#include "util/hash.h"

namespace nuchase {
namespace core {

/// An atom R(t1,...,tn): a predicate applied to a tuple of terms
/// (Section 2). Atoms over constants only are facts; atoms in TGDs use
/// variables; chase instances mix constants and nulls.
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(PredicateId pred, std::vector<Term> arguments)
      : predicate(pred), args(std::move(arguments)) {}

  std::uint32_t arity() const {
    return static_cast<std::uint32_t>(args.size());
  }

  bool operator==(const Atom& o) const {
    return predicate == o.predicate && args == o.args;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }
  bool operator<(const Atom& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return args < o.args;
  }

  /// True iff every argument is a constant (i.e. the atom is a fact).
  bool IsFact() const {
    for (Term t : args) {
      if (!t.IsConstant()) return false;
    }
    return true;
  }

  /// Renders the atom with the given symbol table, e.g. "R(a, _:n3)".
  std::string ToString(const SymbolScope& symbols) const;
};

struct AtomHash {
  std::size_t operator()(const Atom& a) const {
    std::size_t seed = std::hash<std::uint32_t>{}(a.predicate);
    for (Term t : a.args) {
      util::HashCombine(&seed, std::hash<std::uint32_t>{}(t.bits()));
    }
    return seed;
  }
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_ATOM_H_
