#ifndef NUCHASE_CORE_DATABASE_H_
#define NUCHASE_CORE_DATABASE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/symbol_table.h"
#include "util/status.h"

namespace nuchase {
namespace core {

/// A database D: a finite, duplicate-free set of facts (atoms over
/// constants only; Section 2). The chase seeds its instance from a
/// Database, and deciders take (D, Σ) pairs.
class Database {
 public:
  Database() = default;

  /// Adds a fact. Fails if any argument is not a constant.
  util::Status AddFact(Atom fact);

  /// Convenience: adds R(c1,...,cn), interning constants by name.
  util::Status AddFact(SymbolTable* symbols, const std::string& predicate,
                       const std::vector<std::string>& constants);

  const std::vector<Atom>& facts() const { return facts_; }
  std::size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }

  bool Contains(const Atom& fact) const {
    return fact_set_.find(fact) != fact_set_.end();
  }

  /// The set of predicates occurring in the database.
  std::unordered_set<PredicateId> Predicates() const;

  /// dom(D): the constants occurring in the database.
  std::unordered_set<Term> ActiveDomain() const;

  /// Materializes the database as an (indexed) Instance.
  Instance ToInstance() const;

  /// Sorted rendering, for tests.
  std::string ToSortedString(const SymbolScope& symbols) const;

 private:
  std::vector<Atom> facts_;
  std::unordered_set<Atom, AtomHash> fact_set_;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_DATABASE_H_
