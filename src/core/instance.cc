#include "core/instance.h"

#include <algorithm>

namespace nuchase {
namespace core {

const std::vector<AtomIndex> Instance::kEmpty;

std::pair<AtomIndex, bool> Instance::Insert(Atom atom) {
  auto it = index_.find(atom);
  if (it != index_.end()) return {it->second, false};
  AtomIndex idx = static_cast<AtomIndex>(atoms_.size());
  by_predicate_[atom.predicate].push_back(idx);
  for (std::uint32_t i = 0; i < atom.arity(); ++i) {
    by_position_[PosKey{atom.predicate, i, atom.args[i]}].push_back(idx);
  }
  if (track_delta_) {
    delta_next_[atom.predicate].push_back(idx);
    ++delta_next_size_;
  }
  index_.emplace(atom, idx);
  atoms_.push_back(std::move(atom));
  return {idx, true};
}

std::size_t Instance::AdvanceDelta() {
  delta_curr_ = std::move(delta_next_);
  delta_curr_size_ = delta_next_size_;
  delta_next_.clear();
  delta_next_size_ = 0;
  return delta_curr_size_;
}

const std::vector<AtomIndex>& Instance::DeltaAtomsWithPredicate(
    PredicateId pred) const {
  auto it = delta_curr_.find(pred);
  return it == delta_curr_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithPredicate(
    PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithTermAt(PredicateId pred,
                                                        std::uint32_t pos,
                                                        Term t) const {
  auto it = by_position_.find(PosKey{pred, pos, t});
  return it == by_position_.end() ? kEmpty : it->second;
}

std::unordered_set<Term> Instance::ActiveDomain() const {
  std::unordered_set<Term> dom;
  for (const Atom& a : atoms_) {
    for (Term t : a.args) dom.insert(t);
  }
  return dom;
}

std::string Instance::ToSortedString(const SymbolScope& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(atoms_.size());
  for (const Atom& a : atoms_) lines.push_back(a.ToString(symbols));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
