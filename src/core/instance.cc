#include "core/instance.h"

#include <algorithm>
#include <cassert>

namespace nuchase {
namespace core {

const std::vector<AtomIndex> Instance::kEmpty;
constexpr AtomIndex Instance::kEmptySlot;
constexpr AtomIndex Instance::kPendingBit;
constexpr std::uint32_t Instance::kUnknownArity;
constexpr std::uint32_t Instance::kDefaultExtentLog2;
constexpr std::uint32_t Instance::kShardBits;
constexpr std::uint32_t Instance::kNumShards;

Instance::Segment& Instance::EnsureSegment(PredicateId pred) {
  if (pred >= segments_.size()) {
    segments_.resize(pred + 1);
  }
  if (segments_[pred] == nullptr) {
    segments_[pred].reset(new Segment());
    // A segment born under delta tracking starts with its whole (empty)
    // atom list in the "next" generation — delta_next_mark = 0 already.
  }
  return *segments_[pred];
}

std::size_t Instance::ProbeShard(const Shard& shard, PredicateId pred,
                                 TermSpan terms, std::size_t hash,
                                 const Term* buffer,
                                 const std::vector<BatchTuple>* batch)
    const {
  std::size_t slot = hash & shard.mask;
  while (true) {
    AtomIndex idx = shard.slots[slot];
    if (idx == kEmptySlot) return slot;
    if ((idx & kPendingBit) != 0) {
      // A slot claimed earlier in the current batch: compare against
      // the batch buffer (the tuple is not in the arena yet).
      // Placeholders never outlive InsertTupleBatch, so a probe without
      // batch context can only mean table corruption.
      assert(batch != nullptr && "pending placeholder outside a batch");
      const BatchTuple& t = (*batch)[idx & ~kPendingBit];
      if (t.pred == pred &&
          TermSpan(buffer + t.begin, t.arity) == terms) {
        return slot;
      }
    } else if (TupleAt(idx, pred, terms)) {
      return slot;
    }
    slot = (slot + 1) & shard.mask;
  }
}

void Instance::GrowShard(Segment* seg, Shard* shard) {
  std::vector<AtomIndex> old = std::move(shard->slots);
  std::size_t new_size = old.empty() ? 64 : old.size() * 2;
  shard->slots.assign(new_size, kEmptySlot);
  shard->mask = new_size - 1;
  // Re-seat arena atoms first, then pending placeholders in batch
  // order. This seating order is what keeps an early-stopped batch
  // scrubbable: an entry's probe chain only crosses slots occupied
  // before it was seated, so no kept entry's chain ever passes a
  // later (scrub-eligible) placeholder's slot.
  auto seat = [&](AtomIndex entry, std::size_t hash) {
    std::size_t slot = hash & shard->mask;
    while (shard->slots[slot] != kEmptySlot) {
      slot = (slot + 1) & shard->mask;
    }
    shard->slots[slot] = entry;
    return slot;
  };
  for (AtomIndex entry : old) {
    if (entry == kEmptySlot || (entry & kPendingBit) != 0) continue;
    const AtomRef& ref = refs_[entry];
    seat(entry, TupleHash(ref.predicate,
                          TermSpan(TuplePtr(*seg, ref.offset), ref.arity)));
  }
  std::vector<AtomIndex> pending;
  for (AtomIndex entry : old) {
    if (entry != kEmptySlot && (entry & kPendingBit) != 0) {
      pending.push_back(entry);
    }
  }
  std::sort(pending.begin(), pending.end());  // batch-position order
  for (AtomIndex entry : pending) {
    const AtomIndex pos = entry & ~kPendingBit;
    // The claim recorded the placeholder's slot so the commit can patch
    // (or the rollback can clear) it; moving the placeholder moves that
    // record with it. Only this shard's owner touches these verdicts,
    // so the entry is its to update.
    batch_verdicts_[pos].slot = seat(entry, batch_hashes_[pos]);
  }
}

std::uint64_t Instance::AppendTuple(Segment* seg, const Term* src,
                                    std::uint32_t n) {
  assert(n <= extent_capacity_ && "tuple arity exceeds extent capacity");
  if (n == 0) {
    // 0-ary atoms store no terms; give them a valid (never
    // dereferenced) address in the segment's extent 0.
    if (seg->extents.empty()) {
      seg->extents.emplace_back(new Term[extent_capacity_]);
    }
    return 0;
  }
  std::uint64_t within = seg->raw_next & extent_mask_;
  if (within != 0 && extent_capacity_ - within < n) {
    // The tuple would straddle the extent boundary: pad the tail (the
    // padding terms are garbage and are never scanned — every reader
    // walks the directory, not raw offsets) and start the next extent.
    seg->raw_next += extent_capacity_ - within;
  }
  const std::uint64_t offset = seg->raw_next;
  const std::uint64_t extent = offset >> extent_log2_;
  if (extent == seg->extents.size()) {
    seg->extents.emplace_back(new Term[extent_capacity_]);
  }
  std::copy(src, src + n,
            seg->extents[extent].get() + (offset & extent_mask_));
  seg->raw_next = offset + n;
  seg->used_terms += n;
  return offset;
}

void Instance::RecordTuple(Segment* seg, AtomIndex idx,
                           std::uint64_t offset, std::uint32_t n) {
  seg->atoms.push_back(idx);
  const Term* tuple = TuplePtr(*seg, offset);
  for (std::uint32_t i = 0; i < n; ++i) {
    seg->by_position[PosKey{i, tuple[i]}].push_back(idx);
  }
}

bool Instance::FindTuple(PredicateId pred, TermSpan terms,
                         AtomIndex* index) const {
  if (pred >= segments_.size() || segments_[pred] == nullptr) return false;
  const Segment& seg = *segments_[pred];
  std::size_t hash = TupleHash(pred, terms);
  const Shard& shard = seg.shards[ShardOf(hash)];
  if (shard.slots.empty()) return false;
  std::size_t slot =
      ProbeShard(shard, pred, terms, hash, nullptr, nullptr);
  if (shard.slots[slot] == kEmptySlot) return false;
  *index = shard.slots[slot];
  return true;
}

std::pair<AtomIndex, bool> Instance::InsertTuple(PredicateId pred,
                                                 TermSpan terms) {
  std::size_t hash = TupleHash(pred, terms);
  Segment& seg = EnsureSegment(pred);
  Shard& shard = seg.shards[ShardOf(hash)];
  // Keep the shard's load factor below ~0.75 (counting the insert to
  // come).
  if ((shard.entries + 1) * 4 >= shard.slots.size() * 3) {
    GrowShard(&seg, &shard);
  }
  std::size_t slot = ProbeShard(shard, pred, terms, hash, nullptr, nullptr);
  if (shard.slots[slot] != kEmptySlot) return {shard.slots[slot], false};

  LearnArity(&seg, terms.size());
  const std::uint64_t offset = AppendTuple(&seg, terms.data(), terms.size());
  AtomIndex idx = static_cast<AtomIndex>(refs_.size());
  refs_.emplace_back(pred, offset, terms.size());
  RecordTuple(&seg, idx, offset, terms.size());
  shard.slots[slot] = idx;
  ++shard.entries;
  return {idx, true};
}

std::size_t Instance::InsertTupleBatch(
    const Term* buffer, const std::vector<BatchTuple>& tuples,
    util::ThreadPool* pool,
    const std::function<bool(std::size_t, AtomIndex, bool)>& on_merged) {
  const std::size_t n = tuples.size();
  if (n == 0) return 0;
  batch_hashes_.resize(n);
  batch_verdicts_.resize(n);
  batch_indexes_.resize(n);

  // Stage 1: hash every tuple. Parallel over tuples; pure.
  util::ParallelChunks(
      pool, n, /*min_chunk=*/64,
      [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const BatchTuple& t = tuples[i];
          batch_hashes_[i] =
              TupleHash(t.pred, TermSpan(buffer + t.begin, t.arity));
        }
      });

  // Stage 2: create every touched predicate's segment up front, so the
  // parallel stages below never resize the segment directory (segments
  // themselves are immobile once created).
  for (std::size_t i = 0; i < n; ++i) {
    EnsureSegment(tuples[i].pred);
  }

  const unsigned stride = pool != nullptr ? pool->workers() : 1u;

  // Stage 3: probe the dedup shards. Each (segment, shard) pair is
  // hash-assigned to exactly one worker, which walks the whole batch in
  // order, so every shard's slot table evolves in batch order no matter
  // how many workers run — the verdicts (and the table layout) are
  // scheduling-independent. First occurrences claim their slot with a
  // pending placeholder so later duplicates in the same batch resolve
  // against them.
  auto probe_segments = [&](unsigned w) {
    for (std::size_t i = 0; i < n; ++i) {
      const BatchTuple& t = tuples[i];
      const std::uint32_t shard_id = ShardOf(batch_hashes_[i]);
      if ((PredOwner(t.pred) + shard_id) % stride != w) continue;
      Segment& seg = *segments_[t.pred];
      Shard& shard = seg.shards[shard_id];
      TermSpan terms(buffer + t.begin, t.arity);
      if ((shard.entries + 1) * 4 >= shard.slots.size() * 3) {
        GrowShard(&seg, &shard);
      }
      std::size_t slot = ProbeShard(shard, t.pred, terms,
                                    batch_hashes_[i], buffer, &tuples);
      BatchVerdict& v = batch_verdicts_[i];
      const AtomIndex occupant = shard.slots[slot];
      if (occupant == kEmptySlot) {
        v.kind = 0;
        v.slot = slot;
        shard.slots[slot] =
            kPendingBit | static_cast<AtomIndex>(i);
        ++shard.entries;
      } else if ((occupant & kPendingBit) != 0) {
        v.kind = 2;
        v.ref = occupant & ~kPendingBit;
      } else {
        v.kind = 1;
        v.ref = occupant;
      }
    }
  };
  if (stride > 1) {
    pool->Run(probe_segments);
  } else {
    probe_segments(0);
  }

  // Stage 4: the serial canonical cross-predicate merge order — assign
  // global AtomIndexes to the fresh tuples in batch order (and learn
  // arities deterministically), the exact numbering the sequential
  // InsertTuple loop would have produced.
  AtomIndex next_index = static_cast<AtomIndex>(refs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const BatchVerdict& v = batch_verdicts_[i];
    if (v.kind == 0) {
      LearnArity(segments_[tuples[i].pred].get(), tuples[i].arity);
      batch_indexes_[i] = next_index++;
    } else if (v.kind == 1) {
      batch_indexes_[i] = v.ref;
    } else {
      batch_indexes_[i] = batch_indexes_[v.ref];  // earlier batch pos
    }
  }

  // Stage 5: per-predicate parallel commit. Each segment is
  // hash-assigned to exactly one worker, which appends its predicate's
  // fresh tuples to the segment arena in batch order (recording each
  // local offset in the verdict), patches the claimed slots to their
  // final global indexes, and extends the segment's atom list and
  // position index. Disjoint segments — no shared writes; within a
  // segment, batch order — the layout is thread-count-invariant.
  auto commit_segments = [&](unsigned w) {
    for (std::size_t i = 0; i < n; ++i) {
      const BatchTuple& t = tuples[i];
      if (PredOwner(t.pred) % stride != w) continue;
      BatchVerdict& v = batch_verdicts_[i];
      if (v.kind != 0) continue;
      Segment& seg = *segments_[t.pred];
      v.offset = AppendTuple(&seg, buffer + t.begin, t.arity);
      seg.shards[ShardOf(batch_hashes_[i])].slots[v.slot] =
          batch_indexes_[i];
      RecordTuple(&seg, batch_indexes_[i], v.offset, t.arity);
    }
  };
  if (stride > 1) {
    pool->Run(commit_segments);
  } else {
    commit_segments(0);
  }

  // Stage 6: serial merge in batch order — extend the global directory
  // and run the caller's callback, a sequence identical to the
  // sequential InsertTuple loop's.
  std::size_t merged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const BatchTuple& t = tuples[i];
    const BatchVerdict& v = batch_verdicts_[i];
    const AtomIndex idx = batch_indexes_[i];
    const bool fresh = v.kind == 0;
    if (fresh) {
      assert(static_cast<AtomIndex>(refs_.size()) == idx &&
             "stage-4 numbering must match the directory");
      refs_.emplace_back(t.pred, v.offset, t.arity);
    }
    ++merged;
    if (!on_merged(i, idx, fresh)) {
      RollBackBatch(tuples, i);
      break;
    }
  }
  return merged;
}

void Instance::RollBackBatch(const std::vector<BatchTuple>& tuples,
                             std::size_t kept) {
  // Walk backwards so every entry being popped is at the tail of its
  // list (commits pushed in batch order), and so each segment's
  // raw_next ends at its smallest removed offset. Scrubbing the dedup
  // slots in any order is safe by the seating-order invariant (see
  // GrowShard): no surviving entry's probe chain passes a later batch
  // tuple's slot.
  for (std::size_t j = tuples.size(); j-- > kept + 1;) {
    const BatchVerdict& v = batch_verdicts_[j];
    if (v.kind != 0) continue;
    const BatchTuple& t = tuples[j];
    Segment& seg = *segments_[t.pred];
    Shard& shard = seg.shards[ShardOf(batch_hashes_[j])];
    shard.slots[v.slot] = kEmptySlot;
    --shard.entries;
    const Term* tuple = TuplePtr(seg, v.offset);
    for (std::uint32_t p = 0; p < t.arity; ++p) {
      auto it = seg.by_position.find(PosKey{p, tuple[p]});
      assert(it != seg.by_position.end() && !it->second.empty());
      it->second.pop_back();
    }
    assert(!seg.atoms.empty());
    seg.atoms.pop_back();
    // Truncate the arena to this tuple's start. Padding inserted just
    // before it stays inside raw_next (harmless: the next append starts
    // at a valid, already-padded position; used_terms never counted
    // padding, so arena_bytes is exact either way).
    seg.raw_next = v.offset;
    seg.used_terms -= t.arity;
    if (seg.atoms.empty()) {
      // The whole segment was born in the rolled-back suffix: forget
      // the arity learned in stage 4 so PredicateArity reports the
      // predicate as unseen, exactly as if the batch had ended early.
      seg.arity = kUnknownArity;
    }
  }
}

void Instance::EnableDeltaTracking() {
  if (track_delta_) return;
  track_delta_ = true;
  // Atoms inserted before tracking began are not part of any
  // generation: start every existing segment's "next" watermark at its
  // current tail.
  for (auto& seg : segments_) {
    if (seg != nullptr) seg->delta_next_mark = seg->atoms.size();
  }
}

std::size_t Instance::AdvanceDelta() {
  delta_curr_size_ = 0;
  for (auto& seg : segments_) {
    if (seg == nullptr) continue;
    if (!track_delta_) {
      seg->delta_curr.clear();
      seg->delta_next_mark = seg->atoms.size();
      continue;
    }
    seg->delta_curr.assign(seg->atoms.begin() + seg->delta_next_mark,
                           seg->atoms.end());
    seg->delta_next_mark = seg->atoms.size();
    delta_curr_size_ += seg->delta_curr.size();
  }
  return delta_curr_size_;
}

const std::vector<AtomIndex>& Instance::DeltaAtomsWithPredicate(
    PredicateId pred) const {
  if (pred >= segments_.size() || segments_[pred] == nullptr) return kEmpty;
  return segments_[pred]->delta_curr;
}

const std::vector<AtomIndex>& Instance::AtomsWithPredicate(
    PredicateId pred) const {
  if (pred >= segments_.size() || segments_[pred] == nullptr) return kEmpty;
  return segments_[pred]->atoms;
}

const std::vector<AtomIndex>& Instance::AtomsWithTermAt(PredicateId pred,
                                                        std::uint32_t pos,
                                                        Term t) const {
  if (pred >= segments_.size() || segments_[pred] == nullptr) return kEmpty;
  const Segment& seg = *segments_[pred];
  auto it = seg.by_position.find(PosKey{pos, t});
  return it == seg.by_position.end() ? kEmpty : it->second;
}

const std::vector<Term>& Instance::ActiveDomain() const {
  // Catch the cache up over the atoms inserted since the last call;
  // tuples are walked in global insertion order, so first-occurrence
  // order is deterministic (and extent padding is never visited).
  for (; domain_scanned_ < refs_.size(); ++domain_scanned_) {
    const AtomRef& ref = refs_[domain_scanned_];
    const Term* tuple = TuplePtr(*segments_[ref.predicate], ref.offset);
    for (std::uint32_t i = 0; i < ref.arity; ++i) {
      if (domain_seen_.insert(tuple[i]).second) {
        domain_.push_back(tuple[i]);
      }
    }
  }
  return domain_;
}

std::string Instance::ToSortedString(const SymbolScope& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(refs_.size());
  for (AtomIndex i = 0; i < refs_.size(); ++i) {
    lines.push_back(atom(i).ToString(symbols));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
