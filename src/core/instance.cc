#include "core/instance.h"

#include <algorithm>
#include <cassert>

namespace nuchase {
namespace core {

const std::vector<AtomIndex> Instance::kEmpty;
constexpr AtomIndex Instance::kEmptySlot;
constexpr AtomIndex Instance::kPendingBit;
constexpr std::uint32_t Instance::kUnknownArity;
constexpr std::uint32_t Instance::kDefaultExtentLog2;
constexpr std::uint32_t Instance::kShardBits;
constexpr std::uint32_t Instance::kNumShards;

std::size_t Instance::ProbeShard(const Shard& shard, PredicateId pred,
                                 TermSpan terms, std::size_t hash,
                                 const Term* buffer,
                                 const std::vector<BatchTuple>* batch)
    const {
  std::size_t slot = hash & shard.mask;
  while (true) {
    AtomIndex idx = shard.slots[slot];
    if (idx == kEmptySlot) return slot;
    if ((idx & kPendingBit) != 0) {
      // A slot claimed earlier in the current batch: compare against
      // the batch buffer (the tuple is not in the arena yet).
      // Placeholders never outlive InsertTupleBatch, so a probe without
      // batch context can only mean table corruption.
      assert(batch != nullptr && "pending placeholder outside a batch");
      const BatchTuple& t = (*batch)[idx & ~kPendingBit];
      if (t.pred == pred &&
          TermSpan(buffer + t.begin, t.arity) == terms) {
        return slot;
      }
    } else if (TupleAt(idx, pred, terms)) {
      return slot;
    }
    slot = (slot + 1) & shard.mask;
  }
}

void Instance::GrowShard(Shard* shard) {
  std::vector<AtomIndex> old = std::move(shard->slots);
  std::size_t new_size = old.empty() ? 64 : old.size() * 2;
  shard->slots.assign(new_size, kEmptySlot);
  shard->mask = new_size - 1;
  // Re-seat arena atoms first, then pending placeholders in batch
  // order. This seating order is what keeps an early-stopped batch
  // scrubbable: an entry's probe chain only crosses slots occupied
  // before it was seated, so no kept entry's chain ever passes a
  // later (scrub-eligible) placeholder's slot.
  auto seat = [&](AtomIndex entry, std::size_t hash) {
    std::size_t slot = hash & shard->mask;
    while (shard->slots[slot] != kEmptySlot) {
      slot = (slot + 1) & shard->mask;
    }
    shard->slots[slot] = entry;
    return slot;
  };
  for (AtomIndex entry : old) {
    if (entry == kEmptySlot || (entry & kPendingBit) != 0) continue;
    const AtomRef& ref = refs_[entry];
    seat(entry, TupleHash(ref.predicate,
                          TermSpan(TuplePtr(ref.offset), ref.arity)));
  }
  std::vector<AtomIndex> pending;
  for (AtomIndex entry : old) {
    if (entry != kEmptySlot && (entry & kPendingBit) != 0) {
      pending.push_back(entry);
    }
  }
  std::sort(pending.begin(), pending.end());  // batch-position order
  for (AtomIndex entry : pending) {
    const AtomIndex pos = entry & ~kPendingBit;
    // The claim recorded the placeholder's slot so the merge can patch
    // (or the scrub can clear) it; moving the placeholder moves that
    // record with it. Only this worker touches this shard's tuples, so
    // the verdict entry is its to update.
    batch_verdicts_[pos].slot = seat(entry, batch_hashes_[pos]);
  }
}

std::uint64_t Instance::AppendTuple(const Term* src, std::uint32_t n) {
  assert(n <= extent_capacity_ && "tuple arity exceeds extent capacity");
  if (n == 0) {
    // 0-ary atoms store no terms; give them a valid (never
    // dereferenced) address in extent 0.
    if (extents_.empty()) {
      extents_.emplace_back(new Term[extent_capacity_]);
    }
    return 0;
  }
  std::uint64_t within = raw_next_ & extent_mask_;
  if (within != 0 && extent_capacity_ - within < n) {
    // The tuple would straddle the extent boundary: pad the tail (the
    // padding terms are garbage and are never scanned — every reader
    // walks refs_, not raw offsets) and start the next extent.
    raw_next_ += extent_capacity_ - within;
  }
  const std::uint64_t offset = raw_next_;
  const std::uint64_t extent = offset >> extent_log2_;
  if (extent == extents_.size()) {
    extents_.emplace_back(new Term[extent_capacity_]);
  }
  std::copy(src, src + n, extents_[extent].get() + (offset & extent_mask_));
  raw_next_ = offset + n;
  used_terms_ += n;
  return offset;
}

AtomIndex Instance::CommitTuple(PredicateId pred, std::uint64_t offset,
                                std::uint32_t n) {
  if (pred >= pred_arity_.size()) {
    pred_arity_.resize(pred + 1, kUnknownArity);
  }
  if (pred_arity_[pred] == kUnknownArity) {
    pred_arity_[pred] = n;
  }
  assert(pred_arity_[pred] == n &&
         "predicate arity is fixed per Instance");

  AtomIndex idx = static_cast<AtomIndex>(refs_.size());
  refs_.emplace_back(pred, offset, n);

  const Term* tuple = TuplePtr(offset);
  by_predicate_[pred].push_back(idx);
  for (std::uint32_t i = 0; i < n; ++i) {
    by_position_[PosKey{pred, i, tuple[i]}].push_back(idx);
  }
  if (track_delta_) {
    delta_next_[pred].push_back(idx);
    ++delta_next_size_;
  }
  return idx;
}

bool Instance::FindTuple(PredicateId pred, TermSpan terms,
                         AtomIndex* index) const {
  std::size_t hash = TupleHash(pred, terms);
  const Shard& shard = shards_[ShardOf(hash)];
  if (shard.slots.empty()) return false;
  std::size_t slot =
      ProbeShard(shard, pred, terms, hash, nullptr, nullptr);
  if (shard.slots[slot] == kEmptySlot) return false;
  *index = shard.slots[slot];
  return true;
}

std::pair<AtomIndex, bool> Instance::InsertTuple(PredicateId pred,
                                                 TermSpan terms) {
  std::size_t hash = TupleHash(pred, terms);
  Shard& shard = shards_[ShardOf(hash)];
  // Keep the shard's load factor below ~0.75 (counting the insert to
  // come).
  if ((shard.entries + 1) * 4 >= shard.slots.size() * 3) {
    GrowShard(&shard);
  }
  std::size_t slot = ProbeShard(shard, pred, terms, hash, nullptr, nullptr);
  if (shard.slots[slot] != kEmptySlot) return {shard.slots[slot], false};

  const std::uint64_t offset = AppendTuple(terms.data(), terms.size());
  AtomIndex idx = CommitTuple(pred, offset, terms.size());
  shard.slots[slot] = idx;
  ++shard.entries;
  return {idx, true};
}

std::size_t Instance::InsertTupleBatch(
    const Term* buffer, const std::vector<BatchTuple>& tuples,
    util::ThreadPool* pool,
    const std::function<bool(std::size_t, AtomIndex, bool)>& on_merged) {
  const std::size_t n = tuples.size();
  if (n == 0) return 0;
  batch_hashes_.resize(n);
  batch_verdicts_.resize(n);
  batch_indexes_.resize(n);

  // Stage 1: hash every tuple. Parallel over tuples; pure.
  util::ParallelChunks(
      pool, n, /*min_chunk=*/64,
      [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const BatchTuple& t = tuples[i];
          batch_hashes_[i] =
              TupleHash(t.pred, TermSpan(buffer + t.begin, t.arity));
        }
      });

  // Stage 2: probe the shards. Each worker owns a fixed subset of
  // shards and walks the whole batch in order, so every shard's slot
  // table evolves in batch order no matter how many workers run — the
  // verdicts (and the table layout) are scheduling-independent. First
  // occurrences claim their slot with a pending placeholder so later
  // duplicates in the same batch resolve against them.
  const unsigned shard_workers =
      pool != nullptr
          ? std::min(pool->workers(), static_cast<unsigned>(kNumShards))
          : 1u;
  auto probe_shards = [&](unsigned w, unsigned stride) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t shard_id = ShardOf(batch_hashes_[i]);
      if (shard_id % stride != w) continue;
      Shard& shard = shards_[shard_id];
      const BatchTuple& t = tuples[i];
      TermSpan terms(buffer + t.begin, t.arity);
      if ((shard.entries + 1) * 4 >= shard.slots.size() * 3) {
        GrowShard(&shard);
      }
      std::size_t slot = ProbeShard(shard, t.pred, terms,
                                    batch_hashes_[i], buffer, &tuples);
      BatchVerdict& v = batch_verdicts_[i];
      const AtomIndex occupant = shard.slots[slot];
      if (occupant == kEmptySlot) {
        v.kind = 0;
        v.slot = slot;
        shard.slots[slot] =
            kPendingBit | static_cast<AtomIndex>(i);
        ++shard.entries;
      } else if ((occupant & kPendingBit) != 0) {
        v.kind = 2;
        v.ref = occupant & ~kPendingBit;
      } else {
        v.kind = 1;
        v.ref = occupant;
      }
    }
  };
  if (shard_workers > 1) {
    pool->Run([&](unsigned w) {
      if (w < shard_workers) probe_shards(w, shard_workers);
    });
  } else {
    probe_shards(0, 1);
  }

  // Stage 3: serial merge in batch order — the only stage that touches
  // the arena, the directory or the layered indexes, so their contents
  // are identical to the sequential InsertTuple loop's.
  std::size_t merged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const BatchTuple& t = tuples[i];
    const BatchVerdict& v = batch_verdicts_[i];
    AtomIndex idx;
    bool fresh = false;
    if (v.kind == 0) {
      const std::uint64_t offset = AppendTuple(buffer + t.begin, t.arity);
      idx = CommitTuple(t.pred, offset, t.arity);
      Shard& shard = shards_[ShardOf(batch_hashes_[i])];
      shard.slots[v.slot] = idx;  // patch the placeholder
      fresh = true;
    } else if (v.kind == 1) {
      idx = v.ref;
    } else {
      idx = batch_indexes_[v.ref];  // duplicate of an earlier position
    }
    batch_indexes_[i] = idx;
    ++merged;
    if (!on_merged(i, idx, fresh)) {
      // Scrub the claims of the tuples that will not be inserted. Safe
      // by the seating-order invariant (see GrowShard): no surviving
      // entry's probe chain passes a later placeholder's slot.
      for (std::size_t j = i + 1; j < n; ++j) {
        if (batch_verdicts_[j].kind != 0) continue;
        Shard& shard = shards_[ShardOf(batch_hashes_[j])];
        shard.slots[batch_verdicts_[j].slot] = kEmptySlot;
        --shard.entries;
      }
      break;
    }
  }
  return merged;
}

std::size_t Instance::AdvanceDelta() {
  delta_curr_ = std::move(delta_next_);
  delta_curr_size_ = delta_next_size_;
  delta_next_.clear();
  delta_next_size_ = 0;
  return delta_curr_size_;
}

const std::vector<AtomIndex>& Instance::DeltaAtomsWithPredicate(
    PredicateId pred) const {
  auto it = delta_curr_.find(pred);
  return it == delta_curr_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithPredicate(
    PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithTermAt(PredicateId pred,
                                                        std::uint32_t pos,
                                                        Term t) const {
  auto it = by_position_.find(PosKey{pred, pos, t});
  return it == by_position_.end() ? kEmpty : it->second;
}

const std::vector<Term>& Instance::ActiveDomain() const {
  // Catch the cache up over the atoms inserted since the last call;
  // tuples are walked in insertion order, so first-occurrence order is
  // deterministic (and extent padding is never visited).
  for (; domain_scanned_ < refs_.size(); ++domain_scanned_) {
    const AtomRef& ref = refs_[domain_scanned_];
    const Term* tuple = TuplePtr(ref.offset);
    for (std::uint32_t i = 0; i < ref.arity; ++i) {
      if (domain_seen_.insert(tuple[i]).second) {
        domain_.push_back(tuple[i]);
      }
    }
  }
  return domain_;
}

std::string Instance::ToSortedString(const SymbolScope& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(refs_.size());
  for (AtomIndex i = 0; i < refs_.size(); ++i) {
    lines.push_back(atom(i).ToString(symbols));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
