#include "core/instance.h"

#include <algorithm>
#include <cassert>

namespace nuchase {
namespace core {

const std::vector<AtomIndex> Instance::kEmpty;
constexpr AtomIndex Instance::kEmptySlot;
constexpr std::uint32_t Instance::kUnknownArity;

std::size_t Instance::ProbeSlot(PredicateId pred, TermSpan terms,
                                std::size_t hash) const {
  std::size_t slot = hash & slot_mask_;
  while (true) {
    AtomIndex idx = slots_[slot];
    if (idx == kEmptySlot || TupleAt(idx, pred, terms)) return slot;
    slot = (slot + 1) & slot_mask_;
  }
}

void Instance::GrowSlots() {
  std::size_t new_size = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(new_size, kEmptySlot);
  slot_mask_ = new_size - 1;
  for (AtomIndex idx = 0; idx < refs_.size(); ++idx) {
    const AtomRef& ref = refs_[idx];
    TermSpan tuple(arena_.data() + ref.offset, ref.arity);
    std::size_t slot = TupleHash(ref.predicate, tuple) & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = idx;
  }
}

bool Instance::FindTuple(PredicateId pred, TermSpan terms,
                         AtomIndex* index) const {
  if (slots_.empty()) return false;
  std::size_t slot = ProbeSlot(pred, terms, TupleHash(pred, terms));
  if (slots_[slot] == kEmptySlot) return false;
  *index = slots_[slot];
  return true;
}

std::pair<AtomIndex, bool> Instance::InsertTuple(PredicateId pred,
                                                 TermSpan terms) {
  // Keep the load factor below ~0.75 (counting the insert to come).
  if ((refs_.size() + 1) * 4 >= slots_.size() * 3) GrowSlots();

  std::size_t hash = TupleHash(pred, terms);
  std::size_t slot = ProbeSlot(pred, terms, hash);
  if (slots_[slot] != kEmptySlot) return {slots_[slot], false};

  if (pred >= pred_arity_.size()) {
    pred_arity_.resize(pred + 1, kUnknownArity);
  }
  if (pred_arity_[pred] == kUnknownArity) {
    pred_arity_[pred] = terms.size();
  }
  assert(pred_arity_[pred] == terms.size() &&
         "predicate arity is fixed per Instance");

  // Append the tuple to the arena. `terms` may alias the arena itself
  // (re-inserting a view's tuple), and growth would invalidate it:
  // translate an aliasing span to its offset, reserve, then re-derive.
  const std::uint64_t offset = arena_.size();
  const Term* src = terms.data();
  const std::uint32_t n = terms.size();
  if (src >= arena_.data() && src < arena_.data() + arena_.size()) {
    std::uint64_t src_offset = static_cast<std::uint64_t>(
        src - arena_.data());
    arena_.resize(arena_.size() + n);
    src = arena_.data() + src_offset;
    std::copy(src, src + n, arena_.begin() + offset);
  } else {
    arena_.insert(arena_.end(), src, src + n);
  }

  AtomIndex idx = static_cast<AtomIndex>(refs_.size());
  refs_.emplace_back(pred, offset, n);
  slots_[slot] = idx;

  by_predicate_[pred].push_back(idx);
  for (std::uint32_t i = 0; i < n; ++i) {
    by_position_[PosKey{pred, i, arena_[offset + i]}].push_back(idx);
  }
  if (track_delta_) {
    delta_next_[pred].push_back(idx);
    ++delta_next_size_;
  }
  return {idx, true};
}

std::size_t Instance::AdvanceDelta() {
  delta_curr_ = std::move(delta_next_);
  delta_curr_size_ = delta_next_size_;
  delta_next_.clear();
  delta_next_size_ = 0;
  return delta_curr_size_;
}

const std::vector<AtomIndex>& Instance::DeltaAtomsWithPredicate(
    PredicateId pred) const {
  auto it = delta_curr_.find(pred);
  return it == delta_curr_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithPredicate(
    PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? kEmpty : it->second;
}

const std::vector<AtomIndex>& Instance::AtomsWithTermAt(PredicateId pred,
                                                        std::uint32_t pos,
                                                        Term t) const {
  auto it = by_position_.find(PosKey{pred, pos, t});
  return it == by_position_.end() ? kEmpty : it->second;
}

const std::vector<Term>& Instance::ActiveDomain() const {
  // Catch the cache up over the terms appended since the last call;
  // arena order is insertion order, so first-occurrence order is
  // deterministic.
  for (; domain_scanned_ < arena_.size(); ++domain_scanned_) {
    Term t = arena_[domain_scanned_];
    if (domain_seen_.insert(t).second) domain_.push_back(t);
  }
  return domain_;
}

std::string Instance::ToSortedString(const SymbolScope& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(refs_.size());
  for (AtomIndex i = 0; i < refs_.size(); ++i) {
    lines.push_back(atom(i).ToString(symbols));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
