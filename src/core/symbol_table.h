#ifndef NUCHASE_CORE_SYMBOL_TABLE_H_
#define NUCHASE_CORE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/term.h"
#include "util/status.h"

namespace nuchase {
namespace core {

/// Numeric handle of a predicate inside a Context.
using PredicateId = std::uint32_t;

/// Sentinel for "no predicate".
inline constexpr PredicateId kInvalidPredicate = 0xffffffffu;

/// The symbol operations the chase engine and result rendering need:
/// resolving predicates, computing term depths (Definition 4.3),
/// allocating fresh labelled nulls, and printing terms. Two
/// implementations exist:
///
///   - SymbolTable: the plain mutable interning table (single-threaded
///     callers, and the frozen base owned by an api::Program);
///   - SymbolOverlay: a per-chase-run view over a frozen SymbolTable
///     that allocates fresh nulls locally, so any number of concurrent
///     runs can share one const base table without synchronization.
///
/// Thread safety: the const surface (depth, num_nulls, name lookups,
/// printing) is safe to read concurrently as long as nothing mutates
/// the scope — a frozen SymbolTable is therefore fully thread-shared.
/// MakeNull and the interning methods mutate and must stay
/// single-threaded per scope; the chase engine honours this by
/// allocating nulls only in its serialized apply phase (its parallel
/// collect workers never touch the scope), and concurrent runs get
/// isolation from per-run SymbolOverlays rather than locks.
class SymbolScope {
 public:
  virtual ~SymbolScope() = default;

  /// Allocates a fresh labelled null with the given depth. Fails with
  /// kResourceExhausted once the scope has allocated all 2^30 null ids
  /// Term can index — ids never silently wrap.
  virtual util::StatusOr<Term> MakeNull(std::uint32_t depth) = 0;

  /// Depth of a term (Definition 4.3): 0 for constants, the recorded
  /// creation depth for nulls. Must not be called on variables.
  virtual std::uint32_t depth(Term t) const = 0;

  virtual std::uint32_t num_nulls() const = 0;

  virtual const std::string& predicate_name(PredicateId id) const = 0;
  virtual std::uint32_t arity(PredicateId id) const = 0;

  /// Printable form of any term.
  virtual std::string TermToString(Term t) const = 0;
};

/// Interning table for the symbols of one Context: predicate names with
/// arities, constant names, variable names, and labelled nulls.
///
/// Nulls are not named by strings; they are allocated by the chase (or the
/// rewriting machinery) and carry a depth (Definition 4.3). Their printable
/// form is "_:n<k>".
class SymbolTable final : public SymbolScope {
 public:
  SymbolTable() = default;

  // Predicates -------------------------------------------------------------

  /// Interns a predicate with the given name and arity. Returns an error if
  /// the name is already interned with a different arity.
  util::StatusOr<PredicateId> InternPredicate(const std::string& name,
                                              std::uint32_t arity);

  /// Looks up a predicate by name.
  util::StatusOr<PredicateId> FindPredicate(const std::string& name) const;

  const std::string& predicate_name(PredicateId id) const override {
    return predicates_[id].name;
  }
  std::uint32_t arity(PredicateId id) const override {
    return predicates_[id].arity;
  }
  std::uint32_t num_predicates() const {
    return static_cast<std::uint32_t>(predicates_.size());
  }

  // Constants & variables ----------------------------------------------------

  /// Interns a constant by name (idempotent). Fails with
  /// kResourceExhausted once all 2^30 constant ids Term can index are
  /// taken — ids never silently wrap past Term::kIndexBits.
  util::StatusOr<Term> InternConstant(const std::string& name);
  /// Interns a variable by name (idempotent). Variable ids are bounded
  /// by the distinct variable names of the (finite) input program, so
  /// unlike constants/nulls this cannot realistically exhaust Term's
  /// index space; overflow is asserted, not surfaced.
  Term InternVariable(const std::string& name);

  const std::string& constant_name(Term t) const;
  const std::string& variable_name(Term t) const;

  std::uint32_t num_constants() const {
    return static_cast<std::uint32_t>(constant_names_.size());
  }
  std::uint32_t num_variables() const {
    return static_cast<std::uint32_t>(variable_names_.size());
  }

  // Nulls --------------------------------------------------------------------

  /// Allocates a fresh labelled null with the given depth.
  util::StatusOr<Term> MakeNull(std::uint32_t depth) override;

  /// Depth of a term (Definition 4.3): 0 for constants, the recorded
  /// creation depth for nulls. Must not be called on variables.
  std::uint32_t depth(Term t) const override;

  std::uint32_t num_nulls() const override {
    return static_cast<std::uint32_t>(null_depths_.size());
  }

  /// Printable form of any term.
  std::string TermToString(Term t) const override;

 private:
  struct PredicateInfo {
    std::string name;
    std::uint32_t arity;
  };

  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_by_name_;

  std::vector<std::string> constant_names_;
  std::unordered_map<std::string, std::uint32_t> constant_by_name_;

  std::vector<std::string> variable_names_;
  std::unordered_map<std::string, std::uint32_t> variable_by_name_;

  std::vector<std::uint32_t> null_depths_;
};

/// Per-run overlay over a frozen base table. Reads (predicates,
/// constants, variables, and the base's pre-existing nulls) delegate to
/// the base without any mutation; fresh nulls allocated through the
/// overlay live in the overlay only, numbered directly after the base's.
/// N overlays over one const SymbolTable therefore run concurrently
/// without synchronization, and — because each run starts numbering at
/// base.num_nulls() — produce identical null names for identical runs.
///
/// The base must outlive the overlay and must not be mutated while any
/// overlay over it is in use.
class SymbolOverlay final : public SymbolScope {
 public:
  explicit SymbolOverlay(const SymbolTable& base)
      : base_(&base), base_nulls_(base.num_nulls()) {}

  /// Test-only: pretends the base already holds `assume_base_nulls`
  /// nulls, so the Term-index budget left for this overlay is exactly
  /// Term::kIndexMask + 1 - assume_base_nulls. Regression tests use it
  /// to trip kResourceExhausted after a handful of allocations instead
  /// of 2^30. The phantom base nulls must never be resolved — depth()
  /// and TermToString() on a null the overlay did not allocate read the
  /// real base and would answer for the wrong null (or walk off it).
  SymbolOverlay(const SymbolTable& base, std::uint32_t assume_base_nulls)
      : base_(&base), base_nulls_(assume_base_nulls) {}

  util::StatusOr<Term> MakeNull(std::uint32_t depth) override;
  std::uint32_t depth(Term t) const override;

  std::uint32_t num_nulls() const override {
    return base_nulls_ + static_cast<std::uint32_t>(null_depths_.size());
  }

  const std::string& predicate_name(PredicateId id) const override {
    return base_->predicate_name(id);
  }
  std::uint32_t arity(PredicateId id) const override {
    return base_->arity(id);
  }

  std::string TermToString(Term t) const override;

  const SymbolTable& base() const { return *base_; }

 private:
  const SymbolTable* base_;
  std::uint32_t base_nulls_;
  /// Depths of the overlay-allocated nulls; overlay null k has term
  /// index base_nulls_ + k.
  std::vector<std::uint32_t> null_depths_;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_SYMBOL_TABLE_H_
