#ifndef NUCHASE_CORE_SYMBOL_TABLE_H_
#define NUCHASE_CORE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/term.h"
#include "util/status.h"

namespace nuchase {
namespace core {

/// Numeric handle of a predicate inside a Context.
using PredicateId = std::uint32_t;

/// Sentinel for "no predicate".
inline constexpr PredicateId kInvalidPredicate = 0xffffffffu;

/// Interning table for the symbols of one Context: predicate names with
/// arities, constant names, variable names, and labelled nulls.
///
/// Nulls are not named by strings; they are allocated by the chase (or the
/// rewriting machinery) and carry a depth (Definition 4.3). Their printable
/// form is "_:n<k>".
class SymbolTable {
 public:
  SymbolTable() = default;

  // Predicates -------------------------------------------------------------

  /// Interns a predicate with the given name and arity. Returns an error if
  /// the name is already interned with a different arity.
  util::StatusOr<PredicateId> InternPredicate(const std::string& name,
                                              std::uint32_t arity);

  /// Looks up a predicate by name.
  util::StatusOr<PredicateId> FindPredicate(const std::string& name) const;

  const std::string& predicate_name(PredicateId id) const {
    return predicates_[id].name;
  }
  std::uint32_t arity(PredicateId id) const { return predicates_[id].arity; }
  std::uint32_t num_predicates() const {
    return static_cast<std::uint32_t>(predicates_.size());
  }

  // Constants & variables ----------------------------------------------------

  /// Interns a constant by name (idempotent).
  Term InternConstant(const std::string& name);
  /// Interns a variable by name (idempotent).
  Term InternVariable(const std::string& name);

  const std::string& constant_name(Term t) const;
  const std::string& variable_name(Term t) const;

  std::uint32_t num_constants() const {
    return static_cast<std::uint32_t>(constant_names_.size());
  }
  std::uint32_t num_variables() const {
    return static_cast<std::uint32_t>(variable_names_.size());
  }

  // Nulls --------------------------------------------------------------------

  /// Allocates a fresh labelled null with the given depth.
  Term MakeNull(std::uint32_t depth);

  /// Depth of a term (Definition 4.3): 0 for constants, the recorded
  /// creation depth for nulls. Must not be called on variables.
  std::uint32_t depth(Term t) const;

  std::uint32_t num_nulls() const {
    return static_cast<std::uint32_t>(null_depths_.size());
  }

  /// Printable form of any term.
  std::string TermToString(Term t) const;

 private:
  struct PredicateInfo {
    std::string name;
    std::uint32_t arity;
  };

  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_by_name_;

  std::vector<std::string> constant_names_;
  std::unordered_map<std::string, std::uint32_t> constant_by_name_;

  std::vector<std::string> variable_names_;
  std::unordered_map<std::string, std::uint32_t> variable_by_name_;

  std::vector<std::uint32_t> null_depths_;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_SYMBOL_TABLE_H_
