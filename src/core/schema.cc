#include "core/schema.h"

namespace nuchase {
namespace core {

std::vector<Position> AllPositions(const std::vector<PredicateId>& predicates,
                                   const SymbolTable& symbols) {
  std::vector<Position> out;
  for (PredicateId pred : predicates) {
    for (std::uint32_t i = 0; i < symbols.arity(pred); ++i) {
      out.emplace_back(pred, i);
    }
  }
  return out;
}

std::vector<Position> PositionsOfTerm(const Atom& atom, Term term) {
  std::vector<Position> out;
  for (std::uint32_t i = 0; i < atom.arity(); ++i) {
    if (atom.args[i] == term) out.emplace_back(atom.predicate, i);
  }
  return out;
}

std::set<Term> VariablesOf(const Atom& atom) {
  std::set<Term> out;
  for (Term t : atom.args) {
    if (t.IsVariable()) out.insert(t);
  }
  return out;
}

std::set<Term> VariablesOf(const std::vector<Atom>& atoms) {
  std::set<Term> out;
  for (const Atom& a : atoms) {
    for (Term t : a.args) {
      if (t.IsVariable()) out.insert(t);
    }
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
