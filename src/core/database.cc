#include "core/database.h"

#include <algorithm>

namespace nuchase {
namespace core {

util::Status Database::AddFact(Atom fact) {
  if (!fact.IsFact()) {
    return util::Status::InvalidArgument(
        "database facts must mention constants only");
  }
  if (fact_set_.insert(fact).second) {
    facts_.push_back(std::move(fact));
  }
  return util::Status::OK();
}

util::Status Database::AddFact(SymbolTable* symbols,
                               const std::string& predicate,
                               const std::vector<std::string>& constants) {
  auto pred = symbols->InternPredicate(
      predicate, static_cast<std::uint32_t>(constants.size()));
  if (!pred.ok()) return pred.status();
  std::vector<Term> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) {
    auto constant = symbols->InternConstant(c);
    if (!constant.ok()) return constant.status();
    args.push_back(*constant);
  }
  return AddFact(Atom(*pred, std::move(args)));
}

std::unordered_set<PredicateId> Database::Predicates() const {
  std::unordered_set<PredicateId> out;
  for (const Atom& f : facts_) out.insert(f.predicate);
  return out;
}

std::unordered_set<Term> Database::ActiveDomain() const {
  std::unordered_set<Term> dom;
  for (const Atom& f : facts_) {
    for (Term t : f.args) dom.insert(t);
  }
  return dom;
}

Instance Database::ToInstance() const {
  Instance out;
  for (const Atom& f : facts_) out.Insert(f);
  return out;
}

std::string Database::ToSortedString(const SymbolScope& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(facts_.size());
  for (const Atom& f : facts_) lines.push_back(f.ToString(symbols));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace core
}  // namespace nuchase
