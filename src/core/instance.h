#ifndef NUCHASE_CORE_INSTANCE_H_
#define NUCHASE_CORE_INSTANCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"

namespace nuchase {
namespace core {

/// Index of an atom within an Instance, in insertion order.
using AtomIndex = std::uint32_t;

/// A (finite prefix of an) instance: a duplicate-free, insertion-ordered set
/// of atoms over constants and nulls, with the per-predicate and
/// per-(predicate, position, term) indexes the chase engine joins against
/// (the "VLog-style" storage layer).
class Instance {
 public:
  Instance() = default;

  /// Inserts an atom. Returns its index and whether it was new.
  std::pair<AtomIndex, bool> Insert(Atom atom);

  bool Contains(const Atom& atom) const {
    return index_.find(atom) != index_.end();
  }

  /// Finds the index of an atom; returns false if absent.
  bool Find(const Atom& atom, AtomIndex* index) const {
    auto it = index_.find(atom);
    if (it == index_.end()) return false;
    *index = it->second;
    return true;
  }

  const Atom& atom(AtomIndex i) const { return atoms_[i]; }
  std::size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// All atom indexes with the given predicate (empty if none).
  const std::vector<AtomIndex>& AtomsWithPredicate(PredicateId pred) const;

  /// Turns on the per-predicate delta index used by the semi-naive chase
  /// engine: every subsequent Insert of a fresh atom is recorded in the
  /// "next" delta generation until AdvanceDelta() rotates it into the
  /// current one. Off by default so non-chase users (query evaluation,
  /// saturation) pay nothing.
  void EnableDeltaTracking() { track_delta_ = true; }
  bool delta_tracking_enabled() const { return track_delta_; }

  /// Rotates the delta generations: the atoms inserted since the last
  /// call become the current delta; the previous current delta is
  /// discarded. Returns the number of atoms in the new current delta.
  std::size_t AdvanceDelta();

  /// Atom indexes of the current delta with the given predicate (empty if
  /// none, or if delta tracking is disabled). Indexes are in insertion
  /// order, mirroring AtomsWithPredicate restricted to the last
  /// generation.
  const std::vector<AtomIndex>& DeltaAtomsWithPredicate(
      PredicateId pred) const;

  /// Number of atoms in the current delta generation.
  std::size_t delta_size() const { return delta_curr_size_; }

  /// All atom indexes with predicate `pred` and term `t` at position `pos`.
  const std::vector<AtomIndex>& AtomsWithTermAt(PredicateId pred,
                                                std::uint32_t pos,
                                                Term t) const;

  /// dom(I): the active domain (constants and nulls occurring in the
  /// instance).
  std::unordered_set<Term> ActiveDomain() const;

  /// All atoms, in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Sorted multi-line rendering (stable across runs), for tests and goldens.
  std::string ToSortedString(const SymbolScope& symbols) const;

 private:
  std::vector<Atom> atoms_;
  std::unordered_map<Atom, AtomIndex, AtomHash> index_;
  // predicate -> atom indexes
  std::unordered_map<PredicateId, std::vector<AtomIndex>> by_predicate_;
  // (predicate, position) -> term -> atom indexes
  struct PosKey {
    PredicateId pred;
    std::uint32_t pos;
    Term term;
    bool operator==(const PosKey& o) const {
      return pred == o.pred && pos == o.pos && term == o.term;
    }
  };
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.pred) << 32) | k.pos);
      util::HashCombine(&seed, std::hash<std::uint32_t>{}(k.term.bits()));
      return seed;
    }
  };
  std::unordered_map<PosKey, std::vector<AtomIndex>, PosKeyHash> by_position_;

  // Two-generation delta index (semi-naive evaluation): fresh inserts
  // land in delta_next_; AdvanceDelta() rotates next -> curr. Maintained
  // only when track_delta_ is set.
  bool track_delta_ = false;
  std::size_t delta_curr_size_ = 0;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_curr_;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_next_;
  std::size_t delta_next_size_ = 0;

  static const std::vector<AtomIndex> kEmpty;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_INSTANCE_H_
