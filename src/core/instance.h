#ifndef NUCHASE_CORE_INSTANCE_H_
#define NUCHASE_CORE_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/thread_pool.h"

namespace nuchase {
namespace core {

/// Index of an atom within an Instance, in insertion order.
using AtomIndex = std::uint32_t;

/// One tuple of a batched insert (Instance::InsertTupleBatch): the atom
/// `pred(buffer[begin], ..., buffer[begin + arity - 1])` over the
/// caller's shared candidate term buffer.
struct BatchTuple {
  PredicateId pred = kInvalidPredicate;
  std::uint64_t begin = 0;
  std::uint32_t arity = 0;
};

/// A (finite prefix of an) instance: a duplicate-free, insertion-ordered
/// set of atoms over constants and nulls, stored columnar ("VLog-style"):
///
///   - the term arena is a sequence of fixed-size extents (2^extent_log2
///     terms each, default 2^16); argument tuples are appended back to
///     back and never straddle an extent boundary (short tail gaps are
///     padded and excluded from every accounting number). Extent blocks
///     never move or reallocate, so a tuple's address — and therefore
///     every AtomView and raw span handed out — is stable for the life
///     of the instance, with no realloc pauses on growth;
///   - a directory of AtomRefs (predicate + arena offset) maps AtomIndex
///     to its tuple; arity is fixed per predicate, learned at the first
///     insert of that predicate, so a ref fully determines the row
///     extent;
///   - dedup is an open-addressing hash set of AtomIndexes keyed by
///     (predicate, tuple) that probes the arena directly — Contains /
///     Find / Insert never materialize an Atom. The set is split into
///     kNumShards sub-tables addressed by the HIGH bits of the tuple
///     hash (slots within a shard use the low bits), so a batched
///     insert can probe all shards in parallel with no locks: a shard
///     is only ever touched by the one worker that owns it;
///   - the per-predicate and per-(predicate, position, term) lists the
///     chase engine joins against, plus the two-generation delta index
///     of the semi-naive engine, are layered on top as index structures.
///
/// Atoms are exposed as AtomView handles (see core/atom.h): views point
/// straight into the immobile extent blocks, so they stay valid across
/// later inserts and across moves of the Instance; only destroying the
/// owning storage invalidates them.
///
/// Thread safety: between mutations, concurrent const reads are safe
/// for the accessors the join kernel uses — FindTuple / ContainsTuple,
/// atom(), TupleData(), AtomsWithPredicate, AtomsWithTermAt,
/// DeltaAtomsWithPredicate, size(), PredicateArity — none of them
/// mutate anything, not even lazily. This is the contract the parallel
/// trigger engine relies on: during a collect region (and during the
/// apply phase's read-only pre-checks) the instance is frozen and every
/// worker probes it read-only. Two exceptions are NOT safe
/// concurrently: ActiveDomain() (lazily catches a mutable cache up)
/// and, of course, any non-const method; no mutation may overlap any
/// read. InsertTupleBatch is a mutation: its internal hash/probe stages
/// run on the caller's pool, but the call as a whole must be exclusive,
/// like any other insert.
class Instance {
 public:
  /// Terms per extent = 2^kDefaultExtentLog2. 2^16 terms = 256 KiB per
  /// extent: big enough that padding waste is negligible, small enough
  /// that growth never copies or stalls.
  static constexpr std::uint32_t kDefaultExtentLog2 = 16;

  /// Dedup shards. Shard = high bits of the tuple hash; slot = low
  /// bits. 16 shards keep the per-shard tables dense while exceeding
  /// any worker count the pool realistically runs with.
  static constexpr std::uint32_t kShardBits = 4;
  static constexpr std::uint32_t kNumShards = 1u << kShardBits;

  Instance() : Instance(kDefaultExtentLog2) {}

  /// An instance whose arena extents hold 2^extent_log2 terms. Only
  /// tests shrink this (to force tuples across extent boundaries);
  /// every tuple's arity must fit in one extent.
  explicit Instance(std::uint32_t extent_log2)
      : extent_log2_(extent_log2),
        extent_capacity_(std::uint64_t{1} << extent_log2),
        extent_mask_(extent_capacity_ - 1) {}

  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  /// The fast path: inserts the tuple `pred(terms...)` without
  /// materializing an Atom. Returns the atom's index and whether it was
  /// new. `terms` may alias this instance's own arena (re-inserting a
  /// view's tuple is safe — extents are immobile, so no growth can
  /// invalidate the source). The tuple's size must equal the arity
  /// every earlier tuple of `pred` had.
  std::pair<AtomIndex, bool> InsertTuple(PredicateId pred, TermSpan terms);

  /// Convenience wrapper over InsertTuple for materialized atoms.
  std::pair<AtomIndex, bool> Insert(const Atom& atom) {
    return InsertTuple(atom.predicate, atom.terms());
  }

  /// Batched insert — the apply phase of the parallel chase engine.
  /// Processes `tuples` (whose terms live in the caller's `buffer`)
  /// exactly as the equivalent InsertTuple loop would, in three stages:
  ///
  ///   1. hash every tuple (parallel over tuples);
  ///   2. probe the dedup shards (parallel over shards: each worker
  ///      owns a subset of shards and walks the batch in order,
  ///      claiming slots for first occurrences with placeholder marks
  ///      and growing its own shards locally — no two workers ever
  ///      touch the same shard);
  ///   3. merge serially in batch order: assign atom indexes, append
  ///      tuples to the arena, patch the claimed slots, and maintain
  ///      the join/delta indexes.
  ///
  /// `on_merged(pos, index, fresh)` is called once per tuple, in batch
  /// order, after that tuple is fully applied; returning false stops
  /// the merge (remaining tuples are NOT inserted and their claimed
  /// slots are scrubbed, leaving the dedup set exactly consistent with
  /// the atoms actually kept). Returns the number of tuples merged.
  ///
  /// Stages 1 and 2 run on `pool` when it has more than one worker,
  /// inline otherwise; the result — indexes, arena bytes, dedup
  /// verdicts, callback sequence — is byte-identical either way, and
  /// identical to the sequential InsertTuple loop.
  std::size_t InsertTupleBatch(
      const Term* buffer, const std::vector<BatchTuple>& tuples,
      util::ThreadPool* pool,
      const std::function<bool(std::size_t, AtomIndex, bool)>& on_merged);

  bool ContainsTuple(PredicateId pred, TermSpan terms) const {
    AtomIndex ignored;
    return FindTuple(pred, terms, &ignored);
  }
  bool Contains(const Atom& atom) const {
    return ContainsTuple(atom.predicate, atom.terms());
  }

  /// Finds the index of a tuple by probing the arena; returns false if
  /// absent.
  bool FindTuple(PredicateId pred, TermSpan terms, AtomIndex* index) const;
  bool Find(const Atom& atom, AtomIndex* index) const {
    return FindTuple(atom.predicate, atom.terms(), index);
  }

  /// A view of the i-th atom (insertion order). Cheap; resolve freely.
  AtomView atom(AtomIndex i) const {
    const AtomRef& ref = refs_[i];
    return AtomView(TuplePtr(ref.offset), ref.predicate, ref.arity);
  }

  /// Raw pointer to the i-th atom's argument tuple in its extent — the
  /// join kernel's per-probe accessor (one ref load + one extent-table
  /// load). Extents are immobile, so unlike the pre-extent arena this
  /// pointer is NOT invalidated by later inserts; it lives as long as
  /// the instance's storage.
  const Term* TupleData(AtomIndex i) const {
    return TuplePtr(refs_[i].offset);
  }

  std::size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }

  /// All atom indexes with the given predicate (empty if none).
  const std::vector<AtomIndex>& AtomsWithPredicate(PredicateId pred) const;

  /// Arity of a predicate as stored here; 0 if `pred` has no atoms yet
  /// and no arity was recorded. A populated 0-ary predicate also
  /// returns 0 — ask AtomsWithPredicate(pred).empty() to distinguish
  /// "unseen" from "nullary".
  std::uint32_t PredicateArity(PredicateId pred) const {
    if (pred >= pred_arity_.size()) return 0;
    std::uint32_t arity = pred_arity_[pred];
    return arity == kUnknownArity ? 0 : arity;
  }

  /// Turns on the per-predicate delta index used by the semi-naive chase
  /// engine: every subsequent Insert of a fresh atom is recorded in the
  /// "next" delta generation until AdvanceDelta() rotates it into the
  /// current one. Off by default so non-chase users (query evaluation,
  /// saturation) pay nothing.
  void EnableDeltaTracking() { track_delta_ = true; }
  bool delta_tracking_enabled() const { return track_delta_; }

  /// Rotates the delta generations: the atoms inserted since the last
  /// call become the current delta; the previous current delta is
  /// discarded. Returns the number of atoms in the new current delta.
  std::size_t AdvanceDelta();

  /// Atom indexes of the current delta with the given predicate (empty if
  /// none, or if delta tracking is disabled). Indexes are in insertion
  /// order, mirroring AtomsWithPredicate restricted to the last
  /// generation.
  const std::vector<AtomIndex>& DeltaAtomsWithPredicate(
      PredicateId pred) const;

  /// Number of atoms in the current delta generation.
  std::size_t delta_size() const { return delta_curr_size_; }

  /// All atom indexes with predicate `pred` and term `t` at position `pos`.
  const std::vector<AtomIndex>& AtomsWithTermAt(PredicateId pred,
                                                std::uint32_t pos,
                                                Term t) const;

  /// dom(I): the active domain (constants and nulls occurring in the
  /// instance). Maintained incrementally behind an atom-index
  /// watermark: each call only scans the tuples of atoms inserted
  /// since the previous call, so the total work over any insert/read
  /// interleaving is O(terms) — and inserts themselves pay nothing for
  /// it. (The watermark walks refs, not raw arena positions, so extent
  /// padding is never scanned.) Deterministic iteration order: first
  /// occurrence in the insertion sequence. (Catch-up mutates cache
  /// members; do not call concurrently on a shared Instance.)
  const std::vector<Term>& ActiveDomain() const;

  // Memory accounting ------------------------------------------------------

  /// Bytes of term storage the stored tuples occupy (used terms only:
  /// neither extent capacity nor boundary padding counts), so the
  /// number is deterministic for a given atom set regardless of extent
  /// geometry — the `arena_bytes` chase counter.
  std::uint64_t arena_bytes() const {
    return used_terms_ * sizeof(Term);
  }

  /// Terms stored in the arena (used, not padding or capacity).
  std::uint64_t arena_terms() const { return used_terms_; }

  /// Sorted multi-line rendering (stable across runs), for tests and goldens.
  std::string ToSortedString(const SymbolScope& symbols) const;

 private:
  static constexpr AtomIndex kEmptySlot = 0xffffffffu;
  /// During InsertTupleBatch's probe stage, a claimed-but-not-merged
  /// slot holds kPendingBit | batch position; the merge patches it to
  /// the real AtomIndex (or scrubs it on early stop).
  static constexpr AtomIndex kPendingBit = 0x80000000u;

  /// One dedup shard: an open-addressing table of AtomIndexes whose
  /// slot is taken from the LOW bits of the tuple hash (the shard id
  /// uses the high bits, so the two are independent).
  struct Shard {
    std::vector<AtomIndex> slots;
    std::size_t mask = 0;    // slots.size() - 1 (power of two)
    std::size_t entries = 0; // arena atoms + pending placeholders
  };

  static std::uint32_t ShardOf(std::size_t hash) {
    return static_cast<std::uint32_t>(
        hash >> (sizeof(std::size_t) * 8 - kShardBits));
  }

  const Term* TuplePtr(std::uint64_t offset) const {
    return extents_[offset >> extent_log2_].get() +
           (offset & extent_mask_);
  }

  /// Probes `shard` for (pred, terms) with its precomputed hash.
  /// Returns the slot holding the matching atom's index, or the empty
  /// slot where it would be inserted. `batch` non-null enables matching
  /// pending placeholders against the batch being inserted.
  std::size_t ProbeShard(const Shard& shard, PredicateId pred,
                         TermSpan terms, std::size_t hash,
                         const Term* buffer,
                         const std::vector<BatchTuple>* batch) const;

  /// Grows `shard` (doubling) and re-seats its entries: arena atoms
  /// first, then pending placeholders in batch order (their hashes are
  /// read from batch_hashes_) — the seating order that keeps an
  /// early-stopped batch scrubbable (no kept entry's probe chain ever
  /// crosses a later placeholder's slot).
  void GrowShard(Shard* shard);

  /// Appends a tuple to the arena (padding to the next extent if the
  /// current one cannot hold it whole) and returns its offset. The
  /// source may alias the arena: extents are immobile and the target
  /// region is fresh, so the copy is safe either way.
  std::uint64_t AppendTuple(const Term* src, std::uint32_t n);

  /// Index-side bookkeeping shared by InsertTuple and the batch merge:
  /// records the freshly appended tuple (already in the arena at
  /// `offset`) in refs_ and every layered index. Returns its index.
  AtomIndex CommitTuple(PredicateId pred, std::uint64_t offset,
                        std::uint32_t n);

  bool TupleAt(AtomIndex idx, PredicateId pred, TermSpan terms) const {
    const AtomRef& ref = refs_[idx];
    if (ref.predicate != pred) return false;
    return TermSpan(TuplePtr(ref.offset), ref.arity) == terms;
  }

  // Columnar storage: immobile fixed-size term extents plus the
  // AtomIndex -> AtomRef directory. Tuples are appended back to back
  // (padding at extent boundaries); atom i's tuple lives at
  // [refs_[i].offset, refs_[i].offset + refs_[i].arity) within extent
  // refs_[i].offset >> extent_log2_.
  std::uint32_t extent_log2_;
  std::uint64_t extent_capacity_;
  std::uint64_t extent_mask_;
  std::vector<std::unique_ptr<Term[]>> extents_;
  std::uint64_t raw_next_ = 0;    // next raw append offset (incl. padding)
  std::uint64_t used_terms_ = 0;  // stored terms (excl. padding)
  std::vector<AtomRef> refs_;
  // predicate -> fixed arity, learned at first insert (kUnknownArity
  // before that).
  static constexpr std::uint32_t kUnknownArity = 0xffffffffu;
  std::vector<std::uint32_t> pred_arity_;

  // Sharded open-addressing dedup set over (predicate, arena tuple).
  // Slots hold AtomIndexes; keys are read straight from the arena on
  // comparison.
  Shard shards_[kNumShards];

  // Scratch for InsertTupleBatch (member so repeated batches reuse the
  // allocations): per-tuple hashes and probe verdicts.
  struct BatchVerdict {
    std::uint8_t kind = 0;   // 0 fresh, 1 existing, 2 dup-of-batch
    std::uint32_t ref = 0;   // existing AtomIndex / earlier batch pos
    std::uint64_t slot = 0;  // claimed slot (kind 0)
  };
  std::vector<std::size_t> batch_hashes_;
  std::vector<BatchVerdict> batch_verdicts_;
  std::vector<AtomIndex> batch_indexes_;

  // predicate -> atom indexes
  std::unordered_map<PredicateId, std::vector<AtomIndex>> by_predicate_;
  // (predicate, position) -> term -> atom indexes
  struct PosKey {
    PredicateId pred;
    std::uint32_t pos;
    Term term;
    bool operator==(const PosKey& o) const {
      return pred == o.pred && pos == o.pos && term == o.term;
    }
  };
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.pred) << 32) | k.pos);
      util::HashCombine(&seed, std::hash<std::uint32_t>{}(k.term.bits()));
      return seed;
    }
  };
  std::unordered_map<PosKey, std::vector<AtomIndex>, PosKeyHash> by_position_;

  // Active-domain cache: `domain_` lists every distinct term of the
  // first `domain_scanned_` atoms' tuples in first-occurrence order
  // (deterministic), `domain_seen_` is the membership filter behind
  // it. Caught up lazily by ActiveDomain() so the insert fast path
  // never touches it; mutable because catch-up happens in the const
  // accessor.
  mutable std::vector<Term> domain_;
  mutable std::unordered_set<Term> domain_seen_;
  mutable AtomIndex domain_scanned_ = 0;

  // Two-generation delta index (semi-naive evaluation): fresh inserts
  // land in delta_next_; AdvanceDelta() rotates next -> curr. Maintained
  // only when track_delta_ is set.
  bool track_delta_ = false;
  std::size_t delta_curr_size_ = 0;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_curr_;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_next_;
  std::size_t delta_next_size_ = 0;

  static const std::vector<AtomIndex> kEmpty;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_INSTANCE_H_
