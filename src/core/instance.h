#ifndef NUCHASE_CORE_INSTANCE_H_
#define NUCHASE_CORE_INSTANCE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"
#include "util/thread_pool.h"

namespace nuchase {
namespace core {

/// Index of an atom within an Instance, in insertion order.
using AtomIndex = std::uint32_t;

/// One tuple of a batched insert (Instance::InsertTupleBatch): the atom
/// `pred(buffer[begin], ..., buffer[begin + arity - 1])` over the
/// caller's shared candidate term buffer.
struct BatchTuple {
  PredicateId pred = kInvalidPredicate;
  std::uint64_t begin = 0;
  std::uint32_t arity = 0;
};

/// A (finite prefix of an) instance: a duplicate-free, insertion-ordered
/// set of atoms over constants and nulls, stored columnar ("VLog-style")
/// and partitioned by predicate:
///
///   - every predicate owns a *segment*: its own extent-sharded term
///     arena (fixed-size extents of 2^extent_log2 terms, default 2^16;
///     immobile unique_ptr<Term[]> blocks; tuples never straddle an
///     extent boundary — short tail gaps are padded per segment and
///     excluded from every accounting number), its own group of dedup
///     shards, its own per-(position, term) join index, its own
///     insertion-ordered atom list, and its own delta watermark;
///   - a global directory of AtomRefs (predicate + offset *within that
///     predicate's segment*) maps AtomIndex to its tuple — the
///     global-index indirection. Indexes are assigned in insertion
///     order across all predicates and are stable forever; every
///     layered structure (join indexes, delta lists, the chase's
///     forest) speaks global AtomIndexes only;
///   - dedup is per-segment open addressing keyed by the
///     (predicate, tuple) hash — the HIGH bits pick the shard within
///     the segment's group, the low bits the slot — probing tuples
///     directly in the segment arena. Contains / Find / Insert never
///     materialize an Atom;
///   - the per-predicate split is what makes the batched insert's
///     commit parallel: distinct predicates touch disjoint segments,
///     so workers that own disjoint predicates append and index their
///     candidates concurrently (see InsertTupleBatch).
///
/// Atoms are exposed as AtomView handles (see core/atom.h): views point
/// straight into the immobile extent blocks, so they stay valid across
/// later inserts and across moves of the Instance; only destroying the
/// owning storage invalidates them.
///
/// Thread safety: between mutations, concurrent const reads are safe
/// for the accessors the join kernel uses — FindTuple / ContainsTuple,
/// atom(), TupleData(), AtomsWithPredicate, AtomsWithTermAt,
/// DeltaAtomsWithPredicate, size(), PredicateArity — none of them
/// mutate anything, not even lazily. This is the contract the parallel
/// trigger engine relies on: during a collect region (and during the
/// apply phase's read-only pre-checks) the instance is frozen and every
/// worker probes it read-only. Two exceptions are NOT safe
/// concurrently: ActiveDomain() (lazily catches a mutable cache up)
/// and, of course, any non-const method; no mutation may overlap any
/// read. InsertTupleBatch is a mutation: its internal hash/probe/commit
/// stages run on the caller's pool, but the call as a whole must be
/// exclusive, like any other insert.
class Instance {
 public:
  /// Terms per extent = 2^kDefaultExtentLog2. 2^16 terms = 256 KiB per
  /// extent: big enough that padding waste is negligible, small enough
  /// that growth never copies or stalls. Extents are per predicate
  /// segment, so a workload's footprint scales with the predicates it
  /// actually populates.
  static constexpr std::uint32_t kDefaultExtentLog2 = 16;

  /// Dedup shards per segment. Shard = high bits of the tuple hash;
  /// slot = low bits. 8 shards per predicate keep single-predicate
  /// batches (the insert-heavy shape) probing in parallel while the
  /// cross-predicate batches parallelize over segments anyway.
  static constexpr std::uint32_t kShardBits = 3;
  static constexpr std::uint32_t kNumShards = 1u << kShardBits;

  Instance() : Instance(kDefaultExtentLog2) {}

  /// An instance whose arena extents hold 2^extent_log2 terms. Tests
  /// shrink this (to force tuples across extent boundaries); deployments
  /// with many narrow predicates can shrink it to cut per-segment tail
  /// memory. Every tuple's arity must fit in one extent.
  explicit Instance(std::uint32_t extent_log2)
      : extent_log2_(extent_log2),
        extent_capacity_(std::uint64_t{1} << extent_log2),
        extent_mask_(extent_capacity_ - 1) {}

  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  /// The fast path: inserts the tuple `pred(terms...)` without
  /// materializing an Atom. Returns the atom's index and whether it was
  /// new. `terms` may alias this instance's own arena (re-inserting a
  /// view's tuple is safe — extents are immobile, so no growth can
  /// invalidate the source). The tuple's size must equal the arity
  /// every earlier tuple of `pred` had.
  std::pair<AtomIndex, bool> InsertTuple(PredicateId pred, TermSpan terms);

  /// Convenience wrapper over InsertTuple for materialized atoms.
  std::pair<AtomIndex, bool> Insert(const Atom& atom) {
    return InsertTuple(atom.predicate, atom.terms());
  }

  /// Batched insert — the apply phase of the parallel chase engine.
  /// Processes `tuples` (whose terms live in the caller's `buffer`)
  /// exactly as the equivalent InsertTuple loop would, in six stages:
  ///
  ///   1. hash every tuple (parallel over tuples);
  ///   2. create the segment of every predicate the batch touches
  ///      (serial — the parallel stages never resize the directory);
  ///   3. probe the dedup shards (parallel: each (segment, shard) pair
  ///      is hash-assigned to one worker, which walks the batch in
  ///      order, claiming slots for first occurrences with placeholder
  ///      marks and growing its own shards locally — no two workers
  ///      ever touch the same shard);
  ///   4. assign global AtomIndexes to the fresh tuples, serially in
  ///      batch order — the canonical cross-predicate merge order, the
  ///      exact numbering the sequential InsertTuple loop would have
  ///      produced;
  ///   5. commit per predicate (parallel: each segment is hash-assigned
  ///      to one worker, which appends its predicate's fresh tuples to
  ///      the segment arena in batch order, patches the claimed slots
  ///      to their global indexes, and extends the segment's atom list
  ///      and position index — disjoint segments, no shared writes);
  ///   6. merge serially in batch order: extend the global AtomRef
  ///      directory and run the caller's callback.
  ///
  /// `on_merged(pos, index, fresh)` is called once per tuple, in batch
  /// order, after that tuple's global index is final; returning false
  /// stops the merge — the not-yet-reported tuples are rolled back
  /// (segment arenas truncated, indexes popped, claimed slots scrubbed)
  /// so the instance is exactly as if the batch had ended there. While
  /// the callback runs, size()/atom() expose exactly the merged prefix;
  /// the per-predicate and position indexes may transiently include
  /// later tuples of the same batch (they are committed segment-side
  /// before the serial walk) — callers that need the pure prefix read
  /// through size(), as the chase engine does. Returns the number of
  /// tuples merged.
  ///
  /// Stages 1, 3 and 5 run on `pool` when it has more than one worker,
  /// inline otherwise; the result — indexes, arena bytes, dedup
  /// verdicts, callback sequence — is byte-identical either way, and
  /// identical to the sequential InsertTuple loop.
  std::size_t InsertTupleBatch(
      const Term* buffer, const std::vector<BatchTuple>& tuples,
      util::ThreadPool* pool,
      const std::function<bool(std::size_t, AtomIndex, bool)>& on_merged);

  bool ContainsTuple(PredicateId pred, TermSpan terms) const {
    AtomIndex ignored;
    return FindTuple(pred, terms, &ignored);
  }
  bool Contains(const Atom& atom) const {
    return ContainsTuple(atom.predicate, atom.terms());
  }

  /// Finds the index of a tuple by probing its segment; returns false
  /// if absent.
  bool FindTuple(PredicateId pred, TermSpan terms, AtomIndex* index) const;
  bool Find(const Atom& atom, AtomIndex* index) const {
    return FindTuple(atom.predicate, atom.terms(), index);
  }

  /// A view of the i-th atom (insertion order). Cheap; resolve freely.
  AtomView atom(AtomIndex i) const {
    const AtomRef& ref = refs_[i];
    return AtomView(TuplePtr(*segments_[ref.predicate], ref.offset),
                    ref.predicate, ref.arity);
  }

  /// Raw pointer to the i-th atom's argument tuple in its segment — the
  /// join kernel's per-probe accessor (one ref load + one segment/extent
  /// load). Extents are immobile, so this pointer is NOT invalidated by
  /// later inserts; it lives as long as the instance's storage.
  const Term* TupleData(AtomIndex i) const {
    const AtomRef& ref = refs_[i];
    return TuplePtr(*segments_[ref.predicate], ref.offset);
  }

  std::size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }

  /// All atom indexes with the given predicate (empty if none).
  const std::vector<AtomIndex>& AtomsWithPredicate(PredicateId pred) const;

  /// Arity of a predicate as stored here; 0 if `pred` has no atoms yet
  /// and no arity was recorded. A populated 0-ary predicate also
  /// returns 0 — ask AtomsWithPredicate(pred).empty() to distinguish
  /// "unseen" from "nullary".
  std::uint32_t PredicateArity(PredicateId pred) const {
    if (pred >= segments_.size() || segments_[pred] == nullptr) return 0;
    std::uint32_t arity = segments_[pred]->arity;
    return arity == kUnknownArity ? 0 : arity;
  }

  /// Turns on the per-predicate delta index used by the semi-naive chase
  /// engine: every atom inserted after this call is part of the "next"
  /// delta generation until AdvanceDelta() rotates it into the current
  /// one. Off by default so non-chase users (query evaluation,
  /// saturation) pay nothing — and because the generations are
  /// watermarks into the segments' insertion-ordered atom lists, even
  /// *on* it costs inserts nothing.
  void EnableDeltaTracking();
  bool delta_tracking_enabled() const { return track_delta_; }

  /// Rotates the delta generations: the atoms inserted since the last
  /// call become the current delta; the previous current delta is
  /// discarded. Returns the number of atoms in the new current delta.
  std::size_t AdvanceDelta();

  /// Atom indexes of the current delta with the given predicate (empty if
  /// none, or if delta tracking is disabled). Indexes are in insertion
  /// order, mirroring AtomsWithPredicate restricted to the last
  /// generation.
  const std::vector<AtomIndex>& DeltaAtomsWithPredicate(
      PredicateId pred) const;

  /// Number of atoms in the current delta generation.
  std::size_t delta_size() const { return delta_curr_size_; }

  /// All atom indexes with predicate `pred` and term `t` at position `pos`.
  const std::vector<AtomIndex>& AtomsWithTermAt(PredicateId pred,
                                                std::uint32_t pos,
                                                Term t) const;

  /// dom(I): the active domain (constants and nulls occurring in the
  /// instance). Maintained incrementally behind an atom-index
  /// watermark: each call only scans the tuples of atoms inserted
  /// since the previous call, so the total work over any insert/read
  /// interleaving is O(terms) — and inserts themselves pay nothing for
  /// it. (The watermark walks the global directory, not raw segment
  /// positions, so extent padding is never scanned.) Deterministic
  /// iteration order: first occurrence in the insertion sequence.
  /// (Catch-up mutates cache members; do not call concurrently on a
  /// shared Instance.)
  const std::vector<Term>& ActiveDomain() const;

  // Memory accounting ------------------------------------------------------

  /// Bytes of term storage the stored tuples occupy (used terms only:
  /// neither extent capacity nor per-segment boundary padding counts),
  /// so the number is deterministic for a given atom set regardless of
  /// extent geometry or the predicate partition — the `arena_bytes`
  /// chase counter.
  std::uint64_t arena_bytes() const {
    return arena_terms() * sizeof(Term);
  }

  /// Terms stored across all segments (used, not padding or capacity).
  std::uint64_t arena_terms() const {
    std::uint64_t total = 0;
    for (const auto& seg : segments_) {
      if (seg != nullptr) total += seg->used_terms;
    }
    return total;
  }

  /// Sorted multi-line rendering (stable across runs), for tests and goldens.
  std::string ToSortedString(const SymbolScope& symbols) const;

 private:
  static constexpr AtomIndex kEmptySlot = 0xffffffffu;
  /// During InsertTupleBatch's probe stage, a claimed-but-not-merged
  /// slot holds kPendingBit | batch position; the commit patches it to
  /// the real AtomIndex (or the rollback scrubs it on early stop).
  static constexpr AtomIndex kPendingBit = 0x80000000u;
  // Arity sentinel for segments that exist but have no tuples yet.
  static constexpr std::uint32_t kUnknownArity = 0xffffffffu;

  /// One dedup shard: an open-addressing table of AtomIndexes whose
  /// slot is taken from the LOW bits of the tuple hash (the shard id
  /// uses the high bits, so the two are independent).
  struct Shard {
    std::vector<AtomIndex> slots;
    std::size_t mask = 0;    // slots.size() - 1 (power of two)
    std::size_t entries = 0; // arena atoms + pending placeholders
  };

  // (position, term) key of a segment's position index (the predicate
  // is the segment).
  struct PosKey {
    std::uint32_t pos;
    Term term;
    bool operator==(const PosKey& o) const {
      return pos == o.pos && term == o.term;
    }
  };
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint32_t>{}(k.pos);
      util::HashCombine(&seed, std::hash<std::uint32_t>{}(k.term.bits()));
      return seed;
    }
  };

  /// Everything one predicate owns. Segments are heap-allocated and
  /// never move once created, so the parallel batch stages can touch
  /// disjoint segments while the directory vector itself stays frozen.
  struct Segment {
    // Extent-sharded term arena: tuples appended back to back, local
    // offsets, padding at extent boundaries (excluded from used_terms).
    std::vector<std::unique_ptr<Term[]>> extents;
    std::uint64_t raw_next = 0;    // next raw append offset (incl. padding)
    std::uint64_t used_terms = 0;  // stored terms (excl. padding)
    // Fixed arity, learned at the first insert.
    std::uint32_t arity = kUnknownArity;
    // This predicate's dedup shard group.
    Shard shards[kNumShards];
    // Global indexes of this predicate's atoms, insertion order — both
    // the AtomsWithPredicate list and the delta watermark's substrate.
    std::vector<AtomIndex> atoms;
    // (position, term) -> global indexes.
    std::unordered_map<PosKey, std::vector<AtomIndex>, PosKeyHash>
        by_position;
    // Two-generation delta as watermarks into `atoms`: the "next"
    // generation is atoms[delta_next_mark ..); AdvanceDelta materializes
    // it into delta_curr (the stable vector DeltaAtomsWithPredicate
    // returns) and advances the mark. No per-insert work.
    std::vector<AtomIndex> delta_curr;
    std::size_t delta_next_mark = 0;
  };

  static std::uint32_t ShardOf(std::size_t hash) {
    return static_cast<std::uint32_t>(
        hash >> (sizeof(std::size_t) * 8 - kShardBits));
  }

  /// Deterministic hash the batch stages assign segment (and
  /// segment-shard) ownership with: worker w owns predicate p iff
  /// (PredOwner(p) [+ shard]) % workers == w.
  static std::uint32_t PredOwner(PredicateId pred) {
    return static_cast<std::uint32_t>(util::Mix64(pred));
  }

  const Term* TuplePtr(const Segment& seg, std::uint64_t offset) const {
    return seg.extents[offset >> extent_log2_].get() +
           (offset & extent_mask_);
  }

  /// The segment of `pred`, created (empty) if absent.
  Segment& EnsureSegment(PredicateId pred);

  /// Learns (or checks) the fixed arity of a segment's predicate.
  void LearnArity(Segment* seg, std::uint32_t n) {
    if (seg->arity == kUnknownArity) seg->arity = n;
    assert(seg->arity == n && "predicate arity is fixed per Instance");
  }

  /// Probes `shard` (of `pred`'s segment) for (pred, terms) with its
  /// precomputed hash. Returns the slot holding the matching atom's
  /// index, or the empty slot where it would be inserted. `batch`
  /// non-null enables matching pending placeholders against the batch
  /// being inserted.
  std::size_t ProbeShard(const Shard& shard, PredicateId pred,
                         TermSpan terms, std::size_t hash,
                         const Term* buffer,
                         const std::vector<BatchTuple>* batch) const;

  /// Grows `shard` (doubling) and re-seats its entries: arena atoms
  /// first, then pending placeholders in batch order (their hashes are
  /// read from batch_hashes_) — the seating order that keeps an
  /// early-stopped batch scrubbable (no kept entry's probe chain ever
  /// crosses a later placeholder's slot).
  void GrowShard(Segment* seg, Shard* shard);

  /// Appends a tuple to `seg`'s arena (padding to the next extent if
  /// the current one cannot hold it whole) and returns its local
  /// offset. The source may alias the arena: extents are immobile and
  /// the target region is fresh, so the copy is safe either way.
  std::uint64_t AppendTuple(Segment* seg, const Term* src, std::uint32_t n);

  /// Segment-side bookkeeping shared by InsertTuple and the batch
  /// commit stage: records the freshly appended tuple (already in the
  /// segment arena at `offset`, already numbered `idx`) in the
  /// segment's atom list and position index.
  void RecordTuple(Segment* seg, AtomIndex idx, std::uint64_t offset,
                   std::uint32_t n);

  /// Undoes the segment-side commits of the batch tuples after `kept`
  /// (exclusive) when the merge callback stopped early: scrubs their
  /// dedup slots, pops their index entries, truncates their segment
  /// arenas. Walks backwards so every popped entry is at its list's
  /// tail.
  void RollBackBatch(const std::vector<BatchTuple>& tuples,
                     std::size_t kept);

  bool TupleAt(AtomIndex idx, PredicateId pred, TermSpan terms) const {
    const AtomRef& ref = refs_[idx];
    if (ref.predicate != pred) return false;
    return TermSpan(TuplePtr(*segments_[ref.predicate], ref.offset),
                    ref.arity) == terms;
  }

  // Extent geometry, shared by every segment.
  std::uint32_t extent_log2_;
  std::uint64_t extent_capacity_;
  std::uint64_t extent_mask_;

  // The per-predicate segment directory. Dense by PredicateId (ids are
  // interned small ints); a null entry means the predicate has never
  // been touched.
  std::vector<std::unique_ptr<Segment>> segments_;

  // The global-index indirection: AtomIndex -> (predicate, local
  // offset, arity). Assigned in insertion order across all predicates,
  // stable forever. This directory is the `size()` authority and the
  // only structure the serial merge stage appends to.
  std::vector<AtomRef> refs_;

  // Scratch for InsertTupleBatch (member so repeated batches reuse the
  // allocations): per-tuple hashes and probe verdicts.
  struct BatchVerdict {
    std::uint8_t kind = 0;   // 0 fresh, 1 existing, 2 dup-of-batch
    std::uint32_t ref = 0;   // existing AtomIndex / earlier batch pos
    std::uint64_t slot = 0;  // claimed slot (kind 0)
    std::uint64_t offset = 0;  // local arena offset once committed (kind 0)
  };
  std::vector<std::size_t> batch_hashes_;
  std::vector<BatchVerdict> batch_verdicts_;
  std::vector<AtomIndex> batch_indexes_;

  // Active-domain cache: `domain_` lists every distinct term of the
  // first `domain_scanned_` atoms' tuples in first-occurrence order
  // (deterministic), `domain_seen_` is the membership filter behind
  // it. Caught up lazily by ActiveDomain() so the insert fast path
  // never touches it; mutable because catch-up happens in the const
  // accessor.
  mutable std::vector<Term> domain_;
  mutable std::unordered_set<Term> domain_seen_;
  mutable AtomIndex domain_scanned_ = 0;

  // Delta tracking (semi-naive evaluation): the generations live in
  // the segments as watermarks; this is just the switch and the
  // current generation's total size.
  bool track_delta_ = false;
  std::size_t delta_curr_size_ = 0;

  static const std::vector<AtomIndex> kEmpty;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_INSTANCE_H_
