#ifndef NUCHASE_CORE_INSTANCE_H_
#define NUCHASE_CORE_INSTANCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"

namespace nuchase {
namespace core {

/// Index of an atom within an Instance, in insertion order.
using AtomIndex = std::uint32_t;

/// A (finite prefix of an) instance: a duplicate-free, insertion-ordered
/// set of atoms over constants and nulls, stored columnar ("VLog-style"):
///
///   - one flat term arena (`std::vector<Term>`) holds every argument
///     tuple back to back in insertion order — no per-atom heap
///     allocation, ~4 bytes per term plus a fixed per-atom handle;
///   - a directory of AtomRefs (predicate + arena offset) maps AtomIndex
///     to its tuple; arity is fixed per predicate, learned at the first
///     insert of that predicate, so a ref fully determines the row
///     extent;
///   - dedup is an open-addressing hash set of AtomIndexes keyed by
///     (predicate, tuple) that probes the arena directly — Contains /
///     Find / Insert never materialize an Atom;
///   - the per-predicate and per-(predicate, position, term) lists the
///     chase engine joins against, plus the two-generation delta index
///     of the semi-naive engine, are layered on top as index structures.
///
/// Atoms are exposed as AtomView handles (see core/atom.h): views stay
/// valid across later inserts (offsets are stable and the arena is
/// resolved through the vector object); only destroying or moving the
/// Instance invalidates them.
///
/// Thread safety: between mutations, concurrent const reads are safe
/// for the accessors the join kernel uses — FindTuple / ContainsTuple,
/// atom(), TupleData(), AtomsWithPredicate, AtomsWithTermAt,
/// DeltaAtomsWithPredicate, size(), PredicateArity — none of them
/// mutate anything, not even lazily. This is the contract the parallel
/// trigger engine relies on: during a collect region the instance is
/// frozen and every worker probes it read-only. Two exceptions are NOT
/// safe concurrently: ActiveDomain() (lazily catches a mutable cache
/// up) and, of course, any non-const method; no mutation may overlap
/// any read.
class Instance {
 public:
  Instance() = default;

  /// The fast path: inserts the tuple `pred(terms...)` without
  /// materializing an Atom. Returns the atom's index and whether it was
  /// new. `terms` may alias this instance's own arena (re-inserting a
  /// view's tuple is safe). The tuple's size must equal the arity every
  /// earlier tuple of `pred` had.
  std::pair<AtomIndex, bool> InsertTuple(PredicateId pred, TermSpan terms);

  /// Convenience wrapper over InsertTuple for materialized atoms.
  std::pair<AtomIndex, bool> Insert(const Atom& atom) {
    return InsertTuple(atom.predicate, atom.terms());
  }

  bool ContainsTuple(PredicateId pred, TermSpan terms) const {
    AtomIndex ignored;
    return FindTuple(pred, terms, &ignored);
  }
  bool Contains(const Atom& atom) const {
    return ContainsTuple(atom.predicate, atom.terms());
  }

  /// Finds the index of a tuple by probing the arena; returns false if
  /// absent.
  bool FindTuple(PredicateId pred, TermSpan terms, AtomIndex* index) const;
  bool Find(const Atom& atom, AtomIndex* index) const {
    return FindTuple(atom.predicate, atom.terms(), index);
  }

  /// A view of the i-th atom (insertion order). Cheap; resolve freely.
  AtomView atom(AtomIndex i) const {
    const AtomRef& ref = refs_[i];
    return AtomView(&arena_, ref.predicate, ref.offset, ref.arity);
  }

  /// Raw pointer to the i-th atom's argument tuple in the arena — the
  /// join kernel's per-probe accessor (a single dependent load).
  /// Invalidated by the next insert; see AtomView for the stable form.
  const Term* TupleData(AtomIndex i) const {
    return arena_.data() + refs_[i].offset;
  }

  std::size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }

  /// All atom indexes with the given predicate (empty if none).
  const std::vector<AtomIndex>& AtomsWithPredicate(PredicateId pred) const;

  /// Arity of a predicate as stored here; 0 if `pred` has no atoms yet
  /// and no arity was recorded. A populated 0-ary predicate also
  /// returns 0 — ask AtomsWithPredicate(pred).empty() to distinguish
  /// "unseen" from "nullary".
  std::uint32_t PredicateArity(PredicateId pred) const {
    if (pred >= pred_arity_.size()) return 0;
    std::uint32_t arity = pred_arity_[pred];
    return arity == kUnknownArity ? 0 : arity;
  }

  /// Turns on the per-predicate delta index used by the semi-naive chase
  /// engine: every subsequent Insert of a fresh atom is recorded in the
  /// "next" delta generation until AdvanceDelta() rotates it into the
  /// current one. Off by default so non-chase users (query evaluation,
  /// saturation) pay nothing.
  void EnableDeltaTracking() { track_delta_ = true; }
  bool delta_tracking_enabled() const { return track_delta_; }

  /// Rotates the delta generations: the atoms inserted since the last
  /// call become the current delta; the previous current delta is
  /// discarded. Returns the number of atoms in the new current delta.
  std::size_t AdvanceDelta();

  /// Atom indexes of the current delta with the given predicate (empty if
  /// none, or if delta tracking is disabled). Indexes are in insertion
  /// order, mirroring AtomsWithPredicate restricted to the last
  /// generation.
  const std::vector<AtomIndex>& DeltaAtomsWithPredicate(
      PredicateId pred) const;

  /// Number of atoms in the current delta generation.
  std::size_t delta_size() const { return delta_curr_size_; }

  /// All atom indexes with predicate `pred` and term `t` at position `pos`.
  const std::vector<AtomIndex>& AtomsWithTermAt(PredicateId pred,
                                                std::uint32_t pos,
                                                Term t) const;

  /// dom(I): the active domain (constants and nulls occurring in the
  /// instance). Maintained incrementally behind an arena watermark:
  /// each call only scans terms appended since the previous call, so
  /// the total work over any insert/read interleaving is O(arena) —
  /// and inserts themselves pay nothing for it. Deterministic
  /// iteration order: first occurrence in the insertion sequence.
  /// (Catch-up mutates cache members; do not call concurrently on a
  /// shared Instance.)
  const std::vector<Term>& ActiveDomain() const;

  // Memory accounting ------------------------------------------------------

  /// Bytes of term storage held in the arena (used, not capacity):
  /// deterministic for a given atom set, the `arena_bytes` chase counter.
  std::uint64_t arena_bytes() const {
    return static_cast<std::uint64_t>(arena_.size()) * sizeof(Term);
  }

  /// Terms stored in the arena.
  std::uint64_t arena_terms() const { return arena_.size(); }

  /// Sorted multi-line rendering (stable across runs), for tests and goldens.
  std::string ToSortedString(const SymbolScope& symbols) const;

 private:
  static constexpr AtomIndex kEmptySlot = 0xffffffffu;

  /// Probes the open-addressing table for (pred, terms) with its
  /// precomputed hash. Returns the slot holding the matching atom's
  /// index, or the empty slot where it would be inserted.
  std::size_t ProbeSlot(PredicateId pred, TermSpan terms,
                        std::size_t hash) const;

  /// Doubles the slot table and re-seats every atom (hashes are
  /// recomputed from the arena).
  void GrowSlots();

  bool TupleAt(AtomIndex idx, PredicateId pred, TermSpan terms) const {
    const AtomRef& ref = refs_[idx];
    if (ref.predicate != pred) return false;
    return TermSpan(arena_.data() + ref.offset, ref.arity) == terms;
  }

  // Columnar storage: the flat term arena plus the AtomIndex -> AtomRef
  // directory. Tuples are appended back to back; atom i's tuple lives at
  // [refs_[i].offset, refs_[i].offset + pred_arity_[refs_[i].predicate]).
  std::vector<Term> arena_;
  std::vector<AtomRef> refs_;
  // predicate -> fixed arity, learned at first insert (kUnknownArity
  // before that).
  static constexpr std::uint32_t kUnknownArity = 0xffffffffu;
  std::vector<std::uint32_t> pred_arity_;

  // Open-addressing dedup set over (predicate, arena tuple). Slots hold
  // AtomIndexes; keys are read straight from the arena on comparison.
  std::vector<AtomIndex> slots_;
  std::size_t slot_mask_ = 0;  // slots_.size() - 1 (power of two)

  // predicate -> atom indexes
  std::unordered_map<PredicateId, std::vector<AtomIndex>> by_predicate_;
  // (predicate, position) -> term -> atom indexes
  struct PosKey {
    PredicateId pred;
    std::uint32_t pos;
    Term term;
    bool operator==(const PosKey& o) const {
      return pred == o.pred && pos == o.pos && term == o.term;
    }
  };
  struct PosKeyHash {
    std::size_t operator()(const PosKey& k) const {
      std::size_t seed = std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.pred) << 32) | k.pos);
      util::HashCombine(&seed, std::hash<std::uint32_t>{}(k.term.bits()));
      return seed;
    }
  };
  std::unordered_map<PosKey, std::vector<AtomIndex>, PosKeyHash> by_position_;

  // Active-domain cache: `domain_` lists every distinct term of
  // arena_[0, domain_scanned_) in first-occurrence order
  // (deterministic), `domain_seen_` is the membership filter behind
  // it. Caught up lazily by ActiveDomain() so the insert fast path
  // never touches it; mutable because catch-up happens in the const
  // accessor.
  mutable std::vector<Term> domain_;
  mutable std::unordered_set<Term> domain_seen_;
  mutable std::uint64_t domain_scanned_ = 0;

  // Two-generation delta index (semi-naive evaluation): fresh inserts
  // land in delta_next_; AdvanceDelta() rotates next -> curr. Maintained
  // only when track_delta_ is set.
  bool track_delta_ = false;
  std::size_t delta_curr_size_ = 0;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_curr_;
  std::unordered_map<PredicateId, std::vector<AtomIndex>> delta_next_;
  std::size_t delta_next_size_ = 0;

  static const std::vector<AtomIndex> kEmpty;
};

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_INSTANCE_H_
