#include "core/atom.h"

#include <string>

namespace nuchase {
namespace core {

namespace {

std::string TupleToString(const SymbolScope& symbols, PredicateId predicate,
                          TermSpan terms) {
  std::string out = symbols.predicate_name(predicate);
  out += '(';
  for (std::uint32_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.TermToString(terms[i]);
  }
  out += ')';
  return out;
}

}  // namespace

std::string Atom::ToString(const SymbolScope& symbols) const {
  return TupleToString(symbols, predicate, terms());
}

std::string AtomView::ToString(const SymbolScope& symbols) const {
  return TupleToString(symbols, predicate_, terms());
}

}  // namespace core
}  // namespace nuchase
