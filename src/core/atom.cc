#include "core/atom.h"

#include <string>

namespace nuchase {
namespace core {

std::string Atom::ToString(const SymbolScope& symbols) const {
  std::string out = symbols.predicate_name(predicate);
  out += '(';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.TermToString(args[i]);
  }
  out += ')';
  return out;
}

}  // namespace core
}  // namespace nuchase
