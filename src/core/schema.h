#ifndef NUCHASE_CORE_SCHEMA_H_
#define NUCHASE_CORE_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "core/atom.h"
#include "core/symbol_table.h"

namespace nuchase {
namespace core {

/// A predicate position (R, i): the i-th argument slot of predicate R,
/// 0-based internally (the paper is 1-based). Positions are the nodes of
/// the dependency graph dg(Σ) (Section 6).
struct Position {
  PredicateId predicate = kInvalidPredicate;
  std::uint32_t index = 0;

  Position() = default;
  Position(PredicateId pred, std::uint32_t idx)
      : predicate(pred), index(idx) {}

  bool operator==(const Position& o) const {
    return predicate == o.predicate && index == o.index;
  }
  bool operator!=(const Position& o) const { return !(*this == o); }
  bool operator<(const Position& o) const {
    if (predicate != o.predicate) return predicate < o.predicate;
    return index < o.index;
  }
};

struct PositionHash {
  std::size_t operator()(const Position& p) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.predicate) << 32) | p.index);
  }
};

/// pos(S): all positions of the given predicates (Section 2).
std::vector<Position> AllPositions(const std::vector<PredicateId>& predicates,
                                   const SymbolTable& symbols);

/// pos(α, x): positions of atom α at which term x occurs (Section 2).
std::vector<Position> PositionsOfTerm(const Atom& atom, Term term);

/// var(α): the set of distinct variables occurring in α.
std::set<Term> VariablesOf(const Atom& atom);

/// var over a set of atoms.
std::set<Term> VariablesOf(const std::vector<Atom>& atoms);

}  // namespace core
}  // namespace nuchase

#endif  // NUCHASE_CORE_SCHEMA_H_
