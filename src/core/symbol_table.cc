#include "core/symbol_table.h"

#include <cassert>

namespace nuchase {
namespace core {

util::StatusOr<PredicateId> SymbolTable::InternPredicate(
    const std::string& name, std::uint32_t arity) {
  auto it = predicate_by_name_.find(name);
  if (it != predicate_by_name_.end()) {
    if (predicates_[it->second].arity != arity) {
      return util::Status::InvalidArgument(
          "predicate '" + name + "' re-declared with arity " +
          std::to_string(arity) + " (was " +
          std::to_string(predicates_[it->second].arity) + ")");
    }
    return it->second;
  }
  if (arity == 0) {
    // The paper's schemas have arity > 0 except in the PAE problem, whose
    // 0-ary atoms we support as well.
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{name, arity});
  predicate_by_name_.emplace(name, id);
  return id;
}

util::StatusOr<PredicateId> SymbolTable::FindPredicate(
    const std::string& name) const {
  auto it = predicate_by_name_.find(name);
  if (it == predicate_by_name_.end()) {
    return util::Status::NotFound("predicate '" + name + "' not declared");
  }
  return it->second;
}

util::StatusOr<Term> SymbolTable::InternConstant(const std::string& name) {
  auto it = constant_by_name_.find(name);
  if (it != constant_by_name_.end()) {
    return Term(TermKind::kConstant, it->second);
  }
  if (constant_names_.size() > Term::kIndexMask) {
    return util::Status::ResourceExhausted(
        "constant id space exhausted (2^30 distinct constants per "
        "symbol table)");
  }
  std::uint32_t idx = static_cast<std::uint32_t>(constant_names_.size());
  constant_names_.push_back(name);
  constant_by_name_.emplace(name, idx);
  return Term(TermKind::kConstant, idx);
}

Term SymbolTable::InternVariable(const std::string& name) {
  auto it = variable_by_name_.find(name);
  if (it != variable_by_name_.end()) {
    return Term(TermKind::kVariable, it->second);
  }
  assert(variable_names_.size() <= Term::kIndexMask &&
         "variable id space exhausted");
  std::uint32_t idx = static_cast<std::uint32_t>(variable_names_.size());
  variable_names_.push_back(name);
  variable_by_name_.emplace(name, idx);
  return Term(TermKind::kVariable, idx);
}

const std::string& SymbolTable::constant_name(Term t) const {
  assert(t.IsConstant());
  return constant_names_[t.index()];
}

const std::string& SymbolTable::variable_name(Term t) const {
  assert(t.IsVariable());
  return variable_names_[t.index()];
}

util::StatusOr<Term> SymbolTable::MakeNull(std::uint32_t depth) {
  if (null_depths_.size() > Term::kIndexMask) {
    return util::Status::ResourceExhausted(
        "labelled-null id space exhausted (2^30 nulls per symbol table)");
  }
  std::uint32_t idx = static_cast<std::uint32_t>(null_depths_.size());
  null_depths_.push_back(depth);
  return Term(TermKind::kNull, idx);
}

std::uint32_t SymbolTable::depth(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return 0;
    case TermKind::kNull:
      return null_depths_[t.index()];
    case TermKind::kVariable:
      assert(false && "depth() called on a variable");
      return 0;
  }
  return 0;
}

std::string SymbolTable::TermToString(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return constant_names_[t.index()];
    case TermKind::kNull:
      return "_:n" + std::to_string(t.index());
    case TermKind::kVariable:
      return variable_names_[t.index()];
  }
  return "?";
}

util::StatusOr<Term> SymbolOverlay::MakeNull(std::uint32_t depth) {
  std::uint64_t next =
      static_cast<std::uint64_t>(base_nulls_) + null_depths_.size();
  if (next > Term::kIndexMask) {
    return util::Status::ResourceExhausted(
        "labelled-null id space exhausted (2^30 nulls per symbol scope)");
  }
  std::uint32_t idx = static_cast<std::uint32_t>(next);
  null_depths_.push_back(depth);
  return Term(TermKind::kNull, idx);
}

std::uint32_t SymbolOverlay::depth(Term t) const {
  if (t.IsNull() && t.index() >= base_nulls_) {
    return null_depths_[t.index() - base_nulls_];
  }
  return base_->depth(t);
}

std::string SymbolOverlay::TermToString(Term t) const {
  // Overlay nulls print exactly as base nulls would ("_:n<index>"), so a
  // run over an overlay renders byte-identically to the same run over a
  // privately-owned table.
  if (t.IsNull()) return "_:n" + std::to_string(t.index());
  return base_->TermToString(t);
}

}  // namespace core
}  // namespace nuchase
