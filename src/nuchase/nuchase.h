#ifndef NUCHASE_NUCHASE_H_
#define NUCHASE_NUCHASE_H_

/// nuchase public facade — parse once, run many, observe everything.
///
///   #include "nuchase/nuchase.h"
///
///   auto program = nuchase::api::Program::Parse(
///       "Emp(alice, sales).  Emp(x, d) -> Dept(d).");
///   if (!program.ok()) { /* program.status() */ }
///
///   // Cheap per-run handles over the shared, immutable artifact; safe
///   // to create on N threads at once against one `const Program`.
///   nuchase::api::Session session(*program);
///   auto run = session.Chase();
///   std::cout << run->ToSortedString();
///
/// The facade exposes the paper's machinery (Calautti–Gottlob–Pieris,
/// PODS 2022) behind three nouns:
///
///   api::Program  — immutable parse/validate/classify/join-plan artifact
///                   carrying the static analysis (lint diagnostics,
///                   memoized acyclicity ladder + class decision)
///   api::Session  — per-run options + Chase/Decide/Classify/Analyze/
///                   Advise
///   api::ChaseObserver / api::CancelToken — progress and interruption
///
/// Lower-level layers (core, tgd, chase, termination, ...) remain public
/// headers for callers that need the internals; the facade never
/// requires threading a raw SymbolTable* through application code.

#include "analysis/diagnostics.h"
#include "api/program.h"
#include "api/session.h"
#include "chase/chase.h"
#include "chase/observer.h"
#include "util/status.h"

namespace nuchase {
namespace api {

// The observation/interruption vocabulary is defined in the chase layer
// (the engine polls it); re-exported here so facade users write
// api::ChaseObserver / api::CancelToken throughout.
using chase::CancelToken;
using chase::ChaseObserver;
using chase::ChaseOutcome;
using chase::ChaseStats;
using chase::ChaseVariant;
using chase::RoundProgress;

using util::Status;
using util::StatusCode;
template <typename T>
using StatusOr = util::StatusOr<T>;

}  // namespace api
}  // namespace nuchase

#endif  // NUCHASE_NUCHASE_H_
