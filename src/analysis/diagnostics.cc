#include "analysis/diagnostics.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/schema.h"

namespace nuchase {
namespace analysis {

namespace {

using core::PredicateId;
using core::Term;
using tgd::RuleIndex;
using tgd::Tgd;

/// NU006 is quadratic in candidate rule pairs; past this many rules the
/// check is skipped (documented in docs/analysis.md).
constexpr std::size_t kMaxRulesForRestraintCycles = 512;

std::string RuleRef(RuleIndex r) { return "#" + std::to_string(r); }

/// Union of head predicates over Σ.
std::unordered_set<PredicateId> HeadPredicates(const tgd::TgdSet& tgds) {
  std::unordered_set<PredicateId> out;
  for (const Tgd& rule : tgds.tgds()) {
    for (const core::Atom& atom : rule.head()) out.insert(atom.predicate);
  }
  return out;
}

/// Sorted distinct body predicates of one rule.
std::vector<PredicateId> BodyPredicates(const Tgd& rule) {
  std::vector<PredicateId> out;
  for (const core::Atom& atom : rule.body()) out.push_back(atom.predicate);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// NU001: the head shares no variable with the body. A semi-oblivious
// trigger is keyed by its frontier images, so such a rule fires at most
// once per run no matter how many body matches exist.
void CheckDisconnectedHeads(const tgd::TgdSet& tgds,
                            std::vector<Diagnostic>* out) {
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    if (!tgds.tgd(r).frontier().empty()) continue;
    out->push_back(Diagnostic{
        "NU001", Severity::kWarning, static_cast<int>(r), "",
        "rule " + RuleRef(r) +
            ": head shares no variable with the body (empty frontier); "
            "the rule fires at most once per run, detached from the "
            "data it matched"});
  }
}

// NU002: a body predicate with no facts and no deriving rule — the rule
// can never fire on this database.
void CheckUnderivableBodies(
    const tgd::TgdSet& tgds, const core::SymbolTable& symbols,
    const std::unordered_set<PredicateId>& db_preds,
    const std::unordered_set<PredicateId>& head_preds,
    std::vector<Diagnostic>* out) {
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    for (PredicateId p : BodyPredicates(tgds.tgd(r))) {
      if (db_preds.count(p) != 0 || head_preds.count(p) != 0) continue;
      out->push_back(Diagnostic{
          "NU002", Severity::kWarning, static_cast<int>(r),
          symbols.predicate_name(p),
          "rule " + RuleRef(r) + ": body predicate '" +
              symbols.predicate_name(p) +
              "' has no facts and no rule derives it; the rule can "
              "never fire"});
    }
  }
}

// NU003: facts loaded for a predicate no rule body ever reads.
void CheckUnreadFacts(const tgd::TgdSet& tgds,
                      const core::SymbolTable& symbols,
                      const std::unordered_set<PredicateId>& db_preds,
                      std::vector<Diagnostic>* out) {
  if (tgds.empty()) return;  // A pure-fact program reads nothing.
  std::unordered_set<PredicateId> read;
  for (const Tgd& rule : tgds.tgds()) {
    for (const core::Atom& atom : rule.body()) read.insert(atom.predicate);
  }
  std::vector<PredicateId> unread;
  for (PredicateId p : db_preds) {
    if (read.count(p) == 0) unread.push_back(p);
  }
  std::sort(unread.begin(), unread.end());
  for (PredicateId p : unread) {
    out->push_back(Diagnostic{
        "NU003", Severity::kInfo, -1, symbols.predicate_name(p),
        "facts for '" + symbols.predicate_name(p) +
            "' are never read by any rule body"});
  }
}

// NU004: dead rules under the predicate-level fixpoint — rules whose
// body predicates can never all be populated, starting from D.
void CheckDeadRules(const tgd::TgdSet& tgds,
                    const std::unordered_set<PredicateId>& db_preds,
                    std::vector<Diagnostic>* out) {
  std::unordered_set<PredicateId> derivable = db_preds;
  std::vector<bool> alive(tgds.size(), false);
  bool grew = true;
  while (grew) {
    grew = false;
    for (RuleIndex r = 0; r < tgds.size(); ++r) {
      if (alive[r]) continue;
      const Tgd& rule = tgds.tgd(r);
      bool fed = true;
      for (const core::Atom& atom : rule.body()) {
        if (derivable.count(atom.predicate) == 0) {
          fed = false;
          break;
        }
      }
      if (!fed) continue;
      alive[r] = true;
      grew = true;
      for (const core::Atom& atom : rule.head()) {
        derivable.insert(atom.predicate);
      }
    }
  }
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    if (alive[r]) continue;
    out->push_back(Diagnostic{
        "NU004", Severity::kWarning, static_cast<int>(r), "",
        "rule " + RuleRef(r) +
            ": dead rule — no chase of this database can ever populate "
            "every body predicate"});
  }
}

// NU005: rules identical up to variable renaming (atom order respected).
void CheckDuplicateRules(const tgd::TgdSet& tgds,
                         std::vector<Diagnostic>* out) {
  // Canonical key: atoms in given order, variables densely renamed in
  // first-occurrence order (body first, then head).
  auto canonical = [](const Tgd& rule) {
    std::vector<std::uint32_t> key;
    std::unordered_map<Term, std::uint32_t> rename;
    auto add = [&](const std::vector<core::Atom>& atoms) {
      for (const core::Atom& atom : atoms) {
        key.push_back(atom.predicate);
        key.push_back(static_cast<std::uint32_t>(atom.terms().size()));
        for (Term t : atom.terms()) {
          auto it = rename
                        .emplace(t, static_cast<std::uint32_t>(
                                        rename.size()))
                        .first;
          key.push_back(it->second);
        }
      }
    };
    add(rule.body());
    key.push_back(0xffffffffu);  // body/head separator
    add(rule.head());
    return key;
  };
  std::map<std::vector<std::uint32_t>, RuleIndex> seen;
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    auto [it, fresh] = seen.emplace(canonical(tgds.tgd(r)), r);
    if (fresh) continue;
    out->push_back(Diagnostic{
        "NU005", Severity::kWarning, static_cast<int>(r), "",
        "rule " + RuleRef(r) + ": duplicate of rule " +
            RuleRef(it->second) +
            " (identical up to variable renaming); it adds nothing"});
  }
}

// NU006: mutual-restraint clusters — SCCs (≥ 2 rules) of the Restrains
// digraph, where the restricted chase's restraint-guided firing order
// has no consistent prioritization and falls back to Σ-order.
void CheckRestraintCycles(const tgd::TgdSet& tgds,
                          const graph::RelianceGraph* reliances,
                          std::vector<Diagnostic>* out) {
  const std::size_t n = tgds.size();
  if (reliances == nullptr || n < 2 || n > kMaxRulesForRestraintCycles) {
    return;
  }
  // Candidate pairs share a head predicate; Restrains confirms by
  // unification.
  std::vector<std::vector<PredicateId>> heads(n);
  for (RuleIndex r = 0; r < n; ++r) {
    for (const core::Atom& atom : tgds.tgd(r).head()) {
      heads[r].push_back(atom.predicate);
    }
    std::sort(heads[r].begin(), heads[r].end());
  }
  auto share_head = [&](RuleIndex r, RuleIndex s) {
    std::size_t i = 0, j = 0;
    while (i < heads[r].size() && j < heads[s].size()) {
      if (heads[r][i] == heads[s][j]) return true;
      heads[r][i] < heads[s][j] ? ++i : ++j;
    }
    return false;
  };
  std::vector<std::vector<RuleIndex>> edges(n);
  for (RuleIndex r = 0; r < n; ++r) {
    for (RuleIndex s = 0; s < n; ++s) {
      if (r != s && share_head(r, s) && reliances->Restrains(r, s)) {
        edges[r].push_back(s);
      }
    }
  }
  // Iterative Tarjan; components of ≥ 2 rules are the findings,
  // reported once each, smallest member first.
  std::vector<std::uint32_t> index(n, 0), low(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<RuleIndex> stack;
  std::vector<std::vector<RuleIndex>> components;
  std::uint32_t counter = 1;
  struct Frame {
    RuleIndex node;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (RuleIndex root = 0; root < n; ++root) {
    if (visited[root]) continue;
    frames.push_back(Frame{root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge == 0) {
        visited[f.node] = true;
        index[f.node] = low[f.node] = counter++;
        stack.push_back(f.node);
        on_stack[f.node] = true;
      }
      if (f.edge < edges[f.node].size()) {
        const RuleIndex next = edges[f.node][f.edge++];
        if (!visited[next]) {
          frames.push_back(Frame{next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], index[next]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          std::vector<RuleIndex> comp;
          while (true) {
            const RuleIndex m = stack.back();
            stack.pop_back();
            on_stack[m] = false;
            comp.push_back(m);
            if (m == f.node) break;
          }
          if (comp.size() >= 2) {
            std::sort(comp.begin(), comp.end());
            components.push_back(std::move(comp));
          }
        }
        const RuleIndex done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  std::sort(components.begin(), components.end());
  for (const std::vector<RuleIndex>& comp : components) {
    std::string members;
    for (RuleIndex r : comp) {
      if (!members.empty()) members += ", ";
      members += RuleRef(r);
    }
    out->push_back(Diagnostic{
        "NU006", Severity::kInfo, static_cast<int>(comp.front()), "",
        "rules " + members +
            " restrain each other in a cycle; --restraint-order falls "
            "back to Σ-order inside this cluster"});
  }
}

// NU007: the body's variable-sharing graph is disconnected — the rule
// joins a cartesian product of independent atom groups.
void CheckCartesianBodies(const tgd::TgdSet& tgds,
                          std::vector<Diagnostic>* out) {
  for (RuleIndex r = 0; r < tgds.size(); ++r) {
    const Tgd& rule = tgds.tgd(r);
    const std::size_t k = rule.body().size();
    if (k < 2) continue;
    // Union-find over body atoms, merged through shared variables.
    std::vector<std::size_t> parent(k);
    for (std::size_t i = 0; i < k; ++i) parent[i] = i;
    auto find = [&parent](std::size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::unordered_map<Term, std::size_t> owner;
    for (std::size_t i = 0; i < k; ++i) {
      for (Term t : core::VariablesOf(rule.body()[i])) {
        auto [it, fresh] = owner.emplace(t, i);
        if (!fresh) parent[find(i)] = find(it->second);
      }
    }
    std::set<std::size_t> roots;
    for (std::size_t i = 0; i < k; ++i) roots.insert(find(i));
    if (roots.size() < 2) continue;
    out->push_back(Diagnostic{
        "NU007", Severity::kWarning, static_cast<int>(r), "",
        "rule " + RuleRef(r) + ": body is a cartesian product of " +
            std::to_string(roots.size()) +
            " variable-disjoint atom groups; every group multiplies "
            "the trigger count"});
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<DiagnosticSpec>& DiagnosticCatalog() {
  static const std::vector<DiagnosticSpec> catalog = {
      {"NU000", Severity::kError,
       "the program text failed to parse (linter only)"},
      {"NU001", Severity::kWarning,
       "head shares no variable with the body (empty frontier)"},
      {"NU002", Severity::kWarning,
       "body predicate has no facts and no deriving rule"},
      {"NU003", Severity::kInfo,
       "facts for a predicate no rule body reads"},
      {"NU004", Severity::kWarning,
       "dead rule: body predicates can never all be populated"},
      {"NU005", Severity::kWarning,
       "duplicate rule (identical up to variable renaming)"},
      {"NU006", Severity::kInfo,
       "rules restraining each other in a cycle"},
      {"NU007", Severity::kWarning,
       "body is a cartesian product of variable-disjoint atom groups"},
  };
  return catalog;
}

std::vector<Diagnostic> LintProgram(const tgd::TgdSet& tgds,
                                    const core::Database& db,
                                    const core::SymbolTable& symbols,
                                    const graph::RelianceGraph* reliances) {
  std::vector<Diagnostic> out;
  const std::unordered_set<PredicateId> db_preds = db.Predicates();
  const std::unordered_set<PredicateId> head_preds = HeadPredicates(tgds);
  CheckDisconnectedHeads(tgds, &out);
  CheckUnderivableBodies(tgds, symbols, db_preds, head_preds, &out);
  CheckUnreadFacts(tgds, symbols, db_preds, &out);
  CheckDeadRules(tgds, db_preds, &out);
  CheckDuplicateRules(tgds, &out);
  CheckRestraintCycles(tgds, reliances, &out);
  CheckCartesianBodies(tgds, &out);
  return out;
}

}  // namespace analysis
}  // namespace nuchase
