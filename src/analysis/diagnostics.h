#ifndef NUCHASE_ANALYSIS_DIAGNOSTICS_H_
#define NUCHASE_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/symbol_table.h"
#include "graph/reliance.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace analysis {

enum class Severity {
  kInfo,     ///< Worth knowing; never dirties nuchase_lint's exit code.
  kWarning,  ///< Probable authoring mistake; exit code 1 in the linter.
  kError,    ///< The program is unusable (parse failure).
};

const char* SeverityName(Severity severity);

/// One lint finding with a stable machine-readable identity. IDs are
/// append-only and never reused; docs/analysis.md catalogs every ID and
/// a ctest cross-checks the two lists.
struct Diagnostic {
  std::string id;  ///< "NU001", ...
  Severity severity = Severity::kWarning;
  /// 0-based rule index in Σ the finding anchors to, or -1 for
  /// program-level findings.
  int rule = -1;
  /// Predicate the finding is about, when one exists ("" otherwise).
  std::string predicate;
  /// Human-readable, deterministic explanation.
  std::string message;
};

/// Catalog entry for one diagnostic ID — the linter's --list-ids output
/// and the docs cross-check are generated from this table.
struct DiagnosticSpec {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every diagnostic ID the analysis can emit, in ID order. NU000 is
/// reserved for the linter's parse-failure report; LintProgram itself
/// only emits NU001 and up (it requires a parsed program).
const std::vector<DiagnosticSpec>& DiagnosticCatalog();

/// Static rule-set lint over a parsed (D, Σ). Pure and deterministic:
/// findings are emitted in catalog-ID order, then rule order, so equal
/// inputs render byte-identical reports. `reliances` (borrowed, may be
/// null) enables the restraint-cycle check; all findings are relative
/// to the program's own database D where data matters (documented per
/// check in docs/analysis.md).
std::vector<Diagnostic> LintProgram(const tgd::TgdSet& tgds,
                                    const core::Database& db,
                                    const core::SymbolTable& symbols,
                                    const graph::RelianceGraph* reliances);

}  // namespace analysis
}  // namespace nuchase

#endif  // NUCHASE_ANALYSIS_DIAGNOSTICS_H_
