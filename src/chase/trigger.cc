#include "chase/trigger.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace nuchase {
namespace chase {

using core::Atom;
using core::AtomIndex;
using core::Instance;
using core::Term;

Atom ApplySubstitution(const Atom& atom, const Substitution& h) {
  Atom out;
  out.predicate = atom.predicate;
  ApplySubstitutionInto(atom, h, &out.args);
  return out;
}

void ApplySubstitutionInto(const Atom& atom, const Substitution& h,
                           std::vector<Term>* out) {
  out->clear();
  out->reserve(atom.args.size());
  for (Term t : atom.args) {
    if (t.IsVariable()) {
      auto it = h.find(t);
      if (it != h.end()) t = it->second;
    }
    out->push_back(t);
  }
}

std::vector<std::size_t> PlanJoinOrder(const std::vector<Atom>& body,
                                       std::size_t seed_pos) {
  std::vector<std::size_t> order;
  order.reserve(body.size());
  std::vector<bool> placed(body.size(), false);
  std::unordered_set<Term> bound;

  auto place = [&](std::size_t i) {
    order.push_back(i);
    placed[i] = true;
    for (Term t : body[i].args) {
      if (t.IsVariable()) bound.insert(t);
    }
  };
  place(seed_pos);

  while (order.size() < body.size()) {
    std::size_t best = body.size();
    std::size_t best_shared = 0;
    std::size_t best_free = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (placed[i]) continue;
      std::size_t shared = 0;
      std::size_t free_vars = 0;
      for (Term t : body[i].args) {
        if (!t.IsVariable()) continue;
        if (bound.count(t)) {
          ++shared;
        } else {
          ++free_vars;
        }
      }
      if (best == body.size() || shared > best_shared ||
          (shared == best_shared && free_vars < best_free)) {
        best = i;
        best_shared = shared;
        best_free = free_vars;
      }
    }
    place(best);
  }
  return order;
}

bool HomomorphismFinder::Match(const Atom& pattern,
                               const core::Term* fact_terms,
                               Substitution* h,
                               std::vector<Term>* trail) const {
  if (probe_counter_ != nullptr) ++*probe_counter_;
  if (interrupt_ != nullptr && (++interrupt_tick_ & 1023u) == 0 &&
      (*interrupt_)()) {
    interrupted_ = true;
  }
  const std::size_t trail_start = trail->size();
  for (std::size_t i = 0; i < pattern.args.size(); ++i) {
    Term p = pattern.args[i];
    Term f = fact_terms[i];
    if (p.IsVariable()) {
      auto it = h->find(p);
      if (it == h->end()) {
        h->emplace(p, f);
        trail->push_back(p);
      } else if (it->second != f) {
        // Undo bindings made during this match attempt.
        for (std::size_t k = trail->size(); k > trail_start; --k) {
          h->erase((*trail)[k - 1]);
        }
        trail->resize(trail_start);
        return false;
      }
    } else if (p != f) {  // constant or null: must match exactly
      for (std::size_t k = trail->size(); k > trail_start; --k) {
        h->erase((*trail)[k - 1]);
      }
      trail->resize(trail_start);
      return false;
    }
  }
  return true;
}

void HomomorphismFinder::Enumerate(
    const std::vector<Atom>& atoms, const Substitution& initial,
    int seed_atom, AtomIndex seed_target,
    const std::function<bool(const Substitution&)>& cb) const {
  Substitution h = initial;
  std::vector<bool> done(atoms.size(), false);
  std::vector<Term> trail;

  if (seed_atom >= 0) {
    core::AtomView fact = instance_.atom(seed_target);
    if (atoms[static_cast<std::size_t>(seed_atom)].predicate !=
        fact.predicate()) {
      return;
    }
    if (!Match(atoms[static_cast<std::size_t>(seed_atom)],
               instance_.TupleData(seed_target), &h, &trail)) {
      return;
    }
    done[static_cast<std::size_t>(seed_atom)] = true;
  }

  std::size_t remaining = atoms.size() - (seed_atom >= 0 ? 1 : 0);
  Recurse(atoms, &done, remaining, &h, cb);
}

void HomomorphismFinder::Enumerate(
    const std::vector<Atom>& atoms,
    const std::function<bool(const Substitution&)>& cb) const {
  Enumerate(atoms, Substitution{}, -1, 0, cb);
}

std::size_t HomomorphismFinder::RestrictedCount(
    std::size_t i, const std::vector<AtomIndex>& candidates) const {
  if (old_only_ == nullptr || i >= old_only_->size() ||
      !(*old_only_)[i]) {
    return candidates.size();
  }
  // Candidate lists are ascending in insertion order, so the old atoms
  // form a prefix.
  return static_cast<std::size_t>(
      std::lower_bound(candidates.begin(), candidates.end(), old_limit_) -
      candidates.begin());
}

bool HomomorphismFinder::Recurse(
    const std::vector<Atom>& atoms, std::vector<bool>* done,
    std::size_t remaining, Substitution* h,
    const std::function<bool(const Substitution&)>& cb) const {
  if (interrupted_) return false;
  if (remaining == 0) return cb(*h);

  // Pick the undone atom with the smallest candidate list: for every bound
  // position use the (predicate, position, term) index; fall back to the
  // per-predicate list.
  std::size_t best = atoms.size();
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  const std::vector<AtomIndex>* best_candidates = nullptr;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if ((*done)[i]) continue;
    const Atom& a = atoms[i];
    const std::vector<AtomIndex>* candidates =
        &instance_.AtomsWithPredicate(a.predicate);
    std::size_t count = RestrictedCount(i, *candidates);
    if (use_position_index_) {
      for (std::uint32_t pos = 0; pos < a.arity(); ++pos) {
        Term t = a.args[pos];
        if (t.IsVariable()) {
          auto it = h->find(t);
          if (it == h->end()) continue;
          t = it->second;
        }
        const std::vector<AtomIndex>& narrowed =
            instance_.AtomsWithTermAt(a.predicate, pos, t);
        std::size_t narrowed_count = RestrictedCount(i, narrowed);
        if (narrowed_count < count) {
          count = narrowed_count;
          candidates = &narrowed;
        }
      }
    }
    if (count < best_count) {
      best_count = count;
      best = i;
      best_candidates = candidates;
      if (count == 0) break;
    }
  }
  if (best == atoms.size()) return true;
  if (best_count == 0) return true;  // no match for some atom: dead branch

  (*done)[best] = true;
  std::vector<Term> trail;
  for (std::size_t c = 0; c < best_count; ++c) {
    AtomIndex idx = (*best_candidates)[c];
    trail.clear();
    bool matched = Match(atoms[best], instance_.TupleData(idx), h, &trail);
    if (interrupted_) {
      for (std::size_t k = trail.size(); k > 0; --k) {
        h->erase(trail[k - 1]);
      }
      (*done)[best] = false;
      return false;
    }
    if (!matched) continue;
    bool keep_going = Recurse(atoms, done, remaining - 1, h, cb);
    for (std::size_t k = trail.size(); k > 0; --k) h->erase(trail[k - 1]);
    if (!keep_going) {
      (*done)[best] = false;
      return false;
    }
  }
  (*done)[best] = false;
  return true;
}

}  // namespace chase
}  // namespace nuchase
