#ifndef NUCHASE_CHASE_CHASE_H_
#define NUCHASE_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include "chase/forest.h"
#include "chase/observer.h"
#include "core/database.h"
#include "core/instance.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace graph {
class RelianceGraph;
}  // namespace graph
namespace chase {

/// Which chase procedure to run. The paper studies the semi-oblivious
/// version (Definition 3.1); the other two are provided for comparison —
/// they bracket it: every oblivious-terminating pair is semi-oblivious-
/// terminating, and every semi-oblivious-terminating pair is restricted-
/// terminating (CT_obl ⊆ CT_so ⊆ CT_res pointwise in D), and the
/// materialized sizes shrink in the same direction.
enum class ChaseVariant {
  /// Definition 3.1: nulls named ⊥^z_{σ, h|fr(σ)}; each (σ, h|fr(σ))
  /// fires at most once. Unique result [20]; the RDBMS-friendly chase
  /// of [6].
  kSemiOblivious,
  /// Nulls named ⊥^z_{σ, h}: each (σ, h) fires once, even when two
  /// homomorphisms agree only on the frontier. Produces a superset of
  /// the semi-oblivious result (up to null renaming).
  kOblivious,
  /// The standard chase: (σ, h) fires only if no extension h' ⊇ h|fr(σ)
  /// already maps head(σ) into the instance. Result depends on the
  /// firing order (ours: round-based, TGDs in Σ-order); the
  /// RAM-friendly chase of [6, 21].
  kRestricted,
};

const char* ChaseVariantName(ChaseVariant variant);

/// Precomputed per-TGD join plans for the semi-naive engine: for every
/// body position p, the body reordered by PlanJoinOrder(body, p) so the
/// delta-seeded atom comes first and each following atom is maximally
/// connected to the prefix. `old_flags[p]` (aligned with the reordered
/// body) marks the atoms whose original position precedes p: restricting
/// those to pre-delta atoms makes every homomorphism enumerable from
/// exactly one seed position — its first (in body order) delta atom.
struct JoinPlan {
  /// reordered_bodies[p] is the body permuted with position p first.
  std::vector<std::vector<core::Atom>> reordered_bodies;
  std::vector<std::vector<bool>> old_flags;
};

/// One JoinPlan per TGD, aligned with TgdSet order.
using JoinPlanSet = std::vector<JoinPlan>;

/// Plans the joins of every TGD in Σ once. The plans depend only on Σ, so
/// callers chasing the same rule set repeatedly (api::Program sessions)
/// compute them a single time and pass them via ChaseOptions::plans;
/// RunChase plans per run when none are supplied.
JoinPlanSet PlanJoins(const tgd::TgdSet& tgds);

/// The "unset" sentinel for ChaseOptions::num_threads: sequential,
/// except that the NUCHASE_THREADS environment variable may raise it.
/// Any explicitly chosen count (including an explicit 1 = sequential)
/// beats the environment.
inline constexpr std::uint32_t kNumThreadsDefault = 0xffffffffu;

/// Budgets and switches for a chase run. The semi-oblivious chase of a
/// non-terminating pair (D, Σ) is infinite, so every run is bounded by at
/// least the atom budget; deciders additionally use the depth budget
/// (Lemmas 6.2 / 7.4 / 8.2 make exceeding d_C(Σ) a proof of
/// non-termination for the guarded classes).
struct ChaseOptions {
  /// Which chase procedure to run.
  ChaseVariant variant = ChaseVariant::kSemiOblivious;
  /// Stop (outcome kAtomLimit) once the instance holds more atoms.
  std::uint64_t max_atoms = 10'000'000;
  /// If nonzero, stop (outcome kDepthLimit) once a null of depth greater
  /// than this is created.
  std::uint32_t max_depth = 0;
  /// If nonzero, stop (outcome kRoundLimit) after this many breadth-first
  /// rounds.
  std::uint64_t max_rounds = 0;
  /// Record the guarded chase forest (Section 5). Requires every fired
  /// trigger's TGD to be guarded; non-guarded TGDs get no parent edge.
  bool build_forest = false;
  /// Ablation switch: when false, trigger search joins through the
  /// per-predicate lists only (no (predicate, position, term) index).
  /// Results are identical; only performance differs.
  bool use_position_index = true;
  /// Ablation switch for the semi-naive engine: when true (default),
  /// each round matches TGD bodies only against joins containing at
  /// least one atom from the previous round's delta, seeded through the
  /// per-predicate delta index and a join order planned from the delta
  /// atom. When false, every round re-enumerates all homomorphisms from
  /// the full instance (the naive baseline); the (σ, h) dedup set keeps
  /// the results byte-identical, only cost differs.
  bool use_delta = true;
  /// If nonzero, stop (outcome kCancelled) once the run has lasted
  /// longer than this wall-clock budget. Polled at the same granularity
  /// as `cancel`.
  std::uint64_t deadline_ms = 0;
  /// Optional cooperative cancellation token, polled at round, trigger
  /// and homomorphism granularity; when fired the run stops with outcome
  /// kCancelled and returns the consistent prefix built so far. Not
  /// owned; must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Optional observation hooks (on-round / on-fire / on-done), called
  /// synchronously from the chase loop. Not owned; must outlive the run.
  ChaseObserver* observer = nullptr;
  /// Optional precomputed join plans for Σ (see PlanJoins). Must have
  /// been computed from the same TgdSet (one entry per TGD, same order);
  /// when null the run plans its own. Not owned; must outlive the run.
  const JoinPlanSet* plans = nullptr;
  /// Cross-rule scheduling switch. When true (default) the round loop
  /// walks Σ as the reliance graph's ordered collect-group partition
  /// instead of rule by rule: every rule in a group collects against the
  /// group-start instance — concurrently, on the worker pool, when the
  /// parallel collect engine is engaged — and the groups' guarantee (no
  /// forward Feeds edge inside a group; see graph::RelianceGraph) makes
  /// that indistinguishable from the sequential interleaving, instance
  /// bytes and every deterministic ChaseStats counter included. An
  /// ablation switch like use_delta: results identical, cost differs.
  bool use_reliances = true;
  /// Restricted variant only, and NOT identity-preserving: apply each
  /// collect group's triggers in the reliance graph's restraint order
  /// (restrainers first) instead of Σ-order, so heads that satisfy
  /// sibling rules' heads land first and those siblings' triggers are
  /// skipped as inactive. Changes which restricted chase is computed —
  /// deliberately: on order-sensitive programs it terminates in fewer
  /// rounds (or terminates where Σ-order diverges). The chosen order is
  /// still deterministic and thread-count-invariant. Requires
  /// use_reliances; ignored by the other two variants, whose result
  /// does not depend on firing order.
  bool restraint_order = false;
  /// Optional precomputed reliance graph for Σ (api::Program computes
  /// one at parse time). Must have been built from the same TgdSet;
  /// when null, a run that needs one (use_reliances) builds its own.
  /// Not owned; must outlive the run.
  const graph::RelianceGraph* reliances = nullptr;
  /// Worker count for the within-round parallel trigger engine: each
  /// round's delta seeds are sharded across this many workers (a
  /// util::ThreadPool, the calling thread included), every worker runs
  /// the allocation-free probe path against the read-only instance into
  /// a thread-local candidate buffer, and after a barrier the buffers
  /// are sort-merged into the canonical firing order — so the
  /// materialized instance and every ChaseStats counter are
  /// byte-identical to the sequential engine, for all three variants.
  ///
  ///   kNumThreadsDefault (the default, "unset")
  ///                the sequential engine — unless the NUCHASE_THREADS
  ///                environment variable names a positive worker count,
  ///                the hook CI uses to push every existing test
  ///                through the parallel path. Every explicit setting
  ///                below wins over the environment.
  ///   1            the sequential engine, unconditionally.
  ///   0            one worker per hardware thread
  ///                (std::thread::hardware_concurrency).
  ///   N > 1        exactly N workers.
  ///
  /// Two engine phases run on the pool. The semi-naive collect phase
  /// shards delta seeds across workers (it still requires use_delta and
  /// !build_forest; other runs collect sequentially — a cost statement,
  /// not a semantic one). The apply phase is parallel for every run
  /// shape: head-tuple candidate construction, the per-segment dedup
  /// probes and the per-predicate segment commits fan out, and for the
  /// restricted variant the head-satisfaction pre-checks run read-only
  /// against the frozen round-start instance. Null creation, the
  /// canonical cross-predicate index numbering and the merge callbacks
  /// stay serial in canonical trigger order — that, plus the canonical
  /// merges, is what keeps the results byte-identical.
  std::uint32_t num_threads = kNumThreadsDefault;
  /// Terms per storage extent, as a power of two: the result instance
  /// is built with core::Instance(extent_log2). 0 (the default) means
  /// core::Instance::kDefaultExtentLog2. Extent geometry is
  /// observationally invisible — instance bytes, arena_bytes (padding
  /// is excluded per segment) and every deterministic counter are
  /// identical for any legal value; only memory granularity and cache
  /// behavior differ. An extent must hold the widest tuple of the run;
  /// RunChase clamps the value up until it does (invisibly, by the
  /// above), so a small request on a wide schema is safe. The CLI caps
  /// its flag at [2, 24].
  std::uint32_t extent_log2 = 0;
};

/// The worker count a run with these options will actually use: resolves
/// num_threads == 0 to the hardware concurrency and applies the
/// NUCHASE_THREADS environment override to the default. Always >= 1.
std::uint32_t ResolveNumThreads(const ChaseOptions& options);

/// Why a chase run stopped.
enum class ChaseOutcome {
  kTerminated,  ///< No active trigger remains: the result is chase(D,Σ).
  kAtomLimit,   ///< Atom budget exhausted (instance is a chase prefix).
  kDepthLimit,  ///< A term of depth > max_depth appeared.
  kRoundLimit,  ///< Round budget exhausted.
  kCancelled,   ///< CancelToken fired or the deadline budget elapsed.
  /// A hard id space is exhausted: the run needed more labelled nulls
  /// than Term can index (2^30 per scope), or |Σ| exceeds the
  /// tgd::kMaxRules rule-index cap. api::Session surfaces this as a
  /// kResourceExhausted Status.
  kResourceExhausted,
};

const char* ChaseOutcomeName(ChaseOutcome outcome);

/// Counters describing a chase run.
struct ChaseStats {
  std::uint64_t triggers_fired = 0;  ///< Distinct (σ, h|fr(σ)) applied.
  /// Restricted chase only: triggers whose head was already satisfied
  /// (not active in the Definition 3.1 sense) and therefore skipped.
  std::uint64_t triggers_satisfied = 0;
  std::uint64_t rounds = 0;          ///< Breadth-first rounds executed.
  std::uint32_t max_depth = 0;       ///< maxdepth over all created terms.
  std::uint64_t database_atoms = 0;  ///< |D|.
  /// Delta atoms used as join seeds (semi-naive engine only; stays 0
  /// when ChaseOptions::use_delta is false).
  std::uint64_t delta_atoms_scanned = 0;
  /// Unification attempts of a body/head atom against a candidate
  /// instance atom, over trigger search and the restricted variant's
  /// head-satisfaction checks. Counted in both engines — the number
  /// benches compare across the delta ablation. Under the parallel
  /// engine each worker counts into a private counter and the per-round
  /// totals are summed after the barrier, so the value is deterministic
  /// and identical to the sequential engine's for any num_threads.
  std::uint64_t join_probes = 0;
  /// Bytes of term storage the result instance's columnar arena holds
  /// (used bytes, not capacity). Deterministic for a given atom set, so
  /// identical across engine ablations — the storage-layer counter
  /// tools/check_bench_regression gates on.
  std::uint64_t arena_bytes = 0;
  /// Largest number of atoms the instance held during the run (the
  /// instance only grows, so this equals its final size).
  std::uint64_t peak_atoms = 0;
  /// Rounds whose collect phase ran on the worker pool. Engine
  /// telemetry, not part of the byte-identity contract (it is the one
  /// counter that legitimately differs between num_threads settings):
  /// 0 when the run resolved to the sequential engine, equal to
  /// `rounds` when the parallel engine was engaged. Exists so harnesses
  /// can assert — without a clock — that a run intended to be parallel
  /// actually took the parallel path (tools/check_bench_regression
  /// gates this for bench_parallel_scaling, catching silent fallbacks
  /// that byte-identity alone can never catch).
  std::uint64_t parallel_rounds = 0;
  /// Apply batches (one per rule, per round, with pending triggers)
  /// whose parallel stages — candidate build and dedup probes, or the
  /// restricted variant's pre-checks — ran on the worker pool. Engine
  /// telemetry with the same status as parallel_rounds — outside the
  /// byte-identity contract, 0 for sequential runs — and the same
  /// purpose: tools/check_bench_regression gates it to catch a parallel
  /// apply path silently falling back to serial.
  std::uint64_t parallel_apply_batches = 0;
  /// Apply batches whose per-predicate segment commit ran on the worker
  /// pool — the stage the per-predicate storage split exists for:
  /// batched candidates are probed per (segment, shard) owner and
  /// committed per segment owner concurrently, with only the canonical
  /// cross-predicate numbering and the merge callbacks left serial.
  /// Engine telemetry with the same status as parallel_apply_batches —
  /// outside the byte-identity contract, 0 for sequential runs — and
  /// the same purpose: tools/check_bench_regression gates it on every
  /// machine to catch the concurrent-commit path silently falling back
  /// to the serial one.
  std::uint64_t parallel_commit_batches = 0;
  /// Number of collect groups in the reliance schedule the run walked
  /// (see ChaseOptions::use_reliances): |Σ| when every rule is its own
  /// group, smaller when independent rules share one, 0 when reliance
  /// scheduling is off. A property of Σ alone — identical at every
  /// thread count and for every variant/engine ablation — which is why
  /// the CLI may print it next to the byte-identical stats.
  std::uint64_t reliance_groups = 0;
  /// Rounds in which at least one multi-rule collect group's seed tasks
  /// ran pooled across rules. Engine telemetry with the same status as
  /// parallel_rounds — outside the byte-identity contract, 0 for
  /// sequential runs and for schedules whose groups are all singletons —
  /// and the same purpose: tools/check_bench_regression gates it so a
  /// cross-rule path silently degrading to per-rule collect is caught
  /// without a clock.
  std::uint64_t cross_rule_parallel_rounds = 0;
};

/// The result of a chase run: the constructed instance (equal to
/// chase(D,Σ) iff outcome is kTerminated), statistics, and optionally the
/// guarded chase forest.
struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kTerminated;
  core::Instance instance;
  ChaseStats stats;
  Forest forest;

  bool Terminated() const { return outcome == ChaseOutcome::kTerminated; }
};

/// Runs the semi-oblivious chase of D w.r.t. Σ (Definition 3.2) with a
/// fair, breadth-first strategy. Because semi-oblivious null names are
/// functional in (σ, h|fr(σ)), every valid derivation has the same result
/// [20], which this function computes whenever it terminates within the
/// budgets.
///
/// `symbols` only has to allocate the run's fresh nulls: pass the plain
/// SymbolTable the inputs were built against, or — to chase a shared,
/// frozen table from many threads at once — a per-run
/// core::SymbolOverlay over it.
ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db, const ChaseOptions& options);

/// RunChase with default options.
ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db);

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_CHASE_H_
