#ifndef NUCHASE_CHASE_NULL_STORE_H_
#define NUCHASE_CHASE_NULL_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/symbol_table.h"
#include "core/term.h"
#include "util/hash.h"
#include "util/status.h"

namespace nuchase {
namespace chase {

/// Interns the labelled nulls of the semi-oblivious chase. Definition 3.1
/// names the null for existential variable z of trigger (σ, h) as
/// ⊥^z_{σ, h|fr(σ)}: its identity is fully determined by the TGD, the
/// variable, and the restriction of h to the frontier. This store maps
/// that key to a unique core::Term, creating it (with the correct depth,
/// Definition 4.3) on first request.
///
/// Thread safety: none — GetOrCreate mutates the store and interns
/// into the scope on every miss. The chase engine only ever calls it
/// from the serial null-binding pass of its staged apply phase: even
/// when collect, the candidate build and the dedup probes run on N
/// workers, nulls are bound one trigger at a time in canonical order,
/// which is what keeps null allocation order — and hence null names —
/// deterministic and byte-identical across thread counts.
class NullStore {
 public:
  /// How binding a trigger's existential variables ended (the staged
  /// apply phase's serial pass; see BindTriggerNulls).
  enum class BindResult {
    kOk,                 ///< Every null bound (all within the budget).
    kDepthLimit,         ///< A null exceeded the depth budget.
    kResourceExhausted,  ///< The scope ran out of null ids.
  };

  explicit NullStore(core::SymbolScope* symbols) : symbols_(symbols) {}

  /// Returns the null ⊥^z_{σ, h|fr(σ)} for `tgd_index` (position of σ in
  /// Σ), `existential_var` z, and the frontier images h(fr(σ)) listed in
  /// the fixed (sorted-frontier) order. Depth is
  /// 1 + max({depth(h(x)) | x ∈ fr(σ)} ∪ {0}). Propagates the scope's
  /// kResourceExhausted once null ids run out.
  util::StatusOr<core::Term> GetOrCreate(
      std::uint32_t tgd_index, core::Term existential_var,
      const std::vector<core::Term>& frontier_images);

  /// Variant-agnostic form: the null's identity is keyed by `key_images`
  /// (the frontier images for the semi-oblivious chase, the full body
  /// images for the oblivious one), while its depth is always computed
  /// from `depth_images` = h(fr(σ)) per Definition 4.3.
  util::StatusOr<core::Term> GetOrCreate(
      std::uint32_t tgd_index, core::Term existential_var,
      const std::vector<core::Term>& key_images,
      const std::vector<core::Term>& depth_images);

  /// Binds every existential variable of one trigger in one call — the
  /// unit of work of the apply phase's serial pass. For each variable of
  /// `existentials` (σ's sorted existential order) the bound null is
  /// appended to `*out` and `*observed_max_depth` is raised to its
  /// depth. Stops at the first failure: a null deeper than
  /// `max_depth_limit` (0 = unlimited; the breaching null still lands in
  /// `*out` and still raises `*observed_max_depth`, mirroring how the
  /// engine's depth statistic counts the breach itself) or an exhausted
  /// scope (nothing appended for that variable). Nulls bound before the
  /// failure stay bound — interning is idempotent, so a later retry of
  /// the same trigger re-finds them.
  BindResult BindTriggerNulls(std::uint32_t tgd_index,
                              const std::vector<core::Term>& existentials,
                              const std::vector<core::Term>& key_images,
                              const std::vector<core::Term>& depth_images,
                              std::uint32_t max_depth_limit,
                              std::vector<core::Term>* out,
                              std::uint32_t* observed_max_depth);

  std::size_t size() const { return store_.size(); }

 private:
  core::SymbolScope* symbols_;
  std::unordered_map<std::vector<std::uint32_t>, core::Term,
                     util::VectorHash<std::uint32_t>>
      store_;
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_NULL_STORE_H_
