#include "chase/null_store.h"

#include <algorithm>

namespace nuchase {
namespace chase {

util::StatusOr<core::Term> NullStore::GetOrCreate(
    std::uint32_t tgd_index, core::Term existential_var,
    const std::vector<core::Term>& frontier_images) {
  return GetOrCreate(tgd_index, existential_var, frontier_images,
                     frontier_images);
}

util::StatusOr<core::Term> NullStore::GetOrCreate(
    std::uint32_t tgd_index, core::Term existential_var,
    const std::vector<core::Term>& key_images,
    const std::vector<core::Term>& depth_images) {
  std::vector<std::uint32_t> key;
  key.reserve(key_images.size() + 2);
  key.push_back(tgd_index);
  key.push_back(existential_var.bits());
  for (core::Term t : key_images) key.push_back(t.bits());

  auto it = store_.find(key);
  if (it != store_.end()) return it->second;

  std::uint32_t depth = 0;
  for (core::Term t : depth_images) {
    depth = std::max(depth, symbols_->depth(t));
  }
  util::StatusOr<core::Term> null = symbols_->MakeNull(depth + 1);
  if (!null.ok()) return null.status();
  store_.emplace(std::move(key), *null);
  return *null;
}

NullStore::BindResult NullStore::BindTriggerNulls(
    std::uint32_t tgd_index, const std::vector<core::Term>& existentials,
    const std::vector<core::Term>& key_images,
    const std::vector<core::Term>& depth_images,
    std::uint32_t max_depth_limit, std::vector<core::Term>* out,
    std::uint32_t* observed_max_depth) {
  for (core::Term z : existentials) {
    util::StatusOr<core::Term> null =
        GetOrCreate(tgd_index, z, key_images, depth_images);
    if (!null.ok()) return BindResult::kResourceExhausted;
    out->push_back(*null);
    const std::uint32_t depth = symbols_->depth(*null);
    *observed_max_depth = std::max(*observed_max_depth, depth);
    if (max_depth_limit != 0 && depth > max_depth_limit) {
      return BindResult::kDepthLimit;
    }
  }
  return BindResult::kOk;
}

}  // namespace chase
}  // namespace nuchase
