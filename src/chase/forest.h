#ifndef NUCHASE_CHASE_FOREST_H_
#define NUCHASE_CHASE_FOREST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/instance.h"

namespace nuchase {
namespace chase {

/// The guarded chase forest gforest(δ) of a derivation (Section 5): every
/// atom produced by a trigger (σ, h) is a child of the guard image
/// h(guard(σ)); database atoms are roots. The forest also records atom
/// depths (max term depth), enabling direct validation of Lemma 5.1.
class Forest {
 public:
  static constexpr core::AtomIndex kNoParent = 0xffffffffu;

  Forest() = default;

  /// Registers a root (database) atom. Must be called in atom-index order.
  void AddRoot(core::AtomIndex atom);

  /// Registers a derived atom with its guard parent and depth.
  void AddChild(core::AtomIndex atom, core::AtomIndex parent,
                std::uint32_t depth);

  /// Registers a derived atom with no guard parent (produced by a
  /// non-guarded TGD); it forms its own degenerate tree but is not listed
  /// among the database roots.
  void AddFloating(core::AtomIndex atom, std::uint32_t depth);

  bool empty() const { return parent_.empty(); }
  std::size_t size() const { return parent_.size(); }

  core::AtomIndex parent(core::AtomIndex atom) const {
    return parent_[atom];
  }
  /// The database atom at the root of the tree containing `atom`.
  core::AtomIndex root(core::AtomIndex atom) const { return root_[atom]; }
  /// depth(α): the maximum depth over the terms of the atom.
  std::uint32_t depth(core::AtomIndex atom) const { return depth_[atom]; }

  /// All root atom indexes.
  const std::vector<core::AtomIndex>& roots() const { return roots_; }

  /// |gtree_i(δ, α)| for every i, for the tree rooted at `root`:
  /// result[i] = number of atoms of depth i in gtree(δ, root).
  std::map<std::uint32_t, std::uint64_t> GtreeDepthHistogram(
      core::AtomIndex root) const;

  /// |gtree(δ, α)|: total number of atoms in the tree rooted at `root`.
  std::uint64_t GtreeSize(core::AtomIndex root) const;

 private:
  std::vector<core::AtomIndex> parent_;
  std::vector<core::AtomIndex> root_;
  std::vector<std::uint32_t> depth_;
  std::vector<core::AtomIndex> roots_;
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_FOREST_H_
