#include "chase/forest.h"

#include <cassert>

namespace nuchase {
namespace chase {

void Forest::AddRoot([[maybe_unused]] core::AtomIndex atom) {
  assert(atom == parent_.size());
  parent_.push_back(kNoParent);
  root_.push_back(atom);
  depth_.push_back(0);
  roots_.push_back(atom);
}

void Forest::AddChild([[maybe_unused]] core::AtomIndex atom, core::AtomIndex parent,
                      std::uint32_t depth) {
  assert(atom == parent_.size());
  assert(parent < parent_.size());
  parent_.push_back(parent);
  root_.push_back(root_[parent]);
  depth_.push_back(depth);
}

void Forest::AddFloating([[maybe_unused]] core::AtomIndex atom, std::uint32_t depth) {
  assert(atom == parent_.size());
  parent_.push_back(kNoParent);
  root_.push_back(atom);
  depth_.push_back(depth);
}

std::map<std::uint32_t, std::uint64_t> Forest::GtreeDepthHistogram(
    core::AtomIndex root) const {
  std::map<std::uint32_t, std::uint64_t> hist;
  for (core::AtomIndex a = 0; a < root_.size(); ++a) {
    if (root_[a] == root) ++hist[depth_[a]];
  }
  return hist;
}

std::uint64_t Forest::GtreeSize(core::AtomIndex root) const {
  std::uint64_t n = 0;
  for (core::AtomIndex a = 0; a < root_.size(); ++a) {
    if (root_[a] == root) ++n;
  }
  return n;
}

}  // namespace chase
}  // namespace nuchase
