#ifndef NUCHASE_CHASE_OBSERVER_H_
#define NUCHASE_CHASE_OBSERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/term.h"

namespace nuchase {
namespace chase {

enum class ChaseOutcome;
struct ChaseStats;

/// Progress snapshot delivered to ChaseObserver::OnRound at the start of
/// every breadth-first round.
struct RoundProgress {
  /// 1-based round number about to execute.
  std::uint64_t round = 0;
  /// Atoms in the instance when the round starts.
  std::size_t atoms = 0;
  /// Atoms in the previous round's delta (the join seeds of this round).
  std::size_t delta_atoms = 0;
  /// Triggers fired so far, over all previous rounds.
  std::uint64_t triggers_fired = 0;
};

/// Observation hooks for a chase run. All callbacks are invoked
/// synchronously from the chase loop, on the thread running the chase;
/// implementations must not re-enter the engine or mutate the inputs.
/// Every hook has an empty default so observers override only what they
/// need.
class ChaseObserver {
 public:
  virtual ~ChaseObserver() = default;

  /// Start of each breadth-first round.
  virtual void OnRound(const RoundProgress& progress) { (void)progress; }

  /// A trigger of TGD `tgd_index` (position in Σ) fired; the instance now
  /// holds `atoms` atoms.
  virtual void OnFire(std::uint32_t tgd_index, std::size_t atoms) {
    (void)tgd_index;
    (void)atoms;
  }

  /// The serial null-binding pass bound the labelled nulls of one
  /// trigger of TGD `tgd_index`: `nulls[i]` is the null (possibly
  /// re-found, not fresh) for the rule's i-th sorted existential
  /// variable, `frontier` the trigger's h(fr(σ)) the null depths derive
  /// from. Called in canonical trigger order for every variant and
  /// thread count, so a recording observer sees a deterministic
  /// provenance stream. On a depth-budget breach the partial binding —
  /// breaching null included — is still reported before OnDone; this is
  /// the hook the MFA rung's self-fed-null witness is reconstructed
  /// from. Terms are plain values; resolve depths and names through the
  /// run's core::SymbolScope.
  virtual void OnNullsBound(std::uint32_t tgd_index,
                            const core::Term* nulls, std::size_t num_nulls,
                            const core::Term* frontier,
                            std::size_t num_frontier) {
    (void)tgd_index;
    (void)nulls;
    (void)num_nulls;
    (void)frontier;
    (void)num_frontier;
  }

  /// Exactly once, with the final outcome, before RunChase returns.
  virtual void OnDone(ChaseOutcome outcome, const ChaseStats& stats) {
    (void)outcome;
    (void)stats;
  }
};

/// Cooperative cancellation flag for a chase run. Cancel() may be called
/// from any thread (typically not the one chasing); the engine polls the
/// token at round, trigger and homomorphism granularity and stops with
/// ChaseOutcome::kCancelled in bounded time, returning the consistent
/// chase prefix built so far.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_OBSERVER_H_
