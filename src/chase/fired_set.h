#ifndef NUCHASE_CHASE_FIRED_SET_H_
#define NUCHASE_CHASE_FIRED_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace nuchase {
namespace chase {

/// The collect-phase (σ, h)-dedup set: one flat open-addressing table
/// over one flat key arena. Keys are small uint32 sequences (rule index
/// plus term images, FillPendingTrigger's layout); they are appended
/// back-to-back into `arena_` and each table slot records (hash, offset,
/// length) — no per-key heap node, no bucket lists. Replaces the former
/// 16-way sharded unordered_set group: the set is cumulative across a
/// run's rounds, and under the flat layout its growth costs amortized
/// appends into two vectors instead of a node allocation per key and a
/// bucket-array rehash per doubling of every shard.
///
/// Concurrency contract (unchanged from the sharded predecessor): during
/// a pooled collect region the set is strictly read-only — workers call
/// Contains, all inserts happen in the serial canonical merge after the
/// barrier — so the table needs no locks to be shared, and membership
/// answers are independent of worker assignment. Byte-identity holds
/// trivially: only membership is ever observed, never iteration order,
/// so the probe layout is not part of the deterministic contract.
///
/// Slots are epoch-tagged: a slot is live iff its tag equals the set's
/// current epoch, so Reset() is one counter bump — O(1), touching no
/// slot memory and freeing nothing. One table can therefore be reused
/// across many chase runs (bench loops, differential-test cells) at its
/// high-water capacity: the arena rewinds, the slot array logically
/// empties, and no allocator traffic or memset appears between runs.
/// Growth re-seats only live (current-epoch) slots into the doubled
/// array, dropping stale epochs for free.
class FlatFiredSet {
 public:
  FlatFiredSet() : slots_(kInitialSlots) {}

  /// True iff `key` was inserted in the current epoch. Safe to call
  /// concurrently with other readers (but not with Insert/Reset).
  bool Contains(const std::vector<std::uint32_t>& key) const {
    const std::uint64_t h = HashKey(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = static_cast<std::size_t>(h) & mask;;
         i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return false;  // first hole: absent
      if (s.hash == h && KeyEquals(s, key)) return true;
    }
  }

  /// True iff the key was newly inserted.
  bool Insert(const std::vector<std::uint32_t>& key) {
    // Linear probing wants headroom: grow at 7/8 occupancy so probe
    // chains stay short even in the table's final generation.
    if ((size_ + 1) * 8 > slots_.size() * 7) Grow();
    const std::uint64_t h = HashKey(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = static_cast<std::size_t>(h) & mask;;
         i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.hash = h;
        s.offset = arena_.size();
        s.len = static_cast<std::uint32_t>(key.size());
        s.epoch = epoch_;
        arena_.insert(arena_.end(), key.begin(), key.end());
        ++size_;
        return true;
      }
      if (s.hash == h && KeyEquals(s, key)) return false;
    }
  }

  /// O(1) logical clear: bumps the epoch (invalidating every slot) and
  /// rewinds the arena write cursor. Capacity — slot array and arena
  /// alike — is retained, so a reused set reaches its steady state
  /// allocation-free. The epoch counter wrapping to 0 (once per 2^32-1
  /// resets) would resurrect first-generation tags, so that one reset
  /// pays a real wipe.
  void Reset() {
    arena_.clear();
    size_ = 0;
    if (++epoch_ == 0) {
      std::fill(slots_.begin(), slots_.end(), Slot{});
      epoch_ = 1;
    }
  }

  /// Number of keys inserted in the current epoch.
  std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    std::uint32_t epoch = 0;  // live iff equal to the owning epoch_
  };

  static constexpr std::size_t kInitialSlots = 256;  // power of two

  static std::uint64_t HashKey(const std::vector<std::uint32_t>& key) {
    // Same word mixer as the sharded predecessor (and the instance's
    // tuple index); the extra finalizer keeps the low bits — which the
    // power-of-two mask consumes directly — fully mixed.
    return util::Mix64(util::VectorHash<std::uint32_t>{}(key));
  }

  bool KeyEquals(const Slot& s,
                 const std::vector<std::uint32_t>& key) const {
    if (s.len != key.size()) return false;
    const std::uint32_t* stored = arena_.data() + s.offset;
    for (std::uint32_t i = 0; i < s.len; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  void Grow() {
    std::vector<Slot> grown(slots_.size() * 2);
    const std::size_t mask = grown.size() - 1;
    for (const Slot& s : slots_) {
      if (s.epoch != epoch_) continue;  // hole or stale epoch: drop
      std::size_t i = static_cast<std::size_t>(s.hash) & mask;
      while (grown[i].epoch == epoch_) i = (i + 1) & mask;
      grown[i] = s;
    }
    slots_.swap(grown);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> arena_;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;  // 0 is reserved as the never-live tag
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_FIRED_SET_H_
