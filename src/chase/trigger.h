#ifndef NUCHASE_CHASE_TRIGGER_H_
#define NUCHASE_CHASE_TRIGGER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/term.h"

namespace nuchase {
namespace chase {

/// A substitution h : V → C ∪ N, represented sparsely.
using Substitution = std::unordered_map<core::Term, core::Term>;

/// Applies a substitution to an atom; unbound variables are kept as-is.
core::Atom ApplySubstitution(const core::Atom& atom, const Substitution& h);

/// Enumerates homomorphisms from a conjunction of atoms (with variables,
/// and possibly constants/nulls that must match exactly) into an Instance.
/// This is the join kernel shared by the chase (trigger search,
/// Definition 3.1) and the conjunctive-query evaluator.
class HomomorphismFinder {
 public:
  /// `use_position_index` = false disables the secondary
  /// (predicate, position, term) index and joins through the
  /// per-predicate lists only — the ablation baseline measured by
  /// bench_index_ablation.
  explicit HomomorphismFinder(const core::Instance& instance,
                              bool use_position_index = true)
      : instance_(instance), use_position_index_(use_position_index) {}

  /// Calls `cb` once per homomorphism from `atoms` into the instance,
  /// extending `initial` (which may pre-bind variables). If `cb` returns
  /// false, enumeration stops. `seed_atom` >= 0 pins atoms[seed_atom] to
  /// the instance atom `seed_target` (used for semi-naive evaluation).
  ///
  /// Atom selection is greedy most-bound-first, and candidates are fetched
  /// through the per-(predicate, position, term) index when any argument is
  /// bound.
  void Enumerate(const std::vector<core::Atom>& atoms,
                 const Substitution& initial, int seed_atom,
                 core::AtomIndex seed_target,
                 const std::function<bool(const Substitution&)>& cb) const;

  /// Convenience overload: no seed, empty initial substitution.
  void Enumerate(const std::vector<core::Atom>& atoms,
                 const std::function<bool(const Substitution&)>& cb) const;

 private:
  /// Tries to unify `pattern` against the concrete instance atom `fact`,
  /// extending `h`. Returns false (and leaves `h` unchanged modulo the
  /// recorded trail) on mismatch.
  static bool Match(const core::Atom& pattern, const core::Atom& fact,
                    Substitution* h, std::vector<core::Term>* trail);

  bool Recurse(const std::vector<core::Atom>& atoms,
               std::vector<bool>* done, std::size_t remaining,
               Substitution* h,
               const std::function<bool(const Substitution&)>& cb) const;

  const core::Instance& instance_;
  bool use_position_index_;
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_TRIGGER_H_
