#ifndef NUCHASE_CHASE_TRIGGER_H_
#define NUCHASE_CHASE_TRIGGER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/term.h"

namespace nuchase {
namespace chase {

/// A substitution h : V → C ∪ N, represented sparsely.
using Substitution = std::unordered_map<core::Term, core::Term>;

/// Applies a substitution to an atom; unbound variables are kept as-is.
core::Atom ApplySubstitution(const core::Atom& atom, const Substitution& h);

/// Allocation-free form: writes h(atom)'s argument tuple into `*out`
/// (cleared first). The chase engine's insert/probe fast path: the
/// resulting span goes straight into Instance::InsertTuple / FindTuple
/// without ever materializing an Atom.
void ApplySubstitutionInto(const core::Atom& atom, const Substitution& h,
                           std::vector<core::Term>* out);

/// Static body-atom reordering for semi-naive (delta-seeded) matching:
/// returns a permutation of [0, body.size()) that starts with `seed_pos`
/// and greedily appends the atom sharing the most variables with the
/// already-placed prefix (ties: fewer unbound variables, then original
/// order). The enumerator's dynamic most-bound-first selection then uses
/// this order as its tie-break, so the join grows connected from the
/// delta atom instead of wandering through cartesian products.
std::vector<std::size_t> PlanJoinOrder(const std::vector<core::Atom>& body,
                                       std::size_t seed_pos);

/// Enumerates homomorphisms from a conjunction of atoms (with variables,
/// and possibly constants/nulls that must match exactly) into an Instance.
/// This is the join kernel shared by the chase (trigger search,
/// Definition 3.1) and the conjunctive-query evaluator.
class HomomorphismFinder {
 public:
  /// `use_position_index` = false disables the secondary
  /// (predicate, position, term) index and joins through the
  /// per-predicate lists only — the ablation baseline measured by
  /// bench_index_ablation.
  explicit HomomorphismFinder(const core::Instance& instance,
                              bool use_position_index = true)
      : instance_(instance), use_position_index_(use_position_index) {}

  /// When set, every unification attempt of a body atom against a
  /// candidate instance atom increments *counter (the `join_probes`
  /// statistic of ChaseStats). The pointer must outlive the finder.
  void set_probe_counter(std::uint64_t* counter) {
    probe_counter_ = counter;
  }

  /// When set, enumeration polls (*interrupt)() once every 1024 probes
  /// and unwinds early (without further callbacks) when it returns true
  /// — the hook the chase engine uses to honour its CancelToken/deadline
  /// inside long match-free joins, where the per-homomorphism poll never
  /// runs. Sticky per finder: once tripped, `interrupted()` stays true
  /// and subsequent Enumerate calls return immediately. The pointee must
  /// outlive the finder; pass nullptr to clear.
  void set_interrupt(const std::function<bool()>* interrupt) {
    interrupt_ = interrupt;
  }

  /// True iff an enumeration was aborted by the interrupt hook.
  bool interrupted() const { return interrupted_; }

  /// Semi-naive discipline: restricts the atoms flagged in `old_only`
  /// (aligned with the `atoms` vector passed to Enumerate) to instance
  /// atoms with index < `old_limit`. Seeding each join from a delta atom
  /// and keeping the body positions *before* the seed old-only makes
  /// every homomorphism enumerable from exactly one seed position.
  /// `old_only` must outlive the finder; pass nullptr to clear.
  void set_old_restriction(const std::vector<bool>* old_only,
                           core::AtomIndex old_limit) {
    old_only_ = old_only;
    old_limit_ = old_limit;
  }

  /// Calls `cb` once per homomorphism from `atoms` into the instance,
  /// extending `initial` (which may pre-bind variables). If `cb` returns
  /// false, enumeration stops. `seed_atom` >= 0 pins atoms[seed_atom] to
  /// the instance atom `seed_target` (used for semi-naive evaluation).
  ///
  /// Atom selection is greedy most-bound-first, and candidates are fetched
  /// through the per-(predicate, position, term) index when any argument is
  /// bound.
  void Enumerate(const std::vector<core::Atom>& atoms,
                 const Substitution& initial, int seed_atom,
                 core::AtomIndex seed_target,
                 const std::function<bool(const Substitution&)>& cb) const;

  /// Convenience overload: no seed, empty initial substitution.
  void Enumerate(const std::vector<core::Atom>& atoms,
                 const std::function<bool(const Substitution&)>& cb) const;

 private:
  /// Tries to unify `pattern` against the concrete instance atom whose
  /// argument tuple starts at `fact_terms` (a pointer straight into the
  /// instance's term arena; the fact's predicate — and hence arity —
  /// must already equal the pattern's), extending `h`. Returns false
  /// (and leaves `h` unchanged modulo the recorded trail) on mismatch.
  bool Match(const core::Atom& pattern, const core::Term* fact_terms,
             Substitution* h, std::vector<core::Term>* trail) const;

  bool Recurse(const std::vector<core::Atom>& atoms,
               std::vector<bool>* done, std::size_t remaining,
               Substitution* h,
               const std::function<bool(const Substitution&)>& cb) const;

  /// Number of leading candidates in `candidates` (ascending by index)
  /// that the old-only restriction allows for query atom `i`.
  std::size_t RestrictedCount(std::size_t i,
                              const std::vector<core::AtomIndex>& candidates)
      const;

  const core::Instance& instance_;
  bool use_position_index_;
  std::uint64_t* probe_counter_ = nullptr;
  const std::function<bool()>* interrupt_ = nullptr;
  // Mutable: polled/latched inside const enumeration.
  mutable std::uint32_t interrupt_tick_ = 0;
  mutable bool interrupted_ = false;
  const std::vector<bool>* old_only_ = nullptr;
  core::AtomIndex old_limit_ = 0;
};

}  // namespace chase
}  // namespace nuchase

#endif  // NUCHASE_CHASE_TRIGGER_H_
